"""cuBLASTP reproduction: fine-grained protein sequence search.

A from-scratch Python implementation of the BLASTP pipeline together with
the cuBLASTP system of Zhang, Wang & Feng (IPDPS 2014 / TCBB 2015): the
fine-grained GPU kernels run on a functional SIMT simulator whose cycle
model reproduces the paper's performance comparisons, and every
implementation in the package returns output identical to the sequential
reference.

Quickstart::

    from repro import CuBlastp, SequenceDatabase

    db = SequenceDatabase.from_strings(["MKTAYIAKQR...", ...])
    result = CuBlastp("MKWVTFISLLFLFSSAYS...").search(db)
    for hit in result.alignments:
        print(hit.subject_identifier, hit.bit_score, hit.evalue)

Package map
-----------
``repro.engine``
    The unified engine layer: compiled queries (built once, shared across
    engines and database blocks), the pluggable :class:`Engine` protocol,
    the concurrent :class:`BatchExecutor`, and the phase-event stream.
``repro.core``
    The four-phase BLASTP pipeline (the algorithmic ground truth).
``repro.cublastp``
    The paper's system: binning hit detection, segmented sort, filtering,
    three extension strategies, hierarchical buffering, CPU phases, and
    the GPU/CPU overlap pipeline.
``repro.gpusim``
    The simulated Kepler GPU (warps, divergence, coalescing, caches,
    occupancy) standing in for the paper's K20c.
``repro.baselines``
    FSA-BLAST, NCBI-BLAST xT, CUDA-BLASTP, GPU-BLASTP, Smith-Waterman.
``repro.io`` / ``repro.matrices`` / ``repro.seeding`` / ``repro.alphabet``
    Substrates: FASTA + packed databases + synthetic workloads, scoring
    and statistics, word neighbourhoods and the DFA, residue encoding.
``repro.perfmodel``
    The calibrated CPU cost model used for the CPU-side baselines.
"""

from repro.baselines import CudaBlastp, FsaBlast, GpuBlastp, NcbiBlast
from repro.core import Alignment, BlastpPipeline, SearchParams, SearchResult
from repro.cublastp import CuBlastp, CuBlastpConfig, ExtensionMode
from repro.engine import (
    BatchExecutor,
    CompiledQuery,
    Engine,
    EventLog,
    QueryCache,
    compile_query,
    make_engine,
)
from repro.gpusim import DeviceSpec, K20C
from repro.io import (
    DatabaseStore,
    DatabaseView,
    SequenceDatabase,
    WorkloadSpec,
    get_default_store,
    generate_database,
    generate_query,
    read_fasta_file,
    standard_queries,
    standard_workloads,
)
from repro.matrices import BLOSUM62

__version__ = "1.0.0"

__all__ = [
    "Alignment",
    "BLOSUM62",
    "BatchExecutor",
    "BlastpPipeline",
    "CompiledQuery",
    "CuBlastp",
    "CuBlastpConfig",
    "CudaBlastp",
    "DatabaseStore",
    "DatabaseView",
    "DeviceSpec",
    "Engine",
    "EventLog",
    "ExtensionMode",
    "FsaBlast",
    "GpuBlastp",
    "K20C",
    "NcbiBlast",
    "QueryCache",
    "SearchParams",
    "SearchResult",
    "SequenceDatabase",
    "WorkloadSpec",
    "compile_query",
    "generate_database",
    "generate_query",
    "get_default_store",
    "make_engine",
    "read_fasta_file",
    "standard_queries",
    "standard_workloads",
]
