"""Request coalescing: the arrival-batching state machine.

The always-on service turns independent request arrivals into *batches*
so the executor's amortizations (resident database, warm process
workers, the db-sweep multi-query index) actually engage under
concurrent load. The policy is the classic time/size window: a batch
closes when it reaches ``max_batch`` requests (size close) or when the
oldest pending request has waited one coalescing window (window close).

:class:`Coalescer` is deliberately *clock-free*: it is a pure FIFO state
machine whose only operations are :meth:`add` (an arrival) and
:meth:`flush` (the caller decided the window expired). The service layer
owns the actual timer (:mod:`repro.serve.service`); keeping time out of
this class is what makes its contract — every request appears in exactly
one emitted batch, in arrival order — directly checkable by the
Hypothesis property suite over arbitrary add/flush interleavings
(``tests/property/test_prop_coalescer.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generic, TypeVar

from repro.analysis.witness import new_lock, thread_shared

T = TypeVar("T")


@dataclass
class CoalescerStats:
    """Batching counters of one :class:`Coalescer`."""

    arrivals: int = 0
    #: Items that have left in an emitted batch (arrivals minus pending).
    emitted: int = 0
    batches: int = 0
    #: Batches closed by reaching ``max_batch``.
    size_closes: int = 0
    #: Batches closed by :meth:`Coalescer.flush` (window expiry / drain).
    window_closes: int = 0

    @property
    def mean_batch_size(self) -> float:
        """Emitted items per batch (the coalescing payoff in one number)."""
        return self.emitted / self.batches if self.batches else 0.0


@thread_shared
class Coalescer(Generic[T]):
    """Clock-free FIFO batcher with a size bound.

    Thread-safe: arrivals may come from any number of request threads
    while one dispatcher flushes. Every item is emitted exactly once, in
    global arrival order (and therefore in per-connection arrival order,
    since each connection submits sequentially).
    """

    def __init__(self, max_batch: int = 32) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be positive")
        self.max_batch = max_batch
        self.stats = CoalescerStats()  # guarded-by: self._lock
        self._lock = new_lock("Coalescer._lock")
        self._pending: list[T] = []  # guarded-by: self._lock

    def add(self, item: T) -> list[T] | None:
        """Record an arrival; return the closed batch if it filled one."""
        with self._lock:
            self._pending.append(item)
            self.stats.arrivals += 1
            if len(self._pending) >= self.max_batch:
                self.stats.size_closes += 1
                return self._close()
            return None

    def flush(self) -> list[T] | None:
        """Close the pending batch (window expiry or shutdown drain).

        Returns ``None`` when nothing is pending — a flush never emits an
        empty batch.
        """
        with self._lock:
            if not self._pending:
                return None
            self.stats.window_closes += 1
            return self._close()

    def _close(self) -> list[T]:
        # Caller holds the lock.
        batch, self._pending = self._pending, []
        self.stats.batches += 1
        self.stats.emitted += len(batch)
        return batch

    def __len__(self) -> int:
        """Number of pending (not yet emitted) items."""
        with self._lock:
            return len(self._pending)
