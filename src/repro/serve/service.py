"""The always-on search service: coalescer → executor → cache.

:class:`SearchService` is the serving core, independent of any transport
(the HTTP front-end in :mod:`repro.serve.http` is one thin consumer; the
fault-injection suite drives this class directly). One instance owns:

* a :class:`~repro.serve.coalescer.Coalescer` batching concurrent
  arrivals on a time/size window (the window timer lives here — the
  dispatcher thread wakes when the oldest pending request has waited
  ``window_ms``);
* a :class:`~repro.engine.executor.BatchExecutor` running each closed
  batch against the resident database — thread or process backend,
  per-query or db-sweep mode. Under the process backend the executor
  keeps its worker pool *warm across batches* (``keep_pool``), so a
  coalescing window never pays worker spawn + engine build + database
  ``mmap``;
* a :class:`~repro.serve.cache.ResultCache` of canonical payload bytes
  keyed ``(query-hash, db-version, params)``, where db-version is the
  RPDB header's content stamp — :meth:`refresh_db_version` picks up an
  out-of-band stamp bump and invalidates exactly the stale entries;
* admission control: at most ``max_pending`` requests may be queued or
  executing; past that :meth:`submit` sheds load with
  :class:`OverloadedError` (HTTP 429) instead of queueing unboundedly.
  Cache hits bypass admission — they cost a dict lookup, shedding them
  would be self-defeating.

Failure semantics are the executor's, surfaced per request: a query
whose worker crashes gets :class:`~repro.engine.procpool.WorkerCrashError`
on its future (503 at the HTTP layer) while queued siblings requeue onto
live workers; a fully dead pool fails requests *fast* — the service
never hangs on a lost backend.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Union

from repro.analysis.witness import new_condition, thread_shared
from repro.engine.executor import BatchExecutor
from repro.engine.protocol import Engine, make_engine
from repro.errors import ReproError
from repro.serve.cache import CacheKey, ResultCache, params_key, query_key
from repro.serve.coalescer import Coalescer
from repro.verify.canonical import payload_to_bytes, result_to_payload

if TYPE_CHECKING:
    from repro.core.statistics import SearchParams
    from repro.io.database import SequenceDatabase

    DatabaseLike = Union["SequenceDatabase", str, Path]


class ServeError(ReproError):
    """Base class for serving-layer failures."""


class OverloadedError(ServeError):
    """Admission control shed this request (HTTP 429).

    The pending+executing population is at ``max_pending``; retry later.
    """


class ServiceClosedError(ServeError):
    """The service is shutting down and accepts no new requests (HTTP 503)."""


@dataclass
class ServeOutcome:
    """One served request: the response payload plus cache provenance."""

    query_id: str
    #: Deterministic canonical-payload bytes (the HTTP response body).
    payload: bytes
    cache_hit: bool


@dataclass
class _Request:
    """A request admitted into the coalescer, awaiting its batch."""

    query_id: str
    sequence: str
    key: CacheKey
    future: "Future[ServeOutcome]" = field(default_factory=Future)
    t_arrival: float = field(default_factory=time.monotonic)


@dataclass
class ServiceStats:
    """Request-level counters (coalescer and cache keep their own)."""

    requests: int = 0
    #: Requests answered straight from the cache (never coalesced).
    cache_hits: int = 0
    #: Requests refused by admission control (the 429s).
    shed: int = 0
    #: Requests whose future carries an error.
    failed: int = 0
    completed: int = 0


@thread_shared
class SearchService:
    """Coalescing, caching search service over one resident database.

    Thread contract (checked by ``repro lint --concurrency``): request
    threads enter through :meth:`submit`; one dispatcher thread owns
    batch execution; the *lifecycle* role — the single logical thread
    that drives :meth:`start`/:meth:`close` — owns the dispatcher
    handle. Everything the roles share is guarded by ``self._cond``.

    Parameters
    ----------
    db:
        The database to serve: a saved binary path (preferred — the
        content stamp in its header keys the cache, and process workers
        ``mmap`` it directly), a FASTA-loaded or in-memory
        :class:`~repro.io.database.SequenceDatabase` (spilled to a
        temporary binary file when the process backend needs one), or a
        store-registered name.
    engine:
        Engine registry name or instance (default ``cublastp``).
    params:
        :class:`~repro.core.statistics.SearchParams` (defaults applied
        when ``None``); part of every cache key.
    backend / jobs / mode:
        Passed to the :class:`~repro.engine.executor.BatchExecutor`. The
        process backend gets a warm persistent pool (``keep_pool``).
    window_ms:
        Coalescing window: a pending batch closes at latest this long
        after its first arrival. ``0`` dispatches each arrival as its
        own batch as fast as the dispatcher can drain.
    max_batch:
        Size close: a batch never exceeds this many requests.
    max_pending:
        Admission bound on queued+executing requests; beyond it
        :meth:`submit` raises :class:`OverloadedError`.
    cache_capacity:
        :class:`~repro.serve.cache.ResultCache` size (``0`` disables).
    max_respawns:
        Process-backend crash budget per worker slot.
    """

    def __init__(
        self,
        db: "DatabaseLike",
        *,
        engine: "Engine | str | None" = None,
        params: "SearchParams | None" = None,
        backend: str = "thread",
        jobs: int = 1,
        mode: str = "db-sweep",
        window_ms: float = 20.0,
        max_batch: int = 32,
        max_pending: int = 256,
        cache_capacity: int = 1024,
        max_respawns: int = 2,
        mp_context: str | None = None,
    ) -> None:
        if window_ms < 0:
            raise ValueError("window_ms must be >= 0")
        if max_pending < 1:
            raise ValueError("max_pending must be positive")
        if isinstance(engine, Engine):
            self.engine = engine
        else:
            self.engine = make_engine(engine or "cublastp", params)
        engine_params = getattr(self.engine, "params", None)
        if engine_params is None:
            from repro.core.statistics import SearchParams

            engine_params = SearchParams()
        self.params: "SearchParams" = engine_params
        self.window_ms = window_ms
        self.max_pending = max_pending
        self.backend = backend
        self._db, self._db_path, self._db_spill = self._resolve_db(db, backend)
        self.db_version = self._read_db_version()  # guarded-by: self._cond
        self.cache = ResultCache(cache_capacity)
        self.coalescer: Coalescer[_Request] = Coalescer(max_batch)
        self.stats = ServiceStats()  # guarded-by: self._cond
        self.executor = BatchExecutor(
            self.engine,
            jobs=jobs,
            backend=backend,
            mode=mode,
            collect_reports=False,
            keep_pool=(backend == "process"),
            max_respawns=max_respawns,
            mp_context=mp_context,
        )
        self._params_key = params_key(self.params)
        self._cond = new_condition("SearchService._cond")
        self._ready: deque[list[_Request]] = deque()  # guarded-by: self._cond
        self._deadline: float | None = None  # guarded-by: self._cond
        #: Requests admitted and not yet resolved (queued or executing).
        self._admitted = 0  # guarded-by: self._cond
        self._closed = False  # guarded-by: self._cond
        self._dispatcher: threading.Thread | None = None  # owned-by: lifecycle

    # -- database binding --------------------------------------------------

    @staticmethod
    def _resolve_db(
        db: "DatabaseLike", backend: str
    ) -> "tuple[DatabaseLike, Path | None, Callable[[], None] | None]":
        """Bind the database: ``(executor_db_arg, binary_path, spill_cleanup)``.

        The process backend needs a stable binary path (the warm pool is
        keyed on it); anything in-memory is spilled *once* for the
        service's lifetime rather than per batch.
        """
        from repro.io import storage

        if isinstance(db, (str, Path)):
            path = Path(db)
            if path.exists() and storage.sniff_format(path) == "binary":
                return path, path, None
            if backend == "process":
                from repro.engine.procpool import database_path_for_workers

                spill, cleanup = database_path_for_workers(db)
                return spill, spill, cleanup
            return db, None, None
        if backend == "process":
            from repro.engine.procpool import database_path_for_workers

            spill, cleanup = database_path_for_workers(db)
            return spill, spill, cleanup
        return db, None, None

    def _read_db_version(self) -> int:
        """The bound database's content stamp (0 when not a binary file)."""
        from repro.io import storage

        if self._db_path is None:
            return 0
        return storage.read_db_version(self._db_path)

    def refresh_db_version(self) -> tuple[int, int, int]:
        """Re-read the RPDB stamp; returns ``(old, new, invalidated)``.

        On a stamp change the store's residency entry is evicted (the
        file's content generation changed, the old mapping must not be
        served) and every cache entry keyed under a superseded stamp is
        reclaimed. Entries for the current stamp are untouched.
        """
        new = self._read_db_version()
        with self._cond:
            # The version swap races with request threads keying the
            # cache off db_version; publish it under the lock. Eviction
            # and invalidation run outside — both are idempotent, and
            # holding _cond across store/cache locks would add ordering
            # edges for no benefit.
            old = self.db_version
            changed = new != old
            if changed:
                self.db_version = new
        invalidated = 0
        if changed:
            if self._db_path is not None:
                from repro.io.store import get_default_store

                (self.executor.store or get_default_store()).evict(self._db_path)
            invalidated = self.cache.invalidate_stale(new)
        return old, new, invalidated

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "SearchService":  # runs-on: lifecycle
        """Start the dispatcher thread (idempotent); returns ``self``."""
        if self._dispatcher is None:
            self._dispatcher = threading.Thread(
                target=self._dispatch_loop, name="repro-serve-dispatch", daemon=True
            )
            self._dispatcher.start()
        return self

    def close(self) -> None:  # runs-on: lifecycle
        """Drain pending batches, stop the dispatcher, retire the pool."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            batch = self.coalescer.flush()
            if batch:
                self._ready.append(batch)
            self._cond.notify_all()
        if self._dispatcher is not None:
            # The dispatcher drains every already-queued batch before it
            # exits, so admitted requests still get real results.
            self._dispatcher.join(timeout=60)
            self._dispatcher = None
        else:
            # Never started: fail anything queued rather than leak futures.
            with self._cond:
                leftovers = list(self._ready)
                self._ready.clear()
            for batch in leftovers:
                for r in batch:
                    self._resolve_error(r, ServiceClosedError("service is shut down"))
        self.executor.close()
        if self._db_spill is not None:
            self._db_spill()
            self._db_spill = None

    def __enter__(self) -> "SearchService":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- request path ------------------------------------------------------

    def submit(self, query_id: str, sequence: str) -> "Future[ServeOutcome]":
        """Admit one request; resolve its future when its batch completes.

        Raises :class:`OverloadedError` (shed) or
        :class:`ServiceClosedError`; per-query search failures surface as
        the future's exception, not here.
        """
        if self._closed:
            raise ServiceClosedError("service is shut down")
        key = CacheKey(query_key(sequence), self.db_version, self._params_key)
        cached = self.cache.get(key)
        if cached is not None:
            # Counter updates take the lock even on the fast path: hits
            # race with the dispatcher's completed += len(batch) and a
            # lost update here understates every serving metric.
            with self._cond:
                self.stats.requests += 1
                self.stats.cache_hits += 1
                self.stats.completed += 1
            fut: "Future[ServeOutcome]" = Future()
            fut.set_result(ServeOutcome(query_id, cached, cache_hit=True))
            return fut
        request = _Request(query_id, sequence, key)
        with self._cond:
            if self._closed:
                raise ServiceClosedError("service is shut down")
            if self._admitted >= self.max_pending:
                self.stats.shed += 1
                raise OverloadedError(
                    f"{self._admitted} requests pending (max_pending="
                    f"{self.max_pending}); shedding load"
                )
            self.stats.requests += 1
            self._admitted += 1
            batch = self.coalescer.add(request)
            if batch is not None:
                self._ready.append(batch)
                if len(self.coalescer) == 0:
                    self._deadline = None
            elif len(self.coalescer) == 1:
                self._deadline = time.monotonic() + self.window_ms / 1e3
            self._cond.notify_all()
        return request.future

    def search(
        self, query_id: str, sequence: str, timeout: float | None = None
    ) -> ServeOutcome:
        """Blocking convenience wrapper over :meth:`submit`."""
        return self.submit(query_id, sequence).result(timeout)

    # -- dispatcher --------------------------------------------------------

    def _next_batch(self) -> list[_Request] | None:  # runs-on: dispatcher
        with self._cond:
            while True:
                if self._ready:
                    return self._ready.popleft()
                if self._closed:
                    return None
                if self._deadline is None:
                    self._cond.wait()
                    continue
                remaining = self._deadline - time.monotonic()
                if remaining <= 0:
                    self._deadline = None
                    batch = self.coalescer.flush()
                    if batch is not None:
                        return batch
                    continue
                self._cond.wait(remaining)

    def _dispatch_loop(self) -> None:  # runs-on: dispatcher
        while True:
            batch = self._next_batch()
            if batch is None:
                return
            self._execute(batch)

    def _execute(self, batch: list[_Request]) -> None:  # runs-on: dispatcher
        queries = [(r.query_id, r.sequence) for r in batch]
        completed = 0
        try:
            outcomes = list(self.executor.stream(queries, self._db))
        except Exception as exc:
            # A failure of the whole stream (not per-query isolated) is
            # every request's failure — report, never hang the futures.
            for r in batch:
                self._resolve_error(r, exc)
        else:
            for r, outcome in zip(batch, outcomes):
                if outcome.error is not None:
                    self._resolve_error(r, outcome.error)
                else:
                    payload = payload_to_bytes(result_to_payload(outcome.result))
                    self.cache.put(r.key, payload)
                    completed += 1
                    r.future.set_result(
                        ServeOutcome(r.query_id, payload, cache_hit=False)
                    )
        finally:
            # One locked update per batch: the counters race with the
            # cache-hit path in request threads, so the batch's tally is
            # folded in under the same lock as the admission count.
            with self._cond:
                self.stats.completed += completed
                self._admitted -= len(batch)
                self._cond.notify_all()

    def _resolve_error(self, request: _Request, error: Exception) -> None:
        with self._cond:
            self.stats.failed += 1
        request.future.set_exception(error)

    # -- introspection -----------------------------------------------------

    def worker_pids(self) -> list[int]:
        """Live process-backend worker PIDs (empty for the thread backend)."""
        pool = self.executor.process_pool
        return pool.worker_pids() if pool is not None else []

    @property
    def pending(self) -> int:
        """Requests admitted and not yet resolved."""
        with self._cond:
            return self._admitted

    def stats_dict(self) -> dict[str, Any]:
        """One JSON-able snapshot across service, coalescer, and cache."""
        c, k = self.coalescer.stats, self.cache.stats
        return {
            "requests": self.stats.requests,
            "completed": self.stats.completed,
            "failed": self.stats.failed,
            "shed": self.stats.shed,
            "pending": self.pending,
            "db_version": self.db_version,
            "coalescer": {
                "batches": c.batches,
                "size_closes": c.size_closes,
                "window_closes": c.window_closes,
                "mean_batch_size": round(c.mean_batch_size, 3),
            },
            "cache": {
                "entries": len(self.cache),
                "hits": k.hits,
                "misses": k.misses,
                "evictions": k.evictions,
                "invalidations": k.invalidations,
                "hit_rate": round(k.hit_rate, 4),
            },
        }
