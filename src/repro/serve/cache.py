"""Result cache: ``(query-hash, db-version, params)`` → canonical payload bytes.

Layered on the canonical-payload machinery of :mod:`repro.verify.canonical`:
what is cached is the *deterministic byte serialization* of a result's
canonical payload (:func:`~repro.verify.canonical.payload_to_bytes`), so a
cache hit is byte-identical to the cold-path response — a property the
cache-correctness tests check with ``==`` on raw bytes, no float
tolerance anywhere.

Keys are content-addressed on the request side (SHA-256 of the query
sequence, a digest over every :class:`~repro.core.statistics.SearchParams`
field) and *generation*-addressed on the database side: the RPDB header's
``db_version`` stamp (:func:`repro.io.storage.read_db_version`) names the
content generation, so replacing or refreshing a database makes every old
entry unreachable the moment the service re-reads the stamp.
:meth:`ResultCache.invalidate_stale` additionally reclaims the memory of
entries keyed under superseded stamps — exactly the stale ones, nothing
else.

Residency policy and bookkeeping mirror
:class:`~repro.io.store.DatabaseStore`: LRU with a capacity bound and
hit/miss/eviction counters, all mutated under one lock so concurrent
request threads cannot lose stat updates (the race the serve test suite
hammers for).
"""

from __future__ import annotations

import dataclasses
import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.analysis.witness import new_lock, thread_shared

if TYPE_CHECKING:
    from repro.core.statistics import SearchParams


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of one :class:`ResultCache`.

    The same shape as :class:`~repro.io.store.StoreStats`, plus the
    invalidation counter the db-version key adds.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: Entries removed because their db-version stamp was superseded.
    invalidations: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0


def query_key(sequence: str) -> str:
    """Content hash of a query sequence (the request-side cache key part)."""
    return hashlib.sha256(sequence.encode()).hexdigest()[:32]


def params_key(params: "SearchParams") -> str:
    """Digest over every search-parameter field.

    Unlike :func:`~repro.engine.compiled.compile_signature` (which keys
    only the *compile-relevant* subset so compilations can be shared),
    the cache must key the full execution-relevant set — two parameter
    sets that compile identically but cut off E-values differently must
    not share cached results. The scoring matrix contributes its name
    and its raw score bytes; every other field contributes its ``repr``.
    """
    h = hashlib.sha256()
    for f in dataclasses.fields(params):
        value = getattr(params, f.name)
        if f.name == "matrix":
            h.update(f"matrix={value.name};".encode())
            h.update(value.scores.tobytes())
        else:
            h.update(f"{f.name}={value!r};".encode())
    return h.hexdigest()[:32]


@dataclass(frozen=True)
class CacheKey:
    """One cached search, content- and generation-addressed."""

    query: str
    db_version: int
    params: str


@thread_shared
class ResultCache:
    """LRU of canonical payload bytes with locked stats.

    Parameters
    ----------
    capacity:
        Maximum entries kept; the least recently used is evicted past
        that. ``0`` disables caching entirely (every ``get`` misses,
        ``put`` is a no-op) — the conformance property tests use this to
        force every request down the cold path.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity = capacity
        self.stats = CacheStats()  # guarded-by: self._lock
        self._lock = new_lock("ResultCache._lock")
        self._entries: OrderedDict[CacheKey, bytes] = OrderedDict()  # guarded-by: self._lock

    def get(self, key: CacheKey) -> bytes | None:
        """The cached payload bytes, or ``None`` (counted as hit/miss)."""
        with self._lock:
            data = self._entries.get(key)
            if data is None:
                self.stats.misses += 1
                return None
            self.stats.hits += 1
            self._entries.move_to_end(key)
            return data

    def put(self, key: CacheKey, payload: bytes) -> None:
        """Insert (or refresh) an entry, evicting LRU past capacity."""
        if self.capacity == 0:
            return
        with self._lock:
            self._entries[key] = payload
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def invalidate_stale(self, db_version: int) -> int:
        """Drop entries whose stamp is not ``db_version``; return the count.

        Version-keyed entries for old stamps are already unreachable (no
        request will ever build their key again); this reclaims their
        memory without touching any current-generation entry.
        """
        with self._lock:
            stale = [k for k in self._entries if k.db_version != db_version]
            for k in stale:
                del self._entries[k]
            self.stats.invalidations += len(stale)
            return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        """Membership without touching the stats or the LRU order."""
        with self._lock:
            return key in self._entries
