"""Asyncio HTTP/1.1 front-end over :class:`~repro.serve.service.SearchService`.

A deliberately small, dependency-free server (stdlib ``asyncio`` streams,
hand-parsed HTTP/1.1 with keep-alive): the serving intelligence —
coalescing, caching, admission — all lives in the transport-agnostic
service core; this layer only maps requests to :meth:`SearchService.submit`
and service failures to status codes.

Routes
------
``POST /search``
    Body ``{"query_id": ..., "sequence": ...}``. The 200 response body is
    the request's canonical payload bytes *exactly as cached* — a cache
    hit is byte-identical to the cold path, and the ``X-Cache`` header
    says which one served you (``HIT`` / ``MISS``).
``GET /healthz``
    Liveness plus live worker count.
``GET /stats``
    :meth:`SearchService.stats_dict` as JSON.
``POST /admin/refresh-db``
    Re-read the database's RPDB version stamp and invalidate stale cache
    entries; returns ``{"old": ..., "new": ..., "invalidated": ...}``.

Status mapping (the admission/failure contract the fault suite locks in):

========================== ====
:class:`OverloadedError`    429
:class:`ServiceClosedError` 503
``WorkerCrashError``        503
``RemoteTaskError``         500
bad request / bad JSON      400
========================== ====

Every response is ``Connection: keep-alive`` unless the client asked to
close; an overload answer carries ``Retry-After``. The server *sheds*
load rather than queueing unboundedly — a 429 comes back immediately, it
never hangs the connection.

:class:`ServeHandle` runs the whole loop in a daemon thread on an
ephemeral port — the in-process harness the serve tests and the latency
benchmark drive real sockets through.
"""

from __future__ import annotations

import asyncio
import json
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Awaitable, Callable

from repro.engine.procpool import RemoteTaskError, WorkerCrashError
from repro.serve.service import (
    OverloadedError,
    SearchService,
    ServeOutcome,
    ServiceClosedError,
)

if TYPE_CHECKING:
    from concurrent.futures import Future

#: Largest accepted request body (a query sequence, with generous slack).
MAX_BODY_BYTES = 4 * 1024 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass
class _HttpRequest:
    method: str
    path: str
    headers: dict[str, str]
    body: bytes

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "keep-alive").lower() != "close"


class _BadRequest(Exception):
    """Malformed HTTP or JSON; answered with a 400 and a closed connection."""


async def _read_request(reader: asyncio.StreamReader) -> _HttpRequest | None:
    """Parse one HTTP/1.1 request; ``None`` on a clean EOF between requests."""
    try:
        line = await reader.readline()
    except (ConnectionResetError, asyncio.IncompleteReadError):
        return None
    if not line:
        return None
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3:
        raise _BadRequest(f"malformed request line: {line!r}")
    method, path, _version = parts
    headers: dict[str, str] = {}
    while True:
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        name, sep, value = raw.decode("latin-1").partition(":")
        if not sep:
            raise _BadRequest(f"malformed header line: {raw!r}")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length > MAX_BODY_BYTES:
        raise _BadRequest(f"body of {length} bytes exceeds {MAX_BODY_BYTES}")
    body = await reader.readexactly(length) if length else b""
    return _HttpRequest(method, path, headers, body)


def _response(
    status: int, body: bytes, *, keep_alive: bool, extra: dict[str, str] | None = None
) -> bytes:
    head = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra or {}).items():
        head.append(f"{name}: {value}")
    return ("\r\n".join(head) + "\r\n\r\n").encode() + body


def _error_body(status: int, error: str, detail: str) -> bytes:
    return json.dumps(
        {"status": status, "error": error, "detail": detail}, sort_keys=True
    ).encode()


class SearchHttpServer:
    """The asyncio server: request routing over one :class:`SearchService`."""

    def __init__(self, service: SearchService) -> None:
        self.service = service

    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await _read_request(reader)
                except _BadRequest as exc:
                    body = _error_body(400, "BadRequest", str(exc))
                    writer.write(_response(400, body, keep_alive=False))
                    await writer.drain()
                    return
                if request is None:
                    return
                status, body, extra = await self._dispatch(request)
                writer.write(
                    _response(status, body, keep_alive=request.keep_alive, extra=extra)
                )
                await writer.drain()
                if not request.keep_alive:
                    return
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass  # client went away mid-request; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(
        self, request: _HttpRequest
    ) -> tuple[int, bytes, dict[str, str] | None]:
        route: (
            Callable[[_HttpRequest], Awaitable[tuple[int, bytes, dict[str, str] | None]]]
            | None
        )
        route = {
            ("POST", "/search"): self._search,
            ("GET", "/healthz"): self._healthz,
            ("GET", "/stats"): self._stats,
            ("POST", "/admin/refresh-db"): self._refresh_db,
        }.get((request.method, request.path))
        if route is None:
            known = {"/search", "/healthz", "/stats", "/admin/refresh-db"}
            status = 405 if request.path in known else 404
            return status, _error_body(status, _REASONS[status], request.path), None
        return await route(request)

    async def _search(
        self, request: _HttpRequest
    ) -> tuple[int, bytes, dict[str, str] | None]:
        try:
            payload = json.loads(request.body)
            query_id = str(payload["query_id"])
            sequence = payload["sequence"]
            if not isinstance(sequence, str) or not sequence:
                raise ValueError("sequence must be a non-empty string")
        except (ValueError, KeyError, TypeError) as exc:
            return 400, _error_body(400, "BadRequest", f"bad /search body: {exc}"), None
        try:
            future: "Future[ServeOutcome]" = self.service.submit(query_id, sequence)
        except OverloadedError as exc:
            return 429, _error_body(429, "Overloaded", str(exc)), {"Retry-After": "1"}
        except ServiceClosedError as exc:
            return 503, _error_body(503, "ServiceClosed", str(exc)), None
        try:
            outcome = await asyncio.wrap_future(future)
        except (WorkerCrashError, ServiceClosedError) as exc:
            return 503, _error_body(503, type(exc).__name__, str(exc)), None
        except RemoteTaskError as exc:
            return 500, _error_body(500, "RemoteTaskError", str(exc)), None
        except Exception as exc:
            return 500, _error_body(500, type(exc).__name__, str(exc)), None
        return 200, outcome.payload, {"X-Cache": "HIT" if outcome.cache_hit else "MISS"}

    async def _healthz(
        self, request: _HttpRequest
    ) -> tuple[int, bytes, dict[str, str] | None]:
        body = json.dumps(
            {
                "status": "ok",
                "backend": self.service.backend,
                "workers": len(self.service.worker_pids()),
                "pending": self.service.pending,
            },
            sort_keys=True,
        ).encode()
        return 200, body, None

    async def _stats(
        self, request: _HttpRequest
    ) -> tuple[int, bytes, dict[str, str] | None]:
        return 200, json.dumps(self.service.stats_dict(), sort_keys=True).encode(), None

    async def _refresh_db(
        self, request: _HttpRequest
    ) -> tuple[int, bytes, dict[str, str] | None]:
        old, new, invalidated = self.service.refresh_db_version()
        body = json.dumps(
            {"old": old, "new": new, "invalidated": invalidated}, sort_keys=True
        ).encode()
        return 200, body, None


async def serve_forever(
    service: SearchService, host: str = "127.0.0.1", port: int = 8713
) -> None:
    """Run the HTTP server on the current loop until cancelled."""
    server = SearchHttpServer(service)
    async with await asyncio.start_server(server.handle_connection, host, port) as s:
        await s.serve_forever()


class ServeHandle:
    """An in-process server on an ephemeral port, for tests and benchmarks.

    Runs the asyncio loop in a daemon thread; :attr:`port` is the bound
    ephemeral port (``port=0`` default). Use as a context manager —
    :meth:`close` stops the loop and closes the service.
    """

    def __init__(
        self,
        service: SearchService,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        own_service: bool = True,
    ) -> None:
        self.service = service
        self.host = host
        self._own_service = own_service
        self._loop = asyncio.new_event_loop()
        self._started = threading.Event()
        self._server: asyncio.AbstractServer | None = None
        self._requested_port = port
        self.port: int = 0
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-http", daemon=True
        )
        service.start()
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise RuntimeError("HTTP server failed to start within 30s")

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)

        async def boot() -> None:
            http = SearchHttpServer(self.service)
            self._server = await asyncio.start_server(
                http.handle_connection, self.host, self._requested_port
            )
            self.port = self._server.sockets[0].getsockname()[1]
            self._started.set()

        try:
            self._loop.run_until_complete(boot())
            self._loop.run_forever()
        finally:
            if self._server is not None:
                self._server.close()
                self._loop.run_until_complete(self._server.wait_closed())
            self._loop.close()

    @property
    def address(self) -> tuple[str, int]:
        return self.host, self.port

    def close(self) -> None:
        if self._loop.is_running():
            self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=30)
        if self._own_service:
            self.service.close()

    def __enter__(self) -> "ServeHandle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
