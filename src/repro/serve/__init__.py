"""The always-on serving layer: coalescer → executor → cache.

``repro serve`` turns the batch machinery into a long-lived HTTP service:
concurrent arrivals coalesce into executor batches on a time/size window
(:mod:`repro.serve.coalescer`), run on a resident database with warm
process workers (:mod:`repro.serve.service`), and repeat queries are
answered from a db-version-keyed canonical-payload cache
(:mod:`repro.serve.cache`). The HTTP transport itself is a thin stdlib
asyncio layer (:mod:`repro.serve.http`). See ``docs/SERVING.md``.
"""

from repro.serve.cache import CacheKey, CacheStats, ResultCache, params_key, query_key
from repro.serve.coalescer import Coalescer, CoalescerStats
from repro.serve.http import SearchHttpServer, ServeHandle, serve_forever
from repro.serve.service import (
    OverloadedError,
    SearchService,
    ServeError,
    ServeOutcome,
    ServiceClosedError,
    ServiceStats,
)

__all__ = [
    "CacheKey",
    "CacheStats",
    "Coalescer",
    "CoalescerStats",
    "OverloadedError",
    "ResultCache",
    "SearchHttpServer",
    "SearchService",
    "ServeError",
    "ServeHandle",
    "ServeOutcome",
    "ServiceClosedError",
    "ServiceStats",
    "serve_forever",
    "params_key",
    "query_key",
]
