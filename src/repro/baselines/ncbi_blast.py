"""NCBI BLAST model: the same pipeline, heavier engine, pthreads.

NCBI BLAST+ parallelises a search by partitioning subject sequences over
threads; every phase scales with the partition. The model inherits the
FSA-BLAST machinery with NCBI's per-operation costs and a thread count
(the paper compares against four threads).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.fsa_blast import FsaBlast
from repro.core.statistics import SearchParams
from repro.perfmodel.calibration import NCBI_COSTS


class NcbiBlast(FsaBlast):
    """Multithreaded NCBI BLAST (modelled)."""

    costs = NCBI_COSTS
    name = "NCBI-BLAST"

    def __init__(
        self,
        query: "str | np.ndarray | None" = None,
        params: SearchParams | None = None,
        threads: int = 4,
    ) -> None:
        super().__init__(query, params)
        if threads < 1:
            raise ValueError("threads must be positive")
        self.threads = threads
        self.name = f"NCBI-BLAST x{threads}"
