"""GPU-BLASTP (Xiao et al., IPDPS 2011) — the stronger coarse baseline.

Same one-thread-per-sequence kernel as CUDA-BLASTP, plus the two published
improvements: a runtime work queue (a lane grabs the next sequence from a
global atomic the moment it finishes, fixing static-assignment imbalance)
and two-level output buffering (extensions buffered per thread, flushed
per sequence, avoiding the global atomic on every extension).
"""

from __future__ import annotations

from repro.baselines.cuda_blastp import CudaBlastp


class GpuBlastp(CudaBlastp):
    """Coarse-grained baseline searcher (GPU-BLASTP flavour)."""

    name = "GPU-BLASTP"
    work_queue = True
    buffered_output = True
    sort_by_length = False  # the work queue supersedes length sorting
    kernel_registers = 40
