"""Smith-Waterman: optimal affine-gap local alignment.

BLAST is a heuristic approximation of this algorithm; the test suite and
the accuracy example use it as the oracle — a BLAST alignment's score can
never exceed the Smith-Waterman optimum for the same pair, and for the
planted homologs in the synthetic workloads BLAST should find (nearly) the
optimal score. Row updates use the same ``maximum.accumulate`` unrolling
of the horizontal-gap recurrence as the gapped-extension DP.
"""

from __future__ import annotations

import numpy as np

from repro.core.traceback import TracebackAlignment, traceback_align
from repro.io.database import SequenceDatabase
from repro.matrices.pssm import build_pssm

_NEG = np.int64(-(2**40))


def smith_waterman_score(
    pssm: np.ndarray,
    subject_codes: np.ndarray,
    gap_open: int,
    gap_extend: int,
) -> int:
    """Optimal local-alignment score of the PSSM's query vs one subject."""
    subject_codes = np.asarray(subject_codes, dtype=np.uint8)
    n = pssm.shape[1]
    m = subject_codes.size
    if n == 0 or m == 0:
        return 0
    # sub[i, j] scores query position i against subject residue j.
    sub = pssm[subject_codes[:, None], np.arange(n)[None, :]].T.astype(np.int64)
    go, ge = int(gap_open), int(gap_extend)
    h_prev = np.zeros(m + 1, dtype=np.int64)
    e_prev = np.full(m + 1, _NEG, dtype=np.int64)
    jj = np.arange(m + 1, dtype=np.int64)
    best = 0
    zeros = np.zeros(m, dtype=np.int64)
    for i in range(1, n + 1):
        e_cur = np.empty(m + 1, dtype=np.int64)
        e_cur[0] = _NEG
        e_cur[1:] = np.maximum(h_prev[1:] - go, e_prev[1:] - ge)
        diag = h_prev[:-1] + sub[i - 1]
        g = np.maximum.reduce([zeros, diag, e_cur[1:]])
        g_full = np.concatenate(([np.int64(0)], g))
        t = g_full + ge * jj
        run = np.maximum.accumulate(t)
        f = run[:-1] - go - ge * (jj[1:] - 1)
        h = np.maximum(g, f)
        row_best = int(h.max())
        if row_best > best:
            best = row_best
        h_prev = np.concatenate(([np.int64(0)], h))
        e_prev = e_cur
    return best


def smith_waterman_align(
    query_codes: np.ndarray,
    subject_codes: np.ndarray,
    matrix,
    gap_open: int | None = None,
    gap_extend: int | None = None,
) -> TracebackAlignment | None:
    """Optimal local alignment with traceback (small inputs only).

    Reuses the boxed traceback DP with the box spanning both sequences —
    O(nm) memory, so meant for oracles and examples, not for database scans.
    """
    query_codes = np.asarray(query_codes, dtype=np.uint8)
    subject_codes = np.asarray(subject_codes, dtype=np.uint8)
    pssm = build_pssm(query_codes, matrix)
    go = matrix.gap_open if gap_open is None else gap_open
    ge = matrix.gap_extend if gap_extend is None else gap_extend
    return traceback_align(
        pssm,
        query_codes,
        subject_codes,
        (0, query_codes.size - 1, 0, subject_codes.size - 1),
        go,
        ge,
    )


def sw_search_scores(
    query_codes: np.ndarray,
    db: SequenceDatabase,
    matrix,
    gap_open: int | None = None,
    gap_extend: int | None = None,
) -> np.ndarray:
    """Optimal local score against every database sequence."""
    pssm = build_pssm(np.asarray(query_codes, dtype=np.uint8), matrix)
    go = matrix.gap_open if gap_open is None else gap_open
    ge = matrix.gap_extend if gap_extend is None else gap_extend
    return np.array(
        [smith_waterman_score(pssm, db.sequence(i), go, ge) for i in range(len(db))],
        dtype=np.int64,
    )
