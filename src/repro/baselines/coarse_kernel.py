"""The coarse-grained one-thread-per-sequence BLASTP kernel (Fig. 4).

This is the design CUDA-BLASTP and GPU-BLASTP share and the paper argues
against: each lane runs the *whole* fused hit-detection + ungapped-
extension loop (Algorithm 1) over its own subject sequence. Every memory
touch is a per-lane scatter (32 lanes, 32 different sequences), the hit
and extension branches diverge lane by lane, and a warp is held hostage by
its longest sequence — the three pathologies Fig. 19 quantifies.

Semantics are pinned to the library-wide rules (two-hit with overlap
exclusion via a depth-``W`` ring of previous hit positions, coverage via
``ext_reach``), so the extension set is identical to the reference and to
cuBLASTP; only the execution pattern differs.

The two systems differ in scheduling and output policy:

* **CUDA-BLASTP** pre-sorts the database by sequence length and assigns
  sequences statically (lane ``i`` takes sequences ``i, i+stride, ...``);
  extensions are appended through a global atomic cursor.
* **GPU-BLASTP** pops sequences from a global work-queue atomic (a lane
  grabs its next sequence the moment it finishes) and buffers extensions
  per thread, flushing per sequence — its "two-level buffering".
"""

from __future__ import annotations

import numpy as np

from repro.core.results import ExtensionArray
from repro.cublastp.ext_common import ExtensionOutput, SCORE_BIAS
from repro.cublastp.hit_detection_kernel import _alloc_unique
from repro.cublastp.session import DeviceSession, WORD_ENTRY_COUNT_MASK, WORD_ENTRY_SHIFT
from repro.alphabet import ALPHABET_SIZE
from repro.gpusim.kernel import Kernel, KernelContext, launch
from repro.gpusim.profiler import KernelProfile
from repro.gpusim.warp import Warp

#: A depth-W ring of previous hit positions per diagonal implements the
#: "some predecessor within [W, window]" rule exactly (see two_hit.py);
#: the three 16-bit slots live packed in one int64 per diagonal.


class CoarseBlastpKernel(Kernel):
    """Fused coarse-grained hit detection + ungapped extension."""

    name = "coarse_blastp"
    block_threads = 128
    registers_per_thread = 63  # fused kernels are register-hungry

    def __init__(
        self,
        session: DeviceSession,
        x_drop: int,
        word_length: int,
        two_hit_window: int,
        work_queue: bool,
        buffered_output: bool,
        registers_per_thread: int | None = None,
    ) -> None:
        self.session = session
        self.x_drop = x_drop
        self.word_length = word_length
        self.window = two_hit_window
        self.work_queue = work_queue
        self.buffered_output = buffered_output
        if registers_per_thread is not None:
            self.registers_per_thread = registers_per_thread

    #: Sequences each thread processes over its lifetime. The published
    #: coarse kernels ran far more sequences than threads (300 k sequences
    #: on a few thousand threads); 4 per thread keeps that regime — where
    #: assignment policy matters — at sandbox database sizes.
    seqs_per_thread = 4

    def grid_blocks(self, ctx: KernelContext) -> int:
        return max(
            1,
            -(-len(self.session.db) // (self.block_threads * self.seqs_per_thread)),
        )

    # -- memory helpers ------------------------------------------------------

    def _score(self, warp: Warp, qpos: np.ndarray, code: np.ndarray) -> np.ndarray:
        """Global-memory PSSM lookup (no shared staging in the coarse codes)."""
        s = self.session
        qsafe = np.clip(qpos, 0, s.query_length - 1)
        return warp.load(s.pssm_buf, qsafe * 32 + code).astype(np.int64)

    def run_warp(self, ctx: KernelContext, warp: Warp, block_id: int, warp_in_block: int) -> None:
        s = self.session
        dev = ctx.device
        qlen = s.query_length
        W = self.word_length
        n_seqs = len(s.db)
        lanes = dev.warp_size
        lane = warp.lane_id
        tid = warp.warp_id * lanes + lane
        total_threads = warp.num_warps * lanes
        ndiag = ctx.params["ndiag"]
        lasthit = ctx.memory.buffers["lasthit_rings"]
        reach_buf = ctx.memory.buffers["ext_reach"]
        out_a = ctx.memory.buffers["ext_out_a"]
        out_b = ctx.memory.buffers["ext_out_b"]
        counter = ctx.memory.buffers["ext_count"]
        queue = ctx.memory.buffers.get("work_queue")

        # Per-lane current sequence (static stride or work-queue pop).
        if self.work_queue:
            seq = warp.atomic_add_global(
                queue, np.zeros(lanes, dtype=np.int64), np.ones(lanes, dtype=np.int64)
            ).astype(np.int64)
        else:
            seq = tid.copy()
        j = np.zeros(lanes, dtype=np.int64)
        off = np.zeros(lanes, dtype=np.int64)
        end = np.zeros(lanes, dtype=np.int64)
        n_words = np.zeros(lanes, dtype=np.int64)
        fresh = np.ones(lanes, dtype=bool)
        pending: list[list[tuple[int, ...]]] = [[] for _ in range(lanes)]

        def flush(lane_mask: np.ndarray) -> None:
            """GPU-BLASTP two-level buffering: per-sequence output flush."""
            counts = np.array([len(pending[x]) for x in range(lanes)], dtype=np.int64)
            todo = lane_mask & (counts > 0)
            if not todo.any():
                return
            with warp.where(todo):
                base = warp.atomic_add_global(
                    counter, np.zeros(lanes, dtype=np.int64), counts
                ).astype(np.int64)
                depth = int(counts[todo].max())
                for d in range(depth):
                    has = todo & (counts > d)
                    a = np.zeros(lanes, dtype=np.int64)
                    b = np.zeros(lanes, dtype=np.int64)
                    for x in np.nonzero(has)[0]:
                        a[x], b[x] = pending[x][d]
                    with warp.where(has):
                        warp.store(out_a, base + d, a)
                        warp.store(out_b, base + d, b)
            for x in np.nonzero(todo)[0]:
                pending[x].clear()

        def emit(mask: np.ndarray, seq_v, diag_v, s_start, s_end, score) -> None:
            a = (seq_v << 32) | (diag_v << 16) | s_start
            b = (s_end << 32) | (score + SCORE_BIAS)
            warp.alu(2)
            if self.buffered_output:
                warp.alu(2)  # local-buffer store (registers / local memory)
                for x in np.nonzero(mask & warp.active)[0]:
                    pending[x].append((int(a[x]), int(b[x])))
            else:
                with warp.where(mask):
                    ones = (mask & warp.active).astype(np.int64)
                    slot = warp.atomic_add_global(
                        counter, np.zeros(lanes, dtype=np.int64), ones
                    )
                    warp.store(out_a, slot, a)
                    warp.store(out_b, slot, b)

        # Main fused loop: lanes advance word-by-word through their own
        # sequences; a lane finishing a sequence picks up its next one.
        def has_work():
            return seq < n_seqs

        for _ in warp.loop_while(has_work):
            start_mask = fresh & warp.active
            if start_mask.any():
                with warp.where(start_mask):
                    o = warp.load(s.db_offsets, np.minimum(seq, n_seqs - 1))
                    e = warp.load(s.db_offsets, np.minimum(seq, n_seqs - 1) + 1)
                warp.alu()
                off = np.where(start_mask, o, off)
                end = np.where(start_mask, e, end)
                n_words = np.where(start_mask, end - off - W + 1, n_words)
                j = np.where(start_mask, 0, j)
                fresh = fresh & ~start_mask

            scanning = warp.active & (j < n_words)
            with warp.where(scanning):
                inner = warp.active
                ji = np.where(inner, j, 0)
                base = off + ji
                c0 = warp.load(s.db_codes, np.where(inner, base, 0)).astype(np.int64)
                c1 = warp.load(s.db_codes, np.where(inner, base + 1, 0)).astype(np.int64)
                c2 = warp.load(s.db_codes, np.where(inner, base + 2, 0)).astype(np.int64)
                warp.alu()
                word = (c0 * ALPHABET_SIZE + c1) * ALPHABET_SIZE + c2
                entry = warp.load(s.word_entries, word)
                warp.alu()
                p_off = entry >> WORD_ENTRY_SHIFT
                count = entry & WORD_ENTRY_COUNT_MASK
                k = np.zeros(lanes, dtype=np.int64)
                for _ in warp.loop_while(lambda: k < count):
                    hact = warp.active
                    ki = np.where(hact, k, 0)
                    qpos = warp.load(
                        s.positions, np.where(hact, p_off + ki, 0)
                    ).astype(np.int64)
                    warp.alu(2)
                    diag = ji - qpos + qlen
                    ring_idx = tid * ndiag + np.clip(diag, 0, ndiag - 1)
                    # Two-hit test against the last W hit positions of this
                    # diagonal, packed into ONE 64-bit word per diagonal
                    # ([seq_tag:16 | p2:16 | p1:16 | p0:16], 0xFFFF = empty)
                    # so the per-hit bookkeeping costs one load and one
                    # store, like the lasthit word in the real codes. The
                    # sequence tag invalidates entries left by the lane's
                    # previous sequence without any per-sequence clear.
                    ring = warp.load(lasthit, ring_idx, fill=-1)
                    warp.alu(4)  # unpack three slots + tag, window tests
                    tag_ok = ((ring >> 48) & 0xFFFF) == (seq & 0xFFFF)
                    is_seed = np.zeros(lanes, dtype=bool)
                    for shift in (0, 16, 32):
                        p = (ring >> shift) & 0xFFFF
                        dist = ji - p
                        is_seed |= (
                            hact
                            & tag_ok
                            & (p != 0xFFFF)
                            & (dist >= W)
                            & (dist <= self.window)
                        )
                    warp.alu()  # shift the ring, retag, insert the new hit
                    p0 = np.where(tag_ok, ring & 0xFFFF, 0xFFFF)
                    p1 = np.where(tag_ok, (ring >> 16) & 0xFFFF, 0xFFFF)
                    new_ring = (
                        ((seq & 0xFFFF) << 48) | (p1 << 32) | (p0 << 16) | ji
                    )
                    warp.store(lasthit, ring_idx, new_ring)

                    reach = warp.load(
                        reach_buf, tid * ndiag + np.clip(diag, 0, ndiag - 1), fill=-1
                    ).astype(np.int64)
                    warp.alu()
                    # reach is absolute too; stale values from earlier
                    # sequences are below ``off`` and never mask a trigger.
                    trigger = is_seed & (base > reach)
                    with warp.where(trigger):
                        text = warp.active
                        word_sc = np.zeros(lanes, dtype=np.int64)
                        for t in range(W):
                            code = warp.load(
                                s.db_codes, np.where(text, base + t, 0)
                            ).astype(np.int64)
                            sc = self._score(warp, qpos + t, code)
                            warp.alu()
                            word_sc += sc
                        gain_r, steps_r = self._walk(warp, off, end, qpos, ji, +1)
                        gain_l, steps_l = self._walk(warp, off, off, qpos, ji, -1)
                        warp.alu(2)
                        s_start = ji - steps_l
                        s_end = ji + W - 1 + steps_r
                        score = word_sc + gain_l + gain_r
                        warp.store(
                            reach_buf,
                            tid * ndiag + np.clip(diag, 0, ndiag - 1),
                            off + s_end,
                        )
                        emit(text, seq, diag, s_start, s_end, score)
                    k += 1
            j = np.where(scanning, j + 1, j)

            finished = warp.active & (j >= n_words) & ~fresh
            if finished.any():
                if self.buffered_output:
                    flush(finished)
                if self.work_queue:
                    # GPU-BLASTP: a finished lane immediately pops its next
                    # sequence while warp-mates keep scanning.
                    with warp.where(finished):
                        nxt = warp.atomic_add_global(
                            queue,
                            np.zeros(lanes, dtype=np.int64),
                            finished.astype(np.int64),
                        ).astype(np.int64)
                    seq = np.where(finished, nxt, seq)
                    fresh = fresh | finished
                elif not bool((warp.active & ~fresh & (j < n_words)).any()):
                    # CUDA-BLASTP: the statically-strided sequence loop
                    # reconverges the warp at its head — every lane waits
                    # (masked, issuing nothing useful) until the slowest
                    # warp-mate finishes its current sequence, then all
                    # advance one stride together. Length-sorting the
                    # database (done by the wrapper) is their mitigation.
                    warp.alu()
                    live = warp.active
                    seq = np.where(live, seq + total_threads, seq)
                    fresh = fresh | live

    def _walk(
        self,
        warp: Warp,
        off: np.ndarray,
        bound: np.ndarray,
        q0: np.ndarray,
        s0: np.ndarray,
        direction: int,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-lane x-drop walk with global-memory score loads."""
        s = self.session
        dev = warp.device
        n = dev.warp_size
        qlen = s.query_length
        W = self.word_length
        cur = np.zeros(n, dtype=np.int64)
        best = np.zeros(n, dtype=np.int64)
        best_steps = np.zeros(n, dtype=np.int64)
        steps = np.zeros(n, dtype=np.int64)
        stopped = ~warp.active
        for _ in warp.loop_while(lambda: ~stopped):
            act = warp.active
            sn = steps + 1
            if direction > 0:
                q = q0 + W - 1 + sn
                sabs = off + s0 + W - 1 + sn
                inb = (q < qlen) & (sabs < bound)
            else:
                q = q0 - sn
                sabs = off + s0 - sn
                inb = (q >= 0) & (sabs >= bound)
            stopped |= act & ~inb
            with warp.where(inb):
                inner = warp.active
                code = warp.load(s.db_codes, np.where(inner, sabs, 0)).astype(np.int64)
                sc = self._score(warp, np.where(inner, q, 0), code)
                warp.alu(3)
                cur = np.where(inner, cur + sc, cur)
                steps = np.where(inner, sn, steps)
                improved = inner & (cur > best)
                best = np.where(improved, cur, best)
                best_steps = np.where(improved, steps, best_steps)
                stopped |= inner & (best - cur > self.x_drop)
        gain = np.where(best > 0, best, 0)
        return gain, np.where(best > 0, best_steps, 0)


def run_coarse(
    session: DeviceSession,
    x_drop: int,
    word_length: int,
    two_hit_window: int,
    work_queue: bool,
    buffered_output: bool,
    kernel_name: str,
    registers_per_thread: int | None = None,
) -> tuple[ExtensionArray, KernelProfile]:
    """Launch the coarse kernel and decode its extension output."""
    mem = session.ctx.memory
    db = session.db
    kernel = CoarseBlastpKernel(
        session,
        x_drop,
        word_length,
        two_hit_window,
        work_queue,
        buffered_output,
        registers_per_thread,
    )
    kernel.name = kernel_name
    grid = kernel.grid_blocks(session.ctx)
    total_threads = grid * kernel.block_threads
    ndiag = session.query_length + int(db.lengths.max()) + 1
    session.ctx.params["ndiag"] = ndiag

    rings = _alloc_unique(mem, "lasthit_rings", total_threads * ndiag, np.int64)
    rings.data[:] = -1  # every slot 0xFFFF = empty
    reach = _alloc_unique(mem, "ext_reach", total_threads * ndiag, np.int32)
    reach.data[:] = -1
    # Worst case one extension per hit; size generously from the word count.
    cap = max(1024, int(db.codes.size))
    _alloc_unique(mem, "ext_out_a", cap)
    _alloc_unique(mem, "ext_out_b", cap)
    _alloc_unique(mem, "ext_count", 1)
    if work_queue:
        q = _alloc_unique(mem, "work_queue", 1)
        q.data[0] = 0

    profile = launch(kernel, session.ctx, grid_blocks=grid)

    count = int(mem.buffers["ext_count"].data[0])
    a = mem.buffers["ext_out_a"].data[:count]
    b = mem.buffers["ext_out_b"].data[:count]
    raw = ExtensionOutput(
        seq_id=a >> 32,
        query_start=(a & 0xFFFF) - (((a >> 16) & 0xFFFF) - session.query_length),
        query_end=np.zeros(count, dtype=np.int64),
        subject_start=a & 0xFFFF,
        subject_end=b >> 32,
        score=(b & 0xFFFFFFFF) - SCORE_BIAS,
    )
    raw.query_end = raw.query_start + (raw.subject_end - raw.subject_start)
    extensions = raw.to_extension_array()
    profile.extra["num_extensions"] = len(extensions)
    profile.extra["d2h_bytes"] = len(extensions) * 16
    return extensions, profile
