"""Baseline implementations the paper compares against.

* :mod:`~repro.baselines.smith_waterman` — optimal local alignment, the
  accuracy oracle BLAST approximates;
* :mod:`~repro.baselines.fsa_blast` — the sequential CPU reference
  (FSA-BLAST), also the output oracle for every other implementation;
* :mod:`~repro.baselines.ncbi_blast` — the multithreaded CPU model
  (NCBI BLAST with pthreads);
* :mod:`~repro.baselines.coarse_kernel` — the shared coarse-grained
  one-thread-per-sequence GPU kernel;
* :mod:`~repro.baselines.cuda_blastp` / :mod:`~repro.baselines.gpu_blastp`
  — the two published coarse-grained GPU BLASTP systems built on it.
"""

from repro.baselines.cuda_blastp import CudaBlastp
from repro.baselines.fsa_blast import FsaBlast, FsaBlastTiming
from repro.baselines.gpu_blastp import GpuBlastp
from repro.baselines.ncbi_blast import NcbiBlast
from repro.baselines.smith_waterman import smith_waterman_align, smith_waterman_score, sw_search_scores

__all__ = [
    "CudaBlastp",
    "FsaBlast",
    "FsaBlastTiming",
    "GpuBlastp",
    "NcbiBlast",
    "smith_waterman_align",
    "smith_waterman_score",
    "sw_search_scores",
]
