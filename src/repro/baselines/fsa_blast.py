"""FSA-BLAST: the sequential CPU baseline (and output oracle).

Functionally this *is* the reference pipeline — FSA-BLAST defines what
every other implementation must output. The wrapper adds the timing story:
per-phase times from the CPU cost model priced over the search's actual
work counts (DESIGN.md §2's substitution for wall-clock on the paper's
i5-2400).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.pipeline import BlastpPipeline, PhaseCounts
from repro.core.results import SearchResult
from repro.core.statistics import SearchParams
from repro.cublastp.pipeline import host_other_ms
from repro.engine.compiled import CompiledQuery, compile_query
from repro.io.database import SequenceDatabase
from repro.perfmodel.calibration import CostConstants, DEFAULT_COSTS
from repro.perfmodel.cpu_cost import (
    critical_phase_ms,
    gapped_work_items,
    thread_makespan_ms,
    traceback_work_items,
    ungapped_cells,
)


@dataclass
class FsaBlastTiming:
    """Per-phase modelled times of a CPU BLASTP run."""

    critical_ms: float  # hit detection + ungapped extension
    gapped_ms: float
    traceback_ms: float
    other_ms: float
    threads: int

    @property
    def overall_ms(self) -> float:
        return self.critical_ms + self.gapped_ms + self.traceback_ms + self.other_ms

    def breakdown(self) -> dict[str, float]:
        """Fig. 11-style stage map."""
        return {
            "hit_detection_and_ungapped": self.critical_ms,
            "gapped_extension": self.gapped_ms,
            "alignment_with_traceback": self.traceback_ms,
            "other": self.other_ms,
        }


class FsaBlast:
    """Sequential CPU BLASTP (FSA-BLAST).

    Parameters mirror :class:`~repro.cublastp.search.CuBlastp`; ``search``
    returns the canonical result, ``search_with_timing`` adds the model.
    Satisfies the :class:`~repro.engine.protocol.Engine` protocol
    (``compile`` / ``run`` / ``run_with_report``); ``run_with_report``'s
    report is the :class:`FsaBlastTiming`.
    """

    threads = 1
    costs: CostConstants = DEFAULT_COSTS
    name = "FSA-BLAST"

    def __init__(
        self,
        query: "str | np.ndarray | CompiledQuery | None" = None,
        params: SearchParams | None = None,
    ) -> None:
        self.pipe = BlastpPipeline(query, params)

    @property
    def params(self) -> SearchParams:
        return self.pipe.params

    # -- engine protocol ---------------------------------------------------

    def compile(self, query: str | np.ndarray) -> CompiledQuery:
        """Compile ``query`` under this engine's parameters."""
        return compile_query(query, self.pipe.params)

    def _bind(self, compiled: CompiledQuery) -> "FsaBlast":
        """This engine (subclass settings included) bound to a compiled query."""
        if self.pipe.compiled is compiled:
            return self
        clone = type(self).__new__(type(self))
        clone.__dict__.update(self.__dict__)
        clone.pipe = BlastpPipeline(compiled)
        return clone

    def run(
        self,
        compiled: CompiledQuery,
        db: SequenceDatabase,
        query_id: str | None = None,
    ) -> SearchResult:
        """Search ``db`` with an already-compiled query."""
        return self._bind(compiled).search(db)

    def run_with_report(
        self,
        compiled: CompiledQuery,
        db: SequenceDatabase,
        query_id: str | None = None,
    ) -> tuple[SearchResult, FsaBlastTiming]:
        """Like :meth:`run`, with the per-phase cost model as the report."""
        result, timing, _ = self._bind(compiled).search_with_timing(db)
        return result, timing

    # -- per-query API -----------------------------------------------------

    def search(self, db: SequenceDatabase) -> SearchResult:
        return self.pipe.search(db)

    def search_with_timing(self, db: SequenceDatabase) -> tuple[SearchResult, FsaBlastTiming, PhaseCounts]:
        """Search and attach the per-phase cost model."""
        pipe = self.pipe
        cutoffs = pipe.cutoffs(db)
        db_hits = pipe.phase_hit_detection(db)
        extensions, num_seeds = pipe.phase_ungapped(db_hits, db, cutoffs)
        gapped, num_triggers = pipe.phase_gapped(extensions, db, cutoffs)
        alignments = pipe.phase_traceback(gapped, db, cutoffs)

        num_words = int(
            np.maximum(db.lengths - pipe.params.word_length + 1, 0).sum()
        )
        cells = ungapped_cells(extensions, cutoffs.x_drop_ungapped)
        critical = critical_phase_ms(
            num_words, len(db_hits), cells, self.costs, threads=self.threads
        )
        gapped_ms = thread_makespan_ms(
            gapped_work_items(gapped, self.costs), self.threads, self.costs
        )
        reported = [g for g in gapped if g.score >= cutoffs.report_cutoff]
        traceback_ms = thread_makespan_ms(
            traceback_work_items(reported, self.costs), self.threads, self.costs
        )
        timing = FsaBlastTiming(
            critical_ms=critical,
            gapped_ms=gapped_ms,
            traceback_ms=traceback_ms,
            other_ms=host_other_ms(db, pipe.query_length),
            threads=self.threads,
        )
        counts = PhaseCounts(
            num_hits=len(db_hits),
            num_seeds=num_seeds,
            num_ungapped_extensions=len(extensions),
            num_gapped_triggers=num_triggers,
            num_gapped_extensions=len(gapped),
            num_traceback=len(gapped),
            num_reported=len(alignments),
        )
        result = SearchResult(
            query_length=pipe.query_length,
            db_sequences=len(db),
            db_residues=int(db.codes.size),
            alignments=alignments,
            num_hits=counts.num_hits,
            num_seeds=num_seeds,
            num_ungapped_extensions=len(extensions),
            num_gapped_extensions=len(gapped),
            num_reported=len(alignments),
        )
        return result, timing, counts
