"""CUDA-BLASTP (Liu et al., TCBB 2011) — coarse-grained GPU baseline.

One thread per subject sequence, database pre-sorted by length descending
(their load-balancing measure), extensions appended through a global
atomic cursor. Gapped extension and traceback run host-side at one thread
(CUDA-BLASTP ported gapped extension to the GPU with a modified DP, but
reported its gains as modest; the shared CPU model keeps the comparison's
output-equality intact, as DESIGN.md notes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.coarse_kernel import run_coarse
from repro.core.pipeline import BlastpPipeline
from repro.core.results import SearchResult
from repro.core.statistics import SearchParams
from repro.cublastp.config import CuBlastpConfig
from repro.cublastp.cpu_phases import run_cpu_phases
from repro.cublastp.pipeline import host_other_ms
from repro.cublastp.session import DeviceSession
from repro.engine.compiled import CompiledQuery, compile_query
from repro.gpusim.device import DeviceSpec, K20C
from repro.gpusim.profiler import KernelProfile
from repro.gpusim.transfer import TransferModel
from repro.io.database import SequenceDatabase
from repro.seeding.dfa import QueryDFA


@dataclass
class CoarseReport:
    """Timing story of a coarse-grained GPU baseline run."""

    kernel: KernelProfile
    h2d_ms: float
    d2h_ms: float
    gapped_ms: float
    traceback_ms: float
    other_ms: float

    @property
    def critical_ms(self) -> float:
        """The fused hit-detection + ungapped-extension kernel time."""
        return self.kernel.elapsed_ms()

    @property
    def overall_ms(self) -> float:
        return (
            self.critical_ms
            + self.h2d_ms
            + self.d2h_ms
            + self.gapped_ms
            + self.traceback_ms
            + self.other_ms
        )


class CudaBlastp:
    """Coarse-grained baseline searcher (CUDA-BLASTP flavour)."""

    name = "CUDA-BLASTP"
    work_queue = False
    buffered_output = False
    sort_by_length = True
    cpu_threads = 1
    #: Route this baseline's global traffic through the optional L2 model.
    use_l2 = False
    #: Register footprint of the fused kernel. CUDA-BLASTP's inlined
    #: extension state pushes it to the 63-register ceiling; GPU-BLASTP's
    #: restructured kernel (queue + buffered output) reported a leaner
    #: footprint, buying it occupancy.
    kernel_registers = 63

    def __init__(
        self,
        query: "str | np.ndarray | CompiledQuery | None" = None,
        params: SearchParams | None = None,
        device: DeviceSpec = K20C,
    ) -> None:
        self.pipe = BlastpPipeline(query, params)
        self.device = device

    @property
    def params(self) -> SearchParams:
        return self.pipe.params

    @property
    def dfa(self) -> QueryDFA:
        """The compiled query's DFA (built lazily, shared across engines)."""
        return self.pipe.compiled.dfa

    # -- engine protocol ---------------------------------------------------

    def compile(self, query: "str | np.ndarray") -> CompiledQuery:
        """Compile ``query`` under this engine's parameters."""
        return compile_query(query, self.pipe.params)

    def _bind(self, compiled: CompiledQuery) -> "CudaBlastp":
        if self.pipe.compiled is compiled:
            return self
        clone = type(self).__new__(type(self))
        clone.__dict__.update(self.__dict__)
        clone.pipe = BlastpPipeline(compiled)
        return clone

    def run(
        self,
        compiled: CompiledQuery,
        db: SequenceDatabase,
        query_id: str | None = None,
    ) -> SearchResult:
        """Search ``db`` with an already-compiled query."""
        return self._bind(compiled).search(db)

    def run_with_report(
        self,
        compiled: CompiledQuery,
        db: SequenceDatabase,
        query_id: str | None = None,
    ) -> "tuple[SearchResult, CoarseReport]":
        """Like :meth:`run`, with the coarse-kernel timing report."""
        return self._bind(compiled).search_with_report(db)

    def _prepare_db(self, db: SequenceDatabase) -> tuple[SequenceDatabase, np.ndarray]:
        """Length-sort the database, returning the old->new id map."""
        if not self.sort_by_length:
            return db, np.arange(len(db), dtype=np.int64)
        order = np.argsort(db.lengths, kind="stable")[::-1]
        return db.subset(order), order

    def search_with_report(self, db: SequenceDatabase) -> tuple[SearchResult, CoarseReport]:
        """Search ``db``; results are in the original database's ids."""
        pipe = self.pipe
        cutoffs = pipe.cutoffs(db)
        run_db, order = self._prepare_db(db)
        session = DeviceSession(
            pipe.query_codes,
            self.dfa,
            run_db,
            CuBlastpConfig(use_readonly_cache=False, use_l2=self.use_l2),
            pipe.params.matrix,
            self.device,
        )
        extensions, profile = run_coarse(
            session,
            cutoffs.x_drop_ungapped,
            pipe.params.word_length,
            pipe.params.two_hit_window,
            self.work_queue,
            self.buffered_output,
            kernel_name=self.name,
            registers_per_thread=self.kernel_registers,
        )
        # Map sequence ids back to the caller's database ordering — one
        # columnar gather — then restore the full-field sorted order the
        # record path produced (sorted() over the dataclass tuple).
        extensions = extensions.with_seq_ids(
            np.asarray(order, dtype=np.int64)[extensions.seq_id]
        ).sorted_full()
        cpu = run_cpu_phases(pipe, extensions, db, cutoffs, threads=self.cpu_threads)
        transfer = TransferModel()
        report = CoarseReport(
            kernel=profile,
            h2d_ms=transfer.h2d_ms(session.h2d_bytes),
            d2h_ms=transfer.d2h_ms(int(profile.extra.get("d2h_bytes", 0))),
            gapped_ms=cpu.gapped_ms,
            traceback_ms=cpu.traceback_ms,
            other_ms=host_other_ms(db, pipe.query_length),
        )
        result = SearchResult(
            query_length=pipe.query_length,
            db_sequences=len(db),
            db_residues=int(db.codes.size),
            alignments=cpu.alignments,
            num_hits=0,  # the fused kernel never materialises raw hits
            num_seeds=0,
            num_ungapped_extensions=len(extensions),
            num_gapped_extensions=len(cpu.gapped_extensions),
            num_reported=len(cpu.alignments),
        )
        return result, report

    def search(self, db: SequenceDatabase) -> SearchResult:
        result, _ = self.search_with_report(db)
        return result
