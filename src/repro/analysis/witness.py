"""Runtime lock witness: the dynamic half of the concurrency contracts.

The static analyzers in :mod:`repro.analysis.concurrency` prove properties
of the *source*: declared guards are held at write sites, the static
lock-acquisition graph is acyclic. This module validates the same model
against *executions* — the sanitizer-vs-racecheck pairing the gpusim
layer already has, applied to host threading:

* :class:`WitnessLock` / :class:`WitnessCondition` are drop-in
  replacements for ``threading.Lock`` / ``threading.Condition`` that
  report every acquisition to a process-global
  :class:`LockWitnessRegistry`;
* the registry maintains the **observed** per-thread acquisition-order
  graph (lock A held while acquiring lock B ⇒ edge A→B) and records a
  violation the moment an edge closes a cycle — a real interleaving away
  from deadlock, caught even when the test run happened not to deadlock;
* :meth:`LockWitnessRegistry.note_blocking` records a violation when a
  thread enters a blocking call (``Future.result()``, a process-pool
  dispatch) while holding any witnessed lock — the serving layer's
  latency/deadlock contract is that locks bound *state updates*, never
  *work*.

Instrumentation is off by default and costs one branch per construction:
:func:`new_lock` / :func:`new_condition` return plain ``threading``
primitives unless ``REPRO_LOCK_WITNESS=1`` is set (CI's serve smoke job)
or a test enabled the registry first (the ``lock_witness`` fixture). The
serve and pool layers construct every lock through these factories, so
one environment variable turns the whole serving stack into its own
deadlock detector.

The witness deliberately does not raise at the violation site — a cycle
observed inside a request thread must not turn into a 500 for that one
request. Violations accumulate in the registry; the test fixtures call
:meth:`LockWitnessRegistry.assert_clean` at teardown, which is where the
failure is reported with every witnessed path.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from types import TracebackType
from typing import Any, Callable, Iterator, Protocol, TypeVar

__all__ = [
    "ENV_FLAG",
    "LockWitnessRegistry",
    "MutexLike",
    "WitnessCondition",
    "WitnessLock",
    "WitnessViolation",
    "get_witness_registry",
    "new_condition",
    "new_lock",
    "thread_shared",
    "witness_env_enabled",
    "wrap_blocking",
    "wrap_blocking_iter",
]

#: Environment variable that turns the witness on for a whole process.
ENV_FLAG = "REPRO_LOCK_WITNESS"

_T = TypeVar("_T")


def witness_env_enabled() -> bool:
    """Whether ``REPRO_LOCK_WITNESS`` asks for instrumented locks."""
    return os.environ.get(ENV_FLAG, "") not in ("", "0")


class MutexLike(Protocol):
    """What :func:`new_lock` returns: a plain or witnessed mutex.

    Structural, so it covers ``threading.Lock()`` instances (whose
    concrete class lives in ``_thread``) and :class:`WitnessLock` alike.
    """

    def acquire(self, blocking: bool = ..., timeout: float = ...) -> bool: ...

    def release(self) -> None: ...

    def locked(self) -> bool: ...

    def __enter__(self) -> bool: ...

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc_value: BaseException | None,
        traceback: TracebackType | None,
    ) -> None: ...


def thread_shared(cls: type[_T]) -> type[_T]:
    """Marker: instances of ``cls`` are shared across threads.

    Purely declarative at runtime. The static ``thread-ownership`` rule
    uses the decorator to know which classes carry concurrency contracts
    (``# guarded-by:`` / ``# owned-by:`` / ``# runs-on:`` annotations —
    see docs/ANALYSIS.md "Concurrency contracts").
    """
    setattr(cls, "__thread_shared__", True)
    return cls


@dataclass(frozen=True)
class WitnessViolation:
    """One observed violation of the locking discipline."""

    #: ``"lock-order-cycle"`` | ``"blocking-call-under-lock"``.
    kind: str
    detail: str
    thread: str

    def __str__(self) -> str:
        return f"[{self.kind}] {self.detail} (thread {self.thread})"


def _reach(
    edges: dict[str, dict[str, str]], start: str, target: str
) -> list[str] | None:
    """Path ``start .. target`` through ``edges``, or None."""
    stack: list[tuple[str, list[str]]] = [(start, [start])]
    seen: set[str] = set()
    while stack:
        node, path = stack.pop()
        if node == target:
            return path
        if node in seen:
            continue
        seen.add(node)
        for nxt in edges.get(node, ()):
            if nxt not in seen:
                stack.append((nxt, path + [nxt]))
    return None


class _HeldState(threading.local):
    """Per-thread held-lock bookkeeping (acquisition order + depths)."""

    def __init__(self) -> None:
        #: Witness names in acquisition order, re-entrant re-acquisitions
        #: collapsed (a name appears at most once).
        self.order: list[str] = []
        #: name -> re-entrant depth.
        self.depth: dict[str, int] = {}


class LockWitnessRegistry:
    """Process-global observed lock-order graph and violation log.

    Thread-safe. The registry's own mutex is a plain ``threading.Lock``
    — the witness must never witness itself.
    """

    def __init__(self, *, enabled: bool | None = None) -> None:
        self._mutex = threading.Lock()
        self._held = _HeldState()
        self.enabled = witness_env_enabled() if enabled is None else enabled
        #: observed edge src -> dst -> human-readable first-witness site.
        self._edges: dict[str, dict[str, str]] = {}
        self._violations: list[WitnessViolation] = []
        self._acquisitions = 0

    # -- lifecycle -----------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop the observed graph and violations (keeps enablement)."""
        with self._mutex:
            self._edges.clear()
            self._violations.clear()
            self._acquisitions = 0

    # -- recording -------------------------------------------------------

    def acquired(self, name: str) -> None:
        """A witnessed lock was acquired by the current thread."""
        if not self.enabled:
            return
        held = self._held
        depth = held.depth.get(name, 0)
        held.depth[name] = depth + 1
        if depth:
            return  # re-entrant: no new ordering information
        prior = list(held.order)
        held.order.append(name)
        with self._mutex:
            self._acquisitions += 1
            if not prior:
                self._edges.setdefault(name, {})
                return
            site = (
                f"{threading.current_thread().name}: holding "
                f"[{', '.join(prior)}] while acquiring {name}"
            )
            for prev in prior:
                self._edges.setdefault(prev, {}).setdefault(name, site)
            self._edges.setdefault(name, {})
            cycle = self._cycle_through(name, set(prior))
            if cycle is not None:
                self._violations.append(
                    WitnessViolation(
                        kind="lock-order-cycle",
                        detail=(
                            "observed acquisition orders form a cycle: "
                            + " -> ".join(cycle + [cycle[0]])
                            + f"; latest edge at {site}"
                        ),
                        thread=threading.current_thread().name,
                    )
                )

    def released(self, name: str) -> None:
        """A witnessed lock was released by the current thread."""
        if not self.enabled:
            return
        held = self._held
        depth = held.depth.get(name, 0)
        if depth <= 1:
            held.depth.pop(name, None)
            if name in held.order:
                held.order.remove(name)
        else:
            held.depth[name] = depth - 1

    def note_blocking(self, label: str) -> None:
        """Record a blocking call entered while witnessed locks are held."""
        if not self.enabled:
            return
        prior = list(self._held.order)
        if not prior:
            return
        with self._mutex:
            self._violations.append(
                WitnessViolation(
                    kind="blocking-call-under-lock",
                    detail=(
                        f"blocking call {label} entered while holding "
                        f"[{', '.join(prior)}]"
                    ),
                    thread=threading.current_thread().name,
                )
            )

    def held_by_current_thread(self) -> tuple[str, ...]:
        """Witnessed locks the calling thread holds, in acquisition order."""
        return tuple(self._held.order)

    # -- the graph -------------------------------------------------------

    def _cycle_through(self, start: str, targets: set[str]) -> list[str] | None:
        # Caller holds self._mutex. DFS from `start`: reaching any lock
        # currently held *before* start closes a held-while-acquiring cycle.
        stack: list[tuple[str, list[str]]] = [(start, [start])]
        seen: set[str] = set()
        while stack:
            node, path = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            for nxt in self._edges.get(node, ()):
                if nxt in targets:
                    return path + [nxt]
                if nxt not in seen:
                    stack.append((nxt, path + [nxt]))
        return None

    def cycles(self) -> list[list[str]]:
        """Every distinct cycle in the observed order graph."""
        with self._mutex:
            edges = {src: dict(dsts) for src, dsts in self._edges.items()}
        found: list[list[str]] = []
        seen_keys: set[tuple[str, ...]] = set()
        for src, dsts in edges.items():
            for dst in dsts:
                # A cycle exists through edge src->dst iff dst reaches src.
                path = _reach(edges, dst, src)
                if path is None:
                    continue
                cycle = [src] + path[:-1]  # path ends at src: list it once
                k = min(
                    tuple(cycle[i:] + cycle[:i]) for i in range(len(cycle))
                )
                if k not in seen_keys:
                    seen_keys.add(k)
                    found.append(cycle)
        return found

    @property
    def violations(self) -> list[WitnessViolation]:
        with self._mutex:
            return list(self._violations)

    def snapshot(self) -> dict[str, Any]:
        """One JSON-able view: edges, cycles, violations, counters."""
        with self._mutex:
            edges = [
                {"src": src, "dst": dst, "site": site}
                for src, dsts in sorted(self._edges.items())
                for dst, site in sorted(dsts.items())
            ]
            violations = [
                {"kind": v.kind, "detail": v.detail, "thread": v.thread}
                for v in self._violations
            ]
            acquisitions = self._acquisitions
        return {
            "enabled": self.enabled,
            "acquisitions": acquisitions,
            "edges": edges,
            "cycles": [" -> ".join(c + [c[0]]) for c in self.cycles()],
            "violations": violations,
        }

    def assert_clean(self) -> None:
        """Raise ``AssertionError`` listing every violation (if any)."""
        violations = self.violations
        if violations:
            raise AssertionError(
                f"lock witness recorded {len(violations)} violation(s):\n"
                + "\n".join(f"  {v}" for v in violations)
            )


_REGISTRY = LockWitnessRegistry()


def get_witness_registry() -> LockWitnessRegistry:
    """The process-global witness registry."""
    return _REGISTRY


class WitnessLock:
    """``threading.Lock`` drop-in reporting to a witness registry."""

    def __init__(
        self, name: str, registry: LockWitnessRegistry | None = None
    ) -> None:
        self.name = name
        self._registry = registry if registry is not None else _REGISTRY
        self._lock = threading.Lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        ok = self._lock.acquire(blocking, timeout)
        if ok:
            self._registry.acquired(self.name)
        return ok

    def release(self) -> None:
        self._registry.released(self.name)
        self._lock.release()

    def locked(self) -> bool:
        return self._lock.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"WitnessLock({self.name!r})"


class WitnessCondition(threading.Condition):
    """``threading.Condition`` drop-in reporting to a witness registry.

    The underlying lock is the Condition default (an ``RLock``); the
    registry collapses re-entrant re-acquisitions, so ``wait()`` —
    which fully releases and later reacquires — is modelled as exactly
    that. A ``wait()`` entered while *other* witnessed locks are held is
    recorded as a blocking-call violation: sleeping on a condition while
    holding an unrelated lock stalls every thread behind that lock.
    """

    def __init__(
        self, name: str, registry: LockWitnessRegistry | None = None
    ) -> None:
        super().__init__()
        self.name = name
        self._registry = registry if registry is not None else _REGISTRY

    def acquire(self, *args: Any) -> bool:
        ok: bool = super().acquire(*args)
        if ok:
            self._registry.acquired(self.name)
        return ok

    def release(self) -> None:
        self._registry.released(self.name)
        super().release()

    def __enter__(self) -> bool:
        ret: bool = super().__enter__()
        self._registry.acquired(self.name)
        return ret

    def __exit__(self, *exc_info: Any) -> Any:
        self._registry.released(self.name)
        return super().__exit__(*exc_info)

    def wait(self, timeout: float | None = None) -> bool:
        self._registry.released(self.name)
        others = self._registry.held_by_current_thread()
        if others:
            self._registry.note_blocking(f"{self.name}.wait()")
        try:
            return super().wait(timeout)
        finally:
            self._registry.acquired(self.name)


def new_lock(name: str) -> MutexLike:
    """A mutex for ``name``: witnessed when the witness is on, plain otherwise.

    The one concurrency-layer entry point for lock construction — using
    it is what makes a class's locking observable to the witness without
    any cost (beyond this branch) in production.
    """
    if _REGISTRY.enabled:
        return WitnessLock(name)
    return threading.Lock()


def new_condition(name: str) -> threading.Condition:
    """A condition variable for ``name`` (witnessed when the witness is on)."""
    if _REGISTRY.enabled:
        return WitnessCondition(name)
    return threading.Condition()


def wrap_blocking(
    func: Callable[..., _T],
    label: str,
    registry: LockWitnessRegistry | None = None,
) -> Callable[..., _T]:
    """Wrap a blocking callable to report held-lock violations on entry.

    The test fixtures patch ``Future.result`` (and friends) with this so
    a lock held across a blocking wait is caught at the call, not as a
    mystery hang.
    """
    reg = registry if registry is not None else _REGISTRY

    def wrapper(*args: Any, **kwargs: Any) -> _T:
        reg.note_blocking(label)
        return func(*args, **kwargs)

    return wrapper


def wrap_blocking_iter(
    func: Callable[..., Iterator[_T]],
    label: str,
    registry: LockWitnessRegistry | None = None,
) -> Callable[..., Iterator[_T]]:
    """Like :func:`wrap_blocking` for generators (e.g. pool dispatch).

    A generator blocks at each resume, not at the call — the check runs
    before every ``next()`` so a lock taken mid-iteration is still seen.
    """
    reg = registry if registry is not None else _REGISTRY

    def wrapper(*args: Any, **kwargs: Any) -> Iterator[_T]:
        it = func(*args, **kwargs)
        while True:
            reg.note_blocking(label)
            try:
                item = next(it)
            except StopIteration:
                return
            yield item

    return wrapper
