"""thread-ownership: annotated shared state obeys its declared contract.

Two contract families, both declared next to the state they protect
(grammar in :mod:`repro.analysis.concurrency.contracts`):

* ``# guarded-by: self._lock`` — every write to the attribute (plain or
  augmented assignment, ``del``, subscript store, or a mutating method
  call such as ``.append``) must execute inside a ``with self._lock:``
  scope. The check is interprocedural within the class: a private
  helper may write nakedly when every intra-class call site holds the
  lock — the requirement floats up the call graph and only becomes a
  finding when it escapes through a public entry point or a helper no
  one provably locks for.
* ``# owned-by: dispatcher`` — the attribute belongs to one logical
  thread. Any access from a method not declared (or inferred, for
  private helpers whose callers agree) to run on that role is a
  finding: this is the "dispatcher-owned state reached from a public
  entry point" race.

Reads of *guarded* attributes are deliberately not flagged — the tree
uses plenty of benign racy reads (progress counters in ``__repr__``)
and flagging them would bury the writes that actually corrupt state.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.analysis.base import Finding, ModuleSource
from repro.analysis.concurrency.contracts import (
    ClassContracts,
    collect_contracts,
    with_lock_names,
)

__all__ = ["ThreadOwnershipRule"]

#: Methods that run before the instance is visible to other threads.
_CONSTRUCTION_METHODS = frozenset({"__init__", "__post_init__", "__new__"})

#: Method names that mutate their receiver — a call
#: ``self.<guarded>.append(...)`` is a write to the guarded attribute.
_MUTATOR_NAMES = frozenset(
    {
        "append", "appendleft", "add", "clear", "discard", "extend",
        "extendleft", "insert", "pop", "popleft", "popitem", "put",
        "remove", "rotate", "setdefault", "sort", "update",
    }
)


def _is_public(name: str) -> bool:
    """Entry points other threads may call: public names and dunders."""
    if name in _CONSTRUCTION_METHODS:
        return False
    if name.startswith("__") and name.endswith("__"):
        return True
    return not name.startswith("_")


def _root_self_attr(expr: ast.AST) -> str | None:
    """Root attribute of a ``self.a``/``self.a.b``/``self.a[k]`` chain."""
    cur = expr
    last_attr: str | None = None
    while True:
        if isinstance(cur, ast.Attribute):
            last_attr = cur.attr
            cur = cur.value
        elif isinstance(cur, ast.Subscript):
            cur = cur.value
        else:
            break
    if isinstance(cur, ast.Name) and cur.id == "self" and last_attr:
        return last_attr
    return None


@dataclass(frozen=True)
class _Write:
    """One write to a guarded attribute observed outside its lock."""

    method: str
    attr: str
    lock: str
    node: ast.AST


@dataclass(frozen=True)
class _CallSite:
    """An intra-class call ``self.<callee>(...)`` with the held-lock set."""

    caller: str
    callee: str
    held: frozenset[str]


@dataclass(frozen=True)
class _OwnedAccess:
    """Any touch of an ``# owned-by:`` attribute."""

    method: str
    attr: str
    role: str
    node: ast.AST


class _MethodScanner:
    """Walk one method body tracking the set of held lock expressions."""

    def __init__(self, cls: ClassContracts, method_name: str) -> None:
        self.cls = cls
        self.method = method_name
        self.naked_writes: list[_Write] = []
        self.calls: list[_CallSite] = []
        self.owned: list[_OwnedAccess] = []

    def scan(self, node: "ast.FunctionDef | ast.AsyncFunctionDef") -> None:
        for stmt in node.body:
            self._visit(stmt, frozenset())

    # -- dispatch --------------------------------------------------------

    def _visit(self, node: ast.AST, held: frozenset[str]) -> None:
        if isinstance(node, ast.With):
            for item in node.items:
                self._visit(item.context_expr, held)
            inner = held | frozenset(with_lock_names(node))
            for stmt in node.body:
                self._visit(stmt, inner)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # nested defs run later, on an unknown thread: skip
        self._record(node, held)
        for child in ast.iter_child_nodes(node):
            self._visit(child, held)

    def _record(self, node: ast.AST, held: frozenset[str]) -> None:
        if isinstance(node, ast.Assign):
            for tgt in node.targets:
                self._record_write(tgt, node, held)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            if not (isinstance(node, ast.AnnAssign) and node.value is None):
                self._record_write(node.target, node, held)
        elif isinstance(node, ast.Delete):
            for tgt in node.targets:
                self._record_write(tgt, node, held)
        elif isinstance(node, ast.Call):
            self._record_call(node, held)
        elif isinstance(node, ast.Attribute):
            attr = _root_self_attr(node)
            if attr is not None and attr in self.cls.owned:
                self.owned.append(
                    _OwnedAccess(
                        method=self.method,
                        attr=attr,
                        role=self.cls.owned[attr],
                        node=node,
                    )
                )

    def _record_write(
        self, target: ast.AST, node: ast.AST, held: frozenset[str]
    ) -> None:
        attr = _root_self_attr(target)
        if attr is None:
            return
        lock = self.cls.guarded.get(attr)
        if lock is not None and lock not in held:
            self.naked_writes.append(
                _Write(method=self.method, attr=attr, lock=lock, node=node)
            )

    def _record_call(self, node: ast.Call, held: frozenset[str]) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        # self.helper(...) — an intra-class edge for the fixpoint.
        if (
            isinstance(func.value, ast.Name)
            and func.value.id == "self"
            and func.attr in self.cls.methods
        ):
            self.calls.append(
                _CallSite(caller=self.method, callee=func.attr, held=held)
            )
            return
        # self.<guarded>.append(...) — a mutating call is a write.
        if func.attr in _MUTATOR_NAMES:
            attr = _root_self_attr(func.value)
            if attr is None:
                return
            lock = self.cls.guarded.get(attr)
            if lock is not None and lock not in held:
                self.naked_writes.append(
                    _Write(
                        method=self.method, attr=attr, lock=lock, node=node
                    )
                )


def _role_of_methods(
    cls: ClassContracts, calls: list[_CallSite]
) -> dict[str, str]:
    """Declared roles plus roles inferred for private helpers.

    A private, unannotated method whose intra-class callers all resolve
    to one role runs on that role too. Public methods never inherit —
    they are entry points, callable from anywhere.
    """
    roles: dict[str, str] = dict(cls.runs_on)
    callers: dict[str, set[str]] = {}
    for site in calls:
        callers.setdefault(site.callee, set()).add(site.caller)
    changed = True
    while changed:
        changed = False
        for name in cls.methods:
            if name in roles or _is_public(name):
                continue
            direct = callers.get(name)
            if not direct:
                continue
            got = {roles.get(c) for c in direct}
            if None in got or len(got) != 1:
                continue
            (role,) = got
            assert role is not None
            roles[name] = role
            changed = True
    return roles


class ThreadOwnershipRule:
    """Annotation-driven shared-state discipline, per module."""

    name = "thread-ownership"
    description = (
        "guarded-by writes must hold the lock; owned-by state stays on "
        "its declared thread"
    )

    def check(self, module: ModuleSource) -> Iterable[Finding]:
        contracts = collect_contracts(module)
        for cls in contracts.classes:
            if not cls.has_contracts:
                continue
            yield from self._check_class(module, contracts.module_locks, cls)

    # -- per-class -------------------------------------------------------

    def _check_class(
        self,
        module: ModuleSource,
        module_locks: dict[str, object],
        cls: ClassContracts,
    ) -> Iterator[Finding]:
        # Contract sanity: every guard names a lock we can see.
        for attr, guard in sorted(cls.guarded.items()):
            known = (
                guard.startswith("self.")
                and guard[len("self."):] in cls.locks
            ) or guard in module_locks
            if not known:
                anchor = ast.copy_location(
                    ast.Pass(), cls.node
                )
                anchor.lineno = cls.contract_lines.get(attr, cls.node.lineno)
                anchor.col_offset = 0
                yield module.finding(
                    self.name,
                    anchor,
                    f"'{cls.name}.{attr}' is guarded-by {guard}, but no "
                    f"lock named {guard} is constructed in this class or "
                    "module",
                )

        scanners: dict[str, _MethodScanner] = {}
        all_calls: list[_CallSite] = []
        for name, meth in cls.methods.items():
            scanner = _MethodScanner(cls, name)
            scanner.scan(meth)
            scanners[name] = scanner
            all_calls.extend(scanner.calls)

        yield from self._check_guarded(module, cls, scanners, all_calls)
        yield from self._check_owned(module, cls, scanners, all_calls)

    def _check_guarded(
        self,
        module: ModuleSource,
        cls: ClassContracts,
        scanners: dict[str, _MethodScanner],
        all_calls: list[_CallSite],
    ) -> Iterator[Finding]:
        # R[m] = set of origin writes whose lock is not yet proven held
        # on every path reaching them. Requirements float up the
        # intra-class call graph; ones that reach a public entry (or a
        # helper nobody calls) are real findings.
        requirements: dict[str, set[_Write]] = {
            name: set(s.naked_writes)
            for name, s in scanners.items()
            if name not in _CONSTRUCTION_METHODS and s.naked_writes
        }
        callers: dict[str, list[_CallSite]] = {}
        for site in all_calls:
            if site.caller in _CONSTRUCTION_METHODS:
                continue
            callers.setdefault(site.callee, []).append(site)

        changed = True
        while changed:
            changed = False
            for callee, reqs in list(requirements.items()):
                if _is_public(callee):
                    continue  # surfaces as a finding below, stop floating
                for site in callers.get(callee, ()):
                    missing = {w for w in reqs if w.lock not in site.held}
                    bucket = requirements.setdefault(site.caller, set())
                    before = len(bucket)
                    bucket.update(missing)
                    if len(bucket) != before:
                        changed = True

        reported: set[tuple[int, int, str]] = set()
        for method, reqs in sorted(requirements.items()):
            public = _is_public(method)
            uncalled = not callers.get(method)
            if not (public or uncalled):
                continue  # every caller holds the lock: proven
            for write in reqs:
                key = (
                    getattr(write.node, "lineno", 0),
                    getattr(write.node, "col_offset", 0),
                    write.lock,
                )
                if key in reported:
                    continue
                reported.add(key)
                if write.method == method:
                    via = ""
                elif public:
                    via = f" (reachable from public entry '{method}')"
                else:
                    via = f" (via '{method}', which no caller locks for)"
                yield module.finding(
                    self.name,
                    write.node,
                    f"write to '{cls.name}.{write.attr}' (guarded-by "
                    f"{write.lock}) outside a 'with {write.lock}' "
                    f"scope{via}",
                )

    def _check_owned(
        self,
        module: ModuleSource,
        cls: ClassContracts,
        scanners: dict[str, _MethodScanner],
        all_calls: list[_CallSite],
    ) -> Iterator[Finding]:
        if not cls.owned:
            return
        roles = _role_of_methods(cls, all_calls)
        for name, scanner in sorted(scanners.items()):
            if name in _CONSTRUCTION_METHODS:
                continue
            method_role = roles.get(name)
            seen: set[tuple[int, int, str]] = set()
            for access in scanner.owned:
                if method_role == access.role:
                    continue
                key = (
                    getattr(access.node, "lineno", 0),
                    getattr(access.node, "col_offset", 0),
                    access.attr,
                )
                if key in seen:
                    continue
                seen.add(key)
                where = (
                    f"method '{name}' runs on '{method_role}'"
                    if method_role is not None
                    else f"public entry '{name}'"
                    if _is_public(name)
                    else f"helper '{name}' with no inferable role"
                )
                yield module.finding(
                    self.name,
                    access.node,
                    f"'{cls.name}.{access.attr}' is owned-by "
                    f"'{access.role}' but {where} touches it; annotate "
                    "the method with '# runs-on:' or marshal through the "
                    "owner",
                )
