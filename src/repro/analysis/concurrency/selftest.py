"""--selftest: inject known concurrency bugs, require the tools to bite.

Mirrors ``repro verify --selftest`` (engine bug injection) and the
gpusim hazard-injection tests: a checker that has never been seen to
fail is not evidence of anything. Three injections:

1. a **lock-order inversion** (A→B in one method, B→A in another) that
   the static :class:`LockOrderAnalyzer` must report as a cycle;
2. an **unguarded write** to a ``# guarded-by:`` attribute that the
   static :class:`ThreadOwnershipRule` must flag — including the
   interprocedural variant where the naked write hides in a private
   helper reached from an unlocked public entry;
3. the same inversion executed for real on instrumented locks, which
   the runtime :class:`~repro.analysis.witness.LockWitnessRegistry`
   must record as an observed cycle, plus a blocking call made under a
   held witness lock.

Exit 0 only when every injection is caught.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable

from repro.analysis.base import ModuleSource
from repro.analysis.concurrency.lockorder import LockOrderAnalyzer
from repro.analysis.concurrency.ownership import ThreadOwnershipRule
from repro.analysis.witness import LockWitnessRegistry, WitnessLock

__all__ = ["run_selftest"]

_INVERSION_SRC = '''\
import threading


class Inverted:
    """Acquires a->b on the forward path and b->a on the backward one."""

    def __init__(self):
        self._a = threading.Lock()
        self._b = threading.Lock()

    def forward(self):
        with self._a:
            with self._b:
                return 1

    def backward(self):
        with self._b:
            with self._a:
                return 2
'''

_UNGUARDED_SRC = '''\
import threading


class Stats:
    def __init__(self):
        self._lock = threading.Lock()
        self.hits = 0  # guarded-by: self._lock
        self.misses = 0  # guarded-by: self._lock

    def record_hit(self):
        self.hits += 1  # BUG: no lock

    def record_miss(self):
        self._bump_misses()  # BUG: public entry, lock never taken

    def _bump_misses(self):
        self.misses += 1
'''


def _check(label: str, ok: bool, detail: str, emit: Callable[[str], None]) -> bool:
    emit(f"{'PASS' if ok else 'FAIL'}  {label}: {detail}")
    return ok


def run_selftest(emit: Callable[[str], None] = print) -> int:
    """Run every injection; return 0 iff all were caught."""
    ok = True

    # 1. static lock-order inversion -----------------------------------
    inv = ModuleSource.parse(
        Path("selftest_inversion.py"), text=_INVERSION_SRC
    )
    findings, _edges = LockOrderAnalyzer().analyze([inv])
    cycles = [f for f in findings if "cycle" in f.message]
    ok &= _check(
        "lock-order inversion",
        bool(cycles),
        cycles[0].message if cycles else "injected A->B/B->A cycle missed",
        emit,
    )

    # 2. static unguarded writes ----------------------------------------
    ung = ModuleSource.parse(
        Path("selftest_unguarded.py"), text=_UNGUARDED_SRC
    )
    found = list(ThreadOwnershipRule().check(ung))
    direct = [f for f in found if "hits" in f.message]
    indirect = [f for f in found if "misses" in f.message]
    ok &= _check(
        "unguarded write (direct)",
        bool(direct),
        direct[0].message if direct else "naked self.hits += 1 missed",
        emit,
    )
    ok &= _check(
        "unguarded write (via helper)",
        bool(indirect),
        indirect[0].message
        if indirect
        else "helper write reached from unlocked public entry missed",
        emit,
    )

    # 3. runtime witness ------------------------------------------------
    registry = LockWitnessRegistry(enabled=True)
    lock_a = WitnessLock("selftest.a", registry)
    lock_b = WitnessLock("selftest.b", registry)
    with lock_a:
        with lock_b:
            pass
    with lock_b:
        with lock_a:
            pass
    runtime_cycles = [
        v for v in registry.violations if v.kind == "lock-order-cycle"
    ]
    ok &= _check(
        "runtime witness inversion",
        bool(runtime_cycles),
        runtime_cycles[0].detail
        if runtime_cycles
        else "executed inversion not recorded",
        emit,
    )

    registry.reset()
    with lock_a:
        registry.note_blocking("selftest.Future.result()")
    blocking = [
        v
        for v in registry.violations
        if v.kind == "blocking-call-under-lock"
    ]
    ok &= _check(
        "blocking call under lock",
        bool(blocking),
        blocking[0].detail
        if blocking
        else "blocking call under a held lock not recorded",
        emit,
    )

    emit(
        "concurrency selftest: "
        + ("all injections caught" if ok else "INJECTION MISSED")
    )
    return 0 if ok else 1
