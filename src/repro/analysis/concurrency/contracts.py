"""Parsing of concurrency-contract annotations out of a module's AST.

The grammar is three trailing comments plus one decorator (documented in
docs/ANALYSIS.md "Concurrency contracts"):

``# guarded-by: self._lock``
    On an attribute-initialising assignment (usually in ``__init__``):
    every *write* to the attribute must happen inside a
    ``with self._lock:`` scope — directly, or in a private helper whose
    intra-class callers all hold it.

``# owned-by: dispatcher``
    On an attribute-initialising assignment: the attribute belongs to
    one logical thread ("role"). Reads *and* writes are only legal in
    methods running on that role.

``# runs-on: dispatcher``
    On a ``def`` line: declares the role the method executes on. Private
    helpers inherit the role of their callers when unannotated.

``@thread_shared``
    Class decorator marking instances as cross-thread shared; it is how
    a class opts into checking when it carries no other annotations yet.

Everything here is syntactic — contracts are read off source lines, not
evaluated — so the parser is shared verbatim by the ownership rule (per
module) and the lock-order analyzer (whole corpus).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field

from repro.analysis.base import ModuleSource, dotted_name

__all__ = [
    "ClassContracts",
    "LockInfo",
    "ModuleContracts",
    "collect_contracts",
    "with_lock_names",
]

_GUARDED_BY = re.compile(r"#\s*guarded-by:\s*([\w.\[\]]+)")
_OWNED_BY = re.compile(r"#\s*owned-by:\s*([\w-]+)")
_RUNS_ON = re.compile(r"#\s*runs-on:\s*([\w-]+)")

#: Constructor callables whose result is a lock (last dotted component).
_LOCK_CTORS = frozenset(
    {"Lock", "RLock", "Condition", "new_lock", "new_condition",
     "WitnessLock", "WitnessCondition"}
)
#: Lock constructors that produce re-entrant primitives; a static
#: self-edge through one of these is legal, through a plain Lock it is
#: a guaranteed self-deadlock.
_REENTRANT_CTORS = frozenset(
    {"RLock", "Condition", "new_condition", "WitnessCondition"}
)


@dataclass(frozen=True)
class LockInfo:
    """One discovered lock: ``owner.attr`` plus its construction site."""

    #: Qualified id: ``ClassName.attr`` or ``module_stem.NAME``.
    qualname: str
    #: Attribute / global name the lock is stored under.
    attr: str
    lineno: int
    reentrant: bool


@dataclass
class ClassContracts:
    """Contracts and structure collected from one ``class`` statement."""

    name: str
    node: ast.ClassDef
    thread_shared: bool = False
    #: attr -> guard expression text, e.g. ``"self._lock"``.
    guarded: dict[str, str] = field(default_factory=dict)
    #: attr -> owning role, e.g. ``"dispatcher"``.
    owned: dict[str, str] = field(default_factory=dict)
    #: attr -> line the contract comment sits on (for diagnostics).
    contract_lines: dict[str, int] = field(default_factory=dict)
    #: method name -> declared role (``# runs-on:`` on the def line).
    runs_on: dict[str, str] = field(default_factory=dict)
    #: lock attr -> LockInfo for locks constructed on ``self``.
    locks: dict[str, LockInfo] = field(default_factory=dict)
    #: attr -> class name, from ``self.x = SomeClass(...)`` in __init__.
    attr_types: dict[str, str] = field(default_factory=dict)
    #: method name -> its def node (functions directly in the class body).
    methods: dict[str, "ast.FunctionDef | ast.AsyncFunctionDef"] = field(
        default_factory=dict
    )

    @property
    def has_contracts(self) -> bool:
        return bool(
            self.thread_shared or self.guarded or self.owned or self.runs_on
        )


@dataclass
class ModuleContracts:
    """Every contract-bearing structure found in one module."""

    module: ModuleSource
    classes: list[ClassContracts] = field(default_factory=list)
    #: module-level locks: global name -> LockInfo.
    module_locks: dict[str, LockInfo] = field(default_factory=dict)
    #: module-level functions by name.
    functions: dict[str, "ast.FunctionDef | ast.AsyncFunctionDef"] = field(
        default_factory=dict
    )


def _lock_ctor(node: ast.AST) -> tuple[bool, bool]:
    """``(is_lock_ctor, reentrant)`` for the RHS of an assignment."""
    if not isinstance(node, ast.Call):
        return False, False
    name = dotted_name(node.func)
    if name is None:
        return False, False
    last = name.rsplit(".", 1)[-1]
    return last in _LOCK_CTORS, last in _REENTRANT_CTORS


def _self_attr_target(node: ast.AST) -> str | None:
    """``attr`` when ``node`` is exactly ``self.attr``, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def with_lock_names(stmt: ast.With) -> list[str]:
    """Dotted names of a with-statement's context expressions.

    ``with self._lock:`` -> ``["self._lock"]``. Non-name expressions
    (``with open(p) as f:``) yield nothing — they are not lock guards.
    """
    out: list[str] = []
    for item in stmt.items:
        name = dotted_name(item.context_expr)
        if name is not None:
            out.append(name)
    return out


def _scan_method_decls(
    cls: ClassContracts, module: ModuleSource, class_name: str
) -> None:
    """Harvest contracts from attribute assignments inside methods."""
    for meth in cls.methods.values():
        for node in ast.walk(meth):
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(node, ast.Assign):
                targets, value = list(node.targets), node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            else:
                continue
            for tgt in targets:
                attr = _self_attr_target(tgt)
                if attr is None:
                    continue
                line = module.line_text(node.lineno)
                m = _GUARDED_BY.search(line)
                if m:
                    cls.guarded[attr] = m.group(1)
                    cls.contract_lines[attr] = node.lineno
                m = _OWNED_BY.search(line)
                if m:
                    cls.owned[attr] = m.group(1)
                    cls.contract_lines[attr] = node.lineno
                is_lock, reentrant = _lock_ctor(value)
                if is_lock and attr not in cls.locks:
                    cls.locks[attr] = LockInfo(
                        qualname=f"{class_name}.{attr}",
                        attr=attr,
                        lineno=node.lineno,
                        reentrant=reentrant,
                    )
                if (
                    meth.name in ("__init__", "__post_init__")
                    and isinstance(value, ast.Call)
                    and attr not in cls.attr_types
                ):
                    ctor = dotted_name(value.func)
                    if ctor is not None:
                        cls.attr_types[attr] = ctor.rsplit(".", 1)[-1]


def _collect_class(node: ast.ClassDef, module: ModuleSource) -> ClassContracts:
    cls = ClassContracts(name=node.name, node=node)
    for deco in node.decorator_list:
        name = dotted_name(deco)
        if name is not None and name.rsplit(".", 1)[-1] == "thread_shared":
            cls.thread_shared = True
    for item in node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            cls.methods[item.name] = item
            m = _RUNS_ON.search(module.line_text(item.lineno))
            if m:
                cls.runs_on[item.name] = m.group(1)
        elif isinstance(item, ast.AnnAssign) and isinstance(
            item.target, ast.Name
        ):
            # Class-body (e.g. dataclass field) declarations may carry
            # contracts too; guards reference them via ``self.<name>``.
            line = module.line_text(item.lineno)
            m = _GUARDED_BY.search(line)
            if m:
                cls.guarded[item.target.id] = m.group(1)
                cls.contract_lines[item.target.id] = item.lineno
            m = _OWNED_BY.search(line)
            if m:
                cls.owned[item.target.id] = m.group(1)
                cls.contract_lines[item.target.id] = item.lineno
    _scan_method_decls(cls, module, node.name)
    return cls


def collect_contracts(module: ModuleSource) -> ModuleContracts:
    """Parse every class's contracts plus module-level locks/functions."""
    out = ModuleContracts(module=module)
    stem = module.path.stem
    for node in module.tree.body:
        if isinstance(node, ast.ClassDef):
            out.classes.append(_collect_class(node, module))
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            out.functions[node.name] = node
        elif isinstance(node, ast.Assign):
            is_lock, reentrant = _lock_ctor(node.value)
            if not is_lock:
                continue
            for tgt in node.targets:
                if isinstance(tgt, ast.Name):
                    out.module_locks[tgt.id] = LockInfo(
                        qualname=f"{stem}.{tgt.id}",
                        attr=tgt.id,
                        lineno=node.lineno,
                        reentrant=reentrant,
                    )
    return out
