"""Concurrency contract checkers (static half of the lock witness).

Two analyzers built on the reprolint ModuleSource framework:

* :class:`~repro.analysis.concurrency.ownership.ThreadOwnershipRule` —
  per-module, annotation-driven: writes to ``# guarded-by:`` attributes
  must happen under the named lock (interprocedurally within the class),
  and ``# owned-by:`` state must never be touched off its owner role.
* :class:`~repro.analysis.concurrency.lockorder.LockOrderAnalyzer` —
  whole-corpus: builds the static lock-acquisition graph (nested
  ``with``-lock scopes plus calls into acquiring methods) and fails on
  cycles, printing the witness path.

``repro lint --concurrency`` runs both; ``--selftest`` injects a real
lock inversion and an unguarded write and requires both caught. The
runtime counterpart lives in :mod:`repro.analysis.witness`.
"""

from __future__ import annotations

from repro.analysis.concurrency.contracts import (
    ClassContracts,
    LockInfo,
    collect_contracts,
)
from repro.analysis.concurrency.lockorder import LockOrderAnalyzer, run_lock_order
from repro.analysis.concurrency.ownership import ThreadOwnershipRule
from repro.analysis.concurrency.selftest import run_selftest

__all__ = [
    "ClassContracts",
    "LockInfo",
    "LockOrderAnalyzer",
    "ThreadOwnershipRule",
    "collect_contracts",
    "run_lock_order",
    "run_selftest",
]
