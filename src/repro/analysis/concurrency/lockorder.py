"""lock-order: the static lock-acquisition graph must be acyclic.

The analyzer runs over a whole corpus at once (default: ``serve/``,
``engine/``, ``io/store.py`` — wherever ``repro lint --concurrency`` is
pointed), because deadlocks are a cross-module property:

1. **Lock discovery.** ``self.X = threading.Lock()/RLock()/Condition()``
   (or the witness factories ``new_lock``/``new_condition``) names lock
   ``Class.X``; a module-level assignment names ``module.X``.
2. **Acquisition scan.** Every function body is walked with the ordered
   list of statically held locks: a nested ``with`` lock scope adds
   edges *held → acquired*; a call made under a lock adds edges from
   every held lock to everything the callee (transitively) acquires.
   Calls resolve through ``self`` methods, attribute types recorded in
   ``__init__`` (``self.cache = ResultCache(...)``), module/global
   function names, and — for untyped receivers — a conservative
   name-match fallback restricted to distinctive method names.
3. **Cycle check.** Any cycle in the resulting graph is a potential
   deadlock; the finding prints the full witness path, one source site
   per edge. A self-edge through a non-reentrant lock (plain ``Lock``)
   is reported as a guaranteed self-deadlock; re-entrant primitives
   (``RLock``, ``Condition``) may self-nest.

The over-approximation is deliberate: a spurious edge can only make the
checker stricter, and the per-line ``# reprolint: disable=lock-order``
escape hatch (applied at the cycle's anchor site) keeps false positives
cheap to triage.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Sequence

from repro.analysis.base import (
    Finding,
    ModuleSource,
    dotted_name,
    iter_python_files,
)
from repro.analysis.concurrency.contracts import (
    ClassContracts,
    ModuleContracts,
    collect_contracts,
    with_lock_names,
)

__all__ = ["LockOrderAnalyzer", "run_lock_order"]

#: Method names too generic for name-match call resolution: shared with
#: builtin containers / file objects, so an untyped ``x.get(...)`` must
#: not resolve to ``ResultCache.get``.
_AMBIGUOUS_METHODS = frozenset(
    {
        "acquire", "add", "append", "cancel", "clear", "close", "copy",
        "count", "done", "extend", "flush", "get", "index", "insert",
        "items", "join", "keys", "locked", "notify", "notify_all",
        "open", "pop", "put", "read", "release", "remove", "result",
        "run", "send", "sort", "start", "update", "values", "wait",
        "write",
    }
)

#: Maximum classes a fallback name-match may resolve to before we treat
#: the name as too common to mean anything.
_MAX_FALLBACK_CANDIDATES = 3


@dataclass(frozen=True)
class EdgeSite:
    """Where one ordering edge was observed in source."""

    path: str
    line: int
    function: str
    via: str  # "" for direct nesting, "call to X" otherwise

    def describe(self) -> str:
        where = f"{self.path}:{self.line} in {self.function}"
        return f"{where} ({self.via})" if self.via else where


@dataclass
class _FunctionInfo:
    """One function in the corpus with its acquisition behaviour."""

    qualname: str
    node: "ast.FunctionDef | ast.AsyncFunctionDef"
    module: ModuleSource
    cls: ClassContracts | None
    contracts: ModuleContracts
    #: lock ids acquired directly via ``with`` in this body.
    direct: set[str] = field(default_factory=set)
    #: nested-with edges: (src, dst, site-node).
    nest_edges: list[tuple[str, str, ast.AST]] = field(default_factory=list)
    #: calls: (held lock ids at the call, call node).
    calls: list[tuple[tuple[str, ...], ast.Call]] = field(
        default_factory=list
    )


class _Corpus:
    """Cross-module name registries for call resolution."""

    def __init__(self) -> None:
        self.functions: dict[str, _FunctionInfo] = {}
        self.class_methods: dict[str, list[str]] = {}  # method -> [Class]
        self.classes: dict[str, ClassContracts] = {}
        self.global_functions: dict[str, list[str]] = {}  # name -> quals
        self.reentrant: dict[str, bool] = {}  # lock id -> re-entrant?


def _resolve_with_lock(
    name: str, cls: ClassContracts | None, contracts: ModuleContracts
) -> str | None:
    """Lock id for a with-item dotted name, if it names a known lock."""
    if name.startswith("self.") and cls is not None:
        attr = name[len("self."):]
        info = cls.locks.get(attr)
        return info.qualname if info is not None else None
    info = contracts.module_locks.get(name)
    return info.qualname if info is not None else None


class _AcqScanner:
    """Populate one :class:`_FunctionInfo` from its body."""

    def __init__(self, fn: _FunctionInfo) -> None:
        self.fn = fn

    def scan(self) -> None:
        for stmt in self.fn.node.body:
            self._visit(stmt, ())

    def _visit(self, node: ast.AST, held: tuple[str, ...]) -> None:
        if isinstance(node, ast.With):
            for item in node.items:
                self._visit(item.context_expr, held)
            acquired: list[str] = []
            for name in with_lock_names(node):
                lock = _resolve_with_lock(name, self.fn.cls, self.fn.contracts)
                if lock is None:
                    continue
                self.fn.direct.add(lock)
                for prev in held + tuple(acquired):
                    self.fn.nest_edges.append((prev, lock, node))
                acquired.append(lock)
            inner = held + tuple(acquired)
            for stmt in node.body:
                self._visit(stmt, inner)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # nested defs execute elsewhere
        if isinstance(node, ast.Call):
            self.fn.calls.append((held, node))
        for child in ast.iter_child_nodes(node):
            self._visit(child, held)


def _receiver_type(
    expr: ast.expr, cls: ClassContracts | None
) -> str | None:
    """Static type of a call receiver, when ``__init__`` recorded it."""
    if cls is None:
        return None
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
    ):
        return cls.attr_types.get(expr.attr)
    return None


def _resolve_call(
    call: ast.Call, fn: _FunctionInfo, corpus: _Corpus
) -> list[str]:
    """Qualnames of corpus functions this call may enter."""
    func = call.func
    # len(x) dispatches to __len__ — the one builtin worth modelling,
    # because container facades (Coalescer) lock their size query.
    if (
        isinstance(func, ast.Name)
        and func.id == "len"
        and len(call.args) == 1
    ):
        rtype = _receiver_type(call.args[0], fn.cls)
        if rtype is not None and f"{rtype}.__len__" in corpus.functions:
            return [f"{rtype}.__len__"]
        return []  # len() of an untyped receiver is almost always a list
    if isinstance(func, ast.Name):
        # Module-level / imported function, or a constructor.
        if f"{func.id}.__init__" in corpus.functions:
            return [f"{func.id}.__init__"]
        return list(corpus.global_functions.get(func.id, ()))
    if not isinstance(func, ast.Attribute):
        return []
    method = func.attr
    if isinstance(func.value, ast.Name) and func.value.id == "self":
        if fn.cls is not None and method in fn.cls.methods:
            return [f"{fn.cls.name}.{method}"]
        return []  # self.<callable-attr>(...): receiver type unknown
    rtype = _receiver_type(func.value, fn.cls)
    if rtype is not None:
        qual = f"{rtype}.{method}"
        return [qual] if qual in corpus.functions else []
    return _fallback_by_name(method, corpus)


def _fallback_by_name(method: str, corpus: _Corpus) -> list[str]:
    if method in _AMBIGUOUS_METHODS or method.startswith("__"):
        return []
    owners = corpus.class_methods.get(method, [])
    if not owners or len(owners) > _MAX_FALLBACK_CANDIDATES:
        return []
    return [f"{owner}.{method}" for owner in owners]


def _canonical(cycle: list[str]) -> tuple[str, ...]:
    rotations = [tuple(cycle[i:] + cycle[:i]) for i in range(len(cycle))]
    return min(rotations)


class LockOrderAnalyzer:
    """Whole-corpus static deadlock check (see module docstring)."""

    name = "lock-order"
    description = (
        "the static lock-acquisition graph (nested with scopes + calls "
        "into acquiring methods) must be acyclic"
    )

    def analyze(
        self, modules: Sequence[ModuleSource]
    ) -> tuple[list[Finding], list[dict[str, object]]]:
        """Returns ``(findings, edge records for --json)``."""
        corpus = self._build_corpus(modules)
        acq = self._transitive_acquires(corpus)
        edges = self._build_edges(corpus, acq)
        findings = list(self._self_deadlocks(corpus, edges))
        findings.extend(self._cycles(edges))
        edge_records: list[dict[str, object]] = [
            {
                "src": src,
                "dst": dst,
                "path": site.path,
                "line": site.line,
                "function": site.function,
                "via": site.via,
            }
            for (src, dst), site in sorted(edges.items())
        ]
        return findings, edge_records

    # -- corpus ----------------------------------------------------------

    def _build_corpus(self, modules: Sequence[ModuleSource]) -> _Corpus:
        corpus = _Corpus()
        for module in modules:
            contracts = collect_contracts(module)
            for info in contracts.module_locks.values():
                corpus.reentrant[info.qualname] = info.reentrant
            for name, node in contracts.functions.items():
                qual = f"{module.path.stem}.{name}"
                corpus.functions[qual] = _FunctionInfo(
                    qualname=qual,
                    node=node,
                    module=module,
                    cls=None,
                    contracts=contracts,
                )
                corpus.global_functions.setdefault(name, []).append(qual)
            for cls in contracts.classes:
                corpus.classes[cls.name] = cls
                for info in cls.locks.values():
                    corpus.reentrant[info.qualname] = info.reentrant
                for mname, mnode in cls.methods.items():
                    qual = f"{cls.name}.{mname}"
                    corpus.functions[qual] = _FunctionInfo(
                        qualname=qual,
                        node=mnode,
                        module=module,
                        cls=cls,
                        contracts=contracts,
                    )
                    corpus.class_methods.setdefault(mname, []).append(
                        cls.name
                    )
        for fn in corpus.functions.values():
            _AcqScanner(fn).scan()
        return corpus

    def _transitive_acquires(self, corpus: _Corpus) -> dict[str, set[str]]:
        """ACQ*: locks a call into each function may end up acquiring."""
        acq = {q: set(fn.direct) for q, fn in corpus.functions.items()}
        resolved: dict[str, list[str]] = {
            q: [
                callee
                for _, call in fn.calls
                for callee in _resolve_call(call, fn, corpus)
            ]
            for q, fn in corpus.functions.items()
        }
        changed = True
        while changed:
            changed = False
            for qual, callees in resolved.items():
                bucket = acq[qual]
                before = len(bucket)
                for callee in callees:
                    bucket.update(acq.get(callee, ()))
                if len(bucket) != before:
                    changed = True
        return acq

    def _build_edges(
        self, corpus: _Corpus, acq: dict[str, set[str]]
    ) -> dict[tuple[str, str], EdgeSite]:
        edges: dict[tuple[str, str], EdgeSite] = {}

        def add(src: str, dst: str, site: EdgeSite) -> None:
            edges.setdefault((src, dst), site)

        for qual, fn in corpus.functions.items():
            rel = str(fn.module.path)
            for src, dst, node in fn.nest_edges:
                if src == dst:
                    # Re-entry is a self-deadlock question (decided by
                    # reentrancy in _self_deadlocks), not an ordering edge.
                    continue
                add(
                    src,
                    dst,
                    EdgeSite(
                        path=rel,
                        line=getattr(node, "lineno", 1),
                        function=qual,
                        via="",
                    ),
                )
            for held, call in fn.calls:
                if not held:
                    continue
                for callee in _resolve_call(call, fn, corpus):
                    inner = acq.get(callee, set())
                    for src in held:
                        for dst in inner:
                            if src == dst:
                                continue  # re-entry handled separately
                            add(
                                src,
                                dst,
                                EdgeSite(
                                    path=rel,
                                    line=getattr(call, "lineno", 1),
                                    function=qual,
                                    via=f"call to {callee}",
                                ),
                            )
        return edges

    # -- findings ----------------------------------------------------------

    def _self_deadlocks(
        self, corpus: _Corpus, edges: dict[tuple[str, str], EdgeSite]
    ) -> Iterator[Finding]:
        # Direct nesting of the same non-reentrant lock: with self._l:
        # with self._l: — a guaranteed deadlock, not just an ordering
        # hazard. (Call-mediated re-entry is intentionally *not* flagged
        # statically: helper methods legitimately document
        # caller-holds-the-lock, which the thread-ownership rule proves.)
        for qual, fn in corpus.functions.items():
            for src, dst, node in fn.nest_edges:
                if src == dst and not corpus.reentrant.get(src, True):
                    yield fn.module.finding(
                        self.name,
                        node,
                        f"non-reentrant lock {src} is re-acquired while "
                        "already held (self-deadlock)",
                    )

    def _cycles(
        self, edges: dict[tuple[str, str], EdgeSite]
    ) -> Iterator[Finding]:
        graph: dict[str, list[str]] = {}
        for src, dst in edges:
            graph.setdefault(src, []).append(dst)
            graph.setdefault(dst, [])
        seen_cycles: set[tuple[str, ...]] = set()
        for (src, dst), site in sorted(edges.items()):
            path = self._reach(graph, dst, src)
            if path is None:
                continue
            # `path` runs dst .. src inclusive; drop the trailing src so
            # the cycle lists each lock once (the modulo below closes it).
            cycle = [src] + path[:-1]
            key = _canonical(cycle)
            if key in seen_cycles:
                continue
            seen_cycles.add(key)
            hops: list[str] = []
            for i, node_name in enumerate(cycle):
                nxt = cycle[(i + 1) % len(cycle)]
                hop_site = edges.get((node_name, nxt))
                where = f" [{hop_site.describe()}]" if hop_site else ""
                hops.append(f"{node_name} -> {nxt}{where}")
            yield Finding(
                rule=self.name,
                path=site.path,
                line=site.line,
                col=0,
                message=(
                    "lock-order cycle (potential deadlock): "
                    + "; ".join(hops)
                ),
            )

    @staticmethod
    def _reach(
        graph: dict[str, list[str]], start: str, target: str
    ) -> list[str] | None:
        stack: list[tuple[str, list[str]]] = [(start, [start])]
        seen: set[str] = set()
        while stack:
            node, path = stack.pop()
            if node == target:
                return path
            if node in seen:
                continue
            seen.add(node)
            for nxt in sorted(graph.get(node, ())):
                if nxt not in seen:
                    stack.append((nxt, path + [nxt]))
        return None


def run_lock_order(
    paths: Sequence[Path | str],
) -> tuple[list[Finding], list[dict[str, object]], list[str]]:
    """Parse ``paths`` and run the lock-order analyzer over the corpus.

    Returns ``(findings, edge records, parse errors)``. Suppressions
    (``# reprolint: disable=lock-order`` on a cycle's anchor line,
    ``disable-file`` in the header) are honoured the same way
    :func:`repro.analysis.base.check_module` does for per-module rules.
    """
    modules: list[ModuleSource] = []
    by_path: dict[str, ModuleSource] = {}
    errors: list[str] = []
    for path in iter_python_files(paths):
        try:
            module = ModuleSource.parse(path)
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            errors.append(f"{path}: {exc}")
            continue
        modules.append(module)
        by_path[str(path)] = module
    analyzer = LockOrderAnalyzer()
    findings, edges = analyzer.analyze(modules)
    kept: list[Finding] = []
    for finding in findings:
        module = by_path.get(finding.path)
        if module is not None:
            if analyzer.name in module.file_suppressed_rules():
                continue
            if analyzer.name in module.suppressed_rules_for_line(
                finding.line
            ):
                continue
        kept.append(finding)
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return kept, edges, errors
