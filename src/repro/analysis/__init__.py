"""Static analysis for the repro tree: the ``reprolint`` framework.

The type system cannot see the invariants this package enforces —
seed-pinned randomness, deterministic kernels, picklable worker specs,
phase-event pairing. Each is written as an AST :class:`Rule` over the
source tree, run continuously by ``repro lint`` (and the test suite), so
the properties hold by construction instead of by review.

See docs/ANALYSIS.md for the rule catalogue and how to add a rule.
"""

from repro.analysis.base import (
    Finding,
    ModuleSource,
    Rule,
    iter_python_files,
    run_lint,
)
from repro.analysis.rules import ALL_RULES, rule_by_name

__all__ = [
    "ALL_RULES",
    "Finding",
    "ModuleSource",
    "Rule",
    "iter_python_files",
    "rule_by_name",
    "run_lint",
]
