"""no-unseeded-rng: every random draw must flow from an explicit seed.

Conformance failures replay from a recorded ``(family, seed)`` pair —
which only holds if no randomness anywhere in the tree comes from OS
entropy or hidden global state. Three AST patterns are outlawed:

* ``default_rng()`` called with no arguments (entropy-seeded);
* the legacy numpy global-state API — any call on ``np.random`` /
  ``numpy.random`` other than constructing an explicit generator
  (``default_rng(seed)``, ``Generator``, ``SeedSequence``, bit
  generators);
* the stdlib ``random`` module's global functions (both ``import
  random`` call sites and ``from random import shuffle``-style imports).

This replaces the PR 3 grep audit: operating on the AST, it cannot be
fooled by comments, strings, or line-wrapped calls, and it resolves
``import numpy.random as nr``-style aliases instead of pattern-matching
text.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.base import Finding, ModuleSource, dotted_name

#: np.random attributes that construct explicitly seeded machinery.
_ALLOWED_NP_RANDOM = frozenset(
    {"default_rng", "Generator", "SeedSequence", "BitGenerator", "PCG64",
     "PCG64DXSM", "Philox", "SFC64", "MT19937", "RandomState"}
)

#: Stdlib ``random`` global functions whose module-level use is unseeded.
_STDLIB_RANDOM_FNS = frozenset(
    {"random", "randint", "randrange", "choice", "choices", "shuffle",
     "sample", "uniform", "gauss", "seed", "getrandbits", "betavariate",
     "expovariate", "normalvariate", "triangular"}
)


class UnseededRngRule:
    name = "no-unseeded-rng"
    description = "all randomness must be constructed from an explicit seed"

    def check(self, module: ModuleSource) -> Iterable[Finding]:
        np_random_aliases, stdlib_aliases, findings = self._collect_imports(module)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            findings.extend(
                self._check_call(module, node, np_random_aliases, stdlib_aliases)
            )
        return findings

    def _collect_imports(
        self, module: ModuleSource
    ) -> tuple[set[str], set[str], list[Finding]]:
        """Names bound to ``numpy.random`` / stdlib ``random`` in this file."""
        np_random: set[str] = set()
        stdlib: set[str] = set()
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "numpy.random":
                        np_random.add(alias.asname or "numpy")
                        if alias.asname:
                            np_random.add(alias.asname)
                    elif alias.name == "random":
                        stdlib.add(alias.asname or "random")
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module == "numpy":
                    for alias in node.names:
                        if alias.name == "random":
                            np_random.add(alias.asname or "random")
                elif node.module == "random":
                    for alias in node.names:
                        if alias.name in _STDLIB_RANDOM_FNS:
                            findings.append(
                                module.finding(
                                    self.name,
                                    node,
                                    f"'from random import {alias.name}' pulls an "
                                    "unseeded global; use np.random.default_rng(seed)",
                                )
                            )
        return np_random, stdlib, findings

    def _check_call(
        self,
        module: ModuleSource,
        node: ast.Call,
        np_random_aliases: set[str],
        stdlib_aliases: set[str],
    ) -> Iterator[Finding]:
        name = dotted_name(node.func)
        if name is None:
            return
        parts = name.split(".")
        # Entropy-seeded generator: any default_rng() with no arguments.
        if parts[-1] == "default_rng" and not node.args and not node.keywords:
            yield module.finding(
                self.name,
                node,
                "default_rng() without a seed draws from OS entropy — "
                "thread an explicit seed through",
            )
            return
        # Legacy numpy global-state API: np.random.<fn>(...).
        if len(parts) >= 3 and parts[-3] in ("np", "numpy") and parts[-2] == "random":
            if parts[-1] not in _ALLOWED_NP_RANDOM:
                yield module.finding(
                    self.name,
                    node,
                    f"legacy global-state call np.random.{parts[-1]}() cannot "
                    "be pinned per-case; use np.random.default_rng(seed)",
                )
            return
        # import numpy.random as nr; nr.rand(...)
        if len(parts) == 2 and parts[0] in np_random_aliases and parts[0] != "numpy":
            if parts[-1] not in _ALLOWED_NP_RANDOM:
                yield module.finding(
                    self.name,
                    node,
                    f"legacy global-state call {name}() cannot be pinned "
                    "per-case; use np.random.default_rng(seed)",
                )
            return
        # Stdlib random module globals (only when this file imports random).
        if (
            len(parts) == 2
            and parts[0] in stdlib_aliases
            and parts[1] in _STDLIB_RANDOM_FNS
        ):
            yield module.finding(
                self.name,
                node,
                f"stdlib {name}() uses the hidden global stream; use a "
                "seeded np.random.default_rng",
            )
