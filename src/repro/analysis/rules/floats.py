"""no-float-equality-on-scores: scores and E-values never compare with ==.

Alignment scores, bit scores, and E-values travel through log-space
arithmetic (Karlin-Altschul statistics), so two mathematically equal
pipelines can produce values differing in the last ulp. Exact equality
on such quantities is a latent flaky test / divergence bug; the
canonical comparison layer (:mod:`repro.verify.canonical`) exists
precisely to compare them ``repr``-exactly instead.

Flagged:

* ``==`` / ``!=`` with a fractional float literal operand (``x == 0.5``,
  ``e == 1e-3``) — whole-number literals like ``1.0`` pass, as equality
  against an assigned sentinel is exact;
* ``==`` / ``!=`` where an operand's source names a statistical quantity
  (``evalue``, ``e_value``, ``bit_score``, ``pvalue``) — these are float
  valued by construction, whatever they compare against.

``math.isclose``/``np.isclose``, ordering comparisons, and the canonical
repr comparison are the sanctioned alternatives; ``== pytest.approx(...)``
is exempt (approx's ``__eq__`` *is* a tolerance comparison).
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.base import Finding, ModuleSource

_SCOREY_NAMES = ("evalue", "e_value", "bit_score", "pvalue", "p_value")


def _is_fractional_float(node: ast.expr) -> bool:
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        node = node.operand
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, float)
        and node.value != int(node.value)
    )


def _is_tolerance_comparator(node: ast.expr) -> bool:
    # ``x == pytest.approx(y)`` IS the sanctioned tolerance comparison:
    # approx objects implement __eq__ with a relative tolerance.
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    attr = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else ""
    )
    return attr in ("approx", "isclose", "allclose")


def _names_statistic(node: ast.expr) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id.lower() in _SCOREY_NAMES:
            return True
        if isinstance(sub, ast.Attribute) and sub.attr.lower() in _SCOREY_NAMES:
            return True
    return False


class FloatEqualityRule:
    name = "no-float-equality-on-scores"
    description = "no ==/!= on float score/E-value quantities"

    def check(self, module: ModuleSource) -> Iterable[Finding]:
        out: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_tolerance_comparator(left) or _is_tolerance_comparator(right):
                    continue
                if _is_fractional_float(left) or _is_fractional_float(right):
                    out.append(
                        module.finding(
                            self.name,
                            node,
                            "exact equality against a fractional float literal; "
                            "compare with a tolerance or canonical repr",
                        )
                    )
                elif _names_statistic(left) or _names_statistic(right):
                    out.append(
                        module.finding(
                            self.name,
                            node,
                            "exact equality on a float statistic (E-value/bit "
                            "score); compare with a tolerance or canonical repr",
                        )
                    )
        return out
