"""shared-alloc-in-setup-only: shared memory is reserved at block setup.

The launcher measures a block's shared footprint by dry-running
``setup_block`` once and derives occupancy — the Fig. 14 mechanism —
from that measurement. A ``SharedMemory.alloc`` reached from
``run_warp`` allocates *after* occupancy is computed: the kernel pays
for less shared memory than it uses, silently corrupting every derived
number. The rule flags ``alloc``/``alloc_from`` calls on a
shared-memory receiver (a parameter annotated ``SharedMemory``, or the
conventional name ``shared``) in any function not named ``setup_block``
or ``setup_*`` (block-setup helpers like
:func:`~repro.cublastp.ext_common.setup_matrix_shared` stay legal).
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.base import Finding, ModuleSource, dotted_name

_ALLOC_METHODS = frozenset({"alloc", "alloc_from"})


def _shared_params(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Parameter names annotated ``SharedMemory`` (plus the conventional
    name ``shared`` regardless of annotation)."""
    names: set[str] = set()
    for arg in [*fn.args.posonlyargs, *fn.args.args, *fn.args.kwonlyargs]:
        if arg.arg == "shared":
            names.add(arg.arg)
        elif arg.annotation is not None:
            ann = dotted_name(arg.annotation)
            if ann is not None and ann.split(".")[-1] == "SharedMemory":
                names.add(arg.arg)
    return names


class SharedAllocRule:
    name = "shared-alloc-in-setup-only"
    description = "SharedMemory.alloc only in setup_block / setup_* helpers"

    def check(self, module: ModuleSource) -> Iterable[Finding]:
        out: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name == "setup_block" or node.name.startswith("setup"):
                continue
            shared = _shared_params(node)
            for sub in ast.walk(node):
                if not (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr in _ALLOC_METHODS
                ):
                    continue
                recv = sub.func.value
                is_shared = (
                    isinstance(recv, ast.Name) and recv.id in shared
                ) or (
                    # warp.shared.alloc(...) / self.shared.alloc(...)
                    isinstance(recv, ast.Attribute) and recv.attr == "shared"
                )
                if is_shared:
                    out.append(
                        module.finding(
                            self.name,
                            sub,
                            f"shared.{sub.func.attr}() outside block setup: "
                            "occupancy is computed from setup_block's "
                            "footprint, so late allocations are unpaid-for",
                        )
                    )
        return out
