"""no-bare-except-in-executor-paths: error isolation must not eat crashes.

The batch executor and process pool deliberately catch ``Exception`` per
query so one failure cannot abort a batch — that isolation is load
bearing and tested. A *bare* ``except:`` (or ``except BaseException:``
that doesn't re-raise) is the corrupted version of the same idiom: it
additionally swallows ``KeyboardInterrupt`` / ``SystemExit``, turning a
Ctrl-C during a 10k-query batch into a silent hang-then-requeue. Banned
tree-wide; the executor paths are where the temptation lives.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.base import Finding, ModuleSource


def _reraises(handler: ast.ExceptHandler) -> bool:
    for sub in ast.walk(handler):
        if isinstance(sub, ast.Raise):
            return True
    return False


class BareExceptRule:
    name = "no-bare-except"
    description = "no bare except / BaseException swallowing"

    def check(self, module: ModuleSource) -> Iterable[Finding]:
        out: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                out.append(
                    module.finding(
                        self.name,
                        node,
                        "bare 'except:' swallows KeyboardInterrupt/SystemExit; "
                        "catch Exception (isolation) or the specific error",
                    )
                )
            elif (
                isinstance(node.type, ast.Name)
                and node.type.id == "BaseException"
                and not _reraises(node)
            ):
                out.append(
                    module.finding(
                        self.name,
                        node,
                        "'except BaseException:' without re-raise swallows "
                        "interpreter shutdown; catch Exception instead",
                    )
                )
        return out
