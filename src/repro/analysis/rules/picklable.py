"""picklable-spec-fields: worker task specs must cross process boundaries.

:class:`~repro.engine.procpool.EngineSpec` and the worker task specs are
the *only* objects pickled to process-pool workers; a lambda or nested
function smuggled into a spec field fails at dispatch time with an
opaque ``PicklingError`` — on the first multiprocess run, which is
usually CI, not the author's laptop. The rule rejects, for every class
whose name ends in ``Spec``:

* lambda (or locally nested function) field defaults, including inside
  ``field(default=...)`` / ``field(default_factory=lambda: ...)``
  (``default_factory=list`` is fine — module-level callables pickle by
  reference);
* lambda arguments at ``SomethingSpec(...)`` construction sites;
* generator expressions at construction sites — a generator pickles
  never, and a spec field holding one (e.g. a lazily-built query batch
  handed to ``SweepBlockSpec``) dies on the first dispatch; materialise
  with ``tuple(...)``;
* field *annotations* that promise unpicklable values (``Callable``,
  ``Iterator``, ``Generator``, file objects, locks): the annotation is
  the spec's contract, and declaring an unpicklable type invites
  callers to break the boundary.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.base import Finding, ModuleSource, dotted_name

#: Annotation names that promise values pickle cannot move across the
#: process boundary (by reference or at all).
UNPICKLABLE_ANNOTATIONS = frozenset(
    {
        "Callable",
        "Iterator",
        "Generator",
        "AsyncGenerator",
        "Coroutine",
        "IO",
        "TextIO",
        "BinaryIO",
        "Lock",
        "RLock",
        "Thread",
    }
)


def _lambda_in(node: ast.expr) -> ast.Lambda | None:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Lambda):
            return sub
    return None


def _bare_generator(node: ast.expr) -> ast.GeneratorExp | None:
    """A generator expression passed *as is* (not consumed in place).

    ``tuple(x for x in ...)`` materialises the generator before the spec
    ever sees it and is fine; only a top-level generator argument ends up
    stored on the spec.
    """
    return node if isinstance(node, ast.GeneratorExp) else None


def _unpicklable_annotation(annotation: ast.expr) -> str | None:
    """The first unpicklable type name inside ``annotation``, if any.

    Annotations may be strings (``from __future__ import annotations`` or
    explicit quoting), so constant annotations are parsed before walking.
    """
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        try:
            annotation = ast.parse(annotation.value, mode="eval").body
        except SyntaxError:
            return None
    for sub in ast.walk(annotation):
        name = None
        if isinstance(sub, ast.Name):
            name = sub.id
        elif isinstance(sub, ast.Attribute):
            name = sub.attr
        if name in UNPICKLABLE_ANNOTATIONS:
            return name
    return None


class PicklableSpecRule:
    name = "picklable-spec-fields"
    description = (
        "no lambdas/closures/generators or unpicklable annotations in "
        "*Spec fields or constructor args"
    )

    def check(self, module: ModuleSource) -> Iterable[Finding]:
        out: list[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) and node.name.endswith("Spec"):
                out.extend(self._check_spec_class(module, node))
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name is not None and name.split(".")[-1].endswith("Spec"):
                    out.extend(self._check_construction(module, node, name))
        return out

    def _check_spec_class(
        self, module: ModuleSource, node: ast.ClassDef
    ) -> Iterable[Finding]:
        for stmt in node.body:
            default: ast.expr | None = None
            if isinstance(stmt, ast.AnnAssign):
                bad_type = _unpicklable_annotation(stmt.annotation)
                if bad_type is not None:
                    yield module.finding(
                        self.name,
                        stmt,
                        f"field annotation {bad_type!r} in spec class "
                        f"{node.name!r} promises a value that will not "
                        "pickle to pool workers; carry picklable data "
                        "(builtins / registry dataclasses) and rebuild the "
                        "object in setup()",
                    )
                if stmt.value is not None:
                    default = stmt.value
            elif isinstance(stmt, ast.Assign):
                default = stmt.value
            if default is None:
                continue
            bad = _lambda_in(default)
            if bad is not None:
                yield module.finding(
                    self.name,
                    bad,
                    f"lambda in a field default of spec class {node.name!r} "
                    "will not pickle to pool workers; use a module-level "
                    "callable",
                )

    def _check_construction(
        self, module: ModuleSource, node: ast.Call, name: str
    ) -> Iterable[Finding]:
        for arg in [*node.args, *(kw.value for kw in node.keywords)]:
            bad = _lambda_in(arg)
            if bad is not None:
                yield module.finding(
                    self.name,
                    bad,
                    f"lambda passed to {name}(...) will not pickle to pool "
                    "workers; use a module-level callable",
                )
                continue
            gen = _bare_generator(arg)
            if gen is not None:
                yield module.finding(
                    self.name,
                    gen,
                    f"generator expression passed to {name}(...) will not "
                    "pickle to pool workers; materialise it with tuple(...)",
                )
