"""picklable-spec-fields: worker task specs must cross process boundaries.

:class:`~repro.engine.procpool.EngineSpec` and the worker task specs are
the *only* objects pickled to process-pool workers; a lambda or nested
function smuggled into a spec field fails at dispatch time with an
opaque ``PicklingError`` — on the first multiprocess run, which is
usually CI, not the author's laptop. The rule rejects, for every class
whose name ends in ``Spec``:

* lambda (or locally nested function) field defaults, including inside
  ``field(default=...)`` / ``field(default_factory=lambda: ...)``
  (``default_factory=list`` is fine — module-level callables pickle by
  reference);
* lambda arguments at ``SomethingSpec(...)`` construction sites.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.base import Finding, ModuleSource, dotted_name


def _lambda_in(node: ast.expr) -> ast.Lambda | None:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Lambda):
            return sub
    return None


class PicklableSpecRule:
    name = "picklable-spec-fields"
    description = "no lambdas/closures in *Spec fields or constructor args"

    def check(self, module: ModuleSource) -> Iterable[Finding]:
        out: list[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) and node.name.endswith("Spec"):
                out.extend(self._check_spec_class(module, node))
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name is not None and name.split(".")[-1].endswith("Spec"):
                    out.extend(self._check_construction(module, node, name))
        return out

    def _check_spec_class(
        self, module: ModuleSource, node: ast.ClassDef
    ) -> Iterable[Finding]:
        for stmt in node.body:
            default: ast.expr | None = None
            if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                default = stmt.value
            elif isinstance(stmt, ast.Assign):
                default = stmt.value
            if default is None:
                continue
            bad = _lambda_in(default)
            if bad is not None:
                yield module.finding(
                    self.name,
                    bad,
                    f"lambda in a field default of spec class {node.name!r} "
                    "will not pickle to pool workers; use a module-level "
                    "callable",
                )

    def _check_construction(
        self, module: ModuleSource, node: ast.Call, name: str
    ) -> Iterable[Finding]:
        for arg in [*node.args, *(kw.value for kw in node.keywords)]:
            bad = _lambda_in(arg)
            if bad is not None:
                yield module.finding(
                    self.name,
                    bad,
                    f"lambda passed to {name}(...) will not pickle to pool "
                    "workers; use a module-level callable",
                )
