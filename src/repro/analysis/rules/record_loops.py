"""no-per-record-loop-in-phase: phase hot paths stay columnar.

The columnar extension dataflow retired per-object HSP records from the
phase 2→4 hot path: extensions move as six aligned ``int64`` columns and
every phase reduces them with array operations. A ``for`` loop over an
extension-record stream inside a ``phase_*`` function quietly reverts
that — one seemingly innocent loop re-inflates thousands of records per
query. The rule flags loops (and comprehensions) inside functions whose
name starts with ``phase_`` when they iterate ``.to_records()`` output
or a name that conventionally holds an extension stream. Deliberately
sequential cold loops (e.g. the gapped DP, whose per-item cost dwarfs
record overhead) carry an inline ``reprolint: disable`` with their
justification.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.base import Finding, ModuleSource, dotted_name

#: Iteration-target names that conventionally hold extension/HSP record
#: streams in this tree. Index arrays (``order``, ``idx``) and scalar
#: columns are not listed — looping those is the columnar idiom itself.
_RECORD_STREAM_NAMES = frozenset(
    {"extensions", "exts", "ext", "records", "hsps", "gapped", "triggered"}
)

#: Transparent wrappers whose first argument is the real iterable.
_WRAPPERS = frozenset({"enumerate", "sorted", "reversed", "list", "tuple"})


def _record_stream(node: ast.expr) -> str | None:
    """The record-stream expression iterated by ``node``, if any."""
    while (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _WRAPPERS
        and node.args
    ):
        node = node.args[0]
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "to_records"
    ):
        return ".to_records()"
    name = dotted_name(node)
    if name is not None and name.split(".")[-1] in _RECORD_STREAM_NAMES:
        return name
    return None


def _iter_targets(func: ast.AST) -> Iterable[tuple[ast.AST, ast.expr]]:
    """Every (anchor node, iterated expression) inside ``func``."""
    for sub in ast.walk(func):
        if isinstance(sub, ast.For):
            yield sub, sub.iter
        elif isinstance(sub, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for gen in sub.generators:
                yield sub, gen.iter


class PerRecordLoopRule:
    name = "no-per-record-loop-in-phase"
    description = "phase_* functions must not loop over extension records"

    def check(self, module: ModuleSource) -> Iterable[Finding]:
        out: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not node.name.startswith("phase_"):
                continue
            for anchor, iterated in _iter_targets(node):
                stream = _record_stream(iterated)
                if stream is not None:
                    out.append(
                        module.finding(
                            self.name,
                            anchor,
                            f"per-record loop over {stream} in "
                            f"{node.name!r}: phase hot paths consume "
                            "extension columns, not record objects",
                        )
                    )
        return out
