"""no-wall-clock-in-kernels: simulated kernels must be time-deterministic.

The gpusim cost model derives every reported millisecond from counted
cycles; a kernel that reads the host's wall clock (``time.time()``,
``perf_counter``, ``datetime.now``) smuggles nondeterminism into numbers
the conformance corpus pins exactly. The rule walks every class whose
bases name ``Kernel`` and flags wall-clock calls anywhere in its body —
host-side drivers and the :class:`~repro.engine.events.EventLog` (which
deliberately stamps real time) are out of scope.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.base import Finding, ModuleSource, dotted_name

_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.clock_gettime",
        "datetime.now",
        "datetime.utcnow",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
    }
)


def _is_kernel_class(node: ast.ClassDef) -> bool:
    for base in node.bases:
        name = dotted_name(base)
        if name is not None and name.split(".")[-1] == "Kernel":
            return True
    return False


class WallClockRule:
    name = "no-wall-clock-in-kernels"
    description = "Kernel subclasses must not read the host wall clock"

    def check(self, module: ModuleSource) -> Iterable[Finding]:
        out: list[Finding] = []
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.ClassDef) and _is_kernel_class(node)):
                continue
            for sub in ast.walk(node):
                if not isinstance(sub, ast.Call):
                    continue
                name = dotted_name(sub.func)
                if name in _CLOCK_CALLS:
                    out.append(
                        module.finding(
                            self.name,
                            sub,
                            f"{name}() inside kernel {node.name!r}: modelled "
                            "times must come from counted cycles, not the "
                            "host clock",
                        )
                    )
        return out
