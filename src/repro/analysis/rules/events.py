"""event-begin-end-pairing: phase events open and close together.

Every consumer of the :class:`~repro.engine.events.EventLog` — the
profile CLI, ``wall_breakdown``, the throughput benchmark — pairs
``"start"``/``"end"`` events per phase; an unpaired emission leaks an
open phase that silently drops wall-time attribution. The safe idiom is
the ``events.phase(...)`` context manager; code that calls ``emit``
directly must emit both kinds for the same phase within one function.

Cross-process *re-emission* (a parent log replaying end events a worker
already timed, as the batch executor does) is the sanctioned exception —
suppress it explicitly with ``# reprolint: disable=event-begin-end-pairing``
so reviewers see the claim.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.base import Finding, ModuleSource


def _emit_kind_phase(node: ast.Call) -> tuple[str | None, str | None] | None:
    """``(phase, kind)`` of an ``<recv>.emit(engine, phase, kind, ...)``
    call; None when the call is not an emit. Non-literal values map to
    None entries."""
    if not (isinstance(node.func, ast.Attribute) and node.func.attr == "emit"):
        return None
    phase: str | None = None
    kind: str | None = None
    if len(node.args) >= 2 and isinstance(node.args[1], ast.Constant):
        if isinstance(node.args[1].value, str):
            phase = node.args[1].value
    if len(node.args) >= 3 and isinstance(node.args[2], ast.Constant):
        if isinstance(node.args[2].value, str):
            kind = node.args[2].value
    for kw in node.keywords:
        if kw.arg == "phase" and isinstance(kw.value, ast.Constant):
            phase = kw.value.value if isinstance(kw.value.value, str) else None
        if kw.arg == "kind" and isinstance(kw.value, ast.Constant):
            kind = kw.value.value if isinstance(kw.value.value, str) else None
    return phase, kind


class EventPairingRule:
    name = "event-begin-end-pairing"
    description = "direct emit() calls must pair start/end per phase"

    def check(self, module: ModuleSource) -> Iterable[Finding]:
        out: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            # (phase or None) -> kinds emitted, with a representative node.
            seen: dict[str | None, dict[str, ast.Call]] = {}
            for sub in ast.walk(node):
                if not isinstance(sub, ast.Call):
                    continue
                info = _emit_kind_phase(sub)
                if info is None:
                    continue
                phase, kind = info
                if kind in ("start", "end"):
                    seen.setdefault(phase, {})[kind] = sub
            for phase, kinds in seen.items():
                if "start" in kinds and "end" in kinds:
                    continue
                have = next(iter(kinds))
                want = "end" if have == "start" else "start"
                at = kinds[have]
                label = f"phase {phase!r}" if phase is not None else "a dynamic phase"
                out.append(
                    module.finding(
                        self.name,
                        at,
                        f"emit({label}, {have!r}) without a matching {want!r} "
                        "in this function; use events.phase(...) or emit both",
                    )
                )
        return out
