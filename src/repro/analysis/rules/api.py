"""public-api-all: ``__all__`` names exist, exactly once.

Every package façade in this tree re-exports through ``__all__``; a
stale entry (renamed symbol, removed class) turns ``from repro.x import
*`` and every doc tool into a runtime error that unit tests of the
package itself never hit. The rule resolves module-level bindings
(defs, classes, assignments, imports) and flags ``__all__`` entries that
resolve to nothing, duplicates, and non-literal elements it cannot
verify. Modules using ``import *`` are skipped — their namespace is not
statically known.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.base import Finding, ModuleSource


def _module_bindings(tree: ast.Module) -> tuple[set[str], bool]:
    """Names bound at module level; second element is True when a
    star-import makes the namespace statically unknowable."""
    names: set[str] = set()
    has_star = False
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name == "*":
                    has_star = True
                else:
                    names.add(alias.asname or alias.name)
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                for sub in ast.walk(target):
                    if isinstance(sub, ast.Name):
                        names.add(sub.id)
        elif isinstance(node, (ast.If, ast.Try)):
            # TYPE_CHECKING blocks and optional-import guards bind too.
            sub_names, sub_star = _module_bindings(
                ast.Module(body=list(ast.iter_child_nodes(node)), type_ignores=[])
            )
            names |= sub_names
            has_star |= sub_star
    return names, has_star


class PublicApiAllRule:
    name = "public-api-all"
    description = "__all__ entries must be bound module names, no duplicates"

    def check(self, module: ModuleSource) -> Iterable[Finding]:
        all_node: ast.expr | None = None
        for node in module.tree.body:
            if (
                isinstance(node, ast.Assign)
                and any(
                    isinstance(t, ast.Name) and t.id == "__all__"
                    for t in node.targets
                )
            ):
                all_node = node.value
        if all_node is None:
            return []
        if not isinstance(all_node, (ast.List, ast.Tuple)):
            return []  # computed __all__: out of scope
        bindings, has_star = _module_bindings(module.tree)
        if has_star:
            return []
        out: list[Finding] = []
        seen: set[str] = set()
        for element in all_node.elts:
            if not (
                isinstance(element, ast.Constant) and isinstance(element.value, str)
            ):
                out.append(
                    module.finding(
                        self.name, element, "__all__ entry is not a string literal"
                    )
                )
                continue
            name = element.value
            if name in seen:
                out.append(
                    module.finding(
                        self.name, element, f"duplicate __all__ entry {name!r}"
                    )
                )
            seen.add(name)
            if name not in bindings:
                out.append(
                    module.finding(
                        self.name,
                        element,
                        f"__all__ names {name!r} but the module never binds it",
                    )
                )
        return out
