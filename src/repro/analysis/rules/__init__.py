"""The shipped rule catalogue (see docs/ANALYSIS.md for rationale)."""

from __future__ import annotations

from repro.analysis.base import Rule
from repro.analysis.concurrency.ownership import ThreadOwnershipRule
from repro.analysis.rules.api import PublicApiAllRule
from repro.analysis.rules.events import EventPairingRule
from repro.analysis.rules.excepts import BareExceptRule
from repro.analysis.rules.floats import FloatEqualityRule
from repro.analysis.rules.picklable import PicklableSpecRule
from repro.analysis.rules.record_loops import PerRecordLoopRule
from repro.analysis.rules.rng import UnseededRngRule
from repro.analysis.rules.shared_alloc import SharedAllocRule
from repro.analysis.rules.wallclock import WallClockRule

#: Every shipped rule, in catalogue order.
ALL_RULES: tuple[Rule, ...] = (
    UnseededRngRule(),
    FloatEqualityRule(),
    WallClockRule(),
    PicklableSpecRule(),
    SharedAllocRule(),
    EventPairingRule(),
    BareExceptRule(),
    PublicApiAllRule(),
    PerRecordLoopRule(),
    ThreadOwnershipRule(),
)

RULE_NAMES: tuple[str, ...] = tuple(r.name for r in ALL_RULES)


def rule_by_name(name: str) -> Rule:
    for rule in ALL_RULES:
        if rule.name == name:
            return rule
    raise KeyError(
        f"unknown rule {name!r} (choose from {', '.join(RULE_NAMES)})"
    )


__all__ = ["ALL_RULES", "RULE_NAMES", "rule_by_name"]
