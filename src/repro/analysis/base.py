"""reprolint core: findings, the rule protocol, suppression, the walker.

A rule is a small object with a ``name``, a one-line ``description``, and
a ``check(module)`` returning :class:`Finding` records. Modules are
parsed once into a :class:`ModuleSource` (path + text + AST) shared by
every rule, so a full-tree run costs one parse per file regardless of
how many rules are active.

Suppression
-----------
A finding is dropped when its line carries an inline marker::

    risky_call()  # reprolint: disable=rule-name

or when the file opts out of a rule entirely within its first ten
lines::

    # reprolint: disable-file=rule-name

Both accept a comma-separated rule list. Suppressions are deliberate,
grep-able escape hatches — the lint report stays empty-by-default so CI
can gate on exit status.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Protocol, Sequence, runtime_checkable

#: Directory names the walker never descends into. ``_fixtures`` holds
#: the per-rule violation fixtures the test suite feeds to the rules
#: directly — they must never count against the tree.
EXCLUDED_DIR_NAMES = frozenset(
    {"__pycache__", ".git", ".ruff_cache", ".mypy_cache", "_fixtures"}
)

_INLINE_SUPPRESS = re.compile(r"#\s*reprolint:\s*disable=([\w,\- ]+)")
_FILE_SUPPRESS = re.compile(r"#\s*reprolint:\s*disable-file=([\w,\- ]+)")

#: How many leading lines may carry a ``disable-file`` marker.
_FILE_SUPPRESS_WINDOW = 10


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def __str__(self) -> str:
        return f"{self.location}: {self.rule}: {self.message}"


@dataclass
class ModuleSource:
    """One parsed module, shared by every rule in a run."""

    path: Path
    text: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.text.splitlines()

    @classmethod
    def parse(cls, path: Path, text: str | None = None) -> "ModuleSource":
        src = path.read_text() if text is None else text
        return cls(path=path, text=src, tree=ast.parse(src, filename=str(path)))

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        """Build a finding anchored at ``node``."""
        return Finding(
            rule=rule,
            path=str(self.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def suppressed_rules_for_line(self, lineno: int) -> frozenset[str]:
        m = _INLINE_SUPPRESS.search(self.line_text(lineno))
        if not m:
            return frozenset()
        return frozenset(p.strip() for p in m.group(1).split(","))

    def file_suppressed_rules(self) -> frozenset[str]:
        out: set[str] = set()
        for line in self.lines[:_FILE_SUPPRESS_WINDOW]:
            m = _FILE_SUPPRESS.search(line)
            if m:
                out.update(p.strip() for p in m.group(1).split(","))
        return frozenset(out)


@runtime_checkable
class Rule(Protocol):
    """A reprolint rule: one invariant, checked per module."""

    #: Stable kebab-case identifier (``--rule``, suppression comments).
    name: str
    #: One-line rationale shown by ``repro lint --list``.
    description: str

    def check(self, module: ModuleSource) -> "Iterable[Finding]":
        """Return the rule's findings for one parsed module."""
        ...


def iter_python_files(paths: Sequence[Path | str]) -> Iterator[Path]:
    """Yield every ``.py`` file under ``paths`` (files pass through).

    Directories named in :data:`EXCLUDED_DIR_NAMES` are pruned; output is
    sorted per root so runs are deterministic.
    """
    for raw in paths:
        root = Path(raw)
        if root.is_file():
            if root.suffix == ".py":
                yield root
            continue
        for path in sorted(root.rglob("*.py")):
            if any(part in EXCLUDED_DIR_NAMES for part in path.parts):
                continue
            yield path


def check_module(module: ModuleSource, rules: Sequence[Rule]) -> list[Finding]:
    """Run ``rules`` over one module, applying suppressions."""
    file_off = module.file_suppressed_rules()
    out: list[Finding] = []
    for rule in rules:
        if rule.name in file_off:
            continue
        for finding in rule.check(module):
            if rule.name in module.suppressed_rules_for_line(finding.line):
                continue
            out.append(finding)
    return out


def run_lint(
    paths: Sequence[Path | str],
    rules: Sequence[Rule],
) -> tuple[list[Finding], list[str]]:
    """Run ``rules`` over every python file under ``paths``.

    Returns ``(findings, errors)`` — errors are files that failed to
    parse (reported separately so a syntax error cannot silently shrink
    the scanned tree).
    """
    findings: list[Finding] = []
    errors: list[str] = []
    for path in iter_python_files(paths):
        try:
            module = ModuleSource.parse(path)
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            errors.append(f"{path}: {exc}")
            continue
        findings.extend(check_module(module, rules))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings, errors


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
        return ".".join(reversed(parts))
    return None
