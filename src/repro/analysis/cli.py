"""``repro lint``: run the reprolint rules over the tree.

Exit protocol (mirrors ``repro verify``):

* ``0`` — scanned clean;
* ``1`` — findings reported;
* ``2`` — the run itself failed (unknown rule, unreadable path, syntax
  error in a scanned file) — CI treats this as an infrastructure error,
  not a lint failure.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.base import run_lint
from repro.analysis.rules import ALL_RULES, RULE_NAMES, rule_by_name

#: Default scan roots, relative to the working directory.
DEFAULT_PATHS = ("src",)


def add_lint_parser(sub: "argparse._SubParsersAction[argparse.ArgumentParser]") -> None:
    p = sub.add_parser(
        "lint",
        help="run the reprolint static-analysis rules",
        description="AST lint for repro-specific invariants (docs/ANALYSIS.md).",
    )
    p.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help=f"files or directories to scan (default: {' '.join(DEFAULT_PATHS)})",
    )
    p.add_argument(
        "--rule",
        action="append",
        dest="rules",
        metavar="NAME",
        help="run only this rule (repeatable); default: all rules",
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="emit findings as a JSON report on stdout",
    )
    p.add_argument(
        "--list",
        action="store_true",
        help="list the available rules and exit",
    )
    p.add_argument(
        "--concurrency",
        action="store_true",
        help=(
            "run the concurrency contract checkers only "
            "(thread-ownership + whole-corpus lock-order)"
        ),
    )
    p.add_argument(
        "--selftest",
        action="store_true",
        help=(
            "inject a lock-order inversion and an unguarded write and "
            "require the concurrency checkers to catch both"
        ),
    )
    p.set_defaults(func=cmd_lint)


def cmd_lint(args: argparse.Namespace) -> int:
    if args.list:
        width = max(len(n) for n in RULE_NAMES)
        for rule in ALL_RULES:
            print(f"{rule.name:<{width}}  {rule.description}")
        return 0

    if args.selftest:
        from repro.analysis.concurrency import run_selftest

        return run_selftest()

    if args.concurrency:
        rules = [rule_by_name("thread-ownership")]
    elif args.rules:
        try:
            rules = [rule_by_name(name) for name in args.rules]
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
    else:
        rules = list(ALL_RULES)

    paths = [Path(p) for p in args.paths]
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        print(f"error: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2

    findings, errors = run_lint(paths, rules)
    rule_names = [r.name for r in rules]
    lock_graph: "list[dict[str, object]] | None" = None
    if args.concurrency:
        from repro.analysis.concurrency import run_lock_order

        order_findings, lock_graph, order_errors = run_lock_order(paths)
        findings = sorted(
            findings + order_findings,
            key=lambda f: (f.path, f.line, f.col, f.rule),
        )
        errors.extend(order_errors)
        rule_names.append("lock-order")

    if args.json:
        report: dict[str, object] = {
            "rules": rule_names,
            "paths": [str(p) for p in paths],
            "findings": [f.to_dict() for f in findings],
            "errors": errors,
        }
        if lock_graph is not None:
            report["lock_graph"] = lock_graph
        json.dump(report, sys.stdout, indent=2)
        print()
    else:
        for finding in findings:
            print(str(finding))
        if findings:
            print(f"\n{len(findings)} finding(s)", file=sys.stderr)
    for err in errors:
        print(f"error: {err}", file=sys.stderr)

    if errors:
        return 2
    return 1 if findings else 0
