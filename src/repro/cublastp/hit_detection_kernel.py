"""Fine-grained hit detection with binning (Algorithm 2, Fig. 5).

One warp per subject sequence (grid-strided): lane ``j`` handles word ``j``,
``j + 32``, ... of the sequence. Each lane reads its word's residues
(coalesced — lanes cover consecutive positions), resolves the DFA state
from the shared-memory state table, fetches the packed word entry and the
query-position list through the read-only cache, and scatters packed hits
into its warp's bins with a shared-memory ``atomicAdd`` on the ``top``
counters — exactly the paper's recipe for turning the column-major scan
into coalesced, atomically-binned output.
"""

from __future__ import annotations

import numpy as np

from repro.alphabet import ALPHABET_SIZE
from repro.cublastp.binning import BinnedHits
from repro.cublastp.session import DeviceSession, WORD_ENTRY_COUNT_MASK, WORD_ENTRY_SHIFT
from repro.errors import GpuSimError
from repro.gpusim.kernel import Kernel, KernelContext, launch
from repro.gpusim.occupancy import occupancy
from repro.gpusim.profiler import KernelProfile
from repro.gpusim.shared import SharedMemory
from repro.gpusim.warp import Warp

#: Bits of the packed bin element (duplicated from binning.py for kernel-local
#: arithmetic; the packing tests pin both to the same layout).
_POS_BITS = 16
_DIAG_BITS = 16


class HitDetectionKernel(Kernel):
    """Warp-based hit detection + binning."""

    name = "hit_detection"
    registers_per_thread = 40

    def __init__(self, session: DeviceSession) -> None:
        self.session = session
        self.block_threads = session.config.hit_block_threads

    def setup_block(self, ctx: KernelContext, shared: SharedMemory, block_id: int) -> int:
        s = self.session
        warps_per_block = self.block_threads // ctx.device.warp_size
        shared.alloc_from("dfa_states", s.dfa_state_records)
        shared.alloc("tops", warps_per_block * s.config.num_bins, np.int32)
        # Cooperative memset: the flush loop reads every bin counter,
        # including bins no hit ever incremented, so the region must be
        # initialised, not just allocated (initcheck enforces this).
        shared.fill("tops", 0)
        return int(s.dfa_state_records.nbytes)

    def run_warp(self, ctx: KernelContext, warp: Warp, block_id: int, warp_in_block: int) -> None:
        s = self.session
        cfg = s.config
        dev = ctx.device
        qlen = s.query_length
        word_len = s.dfa.word_length
        num_seqs = len(s.db)
        bins = ctx.memory.buffers["bins"]
        tops_global = ctx.memory.buffers["bin_tops"]
        lane = warp.lane_id
        top_base = warp_in_block * cfg.num_bins

        for seq_i in range(warp.warp_id, num_seqs, warp.num_warps):
            # Sequence bounds: uniform values, one broadcast load each.
            off = int(warp.load(s.db_offsets, seq_i)[0])
            end = int(warp.load(s.db_offsets, seq_i + 1)[0])
            n_words = (end - off) - word_len + 1
            if n_words <= 0:
                continue
            seq_len = end - off
            # Sequence tile: the warp fetches 128-code tiles cooperatively
            # (full coalescing) and lanes pick their word's residues out of
            # the tile through registers — the tiling idiom real kernels
            # use, and the reason fine-grained hit detection reports high
            # global load efficiency (Fig. 19a).
            tile = None
            tile_start = 0
            tile_len = 0
            j = lane.copy()
            for it in warp.loop_while(lambda: j < n_words):
                base = it * dev.warp_size
                need_end = min(base + dev.warp_size + word_len - 1, seq_len)
                if tile is None or need_end > tile_start + tile_len:
                    tile_start = base
                    tile_len = min(128, seq_len - base)
                    tile = warp.load_span(s.db_codes, off + base, tile_len)
                ji = np.minimum(j, n_words - 1)  # clamped for masked lanes
                rel = np.clip(ji - tile_start, 0, tile_len - word_len)
                warp.alu(3)  # three register/shuffle reads from the tile
                c0 = tile[rel].astype(np.int64)
                c1 = tile[rel + 1].astype(np.int64)
                c2 = tile[rel + 2].astype(np.int64)
                warp.alu()  # state = c0 * A + c1
                state = c0 * ALPHABET_SIZE + c1
                base = warp.load_shared("dfa_states", state)
                entry = warp.load(s.word_entries, base + c2)
                warp.alu()  # unpack offset / count
                p_off = entry >> WORD_ENTRY_SHIFT
                count = entry & WORD_ENTRY_COUNT_MASK
                k = np.zeros(dev.warp_size, dtype=np.int64)
                for _ in warp.loop_while(lambda: k < count):
                    ki = np.minimum(k, np.maximum(count - 1, 0))
                    qpos = warp.load(s.positions, p_off + ki).astype(np.int64)
                    warp.alu(2)  # diagonal and bin number
                    diag = ji - qpos + qlen
                    bin_id = diag % cfg.num_bins
                    slot = warp.atomic_add_shared(
                        "tops", top_base + bin_id, np.ones(dev.warp_size, dtype=np.int32)
                    ).astype(np.int64)
                    if bool((slot[warp.active] >= cfg.bin_capacity).any()):
                        raise GpuSimError(
                            "bin overflow: raise CuBlastpConfig.bin_capacity "
                            f"(capacity {cfg.bin_capacity})"
                        )
                    warp.alu()  # pack the bin element
                    packed = (
                        (np.int64(seq_i) << (_DIAG_BITS + _POS_BITS))
                        | (diag << _POS_BITS)
                        | ji
                    )
                    dst = (
                        (np.int64(warp.warp_id) * cfg.num_bins + bin_id)
                        * cfg.bin_capacity
                        + slot
                    )
                    warp.store(bins, dst, packed)
                    k += 1
                j += dev.warp_size

        # Flush this warp's top counters to global memory (coalesced).
        for b0 in range(0, cfg.num_bins, dev.warp_size):
            idx = b0 + lane
            with warp.where(idx < cfg.num_bins):
                safe = np.minimum(idx, cfg.num_bins - 1)
                v = warp.load_shared("tops", top_base + safe)
                warp.store(tops_global, np.int64(warp.warp_id) * cfg.num_bins + safe, v)


def shared_bytes_for(session: DeviceSession) -> int:
    """Shared-memory bill per block (state table + top counters)."""
    warps_per_block = session.config.hit_block_threads // session.device.warp_size
    return int(session.dfa_state_records.nbytes) + warps_per_block * session.config.num_bins * 4


def run_hit_detection(session: DeviceSession) -> tuple[BinnedHits, KernelProfile]:
    """Launch hit detection and return the raw (unsorted) binned hits.

    The grid is sized to fill the device at the kernel's occupancy, the
    bins buffer is allocated to match, and the kernel's functional output
    is assembled host-side into a :class:`BinnedHits` in (warp, bin)
    segment order — the assembly kernel's cost is charged separately by
    :func:`repro.cublastp.sort_kernel.run_assemble`.
    """
    cfg = session.config
    dev = session.device
    kernel = HitDetectionKernel(session)
    occ = occupancy(dev, kernel.block_threads, shared_bytes_for(session), kernel.registers_per_thread)
    warps_per_block = kernel.block_threads // dev.warp_size
    # Persistent-blocks launch, capped at the work: one warp per sequence
    # is the finest useful decomposition, so never launch more warps than
    # sequences (idle warps would only fragment the bins).
    grid_blocks = min(
        dev.num_sms * occ.blocks_per_sm,
        max(1, -(-len(session.db) // warps_per_block)),
    )
    num_warps = grid_blocks * warps_per_block

    mem = session.ctx.memory
    # Allocate fresh working buffers sized to this launch (sweeps re-launch
    # within one session; the allocator is append-only, so stale buffers
    # just stay resident like freed-but-cached CUDA allocations).
    bins = _alloc_unique(mem, "bins", num_warps * cfg.num_bins * cfg.bin_capacity)
    tops = _alloc_unique(mem, "bin_tops", num_warps * cfg.num_bins, np.int32)

    profile = launch(kernel, session.ctx, grid_blocks=grid_blocks)

    # Reused buffers may be larger than this launch needs: slice to the
    # launch's extent before viewing.
    counts = (
        tops.data[: num_warps * cfg.num_bins]
        .reshape(num_warps, cfg.num_bins)
        .astype(np.int64)
    )
    segments = counts.reshape(-1)
    offsets = np.zeros(segments.size + 1, dtype=np.int64)
    np.cumsum(segments, out=offsets[1:])
    # Single ragged gather: element t of segment seg lives at flat bin
    # index seg * bin_capacity + (t - offsets[seg]); building the source
    # index vector with repeat + arange replaces the per-segment Python
    # copy loop (num_warps * num_bins iterations) with one fancy-index.
    total = int(offsets[-1])
    flat = bins.data[: num_warps * cfg.num_bins * cfg.bin_capacity]
    src = np.repeat(
        np.arange(segments.size, dtype=np.int64) * cfg.bin_capacity - offsets[:-1],
        segments,
    ) + np.arange(total, dtype=np.int64)
    packed = flat[src]
    binned = BinnedHits(
        packed=packed,
        segment_offsets=offsets,
        num_bins=cfg.num_bins,
        query_length=session.query_length,
        is_sorted=False,
    )
    profile.extra["num_hits"] = int(packed.size)
    profile.extra["num_warps"] = num_warps
    return binned, profile


def _alloc_unique(mem, name: str, size: int, dtype=np.int64):
    """Working buffer for ``name``, reused across re-launches when possible.

    Re-launches within one session (parameter sweeps, repeated searches)
    used to append a fresh ``name.N`` allocation every time — unbounded
    growth of the simulated heap. The active allocation is now reused
    (zeroed) whenever its dtype matches and it is large enough; only
    genuine growth allocates a successor. The canonical name in
    ``mem.buffers`` always points at the active allocation, so kernels
    that look buffers up by name see this launch's.
    """
    existing = mem.buffers.get(name)
    if existing is None:
        return mem.alloc_zeros(name, size, dtype)
    if existing.data.dtype == np.dtype(dtype) and existing.data.size >= size:
        existing.data[:] = 0
        return existing
    i = 1
    while f"{name}.{i}" in mem.buffers:
        i += 1
    buf = mem.alloc_zeros(f"{name}.{i}", size, dtype)
    mem.buffers[name] = buf
    return buf
