"""Hit assembling and segmented sorting (Fig. 6a/6b, Fig. 7).

The paper uses two library primitives here — a block-copy assembling kernel
and Modern GPU's segmented sort. We implement their functional behaviour
exactly (contiguous assembly in (warp, bin) segment order; each segment
sorted ascending by the packed 64-bit key) and charge their cost with
analytic models rather than lane simulation, the same way the paper treats
them as black-box primitives:

* **assemble** — a straight copy: every element is read once and written
  once, fully coalesced, so the cost is transaction-bound.
* **segmented sort** — per segment of length ``n``, a bitonic/merge network
  executes ``~log2(n)^2`` passes over the data; the per-element cost model
  ``n * ceil(log2 n)^2`` reproduces the throughput behaviour the paper
  reports (more, smaller segments sort faster for a fixed total).
"""

from __future__ import annotations

import math

import numpy as np

from repro.cublastp.binning import BinnedHits
from repro.gpusim.device import DeviceSpec
from repro.gpusim.profiler import KernelProfile

#: Cost-model constants (issue cycles). ``_SORT_PASS_COST`` is per element
#: per network pass over 32 lanes; ``_SEGMENT_OVERHEAD`` is the (amortised)
#: per-segment scheduling cost — MGPU's segmented sort packs many segments
#: into one block, so the overhead is a fraction of a cycle per segment,
#: and the ``n log^2 n`` network work dominates. That superlinearity is
#: exactly why splitting a fixed hit population into more, smaller
#: segments sorts faster (the paper's Fig. 14 observation).
_SORT_PASS_COST = 2.0
_SEGMENT_OVERHEAD = 0.5


def run_assemble(binned: BinnedHits, device: DeviceSpec) -> tuple[BinnedHits, KernelProfile]:
    """Assemble the (already compact, host-side) bins into one buffer.

    Functionally :func:`~repro.cublastp.hit_detection_kernel.run_hit_detection`
    already produced the assembled layout; this step charges the copy the
    real assembling kernel performs: read every bin element from its bin,
    write it to the contiguous buffer, both coalesced (Fig. 6a's
    block-per-bin scheme exists precisely to make this true).
    """
    profile = KernelProfile(name="hit_assembling", device=device)
    n = len(binned)
    total_bytes = n * 8
    line = device.cache_line_bytes
    # One read + one write stream; segments are contiguous, so transactions
    # are bandwidth-optimal apart from one boundary line per segment.
    nonempty = int(np.count_nonzero(np.diff(binned.segment_offsets)))
    tx = 2 * (-(-total_bytes // line) + nonempty)
    profile.global_transactions = tx
    profile.global_requested_bytes = 2 * total_bytes
    profile.global_load_transactions = tx // 2
    profile.global_load_requested_bytes = total_bytes
    profile.global_store_transactions = tx - tx // 2
    profile.global_store_requested_bytes = total_bytes
    copy_instr = -(-n // device.warp_size) * 2
    profile.instructions = copy_instr
    profile.active_lane_slots = copy_instr * device.warp_size
    profile.issue_cycles = copy_instr + tx * device.global_tx_cycles
    profile.occupancy = 1.0
    profile.extra["num_segments"] = binned.num_segments
    return binned, profile


def run_segmented_sort(binned: BinnedHits, device: DeviceSpec) -> tuple[BinnedHits, KernelProfile]:
    """Sort each bin segment ascending by the packed key.

    One ascending 64-bit sort per segment orders hits by (sequence,
    diagonal, subject position) — the single-sort property the packed
    element was designed for (Fig. 7).
    """
    profile = KernelProfile(name="hit_sorting", device=device)
    seg_sizes = np.diff(binned.segment_offsets)
    packed = binned.packed.copy()
    cycles = 0.0
    instructions = 0
    total_bytes = 0
    for k in np.nonzero(seg_sizes)[0]:
        lo, hi = binned.segment_offsets[k], binned.segment_offsets[k + 1]
        packed[lo:hi] = np.sort(packed[lo:hi])
        n = int(hi - lo)
        passes = math.ceil(math.log2(n)) ** 2 if n > 1 else 1
        work = n / device.warp_size * passes
        cycles += work * _SORT_PASS_COST + _SEGMENT_OVERHEAD
        instructions += max(1, int(work))
        total_bytes += 2 * n * 8  # one read + one write stream, coalesced
    tx = -(-total_bytes // device.cache_line_bytes)
    profile.global_transactions = tx
    profile.global_requested_bytes = total_bytes
    profile.global_load_transactions = tx // 2
    profile.global_load_requested_bytes = total_bytes // 2
    profile.global_store_transactions = tx - tx // 2
    profile.global_store_requested_bytes = total_bytes - total_bytes // 2
    profile.issue_cycles = int(cycles) + profile.global_transactions * device.global_tx_cycles
    profile.instructions = max(1, instructions)
    profile.active_lane_slots = profile.instructions * device.warp_size
    profile.occupancy = 1.0
    sorted_binned = BinnedHits(
        packed=packed,
        segment_offsets=binned.segment_offsets,
        num_bins=binned.num_bins,
        query_length=binned.query_length,
        is_sorted=True,
    )
    profile.extra["num_segments"] = binned.num_segments
    return sorted_binned, profile
