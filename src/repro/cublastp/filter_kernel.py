"""Hit filtering (Fig. 6c): drop hits that cannot seed an extension.

After sorting, each bin segment holds its hits in (sequence, diagonal,
subject position) order, so a hit's candidate predecessors sit immediately
to its left. A thread per hit scans backwards while the left neighbour is
on the same diagonal and within the two-hit window; the hit survives when
a predecessor at distance ``>= W`` is found (the two-hit rule pinned in
:mod:`repro.core.two_hit`). The scan is at most ``W - 1`` steps past the
overlapping run, so the divergence the paper accepts here is bounded —
and, per §3.3, the 5-11 % survival ratio makes the extra kernel a win.

Surviving hits are then stream-compacted (order-preserving, a CUB-style
primitive charged analytically) into the seed list, together with the
diagonal segment boundaries the extension kernels consume.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cublastp.binning import BinnedHits
from repro.cublastp.session import DeviceSession
from repro.gpusim.kernel import Kernel, KernelContext, launch
from repro.gpusim.profiler import KernelProfile
from repro.gpusim.warp import Warp


@dataclass
class SeedList:
    """Filtered seeds in diagonal-major order.

    Attributes
    ----------
    packed:
        Surviving bin elements, global order preserved (so hits of one
        diagonal are contiguous and ascending by subject position).
    group_offsets:
        CSR boundaries of the (sequence, diagonal) groups.
    query_length:
        For recovering query positions.
    """

    packed: np.ndarray
    group_offsets: np.ndarray
    query_length: int

    @property
    def num_groups(self) -> int:
        return int(self.group_offsets.size - 1)

    def __len__(self) -> int:
        return int(self.packed.size)


class HitFilterKernel(Kernel):
    """Thread-per-hit two-hit filtering over the sorted, assembled buffer."""

    name = "hit_filtering"
    block_threads = 128
    registers_per_thread = 24

    def __init__(self, session: DeviceSession, word_length: int, window: int) -> None:
        self.session = session
        self.word_length = word_length
        self.window = window

    def run_warp(self, ctx: KernelContext, warp: Warp, block_id: int, warp_in_block: int) -> None:
        hits = ctx.memory.buffers["sorted_hits"]
        flags = ctx.memory.buffers["seed_flags"]
        total = ctx.params["num_hits"]
        dev = ctx.device
        i = warp.warp_id * dev.warp_size + warp.lane_id
        stride = warp.num_warps * dev.warp_size
        for _ in warp.loop_while(lambda: i < total):
            ii = np.minimum(i, total - 1)
            h = warp.load(hits, ii)
            warp.alu(2)  # unpack (seq, diag) key and subject position
            key = h >> 16  # seq | diag — identical iff same group
            spos = h & 0xFFFF
            is_seed = np.zeros(dev.warp_size, dtype=bool)
            done = np.zeros(dev.warp_size, dtype=bool)
            k = np.ones(dev.warp_size, dtype=np.int64)
            for _ in warp.loop_while(lambda: ~done):
                jprev = ii - k
                oob = jprev < 0
                p = warp.load(hits, np.maximum(jprev, 0))
                warp.alu(3)  # unpack + distance/window comparisons
                pkey = p >> 16
                pspos = p & 0xFFFF
                dist = spos - pspos
                same = (pkey == key) & ~oob & (dist <= self.window)
                found = same & (dist >= self.word_length)
                is_seed |= found & warp.active
                done |= (~same | found)
                k += 1
            warp.store(flags, ii, is_seed.astype(np.int8))
            i += stride


def run_filter(
    session: DeviceSession,
    sorted_binned: BinnedHits,
    word_length: int,
    window: int,
) -> tuple[SeedList, KernelProfile]:
    """Launch the filter kernel and compact the surviving seeds.

    The compaction (order-preserving scan + scatter, a CUB primitive) is
    charged onto the same profile: one pass reading flags and writing the
    survivors.
    """
    if not sorted_binned.is_sorted:
        raise ValueError("filter requires sorted bins")
    mem = session.ctx.memory
    dev = session.device
    from repro.cublastp.hit_detection_kernel import _alloc_unique

    hits_buf = _alloc_unique(mem, "sorted_hits", max(1, len(sorted_binned)))
    hits_buf.data[: len(sorted_binned)] = sorted_binned.packed
    flags_buf = _alloc_unique(mem, "seed_flags", max(1, len(sorted_binned)), np.int8)
    session.ctx.params["num_hits"] = len(sorted_binned)

    kernel = HitFilterKernel(session, word_length, window)
    if len(sorted_binned) == 0:
        profile = KernelProfile(name=kernel.name, device=dev)
        empty = SeedList(
            packed=np.zeros(0, dtype=np.int64),
            group_offsets=np.zeros(1, dtype=np.int64),
            query_length=sorted_binned.query_length,
        )
        return empty, profile
    profile = launch(kernel, session.ctx)

    flags = flags_buf.data[: len(sorted_binned)].astype(bool)
    seeds = sorted_binned.packed[flags]
    # Compaction cost: stream flags + hits in, survivors out.
    n = len(sorted_binned)
    line = dev.cache_line_bytes
    tx = -(-n * 9 // line) + -(-int(seeds.size) * 8 // line)
    profile.global_transactions += tx
    profile.global_requested_bytes += n * 9 + int(seeds.size) * 8
    profile.issue_cycles += tx * dev.global_tx_cycles + n // dev.warp_size

    # Diagonal group boundaries of the seed list ((seq, diag) changes).
    if seeds.size:
        keys = seeds >> 16
        change = np.nonzero(np.diff(keys))[0] + 1
        group_offsets = np.concatenate(
            ([0], change, [seeds.size])
        ).astype(np.int64)
    else:
        group_offsets = np.zeros(1, dtype=np.int64)
    profile.extra["num_seeds"] = int(seeds.size)
    profile.extra["survival_ratio"] = float(seeds.size) / max(1, n)
    return (
        SeedList(
            packed=seeds,
            group_offsets=group_offsets,
            query_length=sorted_binned.query_length,
        ),
        profile,
    )
