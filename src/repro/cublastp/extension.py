"""Extension-phase driver: launches the configured strategy kernel.

Allocates the device-side seed list and output buffers, runs one of
Algorithms 3-5, and normalises the output: hit-based results go through
the host-side de-duplication pass (§3.4), so all three strategies return
the *same* extension set — the property that lets Fig. 16 compare their
performance at equal output.
"""

from __future__ import annotations

from repro.core.results import ExtensionArray
from repro.cublastp.config import ExtensionMode
from repro.cublastp.ext_common import ExtensionOutput, read_extensions
from repro.cublastp.ext_diagonal import DiagonalExtensionKernel
from repro.cublastp.ext_hit import HitExtensionKernel, dedup_hit_based
from repro.cublastp.ext_window import WindowExtensionKernel
from repro.cublastp.filter_kernel import SeedList
from repro.cublastp.hit_detection_kernel import _alloc_unique
from repro.cublastp.session import DeviceSession
from repro.gpusim.kernel import launch
from repro.gpusim.profiler import KernelProfile


def run_extension(
    session: DeviceSession,
    seeds: SeedList,
    x_drop: int,
    word_length: int,
    mode: ExtensionMode | None = None,
) -> tuple[ExtensionArray, KernelProfile]:
    """Run the ungapped-extension phase on the device.

    Returns the de-duplicated extension columns in canonical order plus
    the kernel profile.
    """
    cfg = session.config
    mode = mode or cfg.extension_mode
    mem = session.ctx.memory
    n_seeds = len(seeds)

    seed_buf = _alloc_unique(mem, "seed_list", max(1, n_seeds))
    seed_buf.data[:n_seeds] = seeds.packed
    group_buf = _alloc_unique(mem, "seed_groups", max(2, seeds.group_offsets.size))
    group_buf.data[: seeds.group_offsets.size] = seeds.group_offsets
    out_cap = max(1, n_seeds)  # every strategy emits at most one record/seed
    _alloc_unique(mem, "ext_out_a", out_cap)
    _alloc_unique(mem, "ext_out_b", out_cap)
    counter = _alloc_unique(mem, "ext_count", 1)

    if mode is ExtensionMode.DIAGONAL:
        kernel = DiagonalExtensionKernel(session, seeds, x_drop, word_length)
    elif mode is ExtensionMode.HIT:
        kernel = HitExtensionKernel(session, seeds, x_drop, word_length)
    else:
        kernel = WindowExtensionKernel(session, seeds, x_drop, word_length)

    if n_seeds == 0:
        profile = KernelProfile(name=kernel.name, device=session.device)
        return ExtensionArray.empty(), profile
    # Work-proportional grid: launching far more warps than work items
    # would charge every extra block its shared-memory staging (PSSM /
    # BLOSUM copy-in) for nothing. Each warp grid-strides through several
    # rounds of work, so the staging cost amortises the way it does on
    # production-scale databases.
    rounds = 4
    dev = session.device
    warps_per_block = kernel.block_threads // dev.warp_size
    if mode is ExtensionMode.WINDOW:
        slots_per_warp = dev.warp_size // (2 * cfg.window_size)
        warps_needed = -(-seeds.num_groups // max(1, slots_per_warp))
    elif mode is ExtensionMode.DIAGONAL:
        warps_needed = -(-seeds.num_groups // dev.warp_size)
    else:
        warps_needed = -(-n_seeds // dev.warp_size)
    grid_cap = max(1, -(-warps_needed // (warps_per_block * rounds)))
    profile = launch(kernel, session.ctx, grid_blocks=min(grid_cap, 16 * dev.num_sms))

    if mode is ExtensionMode.HIT:
        counter.data[0] = n_seeds  # per-seed slots, no cursor
        raw = read_extensions(session, seeds.query_length)
        keep = dedup_hit_based(seeds.packed, raw.subject_end)
        profile.extra["redundant_extensions"] = int(n_seeds - keep.sum())
        raw = ExtensionOutput(
            seq_id=raw.seq_id[keep],
            query_start=raw.query_start[keep],
            query_end=raw.query_end[keep],
            subject_start=raw.subject_start[keep],
            subject_end=raw.subject_end[keep],
            score=raw.score[keep],
        )
    else:
        raw = read_extensions(session, seeds.query_length)

    extensions = raw.to_extension_array()
    profile.extra["num_extensions"] = len(extensions)
    #: Bytes the pipeline ships back to the host for the CPU phases.
    profile.extra["d2h_bytes"] = len(extensions) * 16
    return extensions, profile
