"""Hit-based ungapped extension (Algorithm 4, Fig. 9c).

One thread per seed hit: every surviving hit is extended independently,
trading the diagonal kernel's covered-hit branch for redundant computation
— seeds covered by a neighbour's extension still walk, and their duplicate
results are removed in the mandatory host-side de-duplication pass the
paper describes. Divergence now comes only from walk-length imbalance
across the 32 lanes of a warp.
"""

from __future__ import annotations

import numpy as np

from repro.cublastp.ext_common import (
    lane_walk,
    lane_word_score,
    setup_matrix_shared,
    store_extension_at,
)
from repro.cublastp.filter_kernel import SeedList
from repro.cublastp.session import DeviceSession
from repro.gpusim.kernel import Kernel, KernelContext
from repro.gpusim.shared import SharedMemory
from repro.gpusim.warp import Warp


class HitExtensionKernel(Kernel):
    """Thread-per-seed extension."""

    name = "ungapped_extension[hit]"
    registers_per_thread = 44

    def __init__(self, session: DeviceSession, seeds: SeedList, x_drop: int, word_length: int) -> None:
        self.session = session
        self.seeds = seeds
        self.x_drop = x_drop
        self.word_length = word_length
        self.block_threads = session.config.ext_block_threads

    def setup_block(self, ctx: KernelContext, shared: SharedMemory, block_id: int) -> int:
        return setup_matrix_shared(self.session, shared)

    def run_warp(self, ctx: KernelContext, warp: Warp, block_id: int, warp_in_block: int) -> None:
        s = self.session
        dev = ctx.device
        qlen = s.query_length
        seeds_buf = ctx.memory.buffers["seed_list"]
        n_seeds = len(self.seeds)
        if n_seeds == 0:
            return
        i = warp.warp_id * dev.warp_size + warp.lane_id
        stride = warp.num_warps * dev.warp_size

        for _ in warp.loop_while(lambda: i < n_seeds):
            ii = np.minimum(i, n_seeds - 1)
            elem = warp.load(seeds_buf, ii)
            warp.alu(2)  # unpack fields, recover query position
            seq = elem >> 32
            diag = (elem >> 16) & 0xFFFF
            spos = elem & 0xFFFF
            qpos = spos - (diag - qlen)
            off = warp.load(s.db_offsets, seq).astype(np.int64)
            end = warp.load(s.db_offsets, seq + 1).astype(np.int64)
            word = lane_word_score(warp, s, off, qpos, spos, self.word_length)
            gain_r, steps_r = lane_walk(
                warp, s, off, end, qpos, spos, qlen, self.x_drop, +1, self.word_length
            )
            gain_l, steps_l = lane_walk(
                warp, s, off, off, qpos, spos, qlen, self.x_drop, -1, self.word_length
            )
            warp.alu(2)
            s_start = spos - steps_l
            s_end = spos + self.word_length - 1 + steps_r
            score = word + gain_l + gain_r
            store_extension_at(warp, ctx.memory, ii, seq, diag, s_start, s_end, score)
            i += stride


def dedup_hit_based(
    seed_packed: np.ndarray,
    ext_s_end_by_seed: np.ndarray,
) -> np.ndarray:
    """The host-side de-duplication mask for hit-based extension.

    Replays the covered-hit rule over the per-seed results: walking each
    (sequence, diagonal) group in ascending seed position, a seed's
    extension is kept iff the seed starts beyond the previous *kept*
    extension's subject end — reproducing exactly what the diagonal-based
    kernel computes inline, so both strategies yield identical final sets.

    Parameters
    ----------
    seed_packed:
        Packed seed elements in diagonal-major order (the kernel input).
    ext_s_end_by_seed:
        Subject end of each seed's extension, aligned with ``seed_packed``.

    Returns
    -------
    numpy.ndarray
        Boolean keep-mask aligned with ``seed_packed``.
    """
    n = seed_packed.size
    keep = np.zeros(n, dtype=bool)
    key = seed_packed >> 16
    spos = seed_packed & 0xFFFF
    reach = -1
    prev_key = None
    for k in range(n):
        if prev_key is None or key[k] != prev_key:
            prev_key = key[k]
            reach = -1
        if spos[k] > reach:
            keep[k] = True
            reach = int(ext_s_end_by_seed[k])
    return keep
