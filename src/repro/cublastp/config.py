"""cuBLASTP configuration.

The paper exposes three run-time knobs — number of bins per warp, ungapped
extension strategy, and PSSM-vs-BLOSUM placement — plus the hierarchical
buffering toggle its Fig. 17 ablates. All live here, with the launch
geometry the kernels share.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigError


class ExtensionMode(enum.Enum):
    """The three fine-grained ungapped-extension strategies (Fig. 9 b-d)."""

    DIAGONAL = "diagonal"
    HIT = "hit"
    WINDOW = "window"


@dataclass(frozen=True)
class CuBlastpConfig:
    """Tunable parameters of the cuBLASTP GPU path.

    Attributes
    ----------
    num_bins:
        Bins per warp for hit binning (the Fig. 14 sweep; 128 is the
        paper's chosen default).
    bin_capacity:
        Hit slots per bin. Overflow raises
        :class:`~repro.errors.GpuSimError` — sizing follows §3.3's
        "maximally possible size" argument, with headroom for the multiple
        sequences a warp processes under grid-striding.
    extension_mode:
        Which of Algorithms 3-5 runs phase 2 (paper default: window).
    window_size:
        Lanes per window for window-based extension (Fig. 8 uses 8).
    matrix_mode:
        ``"auto"`` applies §3.5's policy (PSSM in shared memory while it
        fits, BLOSUM62 otherwise); ``"pssm"``/``"blosum"`` force a choice
        for the Fig. 15 sweep.
    use_readonly_cache:
        Hierarchical buffering toggle (Fig. 17).
    hit_block_threads / ext_block_threads:
        Launch geometry of the lane-simulated kernels.
    cpu_threads:
        Threads for the CPU phases (gapped extension + traceback).
    num_db_blocks:
        Database blocks streamed through the GPU/CPU pipeline (Fig. 12).
    gapped_mode:
        Scheduling of the CPU gapped-extension phase: ``"wave"`` (the
        batched lanes x band wavefront DP) or ``"serial"`` (the scalar
        best-first loop, kept as the differential oracle). Results are
        identical either way; the verify matrix pins it.
    """

    num_bins: int = 128
    bin_capacity: int = 256
    extension_mode: ExtensionMode = ExtensionMode.WINDOW
    window_size: int = 8
    matrix_mode: str = "auto"
    use_readonly_cache: bool = True
    #: Enable the simulator's optional L2 model for this search's kernels
    #: (default timing omits L2; see DESIGN.md §5b and the L2 ablation).
    use_l2: bool = False
    #: Run every kernel under the memory sanitizer (racecheck/initcheck/
    #: boundscheck); any hazard fails the search with SanitizerError.
    #: Functional output is unchanged — only checked (docs/ANALYSIS.md).
    sanitize: bool = False
    hit_block_threads: int = 256
    ext_block_threads: int = 256
    cpu_threads: int = 4
    num_db_blocks: int = 4
    gapped_mode: str = "wave"

    def __post_init__(self) -> None:
        if self.num_bins < 1:
            raise ConfigError("num_bins must be positive")
        if self.bin_capacity < 1:
            raise ConfigError("bin_capacity must be positive")
        if self.matrix_mode not in ("auto", "pssm", "blosum"):
            raise ConfigError(f"unknown matrix_mode {self.matrix_mode!r}")
        if self.window_size not in (2, 4, 8, 16):
            raise ConfigError(
                "window_size must be 2/4/8/16 (a diagonal slot needs a "
                "left and a right window within one warp)"
            )
        if self.cpu_threads < 1:
            raise ConfigError("cpu_threads must be positive")
        if self.num_db_blocks < 1:
            raise ConfigError("num_db_blocks must be positive")
        if self.gapped_mode not in ("wave", "serial"):
            raise ConfigError(f"unknown gapped_mode {self.gapped_mode!r}")
