"""Window-based ungapped extension (Algorithm 5, Fig. 8, Fig. 9d).

A warp is split into window *pairs*: each diagonal being extended owns two
``window_size``-lane windows that walk the two directions of Fig. 8
concurrently — the right window from past the seed word, the left window
from before it. Per step a window loads ``window_size`` *consecutive*
subject residues (coalesced, unlike the per-lane scatter of the other two
strategies), computes the chunk's prefix sums with a window-local scan,
and applies the Fig. 8 logic: running best (PrefixSum), change-since-best
(ChangeSinceBest), drop flags (DropFlag). Walk divergence is quantised to
chunks and the two directions overlap, so the warp-level imbalance that
plagues hit-based extension collapses — the paper's argument for why this
strategy wins (Fig. 16).

Chunk semantics are bit-identical to the scalar walk: :func:`chunk_update`
advances the same (cur, best, best_steps) state the scalar loop maintains,
with the same strict-improvement, first-argmax tie-breaks; property tests
drive both over random series.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cublastp.ext_common import (
    SHARED_STRIDE,
    WarpOutputBuffer,
    setup_matrix_shared,
)
from repro.cublastp.buffering import MatrixMode
from repro.cublastp.filter_kernel import SeedList
from repro.cublastp.session import DeviceSession
from repro.gpusim.kernel import Kernel, KernelContext
from repro.gpusim.shared import SharedMemory
from repro.gpusim.warp import Warp

#: Sentinel for exhausted chunk positions (drop fires immediately).
_NEG = np.int64(-(2**40))


@dataclass
class WalkState:
    """One direction's walk state for one window (Fig. 8's registers)."""

    cur: int = 0
    best: int = 0
    best_steps: int = 0
    steps: int = 0
    stopped: bool = False


def chunk_update(state: WalkState, deltas: np.ndarray, x_drop: int) -> None:
    """Advance a walk by one window-sized chunk of score contributions.

    ``deltas`` holds the chunk's per-position scores with exhausted
    positions already set to a large negative sentinel (so the x-drop
    fires there, ending the walk at the boundary exactly like the scalar
    code).
    """
    if state.stopped:
        return
    w = deltas.size
    c = state.cur + np.cumsum(deltas.astype(np.int64))
    # Best-so-far *after* processing each position (scalar updates best
    # before testing the drop).
    run_best = np.maximum.accumulate(np.maximum(c, state.best))
    drop = run_best - c > x_drop
    if drop.any():
        ve = int(np.argmax(drop))
        state.stopped = True
    else:
        ve = w - 1
    cmax = int(c[: ve + 1].max())
    if cmax > state.best:
        state.best = cmax
        state.best_steps = state.steps + int(np.argmax(c[: ve + 1])) + 1
    if not state.stopped:
        state.cur = int(c[-1])
        state.steps += w


class WindowExtensionKernel(Kernel):
    """Window-pair-per-diagonal extension with cooperative chunked walks."""

    name = "ungapped_extension[window]"
    registers_per_thread = 40

    def __init__(self, session: DeviceSession, seeds: SeedList, x_drop: int, word_length: int) -> None:
        self.session = session
        self.seeds = seeds
        self.x_drop = x_drop
        self.word_length = word_length
        self.block_threads = session.config.ext_block_threads

    def setup_block(self, ctx: KernelContext, shared: SharedMemory, block_id: int) -> int:
        return setup_matrix_shared(self.session, shared)

    # -- window-cooperative score lookup ------------------------------------

    def _window_scores(
        self,
        warp: Warp,
        sabs: np.ndarray,
        qpos: np.ndarray,
        valid: np.ndarray,
    ) -> np.ndarray:
        """One chunk's score loads for every window at once (whole-warp ops).

        ``sabs``/``qpos`` are per-lane absolute subject offsets and query
        positions; ``valid`` masks exhausted positions. Subject loads are
        consecutive within each window — the coalescing win this strategy
        exists for.
        """
        s = self.session
        sc = np.full(warp.device.warp_size, _NEG, dtype=np.int64)
        with warp.where(valid):
            inner = warp.active
            code = warp.load(
                s.db_codes, np.where(inner, sabs, 0)
            ).astype(np.int64)
            q = np.where(inner, np.clip(qpos, 0, s.query_length - 1), 0)
            mode = s.placement.mode
            if mode is MatrixMode.PSSM_SHARED:
                val = warp.load_shared("pssm", q * SHARED_STRIDE + code).astype(np.int64)
            elif mode is MatrixMode.PSSM_GLOBAL:
                val = warp.load(s.pssm_buf, q * 32 + code).astype(np.int64)
            else:
                qc = warp.load_shared("qcodes", q).astype(np.int64)
                val = warp.load_shared("blosum", qc * SHARED_STRIDE + code).astype(np.int64)
            sc = np.where(inner, val, sc)
        return sc

    def run_warp(self, ctx: KernelContext, warp: Warp, block_id: int, warp_in_block: int) -> None:
        s = self.session
        dev = ctx.device
        cfg = s.config
        qlen = s.query_length
        W = self.word_length
        wsize = cfg.window_size
        pair = 2 * wsize  # a diagonal slot: right window + left window
        nslots = dev.warp_size // pair
        n_groups = self.seeds.num_groups
        n_seeds = len(self.seeds)
        if n_seeds == 0:
            return
        seeds_buf = ctx.memory.buffers["seed_list"]
        groups_buf = ctx.memory.buffers["seed_groups"]
        out = WarpOutputBuffer()

        slot_of_lane = warp.lane_id // pair
        sub = warp.lane_id % pair
        is_right = sub < wsize  # per-lane walk direction (Fig. 8's windows)
        wlane = sub % wsize

        g = warp.warp_id * nslots + np.arange(nslots, dtype=np.int64)
        stride = warp.num_warps * nslots

        while True:
            slot_live = g < n_groups
            warp.alu()  # outer loop bookkeeping
            if not slot_live.any():
                break
            gi = np.minimum(g, n_groups - 1)
            lane_live = slot_live[slot_of_lane]
            with warp.where(lane_live):
                lo_l = warp.load(groups_buf, gi[slot_of_lane]).astype(np.int64)
                hi_l = warp.load(groups_buf, gi[slot_of_lane] + 1).astype(np.int64)
                head = warp.load(seeds_buf, np.minimum(lo_l, n_seeds - 1))
                warp.alu()
                seq_l = head >> 32
                off_l = warp.load(s.db_offsets, seq_l).astype(np.int64)
                end_l = warp.load(s.db_offsets, seq_l + 1).astype(np.int64)
            # Slot-level copies of the uniform values (lane 0 of each slot).
            lo = lo_l[::pair].copy()
            hi = hi_l[::pair].copy()
            seq_w = (head >> 32)[::pair].copy()
            off_w = off_l[::pair].copy()
            end_w = end_l[::pair].copy()

            h = lo.copy()
            reach = np.full(nslots, -1, dtype=np.int64)
            # Hit loop: slots with remaining seeds iterate; finished slots
            # idle (divergence across slots, as in Alg. 5).
            hit_live = slot_live & (h < hi)
            while hit_live.any():
                warp.alu()  # hit-loop bookkeeping
                hi_idx = np.minimum(h, n_seeds - 1)
                with warp.where(hit_live[slot_of_lane]):
                    elem_l = warp.load(seeds_buf, hi_idx[slot_of_lane])
                warp.alu(2)
                elem = elem_l[::pair]
                diag_w = (elem >> 16) & 0xFFFF
                spos_w = elem & 0xFFFF
                qpos_w = spos_w - (diag_w - qlen)
                trig = hit_live & (spos_w > reach)

                if trig.any():
                    # Seed word score: lanes 0..W-1 of each right window
                    # score the word positions in one load round.
                    word_valid = is_right & (wlane < W) & trig[slot_of_lane]
                    sabs = off_w[slot_of_lane] + spos_w[slot_of_lane] + wlane
                    qp = qpos_w[slot_of_lane] + wlane
                    sc = self._window_scores(warp, sabs, qp, word_valid)
                    warp.alu()  # window reduction of the word score
                    word_w = np.where(
                        trig,
                        np.where(sc == _NEG, 0, sc).reshape(nslots, pair).sum(axis=1),
                        0,
                    )

                    right = [WalkState(stopped=not t) for t in trig]
                    left = [WalkState(stopped=not t) for t in trig]
                    self._walk_both(
                        warp, right, left, trig, off_w, end_w, qpos_w, spos_w,
                        slot_of_lane, is_right, wlane, nslots, wsize,
                    )
                    warp.alu(2)  # assemble the extension record
                    gain_r = np.array([st.best if st.best > 0 else 0 for st in right])
                    steps_r = np.array([st.best_steps if st.best > 0 else 0 for st in right])
                    gain_l = np.array([st.best if st.best > 0 else 0 for st in left])
                    steps_l = np.array([st.best_steps if st.best > 0 else 0 for st in left])
                    s_start_w = spos_w - steps_l
                    s_end_w = spos_w + W - 1 + steps_r
                    score_w = word_w + gain_l + gain_r
                    reach = np.where(trig, s_end_w, reach)

                    # Lane 0 of each triggered slot buffers the result.
                    store_mask = (sub == 0) & trig[slot_of_lane]
                    with warp.where(store_mask):
                        out.append(
                            warp,
                            seq_w[slot_of_lane],
                            diag_w[slot_of_lane],
                            s_start_w[slot_of_lane],
                            s_end_w[slot_of_lane],
                            score_w[slot_of_lane],
                        )

                h = np.where(hit_live, h + 1, h)
                hit_live = slot_live & (h < hi)
            g = g + stride
        out.flush(warp, ctx.memory)

    def _walk_both(
        self,
        warp: Warp,
        right: list[WalkState],
        left: list[WalkState],
        trig: np.ndarray,
        off_w: np.ndarray,
        end_w: np.ndarray,
        qpos_w: np.ndarray,
        spos_w: np.ndarray,
        slot_of_lane: np.ndarray,
        is_right: np.ndarray,
        wlane: np.ndarray,
        nslots: int,
        wsize: int,
    ) -> None:
        """Chunked cooperative walk, both directions of every slot at once.

        The right and left windows of a slot advance in the same warp
        iteration (Fig. 8 runs them concurrently), so a lopsided extension
        only stalls one window while the other direction — and the other
        slots — keep issuing useful work.
        """
        s = self.session
        qlen = s.query_length
        W = self.word_length
        while True:
            walk_r = np.array([not st.stopped for st in right]) & trig
            walk_l = np.array([not st.stopped for st in left]) & trig
            warp.alu()  # walk-loop bookkeeping
            if not (walk_r.any() or walk_l.any()):
                return
            steps_r = np.array([st.steps for st in right], dtype=np.int64)
            steps_l = np.array([st.steps for st in left], dtype=np.int64)
            # Per-lane step index: right lanes advance from past the word's
            # end, left lanes from before its start.
            t_r = steps_r[slot_of_lane] + 1 + wlane
            t_l = steps_l[slot_of_lane] + 1 + wlane
            q = np.where(
                is_right,
                qpos_w[slot_of_lane] + W - 1 + t_r,
                qpos_w[slot_of_lane] - t_l,
            )
            sabs = np.where(
                is_right,
                off_w[slot_of_lane] + spos_w[slot_of_lane] + W - 1 + t_r,
                off_w[slot_of_lane] + spos_w[slot_of_lane] - t_l,
            )
            inb = np.where(
                is_right,
                (q < qlen) & (sabs < end_w[slot_of_lane]),
                (q >= 0) & (sabs >= off_w[slot_of_lane]),
            )
            lane_walk = np.where(is_right, walk_r[slot_of_lane], walk_l[slot_of_lane])
            valid = inb & lane_walk
            sc = self._window_scores(warp, sabs, q, valid)
            # Window-local scan + Fig. 8 chunk logic (PrefixSum,
            # ChangeSinceBest, DropFlag): a log2(w) scan + a few ALU ops.
            warp.alu(3 + 3)
            chunks = sc.reshape(nslots, 2, wsize)  # [slot, direction, lane]
            for slot in range(nslots):
                if walk_r[slot]:
                    chunk_update(right[slot], chunks[slot, 0], self.x_drop)
                if walk_l[slot]:
                    chunk_update(left[slot], chunks[slot, 1], self.x_drop)
