"""The bin data structure: 64-bit packed hits grouped by diagonal (Fig. 7).

A bin element packs ``(sequence number, diagonal number, subject position)``
into one integer::

    63           32 31            16 15             0
    +--------------+----------------+---------------+
    | sequence id  |  diagonal      | subject pos   |
    +--------------+----------------+---------------+

exactly the layout the paper motivates: 16 bits suffice for the diagonal
and the subject position because the longest NR sequence is 36,805 letters,
and one ascending sort of the packed value orders hits by sequence, then
diagonal, then subject position — the diagonal-major order ungapped
extension consumes. The query position is recoverable as
``subject_pos - (diagonal - query_length)``, so one 8-byte load yields
everything extension needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SequenceError

#: Field widths of the packed element.
_DIAG_BITS = 16
_POS_BITS = 16
_POS_MASK = (1 << _POS_BITS) - 1
_DIAG_MASK = (1 << _DIAG_BITS) - 1


def pack_hits(seq_id: np.ndarray, diagonal: np.ndarray, subject_pos: np.ndarray) -> np.ndarray:
    """Pack hit fields into 64-bit bin elements.

    Raises
    ------
    SequenceError
        When a diagonal or subject position exceeds its 16-bit field —
        the same limit the paper derives from the NR database.
    """
    seq_id = np.asarray(seq_id, dtype=np.int64)
    diagonal = np.asarray(diagonal, dtype=np.int64)
    subject_pos = np.asarray(subject_pos, dtype=np.int64)
    if diagonal.size and (diagonal.min() < 0 or diagonal.max() > _DIAG_MASK):
        raise SequenceError("diagonal number exceeds the 16-bit bin field")
    if subject_pos.size and (subject_pos.min() < 0 or subject_pos.max() > _POS_MASK):
        raise SequenceError("subject position exceeds the 16-bit bin field")
    if seq_id.size and (seq_id.min() < 0 or seq_id.max() >= (1 << 31)):
        raise SequenceError("sequence id exceeds the 32-bit bin field")
    return (seq_id << (_DIAG_BITS + _POS_BITS)) | (diagonal << _POS_BITS) | subject_pos


def unpack_hits(packed: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Inverse of :func:`pack_hits`: ``(seq_id, diagonal, subject_pos)``."""
    packed = np.asarray(packed, dtype=np.int64)
    subject_pos = packed & _POS_MASK
    diagonal = (packed >> _POS_BITS) & _DIAG_MASK
    seq_id = packed >> (_DIAG_BITS + _POS_BITS)
    return seq_id, diagonal, subject_pos


def bin_of_diagonal(diagonal: np.ndarray, num_bins: int) -> np.ndarray:
    """Bin index of a diagonal: ``diagonal mod num_bins`` (Algorithm 2, l.16)."""
    return np.asarray(diagonal, dtype=np.int64) % num_bins


@dataclass
class BinnedHits:
    """Hits after binning, assembly and (optionally) sorting.

    The layout mirrors the assembled buffer of Fig. 6(a): one contiguous
    ``packed`` array of bin elements plus CSR ``segment_offsets`` where
    segment ``k`` is bin ``k % num_bins`` of warp ``k // num_bins``.

    Attributes
    ----------
    packed:
        ``int64`` bin elements, segment by segment.
    segment_offsets:
        ``int64`` array of length ``num_segments + 1``.
    num_bins:
        Bins per warp used at binning time.
    query_length:
        Needed to recover query positions from diagonals.
    is_sorted:
        Whether each segment is in ascending packed order.
    """

    packed: np.ndarray
    segment_offsets: np.ndarray
    num_bins: int
    query_length: int
    is_sorted: bool = False

    @property
    def num_segments(self) -> int:
        return int(self.segment_offsets.size - 1)

    def __len__(self) -> int:
        return int(self.packed.size)

    def segment(self, k: int) -> np.ndarray:
        """Bin elements of segment ``k``."""
        return self.packed[self.segment_offsets[k] : self.segment_offsets[k + 1]]

    def query_positions(self) -> np.ndarray:
        """Query position of every element (``spos - (diag - query_len)``)."""
        _, diagonal, subject_pos = unpack_hits(self.packed)
        return subject_pos - (diagonal - self.query_length)

    def as_hit_tuples(self) -> set[tuple[int, int, int]]:
        """All hits as ``(seq_id, query_pos, subject_pos)`` (order-free)."""
        seq_id, diagonal, subject_pos = unpack_hits(self.packed)
        query_pos = subject_pos - (diagonal - self.query_length)
        return set(zip(seq_id.tolist(), query_pos.tolist(), subject_pos.tolist()))
