"""Device session: buffer setup shared by every cuBLASTP GPU kernel.

One :class:`DeviceSession` corresponds to one search's device state: the
packed database, the DFA split across the memory hierarchy (state table ->
shared at block setup; word entries and position lists -> read-only-cached
global memory), the scoring structure, and the working buffers the kernels
hand to each other. It also records the host-to-device byte volume the
pipeline model charges to PCIe.
"""

from __future__ import annotations

import numpy as np

from repro.cublastp.buffering import MatrixPlacement, choose_matrix_placement
from repro.cublastp.config import CuBlastpConfig
from repro.gpusim.device import DeviceSpec, K20C
from repro.gpusim.kernel import KernelContext
from repro.gpusim.memory import MemorySpace
from repro.io.database import SequenceDatabase
from repro.matrices.blosum import ScoringMatrix
from repro.matrices.pssm import build_pssm
from repro.seeding.dfa import QueryDFA
from repro.seeding.words import Neighborhood

#: Bit split of a packed DFA word entry: position-list offset << 20 | count.
WORD_ENTRY_SHIFT = 20
WORD_ENTRY_COUNT_MASK = (1 << WORD_ENTRY_SHIFT) - 1


def pack_word_entries(neighborhood: Neighborhood) -> np.ndarray:
    """Pack each word's (offset, count) into one int64 — one load per word.

    The count always fits 20 bits (a word matches at most ``query_length``
    positions); offsets are bounded by the total neighbourhood size.
    """
    offsets = neighborhood.offsets[:-1].astype(np.int64)
    counts = np.diff(neighborhood.offsets).astype(np.int64)
    if counts.size and int(counts.max()) > WORD_ENTRY_COUNT_MASK:
        raise ValueError("position-list count exceeds the packed entry field")
    return (offsets << WORD_ENTRY_SHIFT) | counts


class DeviceSession:
    """Device-resident state of one cuBLASTP search.

    Parameters
    ----------
    query_codes:
        Encoded query.
    dfa:
        The query's DFA (state table + neighbourhood position lists).
    db:
        Subject database (uploaded packed).
    config:
        cuBLASTP configuration.
    matrix:
        Scoring matrix (for the BLOSUM-in-shared placement).
    device:
        Simulated device (defaults to the K20c).
    """

    def __init__(
        self,
        query_codes: np.ndarray,
        dfa: QueryDFA,
        db: SequenceDatabase,
        config: CuBlastpConfig,
        matrix: ScoringMatrix,
        device: DeviceSpec = K20C,
    ) -> None:
        self.device = device
        self.config = config
        self.db = db
        self.dfa = dfa
        self.query_codes = np.asarray(query_codes, dtype=np.uint8)
        self.query_length = int(self.query_codes.size)
        self.ctx = KernelContext(
            device=device,
            use_readonly_cache=config.use_readonly_cache,
            use_l2=config.use_l2,
            sanitize=config.sanitize,
        )

        mem = self.ctx.memory
        # Database: packed codes + offsets. Scanned start-to-end by warps in
        # lane order, so plain global memory (coalesced by construction).
        # ``asarray`` keeps the upload zero-copy: a DatabaseView (or an
        # mmap-loaded database) hands its shared buffer straight to the
        # simulated device — the kernels only ever read it.
        self.db_codes = mem.alloc("db_codes", np.asarray(db.codes, dtype=np.uint8))
        self.db_offsets = mem.alloc("db_offsets", np.asarray(db.offsets, dtype=np.int64))

        # DFA split (Fig. 10): word entries + position lists are read-only
        # cached; the state table is copied to shared memory per block.
        entries = pack_word_entries(dfa.neighborhood)
        self.word_entries = mem.alloc("dfa_word_entries", entries, MemorySpace.READONLY)
        self.positions = mem.alloc(
            "dfa_positions", dfa.positions.astype(np.int32), MemorySpace.READONLY
        )
        #: Shared-memory DFA state table: one int64 record per state holding
        #: the state's base index into the word-entry table (Cameron's
        #: per-state word-block pointer). State ``s`` owns the contiguous
        #: word block ``[s * A, (s + 1) * A)``.
        words_per_state = self.word_entries.data.size // dfa.num_states
        self.dfa_state_records = (
            np.arange(dfa.num_states, dtype=np.int64) * words_per_state
        )

        # Scoring structure. PSSM layout is column-major 32-row padded
        # (64 B per query position, §3.5): flat index = qpos * 32 + code.
        pssm = build_pssm(self.query_codes, matrix)
        padded = np.zeros((self.query_length, 32), dtype=np.int16)
        padded[:, : pssm.shape[0]] = pssm.T
        self.pssm_padded = padded  # host copy, global layout (stride 32)
        self.pssm_buf = mem.alloc("pssm", padded.reshape(-1), MemorySpace.READONLY)
        # Shared-memory copies use a 33-column stride: the odd stride
        # spreads same-row accesses across banks (the classic padding
        # trick), killing the conflicts a power-of-two stride guarantees.
        self.pssm_shared = np.zeros((self.query_length, 33), dtype=np.int16)
        self.pssm_shared[:, :32] = padded
        blosum_padded = np.zeros((32, 32), dtype=np.int16)
        blosum_padded[: matrix.scores.shape[0], : matrix.scores.shape[1]] = matrix.scores
        self.blosum_padded = blosum_padded
        self.blosum_shared = np.zeros((32, 33), dtype=np.int16)
        self.blosum_shared[:, :32] = blosum_padded
        self.query_buf = mem.alloc("query_codes", self.query_codes, MemorySpace.READONLY)

        self.placement: MatrixPlacement = choose_matrix_placement(
            config.matrix_mode, self.query_length, device
        )

        #: Host-to-device upload volume for the PCIe model.
        self.h2d_bytes = (
            self.db_codes.nbytes
            + self.db_offsets.nbytes
            + self.word_entries.nbytes
            + self.positions.nbytes
            + self.pssm_buf.nbytes
            + self.query_buf.nbytes
        )
