"""Diagonal-based ungapped extension (Algorithm 3, Fig. 9b).

One thread per diagonal group: the lane iterates its diagonal's seeds in
ascending subject position and extends each seed not covered by the
previous extension (`ext_reach`). The covered-hit check is the divergent
branch the paper calls out — lanes whose seed is covered idle while their
warp-mates extend — and the per-lane scalar walk adds the usual
load-imbalance serialisation on top.
"""

from __future__ import annotations

import numpy as np

from repro.cublastp.ext_common import (
    WarpOutputBuffer,
    lane_walk,
    lane_word_score,
    score_lookup,  # noqa: F401  (re-exported for tests poking the kernel)
    setup_matrix_shared,
)
from repro.cublastp.filter_kernel import SeedList
from repro.cublastp.session import DeviceSession
from repro.gpusim.kernel import Kernel, KernelContext
from repro.gpusim.shared import SharedMemory
from repro.gpusim.warp import Warp


class DiagonalExtensionKernel(Kernel):
    """Thread-per-diagonal extension."""

    name = "ungapped_extension[diagonal]"
    registers_per_thread = 48

    def __init__(self, session: DeviceSession, seeds: SeedList, x_drop: int, word_length: int) -> None:
        self.session = session
        self.seeds = seeds
        self.x_drop = x_drop
        self.word_length = word_length
        self.block_threads = session.config.ext_block_threads

    def setup_block(self, ctx: KernelContext, shared: SharedMemory, block_id: int) -> int:
        return setup_matrix_shared(self.session, shared)

    def run_warp(self, ctx: KernelContext, warp: Warp, block_id: int, warp_in_block: int) -> None:
        s = self.session
        dev = ctx.device
        qlen = s.query_length
        seeds_buf = ctx.memory.buffers["seed_list"]
        groups_buf = ctx.memory.buffers["seed_groups"]
        n_groups = self.seeds.num_groups
        n_seeds = len(self.seeds)
        if n_seeds == 0:
            return
        lane = warp.lane_id
        g = warp.warp_id * dev.warp_size + lane
        stride = warp.num_warps * dev.warp_size
        out = WarpOutputBuffer()

        for _ in warp.loop_while(lambda: g < n_groups):
            gi = np.minimum(g, n_groups - 1)
            lo = warp.load(groups_buf, gi).astype(np.int64)
            hi = warp.load(groups_buf, gi + 1).astype(np.int64)
            # Hoist the group's sequence bounds: a diagonal group lives in
            # exactly one subject sequence.
            head = warp.load(seeds_buf, np.minimum(lo, n_seeds - 1))
            warp.alu()
            seq = head >> 32
            off = warp.load(s.db_offsets, seq).astype(np.int64)
            end = warp.load(s.db_offsets, seq + 1).astype(np.int64)
            h = lo.copy()
            reach = np.full(dev.warp_size, -1, dtype=np.int64)
            for _ in warp.loop_while(lambda: h < hi):
                elem = warp.load(seeds_buf, np.minimum(h, n_seeds - 1))
                warp.alu(2)  # unpack diagonal / subject position, query pos
                diag = (elem >> 16) & 0xFFFF
                spos = elem & 0xFFFF
                qpos = spos - (diag - qlen)
                with warp.where(spos > reach):
                    inner = warp.active
                    word = lane_word_score(warp, s, off, qpos, spos, self.word_length)
                    gain_r, steps_r = lane_walk(
                        warp, s, off, end, qpos, spos, qlen, self.x_drop, +1, self.word_length
                    )
                    gain_l, steps_l = lane_walk(
                        warp, s, off, off, qpos, spos, qlen, self.x_drop, -1, self.word_length
                    )
                    warp.alu(2)  # assemble segment bounds and score
                    s_start = spos - steps_l
                    s_end = spos + self.word_length - 1 + steps_r
                    score = word + gain_l + gain_r
                    reach = np.where(inner, s_end, reach)
                    out.append(warp, seq, diag, s_start, s_end, score)
                h += 1
            g += stride
        out.flush(warp, ctx.memory)
