"""End-to-end cuBLASTP execution: kernels, CPU phases, and the Fig. 12
pipeline that overlaps them.

The GPU kernels run once over the whole database (the simulator's work
counters are additive, so per-block times are the measured totals split by
block residue share — DESIGN.md §2); the pipeline schedule then streams
``num_db_blocks`` blocks through the four resources (H2D channel, GPU, D2H
channel, CPU) and reports both the overlapped wall time and the per-stage
breakdown Fig. 19(d) plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.core.pipeline import BlastpPipeline
from repro.core.results import Alignment, ExtensionArray
from repro.core.statistics import Cutoffs
from repro.cublastp.config import CuBlastpConfig
from repro.cublastp.cpu_phases import CpuPhaseResult, run_cpu_phases
from repro.cublastp.extension import run_extension
from repro.cublastp.filter_kernel import run_filter
from repro.cublastp.hit_detection_kernel import run_hit_detection
from repro.cublastp.session import DeviceSession
from repro.cublastp.sort_kernel import run_assemble, run_segmented_sort
from repro.gpusim.profiler import KernelProfile
from repro.gpusim.transfer import TransferModel
from repro.io.database import SequenceDatabase
from repro.perfmodel.calibration import CPU_CLOCK_GHZ, DEFAULT_COSTS
from repro.perfmodel.cpu_cost import gapped_work_items, thread_makespan_ms, traceback_work_items

if TYPE_CHECKING:
    from repro.engine.events import EventLog


@dataclass
class GpuPhaseResult:
    """Kernel outputs + profiles of the GPU side of one search."""

    profiles: dict[str, KernelProfile]
    extensions: ExtensionArray
    num_hits: int
    num_seeds: int
    survival_ratio: float
    h2d_bytes: int
    d2h_bytes: int

    def kernel_ms(self, name: str) -> float:
        return self.profiles[name].elapsed_ms() if name in self.profiles else 0.0

    @property
    def critical_ms(self) -> float:
        """Total modelled time of all GPU kernels (the critical phases)."""
        return sum(p.elapsed_ms() for p in self.profiles.values())


@dataclass
class CuBlastpReport:
    """Complete timing story of one cuBLASTP search."""

    gpu: GpuPhaseResult
    cpu: CpuPhaseResult
    h2d_ms: float
    d2h_ms: float
    other_ms: float
    overall_ms: float
    #: Sum of all stage times had nothing overlapped.
    serial_ms: float
    num_db_blocks: int
    breakdown: dict[str, float] = field(default_factory=dict)

    @property
    def overlap_saved_ms(self) -> float:
        """Time hidden by the Fig. 12 pipeline."""
        return max(0.0, self.serial_ms - self.overall_ms)


def run_gpu_phases(
    session: DeviceSession,
    pipe: BlastpPipeline,
    cutoffs: Cutoffs,
) -> GpuPhaseResult:
    """Run the five GPU kernels over the whole database."""
    binned, p_hit = run_hit_detection(session)
    binned, p_asm = run_assemble(binned, session.device)
    sorted_b, p_sort = run_segmented_sort(binned, session.device)
    seeds, p_filter = run_filter(
        session, sorted_b, pipe.params.word_length, pipe.params.two_hit_window
    )
    extensions, p_ext = run_extension(
        session, seeds, cutoffs.x_drop_ungapped, pipe.params.word_length
    )
    # Under CuBlastpConfig(sanitize=True) every launch above recorded its
    # accesses; any accumulated hazard fails the search here, after the
    # whole GPU side ran (one report covers all five kernels).
    if session.ctx.sanitizer is not None:
        session.ctx.sanitizer.raise_if_dirty()
    profiles = {
        "hit_detection": p_hit,
        "hit_assembling": p_asm,
        "hit_sorting": p_sort,
        "hit_filtering": p_filter,
        "ungapped_extension": p_ext,
    }
    return GpuPhaseResult(
        profiles=profiles,
        extensions=extensions,
        num_hits=len(binned),
        num_seeds=len(seeds),
        survival_ratio=float(p_filter.extra.get("survival_ratio", 0.0)),
        h2d_bytes=session.h2d_bytes,
        d2h_bytes=int(p_ext.extra.get("d2h_bytes", 0)),
    )


def host_other_ms(db: SequenceDatabase, query_length: int) -> float:
    """Modelled host-side 'Other' time: database read, DFA/PSSM build, output.

    Charged at a couple of cycles per database byte (read + encode) plus
    the neighbourhood construction over all words x query positions — the
    residual the paper measures at ~18 % of the *accelerated* total
    (Fig. 19d, 'Other') and ~2 % of FSA-BLAST's.
    """
    db_cycles = int(db.codes.size) * 2.0
    build_cycles = query_length * 13824 * 0.01
    return (db_cycles + build_cycles) / (CPU_CLOCK_GHZ * 1e9) * 1e3


def pipeline_schedule(
    block_share: np.ndarray,
    gpu_total_ms: float,
    h2d_total_ms: float,
    d2h_total_ms: float,
    cpu_block_ms: np.ndarray,
) -> float:
    """Event-driven schedule of the Fig. 12 pipeline; returns the makespan.

    Four resources: the H2D PCIe channel, the GPU, the D2H channel (PCIe
    is full duplex) and the CPU. Block ``b`` flows H2D -> GPU -> D2H ->
    CPU, each resource processing blocks in order.
    """
    n = block_share.size
    h2d_free = gpu_free = d2h_free = cpu_free = 0.0
    done = 0.0
    for b in range(n):
        h2d_done = h2d_free + h2d_total_ms * block_share[b]
        h2d_free = h2d_done
        gpu_done = max(h2d_done, gpu_free) + gpu_total_ms * block_share[b]
        gpu_free = gpu_done
        d2h_done = max(gpu_done, d2h_free) + d2h_total_ms * block_share[b]
        d2h_free = d2h_done
        cpu_done = max(d2h_done, cpu_free) + float(cpu_block_ms[b])
        cpu_free = cpu_done
        done = cpu_done
    return done


def run_cublastp(
    pipe: BlastpPipeline,
    db: SequenceDatabase,
    session: DeviceSession,
    config: CuBlastpConfig,
    events: "EventLog | None" = None,
    query_id: str | None = None,
) -> tuple[list[Alignment], CuBlastpReport]:
    """Full cuBLASTP search: GPU phases, CPU phases, pipeline timing.

    With an :class:`~repro.engine.events.EventLog`, every stage emits a
    start/end event pair carrying its work-item count and the modelled
    time the report attributes to it (kernel profile times, blocked CPU
    makespans, PCIe transfers, host 'other') — the stream sums to the
    report's ``serial_ms``.
    """
    cutoffs = pipe.cutoffs(db)
    gpu = run_gpu_phases(session, pipe, cutoffs)
    cpu = run_cpu_phases(
        pipe, gpu.extensions, db, cutoffs, threads=config.cpu_threads
    )

    transfer = TransferModel()
    h2d_ms = transfer.h2d_ms(gpu.h2d_bytes)
    d2h_ms = transfer.d2h_ms(gpu.d2h_bytes)
    other_ms = host_other_ms(db, pipe.query_length)

    # Block split: the storage layer's residue-balanced contiguous cuts —
    # the same bounds ``db.blocks()`` turns into zero-copy views, so the
    # streamed blocks share the resident code buffer instead of copying
    # it. CPU work is assigned by the block that owns each gapped
    # extension's sequence.
    bounds = db.block_bounds(config.num_db_blocks)
    blocks = bounds.size - 1
    residues = db.offsets[bounds[1:]] - db.offsets[bounds[:-1]]
    share = residues / max(1, int(db.codes.size))
    gap_block = np.zeros(blocks)
    tb_block = np.zeros(blocks)
    for b in range(blocks):
        in_block = [
            g
            for g in cpu.gapped_extensions
            if bounds[b] <= g.seq_id < bounds[b + 1]
        ]
        reported = [g for g in in_block if g.score >= cutoffs.report_cutoff]
        gap_block[b] = thread_makespan_ms(
            gapped_work_items(in_block, DEFAULT_COSTS), config.cpu_threads, DEFAULT_COSTS
        )
        tb_block[b] = thread_makespan_ms(
            traceback_work_items(reported, DEFAULT_COSTS), config.cpu_threads, DEFAULT_COSTS
        )
    cpu_block = gap_block + tb_block

    gpu_ms = gpu.critical_ms
    pipelined = pipeline_schedule(share, gpu_ms, h2d_ms, d2h_ms, cpu_block)
    overall = pipelined + other_ms

    # The breakdown is the canonical stage decomposition; its CPU entries
    # are the *blocked* phase times (what the pipeline actually executes),
    # so the serial reference is exactly the breakdown's sum and the
    # overlap saving isolates the pipeline's effect.
    breakdown = {
        "hit_detection": gpu.kernel_ms("hit_detection"),
        "hit_sorting": gpu.kernel_ms("hit_assembling") + gpu.kernel_ms("hit_sorting"),
        "hit_filtering": gpu.kernel_ms("hit_filtering"),
        "ungapped_extension": gpu.kernel_ms("ungapped_extension"),
        "data_transfer": h2d_ms + d2h_ms,
        "gapped_extension": float(gap_block.sum()),
        "final_alignment": float(tb_block.sum()),
        "other": other_ms,
    }
    serial = sum(breakdown.values())
    if events is not None:
        stage_items = {
            "hit_detection": gpu.num_hits,
            "hit_sorting": gpu.num_hits,
            "hit_filtering": gpu.num_seeds,
            "ungapped_extension": len(gpu.extensions),
            "data_transfer": gpu.h2d_bytes + gpu.d2h_bytes,
            "gapped_extension": len(cpu.gapped_extensions),
            "final_alignment": len(cpu.alignments),
            "other": None,
        }
        for stage, ms in breakdown.items():
            with events.phase("cuBLASTP", stage, query_id=query_id) as ev:
                ev["work_items"] = stage_items.get(stage)
                ev["modelled_ms"] = ms
    report = CuBlastpReport(
        gpu=gpu,
        cpu=cpu,
        h2d_ms=h2d_ms,
        d2h_ms=d2h_ms,
        other_ms=other_ms,
        overall_ms=overall,
        serial_ms=serial,
        num_db_blocks=blocks,
        breakdown=breakdown,
    )
    return cpu.alignments, report


def run_cublastp_batch(
    pipelines: "list[BlastpPipeline]",
    db: SequenceDatabase,
    *,
    block_residues: int | None = None,
    blocks: "list[SequenceDatabase] | None" = None,
    events: "EventLog | None" = None,
) -> list:
    """Batched cuBLASTP driver: one blocked database sweep per query batch.

    The per-query entry point (:func:`run_cublastp`) prices every kernel
    for one query at a time; batching that way would still walk the
    database once per query. The batch driver instead inverts the loop
    the way the Fig. 12 schedule streams blocks: a merged
    :class:`~repro.seeding.multi_query.MultiQueryIndex` sweeps each block
    once for the whole batch, block-local two-hit filtering + ungapped
    extension untag the surviving seeds per query, and the CPU phases
    finish each query as usual. Output is pinned identical to the
    per-query path (cuBLASTP's output equals the reference pipeline's by
    construction, and the sweep equals the reference pipeline's sweep).

    Returns ``(SearchResult, PhaseCounts)`` per query, in input order,
    with phase events emitted under the ``cuBLASTP`` engine name.
    """
    from repro.core.sweep import search_batch_sweep

    return search_batch_sweep(
        pipelines,
        db,
        block_residues=block_residues,
        blocks=blocks,
        engine_name="cuBLASTP",
        events=events,
    )
