"""Shared machinery of the three ungapped-extension kernels.

All three strategies (Algorithms 3-5) need the same ingredients: a score
lookup routed through the §3.5 matrix placement, an x-drop walk whose
semantics are bit-identical to :func:`repro.core.ungapped.ungapped_extend`
(same strict-improvement, first-argmax tie-break), and an output buffer
written through an atomic cursor. The walk state helpers here are careful
to express every update as masked numpy so that lanes at different walk
stages coexist in one warp — which is precisely the divergence the three
strategies trade off differently.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.results import ExtensionArray, UngappedExtension
from repro.cublastp.buffering import MatrixMode
from repro.cublastp.session import DeviceSession
from repro.gpusim.shared import SharedMemory
from repro.gpusim.warp import Warp

#: Output encoding: ``ext_b = (subject_end << 32) | (score + SCORE_BIAS)``.
SCORE_BIAS = 1 << 20


#: Shared-memory matrix row stride (32 data columns + 1 padding column).
SHARED_STRIDE = 33


def setup_matrix_shared(session: DeviceSession, shared: SharedMemory) -> int:
    """Allocate the placement-dependent shared regions for one block.

    Returns the bytes cooperatively loaded from global memory (the padding
    column is written locally, not transferred).
    """
    placement = session.placement
    if placement.mode is MatrixMode.PSSM_SHARED:
        shared.alloc_from("pssm", session.pssm_shared.reshape(-1))
        return int(session.pssm_padded.nbytes)
    if placement.mode is MatrixMode.BLOSUM_SHARED:
        shared.alloc_from("blosum", session.blosum_shared.reshape(-1))
        shared.alloc_from("qcodes", session.query_codes)
        return int(session.blosum_padded.nbytes) + int(session.query_codes.nbytes)
    return 0  # PSSM_GLOBAL: nothing resident in shared memory


def score_lookup(warp: Warp, session: DeviceSession, qpos: np.ndarray, scode: np.ndarray) -> np.ndarray:
    """Score subject residue codes against query positions (per lane).

    Indices must already be clamped in-range for inactive lanes. Issue
    cost: one shared/read-only load for the PSSM placements, two shared
    loads for BLOSUM (Fig. 2c's extra access).
    """
    mode = session.placement.mode
    qpos = np.asarray(qpos, dtype=np.int64)
    scode = np.asarray(scode, dtype=np.int64)
    if mode is MatrixMode.PSSM_SHARED:
        return warp.load_shared("pssm", qpos * SHARED_STRIDE + scode).astype(np.int64)
    if mode is MatrixMode.PSSM_GLOBAL:
        return warp.load(session.pssm_buf, qpos * 32 + scode).astype(np.int64)
    qc = warp.load_shared("qcodes", qpos).astype(np.int64)
    return warp.load_shared("blosum", qc * SHARED_STRIDE + scode).astype(np.int64)


def lane_word_score(
    warp: Warp,
    session: DeviceSession,
    off: np.ndarray,
    q0: np.ndarray,
    s0: np.ndarray,
    word_length: int,
    score_fn=None,
) -> np.ndarray:
    """Per-lane seed-word score (scattered subject loads, W score lookups).

    ``score_fn(warp, qpos, scode)`` overrides the placement-routed lookup —
    the coarse baselines pass their global-memory score path so the walk
    semantics stay shared while the memory behaviour differs.
    """
    score = np.zeros(warp.device.warp_size, dtype=np.int64)
    for t in range(word_length):
        code = warp.load(session.db_codes, off + s0 + t).astype(np.int64)
        if score_fn is None:
            sc = score_lookup(warp, session, q0 + t, code)
        else:
            sc = score_fn(warp, q0 + t, code)
        warp.alu()
        score += sc
    return score


def lane_walk(
    warp: Warp,
    session: DeviceSession,
    off: np.ndarray,
    end_or_start: np.ndarray,
    q0: np.ndarray,
    s0: np.ndarray,
    qlen: int,
    x_drop: int,
    direction: int,
    word_length: int,
    score_fn=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-lane scalar x-drop walk (one residue per lane per iteration).

    ``direction=+1`` walks right from past the word's end (bounds checked
    against ``end_or_start`` = sequence end offset); ``direction=-1`` walks
    left from before the word (``end_or_start`` = sequence start offset).
    All lanes active in the caller's mask walk simultaneously; lanes whose
    walk terminates drop out of the loop while the rest continue — the
    load-imbalance signature of Algorithms 3 and 4.

    Returns
    -------
    (gain, steps):
        Per-lane best prefix gain (>= 0) and its length.
    """
    dev = warp.device
    n = dev.warp_size
    cur = np.zeros(n, dtype=np.int64)
    best = np.zeros(n, dtype=np.int64)
    best_steps = np.zeros(n, dtype=np.int64)
    steps = np.zeros(n, dtype=np.int64)
    stopped = ~warp.active  # lanes outside the caller's mask never walk

    for _ in warp.loop_while(lambda: ~stopped):
        act = warp.active
        steps_next = steps + 1
        if direction > 0:
            q = q0 + word_length - 1 + steps_next
            sabs = off + s0 + word_length - 1 + steps_next
            inb = (q < qlen) & (sabs < end_or_start)
        else:
            q = q0 - steps_next
            sabs = off + s0 - steps_next
            inb = (q >= 0) & (sabs >= end_or_start)
        stopped |= act & ~inb
        with warp.where(inb):
            inner = warp.active
            code = warp.load(
                session.db_codes, np.where(inner, sabs, 0)
            ).astype(np.int64)
            qsafe = np.where(inner, np.clip(q, 0, qlen - 1), 0)
            if score_fn is None:
                sc = score_lookup(warp, session, qsafe, code)
            else:
                sc = score_fn(warp, qsafe, code)
            warp.alu(3)  # accumulate, best update, drop test
            cur = np.where(inner, cur + sc, cur)
            steps = np.where(inner, steps_next, steps)
            improved = inner & (cur > best)
            best = np.where(improved, cur, best)
            best_steps = np.where(improved, steps, best_steps)
            stopped |= inner & (best - cur > x_drop)
    gain = np.where(best > 0, best, 0)
    steps_out = np.where(best > 0, best_steps, 0)
    return gain, steps_out


@dataclass
class ExtensionOutput:
    """Raw extension records read back from the device output buffers."""

    seq_id: np.ndarray
    query_start: np.ndarray
    query_end: np.ndarray
    subject_start: np.ndarray
    subject_end: np.ndarray
    score: np.ndarray

    def __len__(self) -> int:
        return int(self.seq_id.size)

    def to_extension_array(self) -> ExtensionArray:
        """Columnar readback in canonical (seq, query, subject) order.

        The device buffers decode straight into six aligned columns; one
        lexsort puts them in the order the record path always used, and
        the CPU phases consume the columns without ever materialising
        per-record objects.
        """
        order = np.lexsort((self.subject_start, self.query_start, self.seq_id))
        return ExtensionArray(
            seq_id=self.seq_id[order],
            query_start=self.query_start[order],
            query_end=self.query_end[order],
            subject_start=self.subject_start[order],
            subject_end=self.subject_end[order],
            score=self.score[order],
        )

    def to_extensions(self) -> list[UngappedExtension]:
        """Record-object shim over :meth:`to_extension_array` (cold paths)."""
        return self.to_extension_array().to_records()


class WarpOutputBuffer:
    """Two-level extension output: warp-local buffer, batched global flush.

    Per-record global atomics serialise device-wide; §3.3's "dedicated
    buffer maintained by each thread block" exists precisely to avoid
    them. Records accumulate in registers/local memory (2 ALU per append)
    and one flush reserves the whole batch with a single atomic, then
    streams it out with coalesced consecutive stores.
    """

    def __init__(self) -> None:
        self._records: list[tuple[int, int]] = []

    def append(
        self,
        warp: Warp,
        seq: np.ndarray,
        diag: np.ndarray,
        s_start: np.ndarray,
        s_end: np.ndarray,
        score: np.ndarray,
    ) -> None:
        """Buffer one extension per active lane (lane order)."""
        warp.alu(2)  # pack both output words
        a = (seq << 32) | (diag << 16) | s_start
        b = (s_end << 32) | (score + SCORE_BIAS)
        warp.alu(2)  # local-buffer store
        for lane in np.nonzero(warp.active)[0]:
            self._records.append((int(a[lane]), int(b[lane])))

    def flush(self, warp: Warp, ctx_mem) -> None:
        """Reserve slots with one atomic and store the batch coalesced."""
        n = len(self._records)
        if n == 0:
            return
        out_a = ctx_mem.buffers["ext_out_a"]
        out_b = ctx_mem.buffers["ext_out_b"]
        counter = ctx_mem.buffers["ext_count"]
        wsz = warp.device.warp_size
        with warp.where(warp.lane_id == 0):
            base_arr = warp.atomic_add_global(
                counter, np.zeros(wsz, dtype=np.int64),
                np.where(warp.lane_id == 0, n, 0),
            )
        base = int(base_arr[0])
        recs_a = np.array([r[0] for r in self._records], dtype=np.int64)
        recs_b = np.array([r[1] for r in self._records], dtype=np.int64)
        for start in range(0, n, wsz):
            chunk = min(wsz, n - start)
            vals_a = np.zeros(wsz, dtype=np.int64)
            vals_b = np.zeros(wsz, dtype=np.int64)
            vals_a[:chunk] = recs_a[start : start + chunk]
            vals_b[:chunk] = recs_b[start : start + chunk]
            idx = np.minimum(base + start + warp.lane_id, out_a.data.size - 1)
            with warp.where(warp.lane_id < chunk):
                warp.store(out_a, idx, vals_a)
                warp.store(out_b, idx, vals_b)
        self._records.clear()


def store_extension_at(
    warp: Warp,
    ctx_mem,
    slot: np.ndarray,
    seq: np.ndarray,
    diag: np.ndarray,
    s_start: np.ndarray,
    s_end: np.ndarray,
    score: np.ndarray,
) -> None:
    """Store one extension per active lane at a caller-chosen slot.

    Hit-based extension produces exactly one record per seed, so it writes
    to per-seed slots instead of an atomic cursor (the paper's per-thread
    output stores) — which also keeps records aligned with seeds for the
    host-side de-duplication pass.
    """
    out_a = ctx_mem.buffers["ext_out_a"]
    out_b = ctx_mem.buffers["ext_out_b"]
    warp.alu(2)  # pack both output words
    a = (seq << 32) | (diag << 16) | s_start
    b = (s_end << 32) | (score + SCORE_BIAS)
    warp.store(out_a, slot, a)
    warp.store(out_b, slot, b)


def read_extensions(session: DeviceSession, query_length: int) -> ExtensionOutput:
    """Decode the device output buffers into host arrays."""
    mem = session.ctx.memory
    count = int(mem.buffers["ext_count"].data[0])
    a = mem.buffers["ext_out_a"].data[:count]
    b = mem.buffers["ext_out_b"].data[:count]
    seq = a >> 32
    diag = (a >> 16) & 0xFFFF
    s_start = a & 0xFFFF
    s_end = b >> 32
    score = (b & 0xFFFFFFFF) - SCORE_BIAS
    q_start = s_start - (diag - query_length)
    q_end = q_start + (s_end - s_start)
    return ExtensionOutput(
        seq_id=seq,
        query_start=q_start,
        query_end=q_end,
        subject_start=s_start,
        subject_end=s_end,
        score=score,
    )
