"""cuBLASTP: fine-grained BLASTP on the simulated GPU (the paper's system).

The package decomposes the two critical phases into five GPU kernels —

1. :mod:`~repro.cublastp.hit_detection_kernel` — warp-based hit detection
   with diagonal binning (Algorithm 2);
2. :mod:`~repro.cublastp.sort_kernel` — hit assembling + segmented sort of
   the packed 64-bit bin elements (Fig. 6a/6b, Fig. 7);
3. :mod:`~repro.cublastp.filter_kernel` — two-hit filtering of sorted bins
   (Fig. 6c);
4. one of three ungapped-extension kernels (Algorithms 3-5):
   :mod:`~repro.cublastp.ext_diagonal`, :mod:`~repro.cublastp.ext_hit`,
   :mod:`~repro.cublastp.ext_window`;

— plus the multithreaded CPU phases (:mod:`~repro.cublastp.cpu_phases`) and
the GPU/CPU overlap pipeline (:mod:`~repro.cublastp.pipeline`, Fig. 12).
:class:`~repro.cublastp.search.CuBlastp` is the public entry point; its
search results are identical to the reference pipeline's (enforced by
tests), so every performance number compares equal-output implementations.
"""

from repro.cublastp.binning import (
    BinnedHits,
    bin_of_diagonal,
    pack_hits,
    unpack_hits,
)
from repro.cublastp.buffering import MatrixMode, MatrixPlacement, choose_matrix_placement
from repro.cublastp.config import CuBlastpConfig, ExtensionMode
from repro.cublastp.cpu_phases import CpuPhaseResult, run_cpu_phases
from repro.cublastp.pipeline import CuBlastpReport, GpuPhaseResult
from repro.cublastp.search import CuBlastp

__all__ = [
    "BinnedHits",
    "CpuPhaseResult",
    "CuBlastp",
    "CuBlastpConfig",
    "CuBlastpReport",
    "ExtensionMode",
    "GpuPhaseResult",
    "MatrixMode",
    "MatrixPlacement",
    "bin_of_diagonal",
    "choose_matrix_placement",
    "pack_hits",
    "run_cpu_phases",
    "unpack_hits",
]
