"""Public cuBLASTP search API.

:class:`CuBlastp` is what a downstream user calls::

    from repro import CuBlastp, CuBlastpConfig, SequenceDatabase

    searcher = CuBlastp("MKTAYIAKQR...")           # the query
    result = searcher.search(db)                    # identical to FSA-BLAST
    result, report = searcher.search_with_report(db)  # + timing/profiles
"""

from __future__ import annotations

import numpy as np

from repro.core.pipeline import BlastpPipeline
from repro.core.results import SearchResult
from repro.core.statistics import SearchParams
from repro.cublastp.config import CuBlastpConfig
from repro.cublastp.pipeline import CuBlastpReport, run_cublastp
from repro.cublastp.session import DeviceSession
from repro.gpusim.device import DeviceSpec, K20C
from repro.io.database import SequenceDatabase
from repro.seeding.dfa import QueryDFA


class CuBlastp:
    """Fine-grained BLASTP searcher for one query.

    Parameters
    ----------
    query:
        Query sequence (residue string or encoded array).
    params:
        BLASTP search parameters (word length, thresholds, gaps, E-value).
    config:
        cuBLASTP execution configuration (bins, extension strategy,
        buffering, CPU threads).
    device:
        Simulated GPU (defaults to the paper's K20c).

    The search result is guaranteed identical to
    :class:`repro.core.BlastpPipeline` — the paper's closing claim — and
    the test suite enforces it.
    """

    def __init__(
        self,
        query: str | np.ndarray,
        params: SearchParams | None = None,
        config: CuBlastpConfig | None = None,
        device: DeviceSpec = K20C,
    ) -> None:
        self.pipe = BlastpPipeline(query, params)
        if self.pipe.params.word_length != 3:
            from repro.errors import ConfigError

            raise ConfigError(
                "the GPU kernels implement the BLASTP W=3 word path "
                "(packed indices, DFA layout); use BlastpPipeline / "
                "FsaBlast for other word sizes"
            )
        self.config = config or CuBlastpConfig()
        self.device = device
        self.dfa = QueryDFA(self.pipe.lookup.neighborhood)

    @property
    def query_length(self) -> int:
        return self.pipe.query_length

    def make_session(self, db: SequenceDatabase) -> DeviceSession:
        """Upload this search's structures for ``db`` (one device context)."""
        return DeviceSession(
            self.pipe.query_codes,
            self.dfa,
            db,
            self.config,
            self.pipe.params.matrix,
            self.device,
        )

    def search(self, db: SequenceDatabase) -> SearchResult:
        """Search ``db`` and return alignments (drops the timing report)."""
        result, _ = self.search_with_report(db)
        return result

    def search_with_report(self, db: SequenceDatabase) -> tuple[SearchResult, CuBlastpReport]:
        """Search ``db`` returning alignments plus the full timing report."""
        session = self.make_session(db)
        alignments, report = run_cublastp(self.pipe, db, session, self.config)
        result = SearchResult(
            query_length=self.query_length,
            db_sequences=len(db),
            db_residues=int(db.codes.size),
            alignments=alignments,
            num_hits=report.gpu.num_hits,
            num_seeds=report.gpu.num_seeds,
            num_ungapped_extensions=len(report.gpu.extensions),
            num_gapped_extensions=len(report.cpu.gapped_extensions),
            num_reported=len(alignments),
        )
        return result, report
