"""Public cuBLASTP search API.

:class:`CuBlastp` is what a downstream user calls::

    from repro import CuBlastp, CuBlastpConfig, SequenceDatabase

    searcher = CuBlastp("MKTAYIAKQR...")           # the query
    result = searcher.search(db)                    # identical to FSA-BLAST
    result, report = searcher.search_with_report(db)  # + timing/profiles

It also satisfies the :class:`~repro.engine.protocol.Engine` protocol, so
a query-less instance (``CuBlastp(None, params, config)``) can compile
queries once and run them against any database::

    engine = CuBlastp(None, params, config)
    compiled = engine.compile("MKTAYIAKQR...")
    result = engine.run(compiled, db)
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.core.pipeline import BlastpPipeline
from repro.core.results import SearchResult
from repro.core.statistics import SearchParams
from repro.cublastp.config import CuBlastpConfig
from repro.cublastp.pipeline import CuBlastpReport, run_cublastp
from repro.cublastp.session import DeviceSession
from repro.engine.compiled import CompiledQuery, compile_query
from repro.gpusim.device import DeviceSpec, K20C
from repro.io.database import SequenceDatabase

if TYPE_CHECKING:
    from repro.engine.events import EventLog
    from repro.seeding.dfa import QueryDFA


class CuBlastp:
    """Fine-grained BLASTP searcher for one query.

    Parameters
    ----------
    query:
        Query sequence (residue string, encoded array, or a
        :class:`~repro.engine.compiled.CompiledQuery`); ``None`` builds a
        query-less engine-protocol instance.
    params:
        BLASTP search parameters (word length, thresholds, gaps, E-value).
    config:
        cuBLASTP execution configuration (bins, extension strategy,
        buffering, CPU threads).
    device:
        Simulated GPU (defaults to the paper's K20c).
    events:
        Optional :class:`~repro.engine.events.EventLog` kernel and CPU
        phases emit into.

    The search result is guaranteed identical to
    :class:`repro.core.BlastpPipeline` — the paper's closing claim — and
    the test suite enforces it.
    """

    #: Engine-protocol name.
    name = "cuBLASTP"

    def __init__(
        self,
        query: str | np.ndarray | CompiledQuery | None = None,
        params: SearchParams | None = None,
        config: CuBlastpConfig | None = None,
        device: DeviceSpec = K20C,
        *,
        events: EventLog | None = None,
        query_id: str | None = None,
    ) -> None:
        self.config = config or CuBlastpConfig()
        self.pipe = BlastpPipeline(
            query,
            params,
            events=None,
            query_id=query_id,
            gapped_mode=self.config.gapped_mode,
        )
        self.events = events
        self.query_id = query_id
        if self.pipe.compiled is not None:
            self._check_word_length(self.pipe.params)
        self.device = device

    @staticmethod
    def _check_word_length(params: SearchParams) -> None:
        if params.word_length != 3:
            from repro.errors import ConfigError

            raise ConfigError(
                "the GPU kernels implement the BLASTP W=3 word path "
                "(packed indices, DFA layout); use BlastpPipeline / "
                "FsaBlast for other word sizes"
            )

    @property
    def params(self) -> SearchParams:
        return self.pipe.params

    @property
    def compiled(self) -> CompiledQuery | None:
        return self.pipe.compiled

    @property
    def dfa(self) -> QueryDFA:
        """The compiled query's DFA (built lazily, shared across engines)."""
        return self.pipe.compiled.dfa

    @property
    def query_length(self) -> int:
        return self.pipe.query_length

    # -- engine protocol ---------------------------------------------------

    def compile(self, query: str | np.ndarray) -> CompiledQuery:
        """Compile ``query`` under this engine's parameters."""
        self._check_word_length(self.params)
        return compile_query(query, self.params)

    def _bind(self, compiled: CompiledQuery, query_id: str | None) -> CuBlastp:
        if compiled is self.compiled and query_id == self.query_id:
            return self
        return CuBlastp(
            compiled,
            None,
            self.config,
            self.device,
            events=self.events,
            query_id=query_id,
        )

    def run(
        self,
        compiled: CompiledQuery,
        db: SequenceDatabase,
        query_id: str | None = None,
    ) -> SearchResult:
        """Search ``db`` with an already-compiled query."""
        return self._bind(compiled, query_id).search(db)

    def run_with_report(
        self,
        compiled: CompiledQuery,
        db: SequenceDatabase,
        query_id: str | None = None,
    ) -> tuple[SearchResult, CuBlastpReport]:
        """Like :meth:`run`, returning the full timing report as well."""
        return self._bind(compiled, query_id).search_with_report(db)

    def search_batch(
        self,
        compiled: list[CompiledQuery],
        db: SequenceDatabase,
        query_ids: "list[str | None] | None" = None,
        *,
        block_residues: int | None = None,
        blocks: "list[SequenceDatabase] | None" = None,
    ) -> list[SearchResult]:
        """Search a whole query batch with one blocked database sweep.

        Batch-first cuBLASTP: instead of launching the per-query kernel
        stack once per query (each walking the full database), the batch
        shares one merged seeding index and the database streams through
        in blocks exactly once
        (:func:`~repro.cublastp.pipeline.run_cublastp_batch`). Results
        are identical, query for query, to :meth:`run` — the same
        guarantee the per-query path pins against the reference pipeline.
        """
        from repro.cublastp.pipeline import run_cublastp_batch

        self._check_word_length(self.params)
        ids = query_ids if query_ids is not None else [None] * len(compiled)
        pipelines = [
            self.pipe._bind(c, qid) for c, qid in zip(compiled, ids)
        ]
        outcomes = run_cublastp_batch(
            pipelines,
            db,
            block_residues=block_residues,
            blocks=blocks,
            events=self.events,
        )
        return [result for result, _counts in outcomes]

    # -- per-query API -----------------------------------------------------

    def make_session(self, db: SequenceDatabase) -> DeviceSession:
        """Upload this search's structures for ``db`` (one device context)."""
        return DeviceSession(
            self.pipe.query_codes,
            self.dfa,
            db,
            self.config,
            self.pipe.params.matrix,
            self.device,
        )

    def search(self, db: SequenceDatabase) -> SearchResult:
        """Search ``db`` and return alignments (drops the timing report)."""
        result, _ = self.search_with_report(db)
        return result

    def search_with_report(self, db: SequenceDatabase) -> tuple[SearchResult, CuBlastpReport]:
        """Search ``db`` returning alignments plus the full timing report."""
        session = self.make_session(db)
        alignments, report = run_cublastp(
            self.pipe, db, session, self.config, events=self.events, query_id=self.query_id
        )
        result = SearchResult(
            query_length=self.query_length,
            db_sequences=len(db),
            db_residues=int(db.codes.size),
            alignments=alignments,
            num_hits=report.gpu.num_hits,
            num_seeds=report.gpu.num_seeds,
            num_ungapped_extensions=len(report.gpu.extensions),
            num_gapped_extensions=len(report.cpu.gapped_extensions),
            num_reported=len(alignments),
        )
        return result, report
