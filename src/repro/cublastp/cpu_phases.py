"""CPU-side phases: multithreaded gapped extension and traceback (§3.6).

Functionally these are the reference pipeline's phases 3 and 4 — cuBLASTP
does not change their algorithms, only parallelises them with pthreads.
With one sandbox core, thread scaling is *modelled*: the per-extension DP
costs are LPT-scheduled onto the configured thread count and the makespan
is reported (DESIGN.md §2), which reproduces the strong-scaling behaviour
of Fig. 13 including its load-imbalance tail.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.gapped import GappedExtension
from repro.core.pipeline import BlastpPipeline
from repro.core.results import Alignment, ExtensionArray, UngappedExtension
from repro.core.statistics import Cutoffs
from repro.io.database import SequenceDatabase
from repro.perfmodel.calibration import CostConstants, DEFAULT_COSTS
from repro.perfmodel.cpu_cost import (
    gapped_work_items,
    thread_makespan_ms,
    traceback_work_items,
)


@dataclass
class CpuPhaseResult:
    """Output + modelled timing of the CPU phases for one batch."""

    alignments: list[Alignment]
    gapped_extensions: list[GappedExtension]
    num_triggers: int
    gapped_ms: float
    traceback_ms: float
    threads: int

    @property
    def total_ms(self) -> float:
        return self.gapped_ms + self.traceback_ms


def run_cpu_phases(
    pipe: BlastpPipeline,
    extensions: ExtensionArray | list[UngappedExtension],
    db: SequenceDatabase,
    cutoffs: Cutoffs,
    threads: int,
    costs: CostConstants = DEFAULT_COSTS,
) -> CpuPhaseResult:
    """Run gapped extension + traceback, timing them at ``threads`` threads.

    Parameters
    ----------
    pipe:
        The reference pipeline for this query (provides PSSM and phases).
    extensions:
        Phase-2 output columns (from the GPU kernels or the CPU
        reference — they are identical, which is the point); per-record
        lists are accepted and coerced by the phases.
    threads:
        Modelled pthread count (the paper uses 1, 2, 4).
    costs:
        Per-operation CPU cost constants.
    """
    if pipe.params.ungapped_only:
        # BLAST's -ungapped mode: no phase 3/4, just HSP rendering (priced
        # at one ungapped-cell pass over the reported segments).
        alignments = pipe.phase_ungapped_report(extensions, db, cutoffs)
        render_cycles = sum(a.length for a in alignments) * costs.ungapped_cell
        ms = render_cycles / (3.1e9) * 1e3 / max(1, threads)
        return CpuPhaseResult(
            alignments=alignments,
            gapped_extensions=[],
            num_triggers=0,
            gapped_ms=0.0,
            traceback_ms=ms,
            threads=threads,
        )
    gapped, num_triggers = pipe.phase_gapped(extensions, db, cutoffs)
    gapped_ms = thread_makespan_ms(gapped_work_items(gapped, costs), threads, costs)
    alignments = pipe.phase_traceback(gapped, db, cutoffs)
    reported = [g for g in gapped if g.score >= cutoffs.report_cutoff]
    traceback_ms = thread_makespan_ms(
        traceback_work_items(reported, costs), threads, costs
    )
    return CpuPhaseResult(
        alignments=alignments,
        gapped_extensions=gapped,
        num_triggers=num_triggers,
        gapped_ms=gapped_ms,
        traceback_ms=traceback_ms,
        threads=threads,
    )
