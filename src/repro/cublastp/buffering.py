"""Hierarchical buffering policy (§3.5).

Two decisions are made per search:

* **Scoring structure placement** — the PSSM costs 64 B per query column,
  so it fits the 48-kB shared memory only for queries up to 768 residues;
  beyond that the fixed 2-kB BLOSUM62 table (plus the query codes) goes to
  shared memory instead, trading one extra load per scored pair for full
  occupancy. ``matrix_mode="auto"`` applies exactly this policy; the
  forced modes exist for the Fig. 15 sweep.
* **DFA placement** — the small fixed-size state table is pinned in shared
  memory, while the query-position lists live in global memory tagged
  read-only so they ride the 48-kB read-only cache (Fig. 10); the cache can
  be disabled for the Fig. 17 ablation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.gpusim.device import DeviceSpec
from repro.matrices.pssm import pssm_memory_bytes


class MatrixMode(enum.Enum):
    """Which scoring structure the extension kernels read, and from where."""

    #: PSSM resident in shared memory (short queries).
    PSSM_SHARED = "pssm_shared"
    #: PSSM in global memory through the read-only cache (long queries,
    #: forced-PSSM mode only — "auto" never picks this).
    PSSM_GLOBAL = "pssm_global"
    #: BLOSUM62 table + query codes in shared memory.
    BLOSUM_SHARED = "blosum_shared"


@dataclass(frozen=True)
class MatrixPlacement:
    """Resolved placement and its shared-memory bill."""

    mode: MatrixMode
    shared_bytes: int
    loads_per_score: int


#: BLOSUM62 in shared memory: 32*32 padded entries at 2 bytes (§3.5's 2 kB).
BLOSUM_SHARED_BYTES = 32 * 32 * 2


#: "auto" keeps the PSSM in shared memory only while at least three blocks
#: stay resident per SM (16 kB of the 48), i.e. queries up to ~256 residues.
#: The hard §3.5 limit is 768 (the PSSM *fits* until then, and forced-PSSM
#: mode uses it), but the paper's own measurements pick BLOSUM62 already at
#: query517 because a resident PSSM that large starves occupancy — this
#: threshold encodes that measured crossover.
AUTO_PSSM_BUDGET = 16 * 1024


def choose_matrix_placement(
    matrix_mode: str,
    query_length: int,
    device: DeviceSpec,
    reserve_bytes: int = 0,
) -> MatrixPlacement:
    """Resolve the §3.5 placement policy.

    Parameters
    ----------
    matrix_mode:
        ``"auto"``, ``"pssm"`` or ``"blosum"``.
    query_length:
        Query length in residues.
    device:
        Supplies the shared-memory budget.
    reserve_bytes:
        Shared memory the kernel needs for other structures; the PSSM must
        fit alongside it.
    """
    pssm_bytes = pssm_memory_bytes(query_length)
    budget = device.shared_mem_per_sm - reserve_bytes
    pssm_fits = pssm_bytes <= budget
    if matrix_mode == "auto":
        mode = (
            MatrixMode.PSSM_SHARED
            if pssm_bytes <= min(AUTO_PSSM_BUDGET, budget)
            else MatrixMode.BLOSUM_SHARED
        )
    elif matrix_mode == "pssm":
        mode = MatrixMode.PSSM_SHARED if pssm_fits else MatrixMode.PSSM_GLOBAL
    else:
        mode = MatrixMode.BLOSUM_SHARED
    if mode is MatrixMode.PSSM_SHARED:
        return MatrixPlacement(mode=mode, shared_bytes=pssm_bytes, loads_per_score=1)
    if mode is MatrixMode.PSSM_GLOBAL:
        return MatrixPlacement(mode=mode, shared_bytes=0, loads_per_score=1)
    # BLOSUM62 needs the query residue code (one load) then the matrix
    # entry (a second load) — Fig. 2(c)'s extra memory access.
    return MatrixPlacement(
        mode=MatrixMode.BLOSUM_SHARED,
        shared_bytes=BLOSUM_SHARED_BYTES + query_length,
        loads_per_score=2,
    )
