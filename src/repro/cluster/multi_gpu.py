"""Multi-GPU cuBLASTP: per-node searches + head-node merge.

Execution model (mpiBLAST-style, one GPU per node):

1. the query's structures (DFA, PSSM) are broadcast to every node;
2. each node runs the complete cuBLASTP pipeline (GPU kernels + CPU
   phases, Fig. 12 overlap included) on its database partition;
3. nodes ship their reported alignments to the head node over the
   interconnect;
4. the head node merges the sorted per-node lists, re-ranks globally, and
   truncates to ``max_alignments``.

Nodes run concurrently, so the compute span is the *slowest* node; the
merge is serial at the head — which is exactly why the paper expects it to
become the bottleneck as nodes are added, and what
``benchmarks/bench_cluster_scaling.py`` measures.
"""

from __future__ import annotations

import dataclasses
import heapq
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.results import Alignment, SearchResult
from repro.core.statistics import SearchParams
from repro.cublastp.config import CuBlastpConfig
from repro.cublastp.pipeline import CuBlastpReport
from repro.cublastp.search import CuBlastp
from repro.cluster.partition import Partition, partition_database
from repro.engine.compiled import CompiledQuery, compile_query
from repro.gpusim.device import DeviceSpec, K20C
from repro.io.database import SequenceDatabase
from repro.io.store import DatabaseStore, get_default_store

#: Serialized size of one alignment record on the wire (coordinates,
#: scores, and the rendered alignment rows — BLAST ships the traceback).
RESULT_RECORD_BYTES = 160

#: Interconnect model: FDR InfiniBand-era effective point-to-point
#: bandwidth and per-message latency.
INTERCONNECT_GBPS = 5.0
MESSAGE_LATENCY_US = 15.0

#: Head-node merge cost: cycles per record for the heap merge + re-rank.
MERGE_CYCLES_PER_RECORD = 220.0
HEAD_CLOCK_GHZ = 3.1


def _remap_alignments(alignments: list[Alignment], part: Partition) -> list[Alignment]:
    """Alignments with partition-local ``seq_id`` rebased to global ids.

    The id gather is one vectorised :meth:`Partition.to_global` call over
    the whole column; only the (small, reported) record rebuild is
    per-alignment.
    """
    if not alignments:
        return []
    local = np.fromiter(
        (a.seq_id for a in alignments), dtype=np.int64, count=len(alignments)
    )
    global_ids = part.to_global(local)
    return [
        dataclasses.replace(a, seq_id=int(g))
        for a, g in zip(alignments, global_ids)
    ]


@dataclass
class NodeResult:
    """One node's search outcome and timing.

    Under the serial backend the full :class:`CuBlastpReport` is kept and
    :attr:`counts` / :attr:`elapsed_ms` / :attr:`breakdown` are derived
    from it. Under the process backend the report stays in the worker
    (it is large and not picklable-by-contract); only the derived fields
    cross the boundary and :attr:`report` is ``None``.
    """

    node: int
    num_sequences: int
    alignments: list[Alignment]
    report: CuBlastpReport | None = None
    counts: dict[str, int] = field(default_factory=dict)
    breakdown: dict[str, float] = field(default_factory=dict)
    elapsed_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.report is not None:
            if not self.elapsed_ms:
                self.elapsed_ms = float(self.report.overall_ms)
            if not self.counts:
                self.counts = {
                    "num_hits": int(self.report.gpu.num_hits),
                    "num_seeds": int(self.report.gpu.num_seeds),
                    "num_ungapped_extensions": len(self.report.gpu.extensions),
                    "num_gapped_extensions": len(self.report.cpu.gapped_extensions),
                }
            if not self.breakdown:
                self.breakdown = dict(self.report.breakdown)


@dataclass
class ClusterReport:
    """Timing story of one cluster search."""

    nodes: list[NodeResult]
    compute_ms: float  # slowest node (nodes run concurrently)
    gather_ms: float  # shipping per-node results to the head
    merge_ms: float  # head-node merge + re-rank + truncate
    overall_ms: float
    breakdown: dict[str, float] = field(default_factory=dict)

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def merge_share(self) -> float:
        """Fraction of wall time spent past the compute span — the §6
        bottleneck indicator."""
        return (self.gather_ms + self.merge_ms) / self.overall_ms


class MultiGpuBlastp:
    """cuBLASTP across ``num_nodes`` simulated GPU nodes.

    Parameters mirror :class:`~repro.cublastp.search.CuBlastp` plus the
    node count. The merged result is identical to a single-node search of
    the whole database (enforced by tests).
    """

    #: Node-execution backends ``backend`` accepts.
    BACKENDS = ("serial", "process")

    def __init__(
        self,
        query: str | np.ndarray | CompiledQuery,
        num_nodes: int,
        params: SearchParams | None = None,
        config: CuBlastpConfig | None = None,
        device: DeviceSpec = K20C,
        *,
        store: DatabaseStore | None = None,
        backend: str = "serial",
        jobs: int | None = None,
    ) -> None:
        if num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        if backend not in self.BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r} (choose from {', '.join(self.BACKENDS)})"
            )
        self.num_nodes = num_nodes
        #: ``"serial"`` runs nodes in-process one after another;
        #: ``"process"`` fans them out over a
        #: :class:`~repro.engine.procpool.ProcessPool` (each worker maps
        #: the database from the binary format and runs whole node
        #: searches).
        self.backend = backend
        #: Worker processes for the process backend (default: one per node).
        self.jobs = jobs
        #: Store resolving database paths and caching shard partitions.
        self.store = store
        # One shared query compilation (the broadcast structures): every
        # node binds this CompiledQuery instead of rebuilding the
        # neighbourhood/DFA/PSSM per node.
        self.compiled = compile_query(query, params)
        self.params = self.compiled.params
        self.config = config or CuBlastpConfig()
        self.device = device
        # The per-node engine prototype (an Engine-protocol instance; swap
        # it to run the cluster on a different implementation).
        self.searcher = CuBlastp(self.compiled, None, self.config, device)

    # -- per-node execution --------------------------------------------------

    def _run_node(self, part: Partition, full_db_residues: int) -> NodeResult:
        # Statistics must be evaluated against the *whole* search space,
        # not the partition — else per-node cutoffs would differ from the
        # single-node reference and merged output would diverge. The
        # rebind is cheap: effective_db_residues is execution-side, so the
        # compiled structures are shared untouched.
        node_params = dataclasses.replace(
            self.params,
            effective_db_residues=self.params.effective_db_residues
            or full_db_residues,
        )
        node_compiled = self.compiled.with_params(node_params)
        result, report = self.searcher.run_with_report(node_compiled, part.db)
        remapped = _remap_alignments(result.alignments, part)
        return NodeResult(
            node=part.node,
            num_sequences=len(part.db),
            alignments=remapped,
            report=report,
        )

    def _run_nodes_process(
        self,
        db: SequenceDatabase,
        db_source: SequenceDatabase | str | Path | None = None,
    ) -> list[NodeResult]:
        """Fan node searches out over a process pool.

        Each worker maps the database from the binary format (spilled to a
        temp file when ``db`` is in-memory), partitions it locally (the
        partitioning is deterministic, so head and workers agree), and
        runs whole cuBLASTP node searches. Unlike the batch executor's
        per-query isolation, a failed node fails the cluster search — a
        partial merge would silently drop that shard's alignments.
        """
        from repro.alphabet import decode
        from repro.engine.procpool import (
            ClusterNodeSpec,
            ProcessPool,
            database_path_for_workers,
        )
        from repro.verify.canonical import alignments_from_payload

        # Statistics against the whole search space, as in _run_node —
        # baked into the spec so workers need no extra coordination.
        node_params = dataclasses.replace(
            self.params,
            effective_db_residues=self.params.effective_db_residues
            or int(db.codes.size),
        )
        db_path, cleanup = database_path_for_workers(
            db if db_source is None else db_source, store=self.store
        )
        spec = ClusterNodeSpec(
            query=decode(self.compiled.query_codes),
            params=node_params,
            config=self.config,
            device=self.device,
            db_path=str(db_path),
            num_nodes=self.num_nodes,
        )
        jobs = min(self.jobs or self.num_nodes, self.num_nodes)
        pool = ProcessPool(spec, jobs=jobs)
        nodes: list[NodeResult] = []
        try:
            for _index, payload, error in pool.run(range(self.num_nodes)):
                if error is not None:
                    raise error
                nodes.append(
                    NodeResult(
                        node=payload["node"],
                        num_sequences=payload["num_sequences"],
                        alignments=alignments_from_payload(payload["alignments"]),
                        counts=payload["counts"],
                        breakdown=payload["breakdown"],
                        elapsed_ms=payload["elapsed_ms"],
                    )
                )
        finally:
            pool.shutdown()
            if cleanup is not None:
                cleanup()
        return nodes

    # -- the head-node merge ---------------------------------------------------

    @staticmethod
    def _merge(per_node: list[list[Alignment]], cap: int) -> list[Alignment]:
        """K-way merge of the per-node sorted lists, then truncate."""
        key = lambda a: (-a.score, a.seq_id, a.query_start, a.subject_start)
        merged = list(heapq.merge(*per_node, key=key))
        return merged[:cap]

    def search_with_report(
        self, db: SequenceDatabase | str | Path
    ) -> tuple[SearchResult, ClusterReport]:
        """Run the cluster search over ``db`` (a database or a saved path).

        Paths resolve through the :class:`~repro.io.store.DatabaseStore`,
        which also caches the node partitioning — successive queries
        against the same resident database fragment it once.
        """
        if self.backend == "process":
            # Keep the caller's path form: an already-saved binary
            # database passes straight to the workers, no re-spill.
            db_source = db
            if isinstance(db, (str, Path)):
                if self.store is None:
                    self.store = get_default_store()
                db = self.store.open(db)
            full_residues = int(db.codes.size)
            nodes = self._run_nodes_process(db, db_source)
        else:
            if isinstance(db, (str, Path)):
                if self.store is None:
                    self.store = get_default_store()
                handles = self.store.shards(db, self.num_nodes)
                parts = [h.partition for h in handles]
                db = self.store.open(db)
            elif self.store is not None:
                self.store.add(f"<cluster-db-{id(db)}>", db)
                parts = [
                    h.partition
                    for h in self.store.shards(f"<cluster-db-{id(db)}>", self.num_nodes)
                ]
            else:
                parts = partition_database(db, self.num_nodes)
            full_residues = int(db.codes.size)
            nodes = [self._run_node(p, full_residues) for p in parts]

        compute_ms = max(n.elapsed_ms for n in nodes)
        total_records = sum(len(n.alignments) for n in nodes)
        # Gather: per-node message latency + records over the interconnect
        # (serialised at the head's NIC).
        gather_ms = (
            len(nodes) * MESSAGE_LATENCY_US / 1e3
            + total_records * RESULT_RECORD_BYTES / (INTERCONNECT_GBPS * 1e9) * 1e3
        )
        merge_ms = (
            total_records * MERGE_CYCLES_PER_RECORD / (HEAD_CLOCK_GHZ * 1e9) * 1e3
            + len(nodes) * 0.001
        )
        merged = self._merge(
            [n.alignments for n in nodes], self.params.max_alignments
        )
        overall = compute_ms + gather_ms + merge_ms
        report = ClusterReport(
            nodes=nodes,
            compute_ms=compute_ms,
            gather_ms=gather_ms,
            merge_ms=merge_ms,
            overall_ms=overall,
            breakdown={
                "compute (slowest node)": compute_ms,
                "result gather": gather_ms,
                "merge + rank": merge_ms,
            },
        )
        result = SearchResult(
            query_length=self.searcher.query_length,
            db_sequences=len(db),
            db_residues=full_residues,
            alignments=merged,
            num_hits=sum(n.counts["num_hits"] for n in nodes),
            num_seeds=sum(n.counts["num_seeds"] for n in nodes),
            num_ungapped_extensions=sum(
                n.counts["num_ungapped_extensions"] for n in nodes
            ),
            num_gapped_extensions=sum(
                n.counts["num_gapped_extensions"] for n in nodes
            ),
            num_reported=len(merged),
        )
        return result, report

    def search(self, db: SequenceDatabase | str | Path) -> SearchResult:
        result, _ = self.search_with_report(db)
        return result

    # -- batched search ------------------------------------------------------

    @classmethod
    def search_batch(
        cls,
        queries: "list[tuple[str, str]]",
        num_nodes: int,
        db: SequenceDatabase | str | Path,
        params: SearchParams | None = None,
        *,
        store: DatabaseStore | None = None,
        block_residues: int | None = None,
    ) -> list[SearchResult]:
        """Cluster-search a whole query batch, one sweep per node.

        The db-sweep inversion applied to the cluster layer: instead of
        broadcasting each query separately (``num_queries x num_nodes``
        full pipeline runs over the partitions), every node makes *one*
        blocked pass over its shard for the entire batch through a merged
        :class:`~repro.seeding.multi_query.MultiQueryIndex`, and the head
        node merges per-node alignment lists per query exactly as the
        single-query path does. Statistics are pinned to the whole search
        space (``effective_db_residues``), so each query's merged result
        is identical to its single-node search of the full database.

        ``queries`` is ``(query_id, sequence)`` pairs; one
        :class:`~repro.core.results.SearchResult` per query, input order.
        """
        from repro.core.pipeline import BlastpPipeline
        from repro.core.sweep import search_batch_sweep

        if num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        if isinstance(db, (str, Path)):
            store = store or get_default_store()
            parts = [h.partition for h in store.shards(db, num_nodes)]
            db = store.open(db)
        elif store is not None:
            store.add(f"<cluster-db-{id(db)}>", db)
            parts = [
                h.partition
                for h in store.shards(f"<cluster-db-{id(db)}>", num_nodes)
            ]
        else:
            parts = partition_database(db, num_nodes)
        full_residues = int(db.codes.size)
        compiled = []
        for _query_id, sequence in queries:
            c = compile_query(sequence, params)
            node_params = dataclasses.replace(
                c.params,
                effective_db_residues=c.params.effective_db_residues
                or full_residues,
            )
            compiled.append(c.with_params(node_params))
        n = len(queries)
        per_node: list[list[list[Alignment]]] = [[] for _ in range(n)]
        counts = [
            dict.fromkeys(
                (
                    "num_hits",
                    "num_seeds",
                    "num_ungapped_extensions",
                    "num_gapped_extensions",
                ),
                0,
            )
            for _ in range(n)
        ]
        for part in parts:
            pipes = [
                BlastpPipeline(c, query_id=query_id)
                for c, (query_id, _) in zip(compiled, queries)
            ]
            outcomes = search_batch_sweep(
                pipes, part.db, block_residues=block_residues
            )
            for q, (result, _phase_counts) in enumerate(outcomes):
                # Partition-local ids map monotonically to global ids, so
                # the per-node sorted order survives the remap and the
                # head's k-way merge stays valid.
                per_node[q].append(_remap_alignments(result.alignments, part))
                for key in counts[q]:
                    counts[q][key] += getattr(result, key)
        results = []
        for q, c in enumerate(compiled):
            merged = cls._merge(per_node[q], c.params.max_alignments)
            results.append(
                SearchResult(
                    query_length=int(c.query_codes.size),
                    db_sequences=len(db),
                    db_residues=full_residues,
                    alignments=merged,
                    num_hits=counts[q]["num_hits"],
                    num_seeds=counts[q]["num_seeds"],
                    num_ungapped_extensions=counts[q]["num_ungapped_extensions"],
                    num_gapped_extensions=counts[q]["num_gapped_extensions"],
                    num_reported=len(merged),
                )
            )
        return results
