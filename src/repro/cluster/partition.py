"""Database partitioning for the cluster extension.

Two schemes, as in the mpiBLAST lineage:

* **interleaved** (default) — node ``n`` takes sequences ``n, n+N,
  n+2N, ...``. Homologs of any query are spread statistically evenly, so
  per-node gapped/traceback work balances; this is why mpiBLAST
  distributes fragments round-robin rather than carving contiguous ranges.
  The selection is non-contiguous, so each fragment is materialised — in
  one vectorised gather through
  :meth:`~repro.io.database.SequenceDatabase.subset`, not a per-sequence
  Python loop.
* **contiguous** — residue-balanced ranges; simpler mapping, but a query
  whose homologs cluster in one region of the database lands all of its
  CPU-phase work on one node (the imbalance the interleaved scheme fixes,
  measurable by flipping the flag). Each fragment is a zero-copy
  :class:`~repro.io.database.DatabaseView` sharing the parent's residue
  storage — fragmenting the database across nodes copies nothing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.io.database import SequenceDatabase


@dataclass(frozen=True)
class Partition:
    """One node's share of the database."""

    node: int
    global_ids: np.ndarray
    db: SequenceDatabase

    def to_global(self, local_seq_id: "int | np.ndarray") -> "int | np.ndarray":
        """Global sequence id(s) of partition-local id(s).

        Accepts a scalar (returns ``int``) or an index array (returns the
        gathered ``int64`` array) — the columnar remap path hands whole
        ``seq_id`` columns over in one call.
        """
        if isinstance(local_seq_id, np.ndarray):
            return self.global_ids[local_seq_id]
        return int(self.global_ids[local_seq_id])


def partition_database(
    db: SequenceDatabase, num_nodes: int, interleaved: bool = True
) -> list[Partition]:
    """Split ``db`` across ``num_nodes`` (see module docstring for schemes).

    Raises
    ------
    ValueError
        When ``num_nodes`` is not positive. More nodes than sequences is
        allowed; surplus nodes simply receive no partition.
    """
    if num_nodes <= 0:
        raise ValueError("num_nodes must be positive")
    num_nodes = min(num_nodes, len(db))
    parts: list[Partition] = []
    if interleaved:
        for n in range(num_nodes):
            ids = np.arange(n, len(db), num_nodes, dtype=np.int64)
            parts.append(Partition(node=n, global_ids=ids, db=db.subset(ids)))
        return parts
    # Contiguous: the residue-balanced block cuts double as node bounds,
    # and every fragment is a zero-copy view of the parent.
    bounds = db.block_bounds(num_nodes)
    for n in range(bounds.size - 1):
        start, stop = int(bounds[n]), int(bounds[n + 1])
        parts.append(
            Partition(
                node=n,
                global_ids=np.arange(start, stop, dtype=np.int64),
                db=db.view(start, stop),
            )
        )
    return parts
