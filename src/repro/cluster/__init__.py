"""Multi-GPU cluster extension (the paper's §6 future work).

The paper closes by planning an mpiBLAST-style extension "for very large
databases on GPU clusters", warning that "the result sorting, merging, and
ranking from multiple nodes could become a time-consuming step … the
performance bottleneck". This package builds that system on the same
simulator: the database is partitioned residue-balanced across nodes, each
node runs the full cuBLASTP pipeline on its own simulated GPU + CPU, and a
head node merges, re-ranks and truncates the per-node results — with the
merge modelled explicitly so the predicted bottleneck is measurable
(`benchmarks/bench_cluster_scaling.py`).

Merged output is identical to a single-node search of the whole database
(tests enforce it), so the scaling numbers compare equal-output systems,
in keeping with the rest of the repo.
"""

from repro.cluster.multi_gpu import ClusterReport, MultiGpuBlastp, NodeResult
from repro.cluster.partition import partition_database

__all__ = [
    "ClusterReport",
    "MultiGpuBlastp",
    "NodeResult",
    "partition_database",
]
