"""Phase-level event stream shared by every engine.

Reports, benchmarks, and (future) tracing used to reach into
``CuBlastpReport`` internals to learn what a search did; the reference
pipeline exposed nothing at all. Instead, every engine can now emit
:class:`PhaseEvent` records into an :class:`EventLog` — phase start/end,
work-item counters, and modelled-ms attribution — so one consumer works
against every implementation.

The modelled times flowing through the stream are the same numbers the
engine reports elsewhere (kernel profile times, LPT makespans, transfer
model times): the event stream *attributes* them, it does not re-derive
them. A search with no log attached emits nothing and pays nothing.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.analysis.witness import new_lock, thread_shared


@dataclass(frozen=True)
class PhaseEvent:
    """One phase boundary of one search.

    Attributes
    ----------
    engine:
        Name of the emitting engine (``"reference"``, ``"cuBLASTP"``, ...).
    phase:
        Canonical phase name (``"hit_detection"``, ``"gapped_extension"``,
        ``"data_transfer"``, ...).
    kind:
        ``"start"`` or ``"end"``.
    seq:
        Position in the log (total order over all threads).
    work_items:
        Number of work items the phase processed (hits, seeds, extensions,
        alignments) — on ``"end"`` events, when the phase counts anything.
    modelled_ms:
        Modelled time attributed to the phase — on ``"end"`` events, when
        the engine prices its phases (the reference pipeline emits counters
        only; the performance-modelled engines emit both).
    query_id:
        Batch query identifier, when the search runs under one.
    t_wall:
        ``time.perf_counter()`` at emission — real elapsed host time, as
        opposed to the *modelled* times above. :meth:`EventLog.wall_breakdown`
        pairs start/end stamps into measured per-phase durations (what the
        throughput benchmark reports).
    meta:
        Engine-specific extras (kernel profile stats, thread counts, ...).
    """

    engine: str
    phase: str
    kind: str
    seq: int
    work_items: int | None = None
    modelled_ms: float | None = None
    query_id: str | None = None
    t_wall: float | None = None
    meta: dict[str, Any] = field(default_factory=dict)


@thread_shared
class EventLog:
    """Thread-safe sink and query surface for :class:`PhaseEvent` streams.

    One log may receive events from many concurrent searches (the
    :class:`~repro.engine.executor.BatchExecutor` threads all share the
    caller's log); ``seq`` gives the global arrival order and ``query_id``
    separates interleaved searches.
    """

    def __init__(self) -> None:
        self._lock = new_lock("EventLog._lock")
        self._events: list[PhaseEvent] = []  # guarded-by: self._lock

    def emit(
        self,
        engine: str,
        phase: str,
        kind: str,
        *,
        work_items: int | None = None,
        modelled_ms: float | None = None,
        query_id: str | None = None,
        **meta: Any,
    ) -> PhaseEvent:
        """Append one event (thread-safe) and return it."""
        with self._lock:
            event = PhaseEvent(
                engine=engine,
                phase=phase,
                kind=kind,
                seq=len(self._events),
                work_items=work_items,
                modelled_ms=modelled_ms,
                query_id=query_id,
                t_wall=time.perf_counter(),
                meta=meta,
            )
            self._events.append(event)
        return event

    @contextmanager
    def phase(
        self, engine: str, phase: str, query_id: str | None = None
    ) -> Iterator[dict[str, Any]]:
        """Emit a start/end pair around a block.

        Yields a dict the block may fill with ``work_items``,
        ``modelled_ms``, and any extra metadata to attach to the end event.
        """
        self.emit(engine, phase, "start", query_id=query_id)
        attrs: dict[str, Any] = {}
        try:
            yield attrs
        finally:
            self.emit(
                engine,
                phase,
                "end",
                work_items=attrs.pop("work_items", None),
                modelled_ms=attrs.pop("modelled_ms", None),
                query_id=query_id,
                **attrs,
            )

    # -- consumption -------------------------------------------------------

    @property
    def events(self) -> list[PhaseEvent]:
        """Snapshot of all events in arrival order."""
        with self._lock:
            return list(self._events)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def ends(
        self, engine: str | None = None, query_id: str | None = None
    ) -> list[PhaseEvent]:
        """All ``"end"`` events, optionally filtered by engine / query."""
        return [
            e
            for e in self.events
            if e.kind == "end"
            and (engine is None or e.engine == engine)
            and (query_id is None or e.query_id == query_id)
        ]

    def breakdown(
        self, engine: str | None = None, query_id: str | None = None
    ) -> dict[str, float]:
        """Phase -> summed modelled ms over matching end events.

        This is the event-stream view of the per-report ``breakdown``
        dicts: identical numbers, one schema for every engine.
        """
        out: dict[str, float] = {}
        for e in self.ends(engine, query_id):
            if e.modelled_ms is not None:
                out[e.phase] = out.get(e.phase, 0.0) + e.modelled_ms
        return out

    def wall_breakdown(
        self, engine: str | None = None, query_id: str | None = None
    ) -> dict[str, float]:
        """Phase -> *measured* wall ms, paired from start/end stamps.

        Unlike :meth:`breakdown` (modelled attribution), this reports
        real elapsed host time. Start/end events are paired per
        ``(engine, query_id, phase)`` — concurrent searches interleave in
        the log but carry distinct query ids, so pairing stays exact. End
        events carrying a ``wall_ms`` meta entry (re-emitted across a
        process boundary, where the parent never saw the start) contribute
        it directly.
        """
        out: dict[str, float] = {}
        open_starts: dict[tuple, list[float]] = {}
        for e in self.events:
            if engine is not None and e.engine != engine:
                continue
            if query_id is not None and e.query_id != query_id:
                continue
            key = (e.engine, e.query_id, e.phase)
            if e.kind == "start":
                open_starts.setdefault(key, []).append(e.t_wall)
            elif e.kind == "end":
                if "wall_ms" in e.meta:
                    out[e.phase] = out.get(e.phase, 0.0) + float(e.meta["wall_ms"])
                    continue
                stack = open_starts.get(key)
                if stack and stack[-1] is not None and e.t_wall is not None:
                    out[e.phase] = out.get(e.phase, 0.0) + (e.t_wall - stack.pop()) * 1e3
        return out

    def work_items(
        self, phase: str, engine: str | None = None, query_id: str | None = None
    ) -> int:
        """Summed work items of one phase over matching end events."""
        return sum(
            e.work_items or 0 for e in self.ends(engine, query_id) if e.phase == phase
        )

    def modelled_ms(
        self, engine: str | None = None, query_id: str | None = None
    ) -> float:
        """Total modelled ms attributed over matching end events."""
        return sum(self.breakdown(engine, query_id).values())

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
