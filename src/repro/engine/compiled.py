"""Compiled queries: the query-side build, extracted and shareable.

Every BLASTP implementation in this repo needs the same query-side
structures before it can touch the database: the encoded residues, the
optional SEG mask, the T-threshold word neighbourhood, the lookup table /
DFA over it, and the position-specific scoring matrix. Historically each
engine rebuilt all of that in its constructor, so a multi-engine
comparison — or a multi-node cluster search, or a repeated query in a
service — paid the build once per engine per database block.

:func:`compile_query` performs the build exactly once and packages it as a
:class:`CompiledQuery` that any engine can execute against any database
(the :class:`~repro.engine.protocol.Engine` protocol's currency).
:class:`QueryCache` adds an LRU over compilations keyed on the sequence
and the *compile-relevant* parameters, for repeated-query traffic.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Hashable

import numpy as np

from repro.alphabet import encode
from repro.analysis.witness import new_lock, thread_shared
from repro.matrices.pssm import build_pssm
from repro.seeding.lookup import WordLookupTable
from repro.seeding.words import build_neighborhood

if TYPE_CHECKING:
    # Imported lazily at runtime: repro.core imports this module, so a
    # module-level import of repro.core.statistics would be circular.
    from repro.core.statistics import SearchParams
    from repro.seeding.dfa import QueryDFA


def compile_signature(params: SearchParams) -> tuple[Hashable, ...]:
    """The subset of ``params`` the compiled structures depend on.

    Everything else (E-value, gap penalties, window, cutoff bits,
    effective database size) only affects *execution*, so two parameter
    sets with equal signatures can share one :class:`CompiledQuery` — the
    cluster layer relies on this to rebind per-node statistics without
    recompiling.
    """
    return (
        params.matrix.name,
        params.matrix.scores.tobytes(),
        params.word_length,
        params.threshold,
        params.seg,
    )


class CompiledQuery:
    """Immutable query-side build artefacts of one (sequence, params) pair.

    Attributes
    ----------
    params:
        The full search parameters the query was compiled under.
    query_codes:
        Encoded query residues (``uint8``).
    seg_mask:
        SEG low-complexity mask (or ``None`` when ``params.seg`` is off).
    lookup:
        Word lookup table over the T-threshold neighbourhood.
    pssm:
        Position-specific scoring matrix (``alphabet x query_length``).

    The DFA form of the neighbourhood (:attr:`dfa`) is built lazily on
    first access and cached — CPU engines never need it — and the cache is
    shared across :meth:`with_params` rebindings, so a compiled query run
    on four cluster nodes builds its DFA once.
    """

    def __init__(
        self,
        params: SearchParams,
        query_codes: np.ndarray,
        seg_mask: np.ndarray | None,
        lookup: WordLookupTable,
        pssm: np.ndarray,
        _dfa_cell: list | None = None,
    ) -> None:
        self.params = params
        self.query_codes = query_codes
        self.seg_mask = seg_mask
        self.lookup = lookup
        self.pssm = pssm
        # One-slot DFA cache shared between with_params() siblings.
        self._dfa_cell = _dfa_cell if _dfa_cell is not None else []  # guarded-by: self._dfa_lock
        self._dfa_lock = new_lock("CompiledQuery._dfa_lock")

    @property
    def query_length(self) -> int:
        return int(self.query_codes.size)

    @property
    def dfa(self) -> "QueryDFA":
        """The neighbourhood's DFA form (built once, on first use)."""
        if not self._dfa_cell:
            with self._dfa_lock:
                if not self._dfa_cell:
                    from repro.seeding.dfa import QueryDFA

                    self._dfa_cell.append(QueryDFA(self.lookup.neighborhood))
        return self._dfa_cell[0]

    def with_params(self, params: SearchParams) -> "CompiledQuery":
        """This compilation rebound to ``params``.

        Cheap (structure-sharing) when the compile signature matches —
        only execution-side parameters differ — otherwise a fresh compile.
        """
        if params is self.params:
            return self
        if compile_signature(params) == compile_signature(self.params):
            return CompiledQuery(
                params,
                self.query_codes,
                self.seg_mask,
                self.lookup,
                self.pssm,
                _dfa_cell=self._dfa_cell,
            )
        return compile_query(self.query_codes, params)


def compile_query(
    query: "str | np.ndarray | CompiledQuery",
    params: SearchParams | None = None,
    cache: "QueryCache | None" = None,
) -> CompiledQuery:
    """Compile ``query`` under ``params`` (encode, SEG, neighbourhood, PSSM).

    Accepts a residue string, an encoded ``uint8`` array, or an existing
    :class:`CompiledQuery` (rebound to ``params`` when given). With a
    ``cache``, repeated compilations of the same (sequence, signature)
    return the cached object.
    """
    if isinstance(query, CompiledQuery):
        return query if params is None else query.with_params(params)
    if params is None:
        from repro.core.statistics import SearchParams

        params = SearchParams()
    if cache is not None:
        compiled, _ = cache.get_or_compile(query, params)
        return compiled
    return _compile(query, params)


def _compile(query: "str | np.ndarray", params: SearchParams) -> CompiledQuery:
    query_codes = encode(query) if isinstance(query, str) else np.asarray(query, dtype=np.uint8)
    if query_codes.size < params.word_length:
        raise ValueError("query shorter than the word length")
    pssm = build_pssm(query_codes, params.matrix)
    mask = None
    if params.seg:
        from repro.seeding.seg import seg_mask

        mask = seg_mask(query_codes)
    lookup = WordLookupTable(
        build_neighborhood(
            query_codes,
            params.matrix,
            params.word_length,
            params.threshold,
            masked=mask,
        )
    )
    return CompiledQuery(params, query_codes, mask, lookup, pssm)


@thread_shared
class QueryCache:
    """Thread-safe LRU cache of compiled queries.

    Keyed on (sequence, compile signature): two requests for the same
    sequence under parameter sets that differ only in execution-side
    settings share one entry (:meth:`get_or_compile` rebinds the cached
    structures to the requested params). :attr:`hits` / :attr:`misses`
    count lookups for cache-efficacy reporting.
    """

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.hits = 0  # guarded-by: self._lock
        self.misses = 0  # guarded-by: self._lock
        self._lock = new_lock("QueryCache._lock")
        self._entries: OrderedDict[tuple, CompiledQuery] = OrderedDict()  # guarded-by: self._lock

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @staticmethod
    def _key(query: "str | np.ndarray", params: SearchParams) -> tuple:
        seq = query if isinstance(query, str) else np.asarray(query, dtype=np.uint8).tobytes()
        return (seq, compile_signature(params))

    def get_or_compile(
        self, query: "str | np.ndarray", params: SearchParams
    ) -> tuple[CompiledQuery, bool]:
        """Return ``(compiled, was_hit)`` for the query under ``params``."""
        key = self._key(query, params)
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self.hits += 1
        if cached is not None:
            return cached.with_params(params), True
        # Compile outside the lock: builds are the expensive part and two
        # racing threads at worst duplicate one build.
        compiled = _compile(query, params)
        with self._lock:
            self.misses += 1
            self._entries[key] = compiled
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
        return compiled, False

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
