"""The unified engine layer: compiled queries, pluggable executors, events.

This package decouples *query compilation* from *execution* — the repo's
version of the paper's central move of decoupling BLASTP's phases so each
can be scheduled on the resource that suits it:

* :mod:`~repro.engine.compiled` — :class:`CompiledQuery` (the query-side
  build: encode, SEG, neighbourhood, lookup/DFA, PSSM, built once and
  shared across engines and database blocks) and the LRU
  :class:`QueryCache` for repeated-query traffic;
* :mod:`~repro.engine.protocol` — the :class:`Engine` protocol every
  implementation satisfies, and :func:`make_engine` for building engines
  by registry name;
* :mod:`~repro.engine.executor` — :class:`BatchExecutor`, the concurrent
  batch scheduler (database residency, bounded in-flight queries,
  per-query error isolation, deterministic input-order streaming) with
  thread and process backends;
* :mod:`~repro.engine.procpool` — the process backend's machinery:
  :class:`ProcessPool` (persistent warm workers, crash isolation and
  respawn) and :class:`EngineSpec` (the picklable engine description
  that crosses the process boundary);
* :mod:`~repro.engine.events` — the phase-level :class:`PhaseEvent` /
  :class:`EventLog` stream all engines emit into.
"""

from repro.engine.compiled import CompiledQuery, QueryCache, compile_query, compile_signature
from repro.engine.events import EventLog, PhaseEvent
from repro.engine.executor import BatchExecutor, QueryOutcome
from repro.engine.procpool import (
    EngineSpec,
    ProcessPool,
    SweepBlockSpec,
    RemoteTaskError,
    WorkerCrashError,
    database_path_for_workers,
)
from repro.engine.protocol import (
    CUBLASTP_STRATEGY_NAMES,
    ENGINE_NAMES,
    BatchEngine,
    Engine,
    ReportingEngine,
    make_engine,
    run_search_batch,
)

__all__ = [
    "CUBLASTP_STRATEGY_NAMES",
    "ENGINE_NAMES",
    "BatchEngine",
    "BatchExecutor",
    "CompiledQuery",
    "Engine",
    "EngineSpec",
    "EventLog",
    "PhaseEvent",
    "ProcessPool",
    "QueryCache",
    "QueryOutcome",
    "RemoteTaskError",
    "ReportingEngine",
    "SweepBlockSpec",
    "WorkerCrashError",
    "compile_query",
    "compile_signature",
    "database_path_for_workers",
    "make_engine",
    "run_search_batch",
]
