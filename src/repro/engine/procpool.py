"""Process-pool execution backend: warm workers over the mmap store.

The thread-pooled :class:`~repro.engine.executor.BatchExecutor` keeps the
database resident but cannot buy CPU parallelism for the hot phases — the
gapped-extension row loop, the gpusim warp interpreter, and ragged hit
expansion all hold the GIL, so ``--jobs 8`` on an 8-core box runs barely
faster than serial. This module is the escape hatch the zero-copy storage
layer (PR 2) was built to enable: a database saved in the versioned
binary format re-opens in a *worker process* for the cost of a
``mmap(2)``, so the only things that ever cross the process boundary are

* once, at worker start: a compact, picklable task spec (engine registry
  name + :class:`~repro.core.statistics.SearchParams` + configuration,
  and the database *path*);
* per query: the ``(query_id, sequence)`` pair going out, and a
  canonical-form result payload (:mod:`repro.verify.canonical`) coming
  back — exact ``repr``-round-tripped floats, no pickled result objects.

Layers
------
:class:`ProcessPool`
    Generic persistent-worker pool: chunked dispatch with bounded
    in-flight chunks, input-order streaming, worker-crash isolation (a
    dead worker fails only its in-flight tasks and is respawned), and a
    respawn budget so a deterministically-crashing setup cannot spin.
:class:`EngineSpec`
    The picklable description of an engine (what crosses the boundary
    instead of the engine object).
:class:`QueryTaskSpec`
    The search task: build the engine once per worker, ``mmap`` the
    database once per worker, then stream queries.
:class:`ClusterNodeSpec`
    The cluster task: each worker maps the database, partitions it
    locally, and runs whole cuBLASTP node searches.

:func:`database_path_for_workers` is the in-memory fallback: anything
that is not already a saved binary database is spilled to a temporary
``.rpdb`` file so every caller can opt in to process execution.
"""

from __future__ import annotations

import multiprocessing
import os
import tempfile
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from queue import Empty
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator

from repro.engine.protocol import Engine, make_engine

if TYPE_CHECKING:
    from repro.core.statistics import SearchParams
    from repro.cublastp.config import CuBlastpConfig
    from repro.io.database import SequenceDatabase
    from repro.io.store import DatabaseStore


class WorkerCrashError(RuntimeError):
    """The worker process holding this task died before finishing it."""


class RemoteTaskError(RuntimeError):
    """An exception raised inside a worker, rehydrated at the parent.

    Carries the original type name and the remote traceback text (the
    exception object itself never crosses the boundary).
    """

    def __init__(self, exc_type: str, message: str, remote_traceback: str = "") -> None:
        super().__init__(f"{exc_type}: {message}")
        self.exc_type = exc_type
        self.remote_traceback = remote_traceback


def _encode_error(exc: BaseException) -> dict:
    return {
        "type": type(exc).__name__,
        "message": str(exc),
        "traceback": traceback.format_exc(),
    }


def _decode_error(payload: dict) -> RemoteTaskError:
    return RemoteTaskError(payload["type"], payload["message"], payload["traceback"])


# -- the engine spec -------------------------------------------------------


@dataclass(frozen=True)
class EngineSpec:
    """Picklable description of an engine: what a worker rebuilds locally.

    Mirrors :func:`~repro.engine.protocol.make_engine`'s arguments — a
    registry ``name`` plus the small parameter/configuration dataclasses.
    A worker calls :meth:`build` once and reuses the engine for every
    query it is handed.
    """

    name: str
    params: "SearchParams | None" = None
    config: "CuBlastpConfig | None" = None
    threads: int | None = None
    device: Any | None = None

    def build(self, events: Any | None = None) -> Engine:
        return make_engine(
            self.name,
            self.params,
            config=self.config,
            threads=self.threads,
            device=self.device,
            events=events,
        )

    @classmethod
    def from_engine(cls, engine: Engine) -> "EngineSpec":
        """Derive the spec of a live engine instance.

        Works for every registry engine; hand-built engine objects that
        are not registry types cannot cross the process boundary — pass
        an explicit :class:`EngineSpec` to the executor instead.
        """
        from repro.baselines.cuda_blastp import CudaBlastp
        from repro.baselines.fsa_blast import FsaBlast
        from repro.baselines.gpu_blastp import GpuBlastp
        from repro.baselines.ncbi_blast import NcbiBlast
        from repro.core.pipeline import BlastpPipeline
        from repro.cublastp.search import CuBlastp

        if isinstance(engine, CuBlastp):
            return cls(
                "cublastp",
                engine.params,
                config=engine.config,
                device=engine.device,
            )
        if isinstance(engine, NcbiBlast):  # before FsaBlast (subclass)
            return cls("ncbi", engine.params, threads=engine.threads)
        if isinstance(engine, FsaBlast):
            return cls("fsa", engine.params)
        if isinstance(engine, GpuBlastp):  # before CudaBlastp (subclass)
            return cls("gpu-blastp", engine.params, device=engine.device)
        if isinstance(engine, CudaBlastp):
            return cls("cuda-blastp", engine.params, device=engine.device)
        if isinstance(engine, BlastpPipeline):
            return cls("reference", engine.params)
        raise TypeError(
            f"cannot derive a process-boundary spec for {type(engine).__name__}; "
            "pass an explicit EngineSpec to BatchExecutor(spec=...)"
        )


# -- the database spill ----------------------------------------------------


def database_path_for_workers(
    db: "SequenceDatabase | str | Path", store: "DatabaseStore | None" = None
) -> tuple[Path, Callable[[], None] | None]:
    """A binary-format path workers can ``mmap``, spilling when needed.

    A path to a saved binary database passes straight through. Anything
    else — an in-memory database, a store-registered name, or a legacy
    ``.npz`` archive — is resolved and written to a temporary ``.rpdb``
    file. Returns ``(path, cleanup)``; call ``cleanup`` (when not
    ``None``) after the workers are done with the file.
    """
    from repro.io import storage

    if isinstance(db, (str, Path)):
        path = Path(db)
        if path.exists() and storage.sniff_format(path) == "binary":
            return path, None
        if store is None:
            from repro.io.store import get_default_store

            store = get_default_store()
        db = store.resolve(db)
    fd, name = tempfile.mkstemp(prefix="repro-batch-", suffix=".rpdb")
    os.close(fd)
    db.save(name)
    return Path(name), lambda: os.unlink(name)


# -- worker side -----------------------------------------------------------


@dataclass
class _QueryWorkerState:
    engine: Engine
    db: "SequenceDatabase"
    events: Any


@dataclass(frozen=True)
class QueryTaskSpec:
    """One-query-per-task work: the :class:`BatchExecutor` process backend.

    ``setup`` builds the engine once and maps the database once;
    ``run`` executes ``(query_id, sequence)`` tasks against them and
    returns canonical-form payloads.
    """

    engine: EngineSpec
    db_path: str
    collect_events: bool = False
    mmap: bool = True

    def setup(self) -> _QueryWorkerState:
        from repro.engine.events import EventLog
        from repro.io.database import SequenceDatabase

        events = EventLog() if self.collect_events else None
        engine = self.engine.build(events=events)
        db = SequenceDatabase.load(self.db_path, mmap=self.mmap)
        return _QueryWorkerState(engine, db, events)

    def run(self, state: _QueryWorkerState, task: tuple[str, str]) -> dict:
        from repro.verify.canonical import result_to_payload

        query_id, sequence = task
        t0 = time.perf_counter()
        compiled = state.engine.compile(sequence)
        result = state.engine.run(compiled, state.db, query_id=query_id)
        payload = {
            "result": result_to_payload(result),
            "engine": getattr(state.engine, "name", self.engine.name),
            "wall_ms": (time.perf_counter() - t0) * 1e3,
        }
        if state.events is not None:
            wall = state.events.wall_breakdown()
            payload["events"] = [
                (e.phase, e.work_items, e.modelled_ms, wall.get(e.phase))
                for e in state.events.ends()
            ]
            state.events.clear()
        return payload


@dataclass
class _SweepWorkerState:
    pipelines: list
    index: Any
    cutoffs: list
    blocks: list
    block_starts: list


@dataclass(frozen=True)
class SweepBlockSpec:
    """One-database-block-per-task work: the db-sweep executor mode.

    The inversion of :class:`QueryTaskSpec`'s ownership model: workers own
    *database blocks* instead of whole queries. ``setup`` compiles every
    query of the batch once, merges their neighbourhoods into one
    :class:`~repro.seeding.multi_query.MultiQueryIndex`, maps the database
    and cuts the same residue-balanced blocks the parent scheduled
    (block bounds are deterministic, so head and workers agree). ``run``
    takes a block index, sweeps that block for the whole batch, runs
    block-local two-hit + ungapped extension per query, and returns only
    the surviving extensions — plain int lists, a few KB per block,
    instead of the block's millions of raw hits. The parent merges the
    tagged streams across chunks in block order and finishes gapped
    extension + traceback per query.

    Every field is a picklable builtin or a registry dataclass — the
    ``picklable-spec-fields`` lint rule keeps it that way by construction.
    """

    engine: EngineSpec
    db_path: str
    #: The whole batch: ``(query_id, sequence)`` pairs, in batch order.
    queries: tuple
    num_blocks: int
    mmap: bool = True

    def setup(self) -> _SweepWorkerState:
        from repro.core.pipeline import BlastpPipeline
        from repro.io.database import SequenceDatabase
        from repro.seeding.multi_query import MultiQueryIndex

        engine = self.engine.build()
        db = SequenceDatabase.load(self.db_path, mmap=self.mmap)
        pipelines = [
            BlastpPipeline(engine.compile(sequence), query_id=query_id)
            for query_id, sequence in self.queries
        ]
        index = MultiQueryIndex.from_compiled([p.compiled for p in pipelines])
        # Cutoff statistics against the whole database — identical to the
        # per-query path; blocks never enter the statistics.
        cutoffs = [p.cutoffs(db) for p in pipelines]
        blocks = db.blocks(self.num_blocks)
        block_starts = [getattr(b, "start", 0) for b in blocks]
        return _SweepWorkerState(pipelines, index, cutoffs, blocks, block_starts)

    def run(self, state: _SweepWorkerState, block_index: int) -> dict:
        from repro.core.sweep import sweep_extend_block

        t0 = time.perf_counter()
        extensions, num_hits, num_seeds, phase_wall = sweep_extend_block(
            state.index,
            state.pipelines,
            state.blocks[block_index],
            state.cutoffs,
            seq_id_base=state.block_starts[block_index],
        )
        from repro.verify.canonical import extensions_to_payload

        return {
            "block": block_index,
            "num_hits": [int(n) for n in num_hits],
            "num_seeds": [int(n) for n in num_seeds],
            # Columnar marshalling: six aligned int lists per query, not
            # one nested list per record.
            "extensions": [
                extensions_to_payload(per_query) for per_query in extensions
            ],
            "wall_ms": (time.perf_counter() - t0) * 1e3,
            # Worker-side phase split, so the parent can attribute the
            # block's wall to hit detection vs ungapped extension instead
            # of one opaque sweep number.
            "phase_wall_ms": {k: float(v) for k, v in phase_wall.items()},
        }


@dataclass(frozen=True)
class ClusterNodeSpec:
    """One-node-per-task work for :class:`~repro.cluster.multi_gpu.MultiGpuBlastp`.

    Each worker maps the database, computes the node partitioning locally
    (identical arithmetic to the head — partitioning is deterministic),
    and runs the full cuBLASTP pipeline on the node's shard. Alignments
    return id-remapped into the global database coordinate system.
    """

    query: str
    params: "SearchParams"
    config: "CuBlastpConfig"
    device: Any
    db_path: str
    num_nodes: int
    interleaved: bool = True

    def setup(self) -> tuple[Any, Any]:
        from repro.cluster.partition import partition_database
        from repro.cublastp.search import CuBlastp
        from repro.io.database import SequenceDatabase

        db = SequenceDatabase.load(self.db_path, mmap=True)
        parts = partition_database(db, self.num_nodes, interleaved=self.interleaved)
        searcher = CuBlastp(self.query, self.params, self.config, self.device)
        return searcher, parts

    def run(self, state: tuple[Any, Any], node: int) -> dict:
        from repro.verify.canonical import alignments_to_payload

        searcher, parts = state
        part = parts[node]
        result, report = searcher.search_with_report(part.db)
        remapped = [
            {**a, "seq_id": part.to_global(a["seq_id"])}
            for a in alignments_to_payload(result.alignments)
        ]
        return {
            "node": part.node,
            "num_sequences": len(part.db),
            "alignments": remapped,
            "counts": {
                "num_hits": int(report.gpu.num_hits),
                "num_seeds": int(report.gpu.num_seeds),
                "num_ungapped_extensions": len(report.gpu.extensions),
                "num_gapped_extensions": len(report.cpu.gapped_extensions),
            },
            "elapsed_ms": float(report.overall_ms),
            "breakdown": dict(report.breakdown),
        }


def _worker_main(
    spec: Any, task_queue: Any, result_queue: Any, worker_id: int
) -> None:
    """Worker entry point: one setup, then a task loop until the sentinel."""
    try:
        state = spec.setup()
    except BaseException as exc:  # noqa: BLE001  # reprolint: disable=no-bare-except
        result_queue.put(("init_error", worker_id, _encode_error(exc)))
        return
    while True:
        message = task_queue.get()
        if message is None:
            return
        for index, item in message:
            # Announce the task before touching it: on a crash the parent
            # can tell truly-in-flight tasks (fail) from ones still queued
            # behind the corpse (safe to requeue on a sibling).
            result_queue.put(("begin", worker_id, (index, None)))
            try:
                payload = spec.run(state, item)
                result_queue.put(("ok", worker_id, (index, payload)))
            except BaseException as exc:  # noqa: BLE001  # reprolint: disable=no-bare-except
                result_queue.put(("err", worker_id, (index, _encode_error(exc))))


# -- parent side -----------------------------------------------------------


@dataclass
class _WorkerSlot:
    slot: int
    proc: Any = None
    task_queue: Any = None
    #: index -> True for every task dispatched to this worker and not yet
    #: answered.
    pending: dict = field(default_factory=dict)
    #: indices the worker has announced it started executing; on a crash
    #: exactly these fail — pending-but-unstarted tasks are requeued.
    started: set = field(default_factory=set)
    #: chunk ids currently assigned (bounds in-flight chunk dispatch).
    chunks: set = field(default_factory=set)
    respawns_left: int = 2
    dead: bool = False


def default_start_method() -> str:
    """``fork`` where available (cheap warm-up), else ``spawn``."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


class ProcessPool:
    """Persistent warm workers executing a picklable task spec.

    Parameters
    ----------
    spec:
        Picklable object with ``setup() -> state`` (run once per worker)
        and ``run(state, item) -> payload`` (run per task). Payloads must
        be picklable builtins.
    jobs:
        Number of worker processes.
    mp_context:
        ``multiprocessing`` start method (defaults to
        :func:`default_start_method`).
    max_respawns:
        Crash budget per worker slot; past it the slot stays dead (and if
        every slot dies, remaining tasks fail with
        :class:`WorkerCrashError` instead of hanging).
    clamp_jobs:
        Cap ``jobs`` at ``os.cpu_count()``. Worker processes beyond the
        core count cannot run concurrently — they only multiply engine
        builds and database mappings (the jobs=4-on-1-core regression the
        throughput benchmark recorded). The requested value stays
        readable as :attr:`requested_jobs`.
    persistent:
        Keep the workers warm across :meth:`run` calls instead of
        shutting them down when each task stream ends — the always-on
        serving mode, where every coalesced batch is one ``run`` and
        paying a worker setup (engine build + database ``mmap``) per
        batch would dominate latency. A persistent pool is retired with
        an explicit :meth:`shutdown`; sequential ``run`` calls only (the
        task queues are not re-entrant).
    """

    def __init__(
        self,
        spec: Any,
        jobs: int,
        *,
        mp_context: str | None = None,
        max_respawns: int = 2,
        clamp_jobs: bool = False,
        persistent: bool = False,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be positive")
        self.spec = spec
        self.requested_jobs = jobs
        if clamp_jobs:
            jobs = max(1, min(jobs, os.cpu_count() or 1))
        self.jobs = jobs
        self.ctx = multiprocessing.get_context(mp_context or default_start_method())
        self.max_respawns = max_respawns
        self.persistent = persistent
        # Scheduling state below is dispatcher-owned: one thread drives
        # ensure_started/run/shutdown (sequential ``run`` calls only —
        # see the class docstring). The concurrency contract checker
        # flags any other thread reaching in; the worker processes only
        # ever touch the queues.
        self._started = False  # owned-by: dispatcher
        self._closed = False  # owned-by: dispatcher
        #: First task index of the next ``run`` call. Task indexes are
        #: global across a persistent pool's lifetime so a straggler
        #: result from an abandoned earlier stream can never be mistaken
        #: for a current one (stale indexes are simply dropped).
        self._task_base = 0  # owned-by: dispatcher
        self._results = self.ctx.Queue()
        self._slots = [  # owned-by: dispatcher
            _WorkerSlot(slot=i, respawns_left=max_respawns) for i in range(jobs)
        ]
        #: chunk id -> set of task indices still outstanding from it.
        self._chunk_members: dict[int, set[int]] = {}  # owned-by: dispatcher
        #: task index -> chunk id (to release the chunk as tasks finish).
        self._chunk_of: dict[int, int] = {}  # owned-by: dispatcher
        #: task index -> original item, kept while in flight so a task
        #: queued behind a crashed worker can be requeued on a sibling.
        self._items: dict[int, Any] = {}  # owned-by: dispatcher
        self._next_chunk_id = 0  # owned-by: dispatcher

    # -- worker lifecycle --------------------------------------------------

    def ensure_started(self) -> None:  # runs-on: dispatcher
        """Spawn the worker set once (idempotent; used by persistent pools)."""
        if self._closed:
            raise RuntimeError("pool has been shut down")
        if self._started:
            return
        for slot in self._slots:
            if not slot.dead and slot.proc is None:
                self._spawn(slot)
        self._started = True

    def worker_pids(self) -> list[int]:
        """PIDs of the live workers (fault-injection tests target these).

        Cross-thread introspection: a racy read of live slot state used
        by tests and diagnostics only, never to mutate the pool.
        """
        slots = self._slots  # reprolint: disable=thread-ownership
        return [
            slot.proc.pid
            for slot in slots
            if slot.proc is not None and slot.proc.is_alive() and slot.proc.pid
        ]

    @property
    def alive_workers(self) -> int:
        """Slots that have not exhausted their respawn budget.

        Cross-thread introspection, same caveat as :meth:`worker_pids`.
        """
        slots = self._slots  # reprolint: disable=thread-ownership
        return sum(1 for s in slots if not s.dead)

    def _spawn(self, slot: _WorkerSlot) -> None:
        slot.task_queue = self.ctx.Queue()
        slot.proc = self.ctx.Process(
            target=_worker_main,
            args=(self.spec, slot.task_queue, self._results, slot.slot),
            daemon=True,
            name=f"repro-worker-{slot.slot}",
        )
        slot.proc.start()

    def _handle_dead(self, slot: _WorkerSlot, buffered: dict) -> list[tuple[int, Any]]:
        """Fail the dead worker's started tasks; return the rest for requeue."""
        exitcode = slot.proc.exitcode if slot.proc is not None else None
        requeue: list[tuple[int, Any]] = []
        for index in list(slot.pending):
            if index in slot.started:
                buffered[index] = (
                    None,
                    WorkerCrashError(
                        f"worker {slot.slot} died (exit code {exitcode}) with "
                        f"query #{index - self._task_base} in flight"
                    ),
                )
                self._items.pop(index, None)
            else:
                requeue.append((index, self._items[index]))
            self._release(index)
        slot.pending.clear()
        slot.started.clear()
        slot.chunks.clear()
        return requeue

    def _release(self, index: int) -> None:
        """Drop a finished/failed task from its chunk's outstanding set."""
        chunk_id = self._chunk_of.pop(index, None)
        if chunk_id is None:
            return
        members = self._chunk_members.get(chunk_id)
        if members is not None:
            members.discard(index)
            if not members:
                del self._chunk_members[chunk_id]
                for slot in self._slots:
                    slot.chunks.discard(chunk_id)

    def _reap_dead(self, buffered: dict) -> None:
        for slot in self._slots:
            if slot.dead or slot.proc is None or slot.proc.is_alive():
                continue
            requeue = self._handle_dead(slot, buffered)
            if slot.respawns_left > 0:
                slot.respawns_left -= 1
                self._spawn(slot)
            else:
                slot.dead = True
                slot.proc = None
            self._redispatch(requeue, buffered)

    def _alive_slots(self) -> list[_WorkerSlot]:
        return [s for s in self._slots if not s.dead]

    def _dispatch_chunk(self, slot: _WorkerSlot, chunk: list[tuple[int, Any]]) -> None:
        chunk_id = self._next_chunk_id
        self._next_chunk_id += 1
        members = set()
        for index, item in chunk:
            slot.pending[index] = True
            members.add(index)
            self._chunk_of[index] = chunk_id
            self._items[index] = item
        self._chunk_members[chunk_id] = members
        slot.chunks.add(chunk_id)
        slot.task_queue.put(chunk)

    def _redispatch(
        self, requeue: list[tuple[int, Any]], buffered: dict
    ) -> None:
        """Requeue never-started tasks from a dead worker, or fail them."""
        if not requeue:
            return
        live = self._alive_slots()
        if not live:
            for index, _ in requeue:
                buffered[index] = (
                    None,
                    WorkerCrashError(
                        f"no live workers left to requeue query "
                        f"#{index - self._task_base} (respawn budget spent)"
                    ),
                )
                self._items.pop(index, None)
            return
        slot = min(live, key=lambda s: (len(s.chunks), len(s.pending)))
        self._dispatch_chunk(slot, requeue)

    # -- scheduling --------------------------------------------------------

    @staticmethod
    def _chunked(tasks: Iterable[Any], chunk_size: int, start: int = 0) -> Iterator[list]:
        chunk: list = []
        for indexed in enumerate(tasks, start=start):
            chunk.append(indexed)
            if len(chunk) >= chunk_size:
                yield chunk
                chunk = []
        if chunk:
            yield chunk

    def run(  # runs-on: dispatcher
        self,
        tasks: Iterable[Any],
        *,
        chunk_size: int = 1,
        max_in_flight_chunks: int | None = None,
    ) -> Iterator[tuple[int, Any, Exception | None]]:
        """Yield ``(index, payload, error)`` per task, in input order.

        Tasks are consumed lazily, grouped into chunks of ``chunk_size``,
        and dispatched to the least-loaded live worker; at most
        ``max_in_flight_chunks`` (default ``2 * jobs``) chunks are
        outstanding, so an unbounded task stream gets backpressure.
        Indexes yielded are relative to this call's task stream (0-based)
        even on a persistent pool, whose internal indexes are global.
        """
        if chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        cap = max_in_flight_chunks if max_in_flight_chunks is not None else 2 * self.jobs
        if cap < self.jobs:
            raise ValueError("max_in_flight_chunks must be >= jobs")
        self.ensure_started()
        if self.persistent:
            # A previous stream abandoned mid-flight (consumer stopped
            # iterating) may have left bookkeeping behind; drop it so a
            # later crash cannot try to requeue dead history. Results for
            # those tasks still drain from the queue below and are
            # discarded by the stale-index check.
            for slot in self._slots:
                slot.pending.clear()
                slot.started.clear()
                slot.chunks.clear()
            self._chunk_members.clear()
            self._chunk_of.clear()
            self._items.clear()
        base = self._task_base
        chunk_iter = self._chunked(tasks, chunk_size, start=base)
        dispatched_all = False
        dispatched = 0
        buffered: dict[int, tuple[Any, Exception | None]] = {}
        emit = base
        try:
            while True:
                # Top up: assign chunks while under the in-flight bound.
                while not dispatched_all:
                    live = self._alive_slots()
                    if not live:
                        # Every slot exhausted its respawn budget: fail
                        # the rest of the stream instead of hanging.
                        for chunk in chunk_iter:
                            for index, _ in chunk:
                                buffered[index] = (
                                    None,
                                    WorkerCrashError(
                                        "no live workers left for query "
                                        f"#{index - base} (respawn budget spent)"
                                    ),
                                )
                                dispatched += 1
                        dispatched_all = True
                        break
                    if len(self._chunk_members) >= cap:
                        break
                    chunk = next(chunk_iter, None)
                    if chunk is None:
                        dispatched_all = True
                        break
                    slot = min(live, key=lambda s: (len(s.chunks), len(s.pending)))
                    self._dispatch_chunk(slot, chunk)
                    dispatched += len(chunk)
                while emit in buffered:
                    payload, error = buffered.pop(emit)
                    yield emit - base, payload, error
                    emit += 1
                if dispatched_all and emit - base >= dispatched:
                    return
                try:
                    kind, worker_id, body = self._results.get(timeout=0.1)
                except Empty:
                    # The queue is drained, so every pre-death message of a
                    # crashed worker has been seen — safe to reap now.
                    self._reap_dead(buffered)
                    continue
                slot = self._slots[worker_id]
                if kind == "init_error":
                    # Setup failed: nothing assigned was started, so all of
                    # it can requeue; the respawn budget decides whether
                    # the slot itself gets another attempt.
                    requeue = self._handle_dead(slot, buffered)
                    if slot.proc is not None:
                        slot.proc.join(timeout=5)
                    if slot.respawns_left > 0:
                        slot.respawns_left -= 1
                        self._spawn(slot)
                    else:
                        slot.dead = True
                        slot.proc = None
                    self._redispatch(requeue, buffered)
                    continue
                index, payload = body
                if index < base:
                    # Straggler from an abandoned earlier stream on a
                    # persistent pool; its bookkeeping is already gone.
                    continue
                if kind == "begin":
                    slot.started.add(index)
                    continue
                if kind == "ok":
                    buffered[index] = (payload, None)
                else:
                    buffered[index] = (None, _decode_error(payload))
                slot.pending.pop(index, None)
                slot.started.discard(index)
                self._items.pop(index, None)
                self._release(index)
        finally:
            self._task_base = base + dispatched
            if not self.persistent:
                self.shutdown()

    def shutdown(self) -> None:  # runs-on: dispatcher
        """Stop every worker (sentinel, join, then terminate stragglers).

        Idempotent; a persistent pool cannot be restarted afterwards
        (the shared result queue is closed for good). Runs on the
        dispatcher role: either from ``run``'s cleanup, or from a
        closing thread after the stream is fully drained — at which
        point ownership has transferred and that thread is the single
        logical driver of the pool.
        """
        self._started = False
        for slot in self._slots:
            if slot.proc is None:
                continue
            if slot.proc.is_alive():
                try:
                    slot.task_queue.put(None)
                except (OSError, ValueError):  # queue already closed
                    pass
        for slot in self._slots:
            if slot.proc is None:
                continue
            slot.proc.join(timeout=2)
            if slot.proc.is_alive():
                slot.proc.terminate()
                slot.proc.join(timeout=2)
            slot.proc = None
        if not self._closed:
            self._closed = True
            self._results.close()
            self._results.join_thread()
