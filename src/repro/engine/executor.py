"""Concurrent batch scheduler over any engine.

Real deployments stream many queries against one resident database.
:class:`BatchExecutor` replaces the serial loop every caller used to
hand-roll: it compiles each query once (through an optional
:class:`~repro.engine.compiled.QueryCache` for repeated-query traffic),
schedules searches on a bounded thread pool, isolates per-query failures,
and yields outcomes in input order — streamed, so a consumer can render
query *k*'s result while query *k+N* is still in flight.

The database stays resident for the whole batch (it is shared read-only
by every worker), mirroring how the paper's evaluation amortises database
residency across a query stream. Wherever a database is accepted, a path
to a saved one works too: it is resolved through a
:class:`~repro.io.store.DatabaseStore` (mmap-loaded, LRU-resident), so
successive batches against the same file reuse one mapping.

Two backends share the scheduling contract (input-order streaming,
bounded in-flight work, per-query error isolation):

``backend="thread"``
    In-process thread pool. Zero marshalling, shared database object —
    but the hot phases hold the GIL, so CPU scaling is limited.
``backend="process"``
    Persistent warm worker processes (:mod:`repro.engine.procpool`).
    Each worker builds the engine once and re-opens the database through
    the versioned binary format (``mmap``, no pickling); only query
    strings and canonical-form result payloads cross the boundary. This
    is the backend that actually scales the GIL-bound phases across
    cores. In-memory databases are spilled to a temporary binary file
    for the batch. Reports are not collected (they would have to be
    pickled); attach an :class:`~repro.engine.events.EventLog` for the
    per-phase story instead.
"""

from __future__ import annotations

import inspect
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable, Iterator, Union

from repro.engine.compiled import CompiledQuery, QueryCache
from repro.engine.events import EventLog
from repro.engine.protocol import Engine, make_engine

if TYPE_CHECKING:
    from repro.batch import BatchResult
    from repro.core.results import SearchResult
    from repro.io.database import SequenceDatabase
    from repro.io.store import DatabaseStore

    DatabaseLike = Union["SequenceDatabase", str, Path]


@dataclass
class QueryOutcome:
    """Outcome of one query in a batch.

    Exactly one of :attr:`result` / :attr:`error` is set: a failing query
    produces an error record instead of aborting the batch.
    """

    index: int
    query_id: str
    result: "SearchResult | None" = None
    report: Any | None = None
    error: Exception | None = None
    cache_hit: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None


def _accepts_config(factory: Any) -> bool:
    """Whether a legacy engine factory can take a ``config`` argument."""
    try:
        params = inspect.signature(factory).parameters.values()
    except (TypeError, ValueError):  # builtins / C callables
        return False
    return any(
        p.name == "config" or p.kind is inspect.Parameter.VAR_KEYWORD for p in params
    )


class BatchExecutor:
    """Thread-pooled scheduler running a query stream through one engine.

    Parameters
    ----------
    engine:
        Any :class:`~repro.engine.protocol.Engine` (defaults to cuBLASTP
        with default parameters — see :func:`~repro.engine.protocol.make_engine`).
    jobs:
        Worker threads (or processes). Under the thread backend ``1``
        runs inline (no pool); results are in input order and
        byte-identical regardless of ``jobs`` and backend.
    backend:
        ``"thread"`` (default) or ``"process"`` — see the module
        docstring for the tradeoff.
    max_in_flight:
        Bound on submitted-but-unconsumed queries (defaults to
        ``2 * jobs``) — backpressure for unbounded query streams. The
        process backend applies it in units of chunks.
    chunk_size:
        Queries per dispatch message (process backend only; default 1).
        Raise it when queries are very cheap relative to IPC.
    mp_context:
        ``multiprocessing`` start method for the process backend
        (defaults to ``fork`` where available, else ``spawn``).
    spec:
        Explicit :class:`~repro.engine.procpool.EngineSpec` for the
        process backend; by default it is derived from ``engine``.
    cache:
        Optional :class:`~repro.engine.compiled.QueryCache`; repeated
        sequences skip recompilation and outcomes flag ``cache_hit``.
    collect_reports:
        Attach the engine's timing report to each outcome when the engine
        supports ``run_with_report``.
    events:
        Optional :class:`~repro.engine.events.EventLog` shared with the
        engine, for phase-level consumption of the whole batch.
    store:
        :class:`~repro.io.store.DatabaseStore` used to resolve database
        *paths* passed to :meth:`stream` / :meth:`run` (defaults to the
        process-wide store).
    mode:
        ``"per-query"`` (default): each worker owns whole queries.
        ``"db-sweep"``: the batch-first inversion — the whole batch is
        compiled up front, hit detection makes *one* blocked pass over
        the database through a merged
        :class:`~repro.seeding.multi_query.MultiQueryIndex`, and under
        the process backend workers own database *blocks* instead of
        queries (query-tagged extension streams merge across chunks
        before gapped extension). Results are identical to per-query
        mode, outcome for outcome; error isolation is coarser — a
        failure during the shared sweep fails the whole batch (compile
        errors stay per-query).
    clamp_jobs:
        Cap process-backend ``jobs`` at ``os.cpu_count()`` (default on).
        Extra worker processes on an oversubscribed host only multiply
        engine builds and database mappings; the requested value stays
        readable as :attr:`requested_jobs` and benchmarks record the
        clamp.
    block_residues:
        Target residues per sweep block (db-sweep mode; default
        :data:`~repro.core.sweep.DEFAULT_BLOCK_RESIDUES`).
    keep_pool:
        Keep the process backend's worker pool warm across batches
        (per-query mode). An always-on service runs one small batch per
        coalescing window; without this every window would pay worker
        spawn + engine build + database ``mmap``. The kept pool is bound
        to one database path; call :meth:`close` (or use the executor as
        a context manager) to retire it. Successive batches reuse the
        same workers — crash respawn budgets carry across batches, and a
        fully dead pool fails subsequent batches fast instead of hanging.
    max_respawns:
        Per-worker-slot crash budget for the process backend (default 2).
    """

    #: Execution backends ``backend`` accepts.
    BACKENDS = ("thread", "process")

    #: Scheduling modes ``mode`` accepts.
    MODES = ("per-query", "db-sweep")

    def __init__(
        self,
        engine: Engine | None = None,
        *,
        jobs: int = 1,
        backend: str = "thread",
        max_in_flight: int | None = None,
        cache: QueryCache | None = None,
        collect_reports: bool = True,
        events: EventLog | None = None,
        store: "DatabaseStore | None" = None,
        chunk_size: int | None = None,
        mp_context: str | None = None,
        spec: Any | None = None,
        mode: str = "per-query",
        clamp_jobs: bool = True,
        block_residues: int | None = None,
        keep_pool: bool = False,
        max_respawns: int = 2,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be positive")
        if backend not in self.BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r} (choose from {', '.join(self.BACKENDS)})"
            )
        if mode not in self.MODES:
            raise ValueError(
                f"unknown mode {mode!r} (choose from {', '.join(self.MODES)})"
            )
        if block_residues is not None and block_residues < 1:
            raise ValueError("block_residues must be positive")
        self.requested_jobs = jobs
        if backend == "process" and clamp_jobs:
            import os

            jobs = max(1, min(jobs, os.cpu_count() or 1))
        if max_in_flight is not None and max_in_flight < jobs:
            raise ValueError("max_in_flight must be >= jobs")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        self.engine = engine if engine is not None else make_engine("cublastp", events=events)
        self.jobs = jobs
        self.backend = backend
        self.mode = mode
        self.block_residues = block_residues
        self.max_in_flight = max_in_flight if max_in_flight is not None else 2 * jobs
        self.cache = cache
        self.collect_reports = collect_reports
        self.events = events
        self.store = store
        self.chunk_size = chunk_size if chunk_size is not None else 1
        self.mp_context = mp_context
        self.spec = spec
        self.keep_pool = keep_pool
        self.max_respawns = max_respawns
        # Pool residency is dispatcher-owned: exactly one thread drives
        # stream()/run() at a time (the serve dispatcher, or whatever
        # single thread owns this executor). The concurrency contract
        # checker holds every other access to that discipline.
        self._pool: Any | None = None  # owned-by: dispatcher
        self._pool_key: tuple | None = None  # owned-by: dispatcher
        self._pool_cleanup: Any | None = None  # owned-by: dispatcher

    @property
    def jobs_clamped(self) -> bool:
        """Whether the host's core count reduced the requested jobs."""
        return self.jobs < self.requested_jobs

    def _resolve_db(self, db: "DatabaseLike") -> "SequenceDatabase":
        """Pass databases through; open paths via the (default) store."""
        if isinstance(db, (str, Path)):
            if self.store is None:
                from repro.io.store import get_default_store

                self.store = get_default_store()
            return self.store.open(db)
        return db

    # -- per-query work ----------------------------------------------------

    def _compile(self, sequence: str) -> tuple[CompiledQuery | Any, bool]:
        if self.cache is not None:
            params = getattr(self.engine, "params", None)
            if params is not None:
                return self.cache.get_or_compile(sequence, params)
        return self.engine.compile(sequence), False

    def _execute(self, index: int, query_id: str, sequence: str, db: "SequenceDatabase") -> QueryOutcome:
        try:
            compiled, cache_hit = self._compile(sequence)
            runner = getattr(self.engine, "run_with_report", None)
            if self.collect_reports and runner is not None:
                result, report = runner(compiled, db, query_id=query_id)
            else:
                result, report = self.engine.run(compiled, db, query_id=query_id), None
            return QueryOutcome(
                index, query_id, result=result, report=report, cache_hit=cache_hit
            )
        except Exception as exc:  # per-query isolation: record, don't abort
            return QueryOutcome(index, query_id, error=exc)

    # -- scheduling --------------------------------------------------------

    def stream(  # runs-on: dispatcher
        self, queries: Iterable[tuple[str, str]], db: "DatabaseLike"
    ) -> Iterator[QueryOutcome]:
        """Yield one :class:`QueryOutcome` per query, in input order.

        ``db`` may be a resident :class:`~repro.io.database.SequenceDatabase`
        or a path to a saved one (store-resolved). Consumption drives
        submission: at most :attr:`max_in_flight` queries are in flight
        ahead of the consumer.
        """
        if self.mode == "db-sweep":
            if self.backend == "process":
                yield from self._stream_sweep_process(queries, db)
            else:
                yield from self._stream_sweep(queries, db)
            return
        if self.backend == "process":
            yield from self._stream_process(queries, db)
            return
        db = self._resolve_db(db)
        if self.jobs == 1:
            for index, (query_id, sequence) in enumerate(queries):
                yield self._execute(index, query_id, sequence, db)
            return
        from concurrent.futures import ThreadPoolExecutor

        pool = ThreadPoolExecutor(max_workers=self.jobs, thread_name_prefix="repro-batch")
        try:
            pending: deque = deque()
            for index, (query_id, sequence) in enumerate(queries):
                pending.append(pool.submit(self._execute, index, query_id, sequence, db))
                while len(pending) >= self.max_in_flight:
                    yield pending.popleft().result()
            while pending:
                yield pending.popleft().result()
        finally:
            pool.shutdown(wait=True, cancel_futures=True)

    # -- db-sweep mode -----------------------------------------------------

    def _compile_batch(
        self, queries: Iterable[tuple[str, str]]
    ) -> tuple[list[tuple[int, str, str, CompiledQuery, bool]], list[QueryOutcome]]:
        """Compile the whole batch up front, isolating per-query failures.

        Sweep modes share one database pass, so a query that cannot even
        compile must be excluded *before* the sweep (under the process
        backend it would otherwise crash every worker's ``setup``).
        Returns the good ``(index, query_id, sequence, compiled,
        cache_hit)`` entries plus ready-made error outcomes for the rest.
        """
        good: list[tuple[int, str, str, CompiledQuery, bool]] = []
        failed: list[QueryOutcome] = []
        for index, (query_id, sequence) in enumerate(queries):
            try:
                compiled, cache_hit = self._compile(sequence)
            except Exception as exc:
                failed.append(QueryOutcome(index, query_id, error=exc))
                continue
            good.append((index, query_id, sequence, compiled, cache_hit))
        return good, failed

    def _sweep_blocks(
        self, db: "DatabaseLike", resolved: "SequenceDatabase"
    ) -> "tuple[int, list[SequenceDatabase] | None]":
        """Block count plus (when ``db`` is a path) the store's cached cut."""
        from repro.core.sweep import num_sweep_blocks

        num_blocks = num_sweep_blocks(resolved, self.block_residues)
        if isinstance(db, (str, Path)) and self.store is not None:
            return num_blocks, self.store.blocks(db, num_blocks)
        return num_blocks, None

    def _stream_sweep(
        self, queries: Iterable[tuple[str, str]], db: "DatabaseLike"
    ) -> Iterator[QueryOutcome]:
        """In-process db-sweep: one blocked pass serves the whole batch.

        The sweep itself is a single pass (``jobs`` does not fan it out —
        use the process backend for block-parallel sweeping); what it buys
        in-process is hit detection amortised across the batch through the
        merged multi-query index.
        """
        from repro.engine.protocol import run_search_batch

        good, failed = self._compile_batch(queries)
        resolved = self._resolve_db(db)
        outcomes: dict[int, QueryOutcome] = {o.index: o for o in failed}
        if good:
            _num_blocks, blocks = self._sweep_blocks(db, resolved)
            try:
                results = run_search_batch(
                    self.engine,
                    [compiled for _, _, _, compiled, _ in good],
                    resolved,
                    [query_id for _, query_id, _, _, _ in good],
                    blocks=blocks,
                )
            except Exception as exc:
                # Coarse isolation: the pass is shared, so a sweep failure
                # is every query's failure.
                for index, query_id, _, _, _ in good:
                    outcomes[index] = QueryOutcome(index, query_id, error=exc)
            else:
                for (index, query_id, _, _, cache_hit), result in zip(good, results):
                    outcomes[index] = QueryOutcome(
                        index, query_id, result=result, cache_hit=cache_hit
                    )
        for index in sorted(outcomes):
            yield outcomes[index]

    def _stream_sweep_process(
        self, queries: Iterable[tuple[str, str]], db: "DatabaseLike"
    ) -> Iterator[QueryOutcome]:
        """Process-backend db-sweep: workers own database blocks.

        The ownership inversion of :meth:`_stream_process` — each task is
        a *block index*, not a query. Workers sweep their blocks for the
        whole batch and ship back only the per-query surviving extensions
        (six aligned plain-int columns each); the parent concatenates the
        columns in block order — which the two-hit lexsort makes equal to
        the one-shot extension array — and finishes gapped extension +
        traceback per query locally.
        """
        from repro.core.pipeline import BlastpPipeline
        from repro.core.results import ExtensionArray
        from repro.core.sweep import num_sweep_blocks, sweep_finish
        from repro.verify.canonical import extensions_from_payload
        from repro.engine.procpool import (
            EngineSpec,
            ProcessPool,
            SweepBlockSpec,
            database_path_for_workers,
        )

        good, failed = self._compile_batch(queries)
        outcomes: dict[int, QueryOutcome] = {o.index: o for o in failed}
        if not good:
            for index in sorted(outcomes):
                yield outcomes[index]
            return
        engine_spec = self.spec or EngineSpec.from_engine(self.engine)
        resolved = self._resolve_db(db)
        num_blocks = num_sweep_blocks(resolved, self.block_residues)
        db_path, cleanup = database_path_for_workers(db, store=self.store)
        task_spec = SweepBlockSpec(
            engine=engine_spec,
            db_path=str(db_path),
            queries=tuple((query_id, sequence) for _, query_id, sequence, _, _ in good),
            num_blocks=num_blocks,
        )
        pool = ProcessPool(task_spec, jobs=self.jobs, mp_context=self.mp_context)
        n = len(good)
        extensions: list[list[ExtensionArray]] = [[] for _ in range(n)]
        total_hits = [0] * n
        total_seeds = [0] * n
        sweep_error: Exception | None = None
        engine_name = getattr(self.engine, "name", engine_spec.name)
        try:
            for _block, payload, error in pool.run(
                range(num_blocks),
                chunk_size=self.chunk_size,
                max_in_flight_chunks=max(self.max_in_flight, self.jobs),
            ):
                if error is not None:
                    # One lost block loses every query's hits in it: the
                    # whole batch fails rather than silently under-report.
                    sweep_error = error
                    break
                block_items = 0
                for q in range(n):
                    total_hits[q] += payload["num_hits"][q]
                    total_seeds[q] += payload["num_seeds"][q]
                    part = extensions_from_payload(payload["extensions"][q])
                    extensions[q].append(part)
                    block_items += len(part)
                if self.events is not None:
                    # Worker-timed sweep: the worker already timed the
                    # phases; the parent records closing edges carrying
                    # the measured walls, split by phase exactly like the
                    # in-process sweep (wall_breakdown sums the wall_ms
                    # meta directly — it never saw the starts).
                    split = payload["phase_wall_ms"]
                    self.events.emit(  # reprolint: disable=event-begin-end-pairing
                        engine_name,
                        "hit_detection",
                        "end",
                        work_items=sum(payload["num_hits"]),
                        wall_ms=split["hit_detection"],
                    )
                    self.events.emit(  # reprolint: disable=event-begin-end-pairing
                        engine_name,
                        "ungapped_extension",
                        "end",
                        work_items=block_items,
                        wall_ms=split["ungapped_extension"],
                    )
        finally:
            pool.shutdown()
            if cleanup is not None:
                cleanup()
        if sweep_error is not None:
            for index, query_id, _, _, _ in good:
                outcomes[index] = QueryOutcome(index, query_id, error=sweep_error)
        else:
            for q, (index, query_id, _, compiled, cache_hit) in enumerate(good):
                try:
                    pipe = BlastpPipeline(compiled, query_id=query_id)
                    result, _counts = sweep_finish(
                        pipe,
                        resolved,
                        ExtensionArray.concat(extensions[q]),
                        total_hits[q],
                        total_seeds[q],
                        pipe.cutoffs(resolved),
                        engine_name=engine_name,
                        events=self.events,
                    )
                except Exception as exc:
                    outcomes[index] = QueryOutcome(index, query_id, error=exc)
                else:
                    outcomes[index] = QueryOutcome(
                        index, query_id, result=result, cache_hit=cache_hit
                    )
        for index in sorted(outcomes):
            yield outcomes[index]

    def _stream_process(
        self, queries: Iterable[tuple[str, str]], db: "DatabaseLike"
    ) -> Iterator[QueryOutcome]:
        """The process-backend stream: warm workers over the binary format."""
        from repro.engine.procpool import (
            EngineSpec,
            QueryTaskSpec,
            database_path_for_workers,
        )
        from repro.verify.canonical import result_from_payload

        engine_spec = self.spec or EngineSpec.from_engine(self.engine)
        db_path, cleanup = database_path_for_workers(db, store=self.store)
        task_spec = QueryTaskSpec(
            engine=engine_spec,
            db_path=str(db_path),
            collect_events=self.events is not None,
        )
        pool, pool_owned = self._acquire_pool(task_spec, cleanup)
        # Query ids are recorded as the pool consumes the (lazy) stream,
        # so an outcome can always name its query even on a crash.
        ids: dict[int, str] = {}

        def tasks() -> Iterator[tuple[str, str]]:
            for i, (query_id, sequence) in enumerate(queries):
                ids[i] = query_id
                yield query_id, sequence

        try:
            for index, payload, error in pool.run(
                tasks(),
                chunk_size=self.chunk_size,
                max_in_flight_chunks=max(self.max_in_flight, self.jobs),
            ):
                query_id = ids.pop(index, f"query-{index}")
                if error is not None:
                    yield QueryOutcome(index, query_id, error=error)
                    continue
                if self.events is not None:
                    engine_name = payload.get("engine", engine_spec.name)
                    for phase, work_items, modelled_ms, wall_ms in payload.get("events", []):
                        # Re-emission of worker-timed phases: the worker
                        # already paired start/end; the parent log records
                        # only the closing edge with the measured duration.
                        self.events.emit(  # reprolint: disable=event-begin-end-pairing
                            engine_name,
                            phase,
                            "end",
                            work_items=work_items,
                            modelled_ms=modelled_ms,
                            query_id=query_id,
                            **({"wall_ms": wall_ms} if wall_ms is not None else {}),
                        )
                yield QueryOutcome(
                    index, query_id, result=result_from_payload(payload["result"])
                )
        finally:
            if pool_owned:
                pool.shutdown()
                if cleanup is not None:
                    cleanup()

    # -- pool residency ----------------------------------------------------

    def _acquire_pool(self, task_spec: Any, cleanup: Any) -> tuple[Any, bool]:
        """The process pool for this batch: ``(pool, owned_by_this_call)``.

        Without :attr:`keep_pool` the pool is built fresh and the caller
        shuts it down after the batch. With it, one persistent pool is
        kept warm per ``(db_path, collect_events)`` binding; switching the
        binding retires the old pool (and any temp-file spill it mapped).
        """
        from repro.engine.procpool import ProcessPool

        if not self.keep_pool:
            return (
                ProcessPool(
                    task_spec,
                    jobs=self.jobs,
                    mp_context=self.mp_context,
                    max_respawns=self.max_respawns,
                ),
                True,
            )
        key = (task_spec.db_path, task_spec.collect_events)
        if self._pool is not None and self._pool_key != key:
            self.close()
        if self._pool is None:
            self._pool = ProcessPool(
                task_spec,
                jobs=self.jobs,
                mp_context=self.mp_context,
                max_respawns=self.max_respawns,
                persistent=True,
            )
            self._pool_key = key
            self._pool_cleanup = cleanup
        return self._pool, False

    @property
    def process_pool(self) -> Any | None:
        """The kept process pool, when one is alive (``keep_pool`` only).

        Cross-thread introspection (fault-injection tests read worker
        PIDs from the test thread): a benign racy read of a reference,
        never dereferenced for mutation by the reader.
        """
        return self._pool  # reprolint: disable=thread-ownership

    def close(self) -> None:  # runs-on: dispatcher
        """Retire a kept process pool and its database spill (idempotent).

        The ``runs-on: dispatcher`` contract here is ownership
        *transfer*, not thread identity: the caller must be done driving
        ``stream``/``run`` before closing (the serve layer joins the
        dispatcher thread first — a happens-before edge), at which point
        the closing thread is the single logical driver these fields
        belong to.
        """
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
            self._pool_key = None
        if self._pool_cleanup is not None:
            self._pool_cleanup()
            self._pool_cleanup = None

    def __enter__(self) -> "BatchExecutor":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def run(self, queries: Iterable[tuple[str, str]], db: "DatabaseLike") -> "BatchResult":
        """Run the whole batch and aggregate it into a :class:`BatchResult`."""
        from repro.batch import BatchResult

        return BatchResult(list(self.stream(queries, db)))
