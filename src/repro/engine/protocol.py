"""The engine protocol: compile once, run anywhere.

Every search implementation in the package — the reference pipeline,
cuBLASTP, and the baselines — satisfies :class:`Engine`:

* ``compile(query)`` builds the query-side structures once
  (:class:`~repro.engine.compiled.CompiledQuery`);
* ``run(compiled, db)`` executes the search and returns the canonical
  :class:`~repro.core.results.SearchResult`;
* ``run_with_report(compiled, db)`` (optional, :class:`ReportingEngine`)
  additionally returns the engine's timing report.

Engines are interchangeable everywhere one is accepted: the batch
executor, the cluster layer, the CLI, and the benchmarks all program
against this protocol. :func:`make_engine` builds a query-less engine
instance from a registry name — the same names the CLI's ``--engine``
flag accepts.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Protocol, runtime_checkable

from repro.engine.compiled import CompiledQuery

if TYPE_CHECKING:
    import numpy as np

    from repro.core.results import SearchResult
    from repro.core.statistics import SearchParams
    from repro.cublastp.config import CuBlastpConfig
    from repro.engine.events import EventLog
    from repro.io.database import SequenceDatabase


@runtime_checkable
class Engine(Protocol):
    """A protein-search implementation."""

    name: str

    def compile(self, query: "str | np.ndarray") -> CompiledQuery:
        """Build the query-side structures for this engine's parameters."""
        ...

    def run(self, compiled: CompiledQuery, db: "SequenceDatabase") -> "SearchResult":
        """Search ``db`` with an already-compiled query."""
        ...


@runtime_checkable
class ReportingEngine(Engine, Protocol):
    """An engine that also produces a timing report."""

    def run_with_report(
        self, compiled: CompiledQuery, db: "SequenceDatabase"
    ) -> "tuple[SearchResult, Any]":
        ...


@runtime_checkable
class BatchEngine(Engine, Protocol):
    """An engine with a native batch-first (db-sweep) search.

    ``search_batch`` runs a whole compiled-query batch through one pass
    over the database — hit detection shares a merged multi-query index
    instead of walking the subject codes once per query — and returns one
    result per query, in input order, each identical to what ``run``
    would have produced for that query alone. Engines without the
    capability still serve batches through :func:`run_search_batch`'s
    per-query fallback.
    """

    def search_batch(
        self,
        compiled: "list[CompiledQuery]",
        db: "SequenceDatabase",
        query_ids: "list[str | None] | None" = None,
    ) -> "list[SearchResult]":
        ...


def run_search_batch(
    engine: Engine,
    compiled: "list[CompiledQuery]",
    db: "SequenceDatabase",
    query_ids: "list[str | None] | None" = None,
    *,
    blocks: "list[SequenceDatabase] | None" = None,
) -> "list[SearchResult]":
    """Run a compiled batch on any engine, sweeping when it can.

    Dispatches to the engine's native ``search_batch`` (one blocked
    database pass for the whole batch) when present; otherwise falls back
    to per-query ``run`` calls — same results either way, so callers can
    request batch mode without knowing the engine's capabilities.
    ``blocks`` (pre-cut contiguous views, e.g. a store-cached partition)
    is forwarded to sweeping engines and ignored by the fallback.
    """
    ids = list(query_ids) if query_ids is not None else [None] * len(compiled)
    if len(ids) != len(compiled):
        raise ValueError("query_ids must align with the compiled batch")
    search_batch = getattr(engine, "search_batch", None)
    if search_batch is not None:
        if blocks is not None:
            return search_batch(compiled, db, query_ids=ids, blocks=blocks)
        return search_batch(compiled, db, query_ids=ids)
    return [
        engine.run(c, db, query_id=qid) for c, qid in zip(compiled, ids)
    ]


#: Registry names accepted by :func:`make_engine` (and ``--engine``).
ENGINE_NAMES = ("cublastp", "reference", "fsa", "ncbi", "cuda-blastp", "gpu-blastp")

#: ``cublastp`` accepts an extension-strategy suffix, e.g.
#: ``"cublastp:diagonal"`` — one name per Fig. 9 strategy, used by the
#: differential-verification matrix to pin each strategy as its own
#: implementation under test. ``cublastp:batched-gapped`` pins the CPU
#: side instead: the batched wavefront gapped-extension scheduler.
CUBLASTP_STRATEGY_NAMES = (
    "cublastp:diagonal",
    "cublastp:hit",
    "cublastp:window",
    "cublastp:batched-gapped",
)


def make_engine(
    name: str,
    params: "SearchParams | None" = None,
    *,
    config: "CuBlastpConfig | None" = None,
    threads: int | None = None,
    device: Any | None = None,
    events: "EventLog | None" = None,
) -> Engine:
    """Construct a query-less engine instance by registry name.

    Parameters
    ----------
    name:
        One of :data:`ENGINE_NAMES`.
    params:
        Search parameters every query compiled by the engine inherits.
    config:
        cuBLASTP configuration (``cublastp`` only).
    threads:
        CPU thread count (``ncbi`` only; defaults to the paper's 4).
    device:
        Simulated device spec for the GPU engines.
    events:
        Event log the engine's searches emit phase events into.
    """
    if name == "cublastp" or name.startswith("cublastp:"):
        from repro.cublastp.config import CuBlastpConfig, ExtensionMode
        from repro.cublastp.search import CuBlastp
        from repro.gpusim.device import K20C

        if name != "cublastp":
            if config is not None:
                raise ValueError(
                    "pass either a strategy-suffixed name or an explicit "
                    "config, not both"
                )
            strategy = name.split(":", 1)[1]
            if strategy == "batched-gapped":
                # The CPU-side pin: gapped extension explicitly on the
                # batched wavefront scheduler (the engine default, named
                # so the verify matrix tracks it as its own variant).
                config = CuBlastpConfig(gapped_mode="wave")
            else:
                try:
                    mode = ExtensionMode(strategy)
                except ValueError:
                    raise ValueError(
                        f"unknown cublastp extension strategy {strategy!r} "
                        f"(choose from "
                        f"{', '.join(m.value for m in ExtensionMode)}, "
                        f"batched-gapped)"
                    ) from None
                config = CuBlastpConfig(extension_mode=mode)
        return CuBlastp(None, params, config, device or K20C, events=events)
    if name == "reference" or name.startswith("reference:"):
        from repro.core.pipeline import BlastpPipeline

        gapped_mode = "wave"
        if name != "reference":
            suffix = name.split(":", 1)[1]
            if suffix != "serial-gapped":
                raise ValueError(
                    f"unknown reference variant {suffix!r} "
                    "(choose from serial-gapped)"
                )
            gapped_mode = "serial"
        return BlastpPipeline(
            None, params, events=events, gapped_mode=gapped_mode
        )
    if name == "fsa":
        from repro.baselines.fsa_blast import FsaBlast

        return FsaBlast(None, params)
    if name == "ncbi":
        from repro.baselines.ncbi_blast import NcbiBlast

        return NcbiBlast(None, params, threads=threads if threads is not None else 4)
    if name in ("cuda-blastp", "gpu-blastp"):
        from repro.baselines.cuda_blastp import CudaBlastp
        from repro.baselines.gpu_blastp import GpuBlastp
        from repro.gpusim.device import K20C

        cls = CudaBlastp if name == "cuda-blastp" else GpuBlastp
        return cls(None, params, device or K20C)
    raise ValueError(f"unknown engine {name!r} (choose from {', '.join(ENGINE_NAMES)})")
