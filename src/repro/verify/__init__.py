"""Differential conformance & fuzzing: every engine vs the reference oracle.

The paper's claim — and this repo's — is that the fine-grained cuBLASTP
pipeline and every baseline return *identical* alignments to the
sequential reference. This package makes that claim continuously
checkable instead of spot-checked:

* :mod:`~repro.verify.cases` — seeded generative workloads (random,
  homolog-enriched, SEG-heavy, diagonal-pileup, boundary-length) plus
  the 64-case pinned corpus;
* :mod:`~repro.verify.canonical` — the canonical, text-diffable result
  form two engines must agree on;
* :mod:`~repro.verify.matrix` — the engine matrix: all engines, all
  three cuBLASTP extension strategies, and the view/mmap/batch
  execution paths;
* :mod:`~repro.verify.runner` — :class:`DifferentialRunner`, fanning
  each case across the matrix and reporting first divergence;
* :mod:`~repro.verify.shrink` — greedy minimisation of a divergent case
  into a replayable reproducer (seed recorded);
* :mod:`~repro.verify.golden` — versioned golden snapshots locking the
  pinned corpus across refactors;
* :mod:`~repro.verify.cli` — the ``repro verify`` subcommand and its
  CI exit protocol.

See ``docs/TESTING.md`` for the oracle/matrix/golden model and the
divergence triage workflow.
"""

from repro.verify.canonical import (
    CANONICAL_VERSION,
    canonical_alignments,
    canonical_text,
    first_divergence,
    result_digest,
    results_equal,
)
from repro.verify.cases import (
    CORPUS_SEED,
    CORPUS_SIZE,
    FAMILIES,
    Case,
    build_case,
    generate_cases,
    pinned_corpus,
)
from repro.verify.golden import GoldenMismatch, GoldenStore
from repro.verify.matrix import (
    BuggedEngine,
    BuggedVariant,
    DEFAULT_VARIANTS,
    EngineVariant,
    ORACLE_NAME,
    OracleRunner,
    VARIANT_NAMES,
    default_matrix,
    variants_by_name,
)
from repro.verify.runner import DifferentialRunner, Divergence, VerifyReport
from repro.verify.shrink import Reproducer, minimise

__all__ = [
    "BuggedEngine",
    "BuggedVariant",
    "CANONICAL_VERSION",
    "CORPUS_SEED",
    "CORPUS_SIZE",
    "Case",
    "DEFAULT_VARIANTS",
    "DifferentialRunner",
    "Divergence",
    "EngineVariant",
    "FAMILIES",
    "GoldenMismatch",
    "GoldenStore",
    "ORACLE_NAME",
    "OracleRunner",
    "Reproducer",
    "VARIANT_NAMES",
    "VerifyReport",
    "build_case",
    "canonical_alignments",
    "canonical_text",
    "default_matrix",
    "first_divergence",
    "generate_cases",
    "minimise",
    "pinned_corpus",
    "result_digest",
    "results_equal",
    "variants_by_name",
]
