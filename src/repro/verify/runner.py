"""The differential runner: fan one case across the engine matrix.

:class:`DifferentialRunner` treats the reference pipeline as the oracle
and every :class:`~repro.verify.matrix.EngineVariant` as an
implementation under test. For each case it runs the oracle once, then
each variant, comparing canonical forms
(:mod:`repro.verify.canonical`). A mismatch — or a variant exception
where the oracle succeeds — is recorded as a :class:`Divergence` and,
unless disabled, minimised into a replayable
:class:`~repro.verify.shrink.Reproducer`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

from repro.verify.canonical import canonical_text, first_divergence
from repro.verify.matrix import EngineVariant, OracleRunner, default_matrix
from repro.verify.shrink import DEFAULT_PROBE_BUDGET, Reproducer, minimise

if TYPE_CHECKING:
    from repro.core.results import SearchResult
    from repro.verify.cases import Case


@dataclass
class Divergence:
    """One engine variant departing from the oracle on one case."""

    case_id: str
    family: str
    seed: int
    variant: str
    detail: str
    oracle_text: str = ""
    variant_text: str = ""
    reproducer: Reproducer | None = None

    def summary(self) -> str:
        return f"{self.variant} diverges on {self.case_id}: {self.detail}"


@dataclass
class VerifyReport:
    """Aggregate outcome of one differential run (the CI artifact)."""

    cases_run: int = 0
    variant_names: list[str] = field(default_factory=list)
    divergences: list[Divergence] = field(default_factory=list)
    oracle_errors: list[tuple[str, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences and not self.oracle_errors

    @property
    def comparisons(self) -> int:
        return self.cases_run * len(self.variant_names)

    def summary(self) -> str:
        lines = [
            f"verify: {self.cases_run} cases x {len(self.variant_names)} variants "
            f"= {self.comparisons} comparisons",
            f"variants: {', '.join(self.variant_names)}",
        ]
        if self.oracle_errors:
            lines.append(f"ORACLE ERRORS: {len(self.oracle_errors)}")
            lines.extend(f"  {cid}: {msg}" for cid, msg in self.oracle_errors[:5])
        if self.divergences:
            lines.append(f"DIVERGENCES: {len(self.divergences)}")
            lines.extend(f"  {d.summary()}" for d in self.divergences[:10])
        else:
            lines.append("no divergences")
        return "\n".join(lines)


class DifferentialRunner:
    """Run cases across the engine matrix against the reference oracle.

    Parameters
    ----------
    variants:
        Implementations under test (defaults to the full matrix).
    shrink:
        Minimise each divergence into a reproducer (first divergence per
        variant only — later ones on the same variant are usually the
        same root cause, and shrinking is the expensive part).
    probe_budget:
        Oracle+variant probe pairs one minimisation may spend.
    stop_on_first:
        Abort the run at the first divergence (CI smoke mode reports
        everything; interactive triage usually wants the first case
        fast).
    """

    def __init__(
        self,
        variants: Sequence[EngineVariant] | None = None,
        *,
        shrink: bool = True,
        probe_budget: int = DEFAULT_PROBE_BUDGET,
        stop_on_first: bool = False,
    ) -> None:
        self.variants = list(variants) if variants is not None else default_matrix()
        self.oracle = OracleRunner()
        self.shrink = shrink
        self.probe_budget = probe_budget
        self.stop_on_first = stop_on_first

    # -- single case -------------------------------------------------------

    def run_case(self, case: "Case") -> list[Divergence]:
        """All divergences of one case (empty when conformant)."""
        try:
            oracle_result: "SearchResult | None" = self.oracle(case)
        except Exception as exc:
            return [
                Divergence(
                    case.case_id, case.family, case.seed, "reference",
                    f"oracle raised {type(exc).__name__}: {exc}",
                )
            ]
        divergences: list[Divergence] = []
        for variant in self.variants:
            detail: str | None
            variant_text = ""
            try:
                result = variant.run_case(case)
            except Exception as exc:
                detail = f"variant raised {type(exc).__name__}: {exc}"
            else:
                detail = first_divergence(oracle_result, result)
                if detail is not None:
                    variant_text = canonical_text(result)
            if detail is not None:
                divergences.append(
                    Divergence(
                        case.case_id, case.family, case.seed, variant.name,
                        detail,
                        oracle_text=canonical_text(oracle_result),
                        variant_text=variant_text,
                    )
                )
        return divergences

    # -- batch -------------------------------------------------------------

    def run(
        self,
        cases: Iterable["Case"],
        progress: Callable[[str], None] | None = None,
    ) -> VerifyReport:
        """Run every case; shrink the first divergence of each variant."""
        report = VerifyReport(variant_names=[v.name for v in self.variants])
        shrunk: set[str] = set()
        for case in cases:
            report.cases_run += 1
            found = self.run_case(case)
            for div in found:
                if div.variant == "reference":
                    report.oracle_errors.append((div.case_id, div.detail))
                    continue
                if self.shrink and div.variant not in shrunk:
                    shrunk.add(div.variant)
                    div.reproducer = self._minimise(case, div)
                report.divergences.append(div)
            if progress is not None:
                status = "DIVERGED" if found else "ok"
                progress(f"[{report.cases_run}] {case.describe()}: {status}")
            if found and self.stop_on_first:
                break
        return report

    def _minimise(self, case: "Case", div: Divergence) -> Reproducer:
        variant = next(v for v in self.variants if v.name == div.variant)
        return minimise(
            case,
            variant.name,
            self.oracle,
            variant.run_case,
            div.detail,
            probe_budget=self.probe_budget,
        )
