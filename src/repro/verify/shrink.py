"""Greedy minimisation of a divergent case.

When the differential runner finds a case where an engine departs from
the oracle, the raw case (a dozen sequences, a ~100-residue query) is
rarely the smallest demonstration. :func:`minimise` shrinks it while the
divergence persists:

1. **db-shrink** — delta-debugging over the subject list: repeatedly try
   dropping chunks of sequences (halving chunk sizes, ddmin-style),
   keeping any removal that preserves the divergence;
2. **query-shrink** — greedily trim residues off the query's right, then
   left, end (halving trim sizes), never going below the word length.

Every probe re-runs the oracle and the variant on the candidate, so the
minimised case is a *verified* reproducer, and the original ``(family,
seed)`` pair is recorded so the full case can always be rebuilt too. The
probe budget is bounded (:data:`DEFAULT_PROBE_BUDGET`) to keep CI time
predictable on adversarial cases.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable

from repro.io.database import SequenceDatabase
from repro.verify.canonical import first_divergence

if TYPE_CHECKING:
    from repro.core.results import SearchResult
    from repro.core.statistics import SearchParams
    from repro.verify.cases import Case

#: Maximum oracle+variant probe pairs one minimisation may spend.
DEFAULT_PROBE_BUDGET = 200

#: Minimum query length a shrink may produce (one word).
_MIN_QUERY = 3


@dataclass
class Reproducer:
    """A minimised, replayable demonstration of one divergence.

    ``family``/``seed`` rebuild the original generated case
    (:func:`repro.verify.cases.build_case`); ``query``/``db_sequences``
    are the minimised inputs that still diverge.
    """

    case_id: str
    family: str
    seed: int
    variant: str
    detail: str
    query: str
    db_sequences: list[str]
    probes: int
    params: "SearchParams | None" = None

    def describe(self) -> str:
        """Self-contained text block: what diverged, and how to replay it."""
        lines = [
            f"divergence: {self.variant} vs reference oracle",
            f"case: {self.case_id} (family={self.family} seed={self.seed})",
            f"detail: {self.detail}",
            f"minimised to query {len(self.query)} aa, "
            f"{len(self.db_sequences)} subject(s) ({self.probes} probes)",
            "",
            "replay (python):",
            "  from repro.io.database import SequenceDatabase",
            "  from repro.verify.cases import build_case",
            f"  case = build_case({self.family!r}, {self.seed})  # full case",
            f"  query = {self.query!r}",
            f"  db = SequenceDatabase.from_strings({self.db_sequences!r})",
            "  # reference vs the variant engine, under case.params, on",
            "  # (query, db) diverges",
            "",
            "replay (cli):",
            f"  repro verify --families {self.family} --seed {self.seed} --cases 1",
        ]
        return "\n".join(lines)


def _divergence(
    run_oracle: Callable[["Case"], "SearchResult"],
    run_variant: Callable[["Case"], "SearchResult"],
    case: "Case",
) -> str | None:
    """The divergence description for ``case``, or ``None`` if conformant.

    A variant error where the oracle succeeds counts as a divergence; an
    oracle error rejects the candidate (shrinking must not wander outside
    the oracle's input envelope).
    """
    try:
        oracle = run_oracle(case)
    except Exception:
        return None
    try:
        variant = run_variant(case)
    except Exception as exc:
        return f"variant raised {type(exc).__name__}: {exc}"
    return first_divergence(oracle, variant)


def _with_inputs(case: "Case", query: str, seqs: list[str]) -> "Case":
    db = SequenceDatabase.from_strings(
        seqs, [f"min|{i}" for i in range(len(seqs))]
    )
    return replace(case, query=query, db=db)


def minimise(
    case: "Case",
    variant_name: str,
    run_oracle: Callable[["Case"], "SearchResult"],
    run_variant: Callable[["Case"], "SearchResult"],
    detail: str,
    probe_budget: int = DEFAULT_PROBE_BUDGET,
) -> Reproducer:
    """Shrink ``case`` while the (oracle, variant) divergence persists."""
    query = case.query
    seqs = [case.db.sequence_str(i) for i in range(len(case.db))]
    probes = 0

    def still_diverges(q: str, s: list[str]) -> str | None:
        nonlocal probes
        if probes >= probe_budget or not s or len(q) < _MIN_QUERY:
            return None
        probes += 1
        return _divergence(run_oracle, run_variant, _with_inputs(case, q, s))

    # -- db-shrink: ddmin-style chunk removal over the subject list.
    chunk = max(1, len(seqs) // 2)
    while chunk >= 1 and probes < probe_budget:
        removed_any = False
        i = 0
        while i < len(seqs) and len(seqs) > 1 and probes < probe_budget:
            candidate = seqs[:i] + seqs[i + chunk :]
            if candidate and still_diverges(query, candidate):
                seqs = candidate
                removed_any = True  # retry same index: the list shifted
            else:
                i += chunk
        if chunk == 1 and not removed_any:
            break
        chunk = max(1, chunk // 2) if chunk > 1 else (1 if removed_any else 0)

    # -- query-shrink: trim halving-sized pieces off each end.
    for side in ("right", "left"):
        trim = max(1, (len(query) - _MIN_QUERY) // 2)
        while trim >= 1 and len(query) - trim >= _MIN_QUERY and probes < probe_budget:
            candidate = query[:-trim] if side == "right" else query[trim:]
            if still_diverges(candidate, seqs):
                query = candidate
            else:
                trim //= 2

    # Refresh the detail against the final minimised inputs (it may have
    # sharpened, e.g. from a count mismatch to a single-field diff).
    final = _divergence(run_oracle, run_variant, _with_inputs(case, query, seqs))
    return Reproducer(
        case_id=case.case_id,
        family=case.family,
        seed=case.seed,
        variant=variant_name,
        detail=final or detail,
        query=query,
        db_sequences=seqs,
        probes=probes,
        params=case.params,
    )
