"""Golden snapshots: pinned known-good results, versioned and text-diffable.

The pinned conformance corpus (:func:`repro.verify.cases.pinned_corpus`)
is locked by storing the oracle's canonical output for every case as one
plain-text file per case. Refactors that change *any* reported alignment
— score, coordinate, E-value ulp, rendered string — show up as a
human-readable ``git diff`` against these files rather than as a silent
behaviour change.

File format (``<case_id>.golden``)::

    # repro golden snapshot v1
    # canonical: 1
    # case: homolog-0123456789
    # family: homolog
    # seed: 123456789
    # query: 96 aa
    # db: 12 seqs, 1034 residues
    ---
    alignments=3
    seq=4 score=57 ...

Header keys are ``# key: value`` lines; the payload after ``---`` is
exactly :func:`repro.verify.canonical.canonical_text`. ``canonical``
records :data:`~repro.verify.canonical.CANONICAL_VERSION`, so a schema
bump invalidates stale snapshots loudly.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING

from repro.verify.canonical import CANONICAL_VERSION, canonical_text

if TYPE_CHECKING:
    from repro.core.results import SearchResult
    from repro.verify.cases import Case

#: Golden file format version (the ``v1`` in the first line).
GOLDEN_VERSION = 1

_MAGIC = f"# repro golden snapshot v{GOLDEN_VERSION}"


class GoldenMismatch(Exception):
    """A result departed from its pinned golden snapshot."""


class GoldenStore:
    """Directory of per-case golden snapshot files."""

    def __init__(self, root: "str | Path") -> None:
        self.root = Path(root)

    def path_for(self, case_id: str) -> Path:
        return self.root / f"{case_id}.golden"

    def known_ids(self) -> list[str]:
        if not self.root.is_dir():
            return []
        return sorted(p.stem for p in self.root.glob("*.golden"))

    # -- write -------------------------------------------------------------

    def write(self, case: "Case", result: "SearchResult") -> Path:
        """Pin ``result`` as the known-good output for ``case``."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(case.case_id)
        header = [
            _MAGIC,
            f"# canonical: {CANONICAL_VERSION}",
            f"# case: {case.case_id}",
            f"# family: {case.family}",
            f"# seed: {case.seed}",
            f"# query: {len(case.query)} aa",
            f"# db: {len(case.db)} seqs, {int(case.db.codes.size)} residues",
            "---",
        ]
        path.write_text("\n".join(header) + "\n" + canonical_text(result))
        return path

    # -- read --------------------------------------------------------------

    def read(self, case_id: str) -> tuple[dict[str, str], str]:
        """Header dict + canonical payload of one snapshot."""
        path = self.path_for(case_id)
        if not path.exists():
            raise FileNotFoundError(f"no golden snapshot for {case_id} at {path}")
        text = path.read_text()
        head, sep, payload = text.partition("\n---\n")
        if not sep:
            raise GoldenMismatch(f"{path}: malformed golden file (no '---' separator)")
        lines = head.splitlines()
        if not lines or lines[0] != _MAGIC:
            raise GoldenMismatch(
                f"{path}: not a v{GOLDEN_VERSION} golden snapshot "
                f"(got {lines[0]!r} — regenerate with --update-golden)"
            )
        header: dict[str, str] = {}
        for line in lines[1:]:
            if line.startswith("# ") and ": " in line:
                key, _, value = line[2:].partition(": ")
                header[key] = value
        if int(header.get("canonical", "0")) != CANONICAL_VERSION:
            raise GoldenMismatch(
                f"{path}: canonical schema v{header.get('canonical')} != "
                f"v{CANONICAL_VERSION} — regenerate with --update-golden"
            )
        return header, payload

    # -- compare -----------------------------------------------------------

    def compare(self, case: "Case", result: "SearchResult") -> str | None:
        """First difference against the pinned snapshot, or ``None``.

        Returns a short description naming the first differing line —
        the full context is one ``git diff`` away, which is the point of
        the text format.
        """
        _, pinned = self.read(case.case_id)
        actual = canonical_text(result)
        if actual == pinned:
            return None
        pinned_lines = pinned.splitlines()
        actual_lines = actual.splitlines()
        for i, (p, a) in enumerate(zip(pinned_lines, actual_lines)):
            if p != a:
                return f"line {i + 1}: pinned {p!r} != actual {a!r}"
        return (
            f"line count differs: pinned {len(pinned_lines)} "
            f"vs actual {len(actual_lines)}"
        )
