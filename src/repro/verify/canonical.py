"""Canonical, text-diffable form of a :class:`~repro.core.results.SearchResult`.

Two implementations are *conformant* when their canonical forms are equal:
every reported alignment must match on score, bit score, E-value,
coordinates, and the rendered alignment strings — the paper's
"identical output" claim, made mechanical. Alignments are re-sorted under
a total order here, so engines are free to break score ties differently
without that counting as a divergence (no current engine does, but the
canonical form should not depend on it).

The text rendering doubles as the golden-snapshot payload
(:mod:`repro.verify.golden`): stable line-oriented output that diffs
cleanly under ``git diff``.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.core.results import Alignment, SearchResult

#: Bump when the canonical rendering changes incompatibly (golden
#: snapshots embed it, so stale snapshots fail loudly instead of silently
#: comparing different schemas).
CANONICAL_VERSION = 1


def _alignment_key(a: "Alignment") -> tuple:
    """Total order + equality key of one alignment."""
    return (
        -a.score,
        a.seq_id,
        a.query_start,
        a.query_end,
        a.subject_start,
        a.subject_end,
        repr(a.bit_score),
        repr(a.evalue),
        a.identities,
        a.positives,
        a.gaps,
        a.aligned_query,
        a.aligned_subject,
        a.midline,
    )


def canonical_alignments(result: "SearchResult") -> tuple[tuple, ...]:
    """The result's alignments as a sorted tuple of comparable keys."""
    return tuple(sorted(_alignment_key(a) for a in result.alignments))


def results_equal(a: "SearchResult", b: "SearchResult") -> bool:
    """Whether two results are conformant (identical canonical form)."""
    return canonical_alignments(a) == canonical_alignments(b)


def canonical_text(result: "SearchResult") -> str:
    """Line-oriented canonical rendering (golden-snapshot payload).

    Floats are rendered with :func:`repr`, so the text is exactly as
    strict as the tuple form — a one-ulp E-value drift is a diff.
    """
    lines = [f"alignments={len(result.alignments)}"]
    for key in canonical_alignments(result):
        (nscore, seq_id, qs, qe, ss, se, bit, ev, idn, pos, gaps, aq, asub, mid) = key
        lines.append(
            f"seq={seq_id} score={-nscore} bits={bit} evalue={ev} "
            f"q={qs}-{qe} s={ss}-{se} ident={idn} pos={pos} gaps={gaps}"
        )
        lines.append(f"  Q {aq}")
        lines.append(f"  | {mid}")
        lines.append(f"  S {asub}")
    return "\n".join(lines) + "\n"


def result_digest(result: "SearchResult") -> str:
    """Short content hash of the canonical text (log-friendly identity)."""
    return hashlib.sha256(canonical_text(result).encode()).hexdigest()[:16]


def first_divergence(oracle: "SearchResult", other: "SearchResult") -> str | None:
    """Describe the first point where ``other`` departs from ``oracle``.

    Returns ``None`` when the results are conformant; otherwise a short
    human-readable locator (count mismatch, or the first differing
    alignment with the fields that differ).
    """
    ka, kb = canonical_alignments(oracle), canonical_alignments(other)
    if ka == kb:
        return None
    if len(ka) != len(kb):
        only_oracle = set(ka) - set(kb)
        only_other = set(kb) - set(ka)
        return (
            f"alignment count differs: oracle {len(ka)} vs {len(kb)} "
            f"({len(only_oracle)} missing, {len(only_other)} unexpected)"
        )
    fields = (
        "score", "seq_id", "query_start", "query_end", "subject_start",
        "subject_end", "bit_score", "evalue", "identities", "positives",
        "gaps", "aligned_query", "aligned_subject", "midline",
    )
    for i, (a, b) in enumerate(zip(ka, kb)):
        if a != b:
            diffs = []
            for j in range(len(fields)):
                if a[j] == b[j]:
                    continue
                # Index 0 is the sort key -score; report the real score.
                va, vb = (-a[j], -b[j]) if j == 0 else (a[j], b[j])
                diffs.append(f"{fields[j]}: {va!r} != {vb!r}")
            return f"alignment #{i} differs ({'; '.join(diffs)})"
    return "canonical forms differ"  # unreachable, kept for safety
