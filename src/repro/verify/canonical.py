"""Canonical, text-diffable form of a :class:`~repro.core.results.SearchResult`.

Two implementations are *conformant* when their canonical forms are equal:
every reported alignment must match on score, bit score, E-value,
coordinates, and the rendered alignment strings — the paper's
"identical output" claim, made mechanical. Alignments are re-sorted under
a total order here, so engines are free to break score ties differently
without that counting as a divergence (no current engine does, but the
canonical form should not depend on it).

The text rendering doubles as the golden-snapshot payload
(:mod:`repro.verify.golden`): stable line-oriented output that diffs
cleanly under ``git diff``.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.core.results import Alignment, ExtensionArray, SearchResult

#: Bump when the canonical rendering changes incompatibly (golden
#: snapshots embed it, so stale snapshots fail loudly instead of silently
#: comparing different schemas).
CANONICAL_VERSION = 1


def _alignment_key(a: "Alignment") -> tuple:
    """Total order + equality key of one alignment."""
    return (
        -a.score,
        a.seq_id,
        a.query_start,
        a.query_end,
        a.subject_start,
        a.subject_end,
        repr(a.bit_score),
        repr(a.evalue),
        a.identities,
        a.positives,
        a.gaps,
        a.aligned_query,
        a.aligned_subject,
        a.midline,
    )


def canonical_alignments(result: "SearchResult") -> tuple[tuple, ...]:
    """The result's alignments as a sorted tuple of comparable keys."""
    return tuple(sorted(_alignment_key(a) for a in result.alignments))


def results_equal(a: "SearchResult", b: "SearchResult") -> bool:
    """Whether two results are conformant (identical canonical form)."""
    return canonical_alignments(a) == canonical_alignments(b)


def canonical_text(result: "SearchResult") -> str:
    """Line-oriented canonical rendering (golden-snapshot payload).

    Floats are rendered with :func:`repr`, so the text is exactly as
    strict as the tuple form — a one-ulp E-value drift is a diff.
    """
    lines = [f"alignments={len(result.alignments)}"]
    for key in canonical_alignments(result):
        (nscore, seq_id, qs, qe, ss, se, bit, ev, idn, pos, gaps, aq, asub, mid) = key
        lines.append(
            f"seq={seq_id} score={-nscore} bits={bit} evalue={ev} "
            f"q={qs}-{qe} s={ss}-{se} ident={idn} pos={pos} gaps={gaps}"
        )
        lines.append(f"  Q {aq}")
        lines.append(f"  | {mid}")
        lines.append(f"  S {asub}")
    return "\n".join(lines) + "\n"


def result_digest(result: "SearchResult") -> str:
    """Short content hash of the canonical text (log-friendly identity)."""
    return hashlib.sha256(canonical_text(result).encode()).hexdigest()[:16]


# -- process-boundary payloads ---------------------------------------------
#
# The process-pool executor ships results between worker and parent as
# plain-builtin payloads instead of pickled result objects. Floats cross
# as repr() strings — exactly as strict as the canonical tuple form, so
# decode(encode(r)) has an identical canonical form and digest (the
# conformance matrix's ``process`` variant proves it hit for hit).

#: Alignment fields in payload order (the full dataclass, including
#: ``subject_identifier``, which the canonical sort key omits).
_ALIGNMENT_FIELDS = (
    "seq_id", "subject_identifier", "score", "bit_score", "evalue",
    "query_start", "query_end", "subject_start", "subject_end",
    "aligned_query", "aligned_subject", "midline",
    "identities", "positives", "gaps",
)

#: Scalar counters carried alongside the alignments.
_RESULT_COUNTERS = (
    "query_length", "db_sequences", "db_residues", "num_hits", "num_seeds",
    "num_ungapped_extensions", "num_gapped_extensions", "num_reported",
)


def alignments_to_payload(alignments) -> list[dict]:
    """Alignments as plain dicts (floats repr-encoded), order preserved."""
    out = []
    for a in alignments:
        d = {name: getattr(a, name) for name in _ALIGNMENT_FIELDS}
        d["bit_score"] = repr(a.bit_score)
        d["evalue"] = repr(a.evalue)
        out.append(d)
    return out


def alignments_from_payload(payload: list[dict]) -> list:
    """Rebuild :class:`~repro.core.results.Alignment` objects exactly."""
    from repro.core.results import Alignment

    return [
        Alignment(**{**d, "bit_score": float(d["bit_score"]), "evalue": float(d["evalue"])})
        for d in payload
    ]


def extensions_to_payload(extensions) -> list[list[int]]:
    """Extension stream as six aligned plain-int columns.

    The sweep workers ship phase-2 survivors back to the parent in
    columnar form — one list per :class:`~repro.core.results.ExtensionArray`
    field, plain builtins, order preserved. All-integer columns cross a
    pickle boundary exactly, so ``extensions_from_payload`` is a perfect
    inverse (the conformance matrix's batched-process variants prove it
    row for row).
    """
    from repro.core.results import ExtensionArray

    return ExtensionArray.coerce(extensions).to_columns()


def extensions_from_payload(columns: list[list[int]]) -> "ExtensionArray":
    """Inverse of :func:`extensions_to_payload`."""
    from repro.core.results import ExtensionArray

    return ExtensionArray.from_columns(columns)


def result_to_payload(result: "SearchResult") -> dict:
    """The result as picklable builtins, exactly reconstructible."""
    return {
        "canonical_version": CANONICAL_VERSION,
        "counters": {name: getattr(result, name) for name in _RESULT_COUNTERS},
        "alignments": alignments_to_payload(result.alignments),
    }


def result_from_payload(payload: dict) -> "SearchResult":
    """Inverse of :func:`result_to_payload`.

    ``result_from_payload(result_to_payload(r))`` equals ``r`` field for
    field: repr-round-tripped floats are bit-exact, alignment order is
    preserved, and :func:`result_digest` is unchanged.
    """
    from repro.core.results import SearchResult

    version = payload.get("canonical_version")
    if version != CANONICAL_VERSION:
        raise ValueError(
            f"result payload has canonical version {version!r}, "
            f"this process expects {CANONICAL_VERSION} (mixed worker builds?)"
        )
    return SearchResult(
        alignments=alignments_from_payload(payload["alignments"]),
        **payload["counters"],
    )


def payload_to_bytes(payload: dict) -> bytes:
    """Deterministic byte serialization of a canonical result payload.

    Stable JSON (sorted keys, compact separators), so two payloads are
    byte-identical exactly when :func:`result_to_payload` produced equal
    dicts — the serving layer's cache stores and serves these bytes, and
    the cache-correctness tests compare hit and cold-path responses with
    ``==`` on the raw bytes.
    """
    import json

    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()


def payload_from_bytes(data: bytes) -> dict:
    """Inverse of :func:`payload_to_bytes` (feed to :func:`result_from_payload`)."""
    import json

    return json.loads(data)


def first_divergence(oracle: "SearchResult", other: "SearchResult") -> str | None:
    """Describe the first point where ``other`` departs from ``oracle``.

    Returns ``None`` when the results are conformant; otherwise a short
    human-readable locator (count mismatch, or the first differing
    alignment with the fields that differ).
    """
    ka, kb = canonical_alignments(oracle), canonical_alignments(other)
    if ka == kb:
        return None
    if len(ka) != len(kb):
        only_oracle = set(ka) - set(kb)
        only_other = set(kb) - set(ka)
        return (
            f"alignment count differs: oracle {len(ka)} vs {len(kb)} "
            f"({len(only_oracle)} missing, {len(only_other)} unexpected)"
        )
    fields = (
        "score", "seq_id", "query_start", "query_end", "subject_start",
        "subject_end", "bit_score", "evalue", "identities", "positives",
        "gaps", "aligned_query", "aligned_subject", "midline",
    )
    for i, (a, b) in enumerate(zip(ka, kb)):
        if a != b:
            diffs = []
            for j in range(len(fields)):
                if a[j] == b[j]:
                    continue
                # Index 0 is the sort key -score; report the real score.
                va, vb = (-a[j], -b[j]) if j == 0 else (a[j], b[j])
                diffs.append(f"{fields[j]}: {va!r} != {vb!r}")
            return f"alignment #{i} differs ({'; '.join(diffs)})"
    return "canonical forms differ"  # unreachable, kept for safety
