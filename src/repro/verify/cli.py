"""``repro verify`` — the differential-conformance CLI.

Modes
-----
Generated sweep (default)
    Generate ``--cases`` seeded cases and fan each across the engine
    matrix. Any divergence is minimised into a reproducer and printed
    (and written to ``--report`` for CI artifact upload).
Pinned corpus (``--corpus``)
    Run the oracle over the 64-case pinned corpus and compare against
    the golden snapshots in the given directory; ``--update-golden``
    re-pins them. The full matrix still runs differentially over the
    corpus cases.
Self-test (``--selftest``)
    Inject a deliberate scoring bug into one engine and verify the
    harness catches it within the case budget — proof the net has no
    holes, run continuously in CI.

Exit protocol (CI-facing)
-------------------------
* ``0`` — conformant (or self-test caught the injected bug);
* ``1`` — divergence found (reproducer printed / written);
* ``2`` — golden-snapshot mismatch (or self-test failed to catch).
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from repro.verify.cases import CORPUS_SEED, FAMILIES, generate_cases, pinned_corpus
from repro.verify.golden import GoldenStore
from repro.verify.matrix import (
    BuggedVariant,
    OracleRunner,
    VARIANT_NAMES,
    default_matrix,
    variants_by_name,
)
from repro.verify.runner import DifferentialRunner, VerifyReport

#: Exit codes of the CI-facing protocol.
EXIT_OK = 0
EXIT_DIVERGENCE = 1
EXIT_GOLDEN = 2


def _emit_failures(report: VerifyReport, out, report_path: str | None) -> None:
    """Print (and optionally persist) every reproducer in the report."""
    blocks: list[str] = []
    for div in report.divergences:
        if div.reproducer is not None:
            blocks.append(div.reproducer.describe())
        else:
            blocks.append(div.summary())
    text = "\n\n".join(blocks)
    if text:
        print("\n" + text, file=out)
    if report_path:
        with open(report_path, "w") as fh:
            fh.write(report.summary() + "\n\n" + text + "\n")
        print(f"\nreproducer report written to {report_path}", file=out)


def _run_generated(args: argparse.Namespace, out, progress) -> int:
    variants = (
        variants_by_name(args.engines.split(","))
        if args.engines
        else default_matrix()
    )
    families = tuple(args.families.split(",")) if args.families else None
    cases = generate_cases(args.cases, args.seed, families)
    runner = DifferentialRunner(
        variants, shrink=not args.no_shrink, stop_on_first=args.stop_on_first
    )
    report = runner.run(cases, progress=progress)
    print(report.summary(), file=out)
    if not report.ok:
        _emit_failures(report, out, args.report)
        return EXIT_DIVERGENCE
    return EXIT_OK


def _run_corpus(args: argparse.Namespace, out, progress) -> int:
    store = GoldenStore(args.corpus)
    oracle = OracleRunner()
    cases = pinned_corpus()
    if args.update_golden:
        for case in cases:
            store.write(case, oracle(case))
        print(f"pinned {len(cases)} golden snapshots under {store.root}", file=out)
        return EXIT_OK
    mismatches: list[str] = []
    for case in cases:
        try:
            detail = store.compare(case, oracle(case))
        except FileNotFoundError as exc:
            detail = str(exc)  # unpinned case: a mismatch, not a crash
        if detail is not None:
            mismatches.append(f"{case.case_id}: {detail}")
        if progress is not None:
            progress(f"golden {case.case_id}: {'MISMATCH' if detail else 'ok'}")
    # The matrix still runs differentially over the pinned cases.
    variants = (
        variants_by_name(args.engines.split(","))
        if args.engines
        else default_matrix()
    )
    runner = DifferentialRunner(variants, shrink=not args.no_shrink)
    report = runner.run(cases, progress=progress)
    print(report.summary(), file=out)
    if mismatches:
        print(f"GOLDEN MISMATCHES: {len(mismatches)}", file=out)
        for m in mismatches[:10]:
            print(f"  {m}", file=out)
    if not report.ok:
        _emit_failures(report, out, args.report)
        return EXIT_DIVERGENCE
    if mismatches:
        return EXIT_GOLDEN
    return EXIT_OK


def _run_selftest(args: argparse.Namespace, out, progress) -> int:
    """Prove the harness catches an injected defect within the budget."""
    bugged = [
        BuggedVariant("cublastp-bugged-score", "cublastp", score_delta=1),
        BuggedVariant("reference-bugged-drop", "reference", drop_last=True,
                      score_delta=0),
    ]
    cases = generate_cases(args.cases, args.seed)
    runner = DifferentialRunner(bugged, shrink=not args.no_shrink)
    report = runner.run(cases, progress=progress)
    caught = {d.variant for d in report.divergences}
    print(report.summary(), file=out)
    missing = {v.name for v in bugged} - caught
    if missing:
        print(
            f"SELFTEST FAILED: injected bugs not caught within "
            f"{args.cases} cases: {', '.join(sorted(missing))}",
            file=out,
        )
        return EXIT_GOLDEN
    shrunk = [d.reproducer for d in report.divergences if d.reproducer is not None]
    print(
        f"selftest: both injected bugs caught "
        f"({len(shrunk)} minimised reproducer(s))",
        file=out,
    )
    if shrunk:
        print("\n" + shrunk[0].describe(), file=out)
    return EXIT_OK


def cmd_verify(args: argparse.Namespace) -> int:
    out = sys.stdout
    progress: Callable[[str], None] | None = None
    if args.verbose:
        progress = lambda msg: print(msg, file=sys.stderr)
    if args.selftest:
        return _run_selftest(args, out, progress)
    if args.corpus:
        return _run_corpus(args, out, progress)
    return _run_generated(args, out, progress)


def add_verify_parser(sub: "argparse._SubParsersAction") -> None:
    """Register the ``verify`` subcommand on the main CLI."""
    p = sub.add_parser(
        "verify",
        help="differential conformance: every engine vs the reference oracle",
        description=(
            "Generate seeded workloads and check every engine and execution "
            "path against the reference pipeline, hit for hit. Exit 0: "
            "conformant; 1: divergence (minimised reproducer printed); "
            "2: golden-snapshot mismatch."
        ),
    )
    p.add_argument(
        "--cases", type=int, default=50,
        help="number of generated cases (default 50)",
    )
    p.add_argument(
        "--seed", type=int, default=CORPUS_SEED,
        help="master seed for case generation (default the corpus seed)",
    )
    p.add_argument(
        "--engines",
        help=(
            "comma-separated engine variants to test "
            f"(default: full matrix — {', '.join(VARIANT_NAMES)})"
        ),
    )
    p.add_argument(
        "--families",
        help=f"comma-separated case families (default: all — {', '.join(FAMILIES)})",
    )
    p.add_argument(
        "--corpus", metavar="DIR",
        help="run the pinned 64-case corpus against golden snapshots in DIR",
    )
    p.add_argument(
        "--update-golden", action="store_true",
        help="re-pin the golden snapshots in --corpus from the oracle",
    )
    p.add_argument(
        "--report", metavar="FILE",
        help="write the divergence report + reproducers to FILE (CI artifact)",
    )
    p.add_argument(
        "--no-shrink", action="store_true",
        help="skip reproducer minimisation (faster triage-less runs)",
    )
    p.add_argument(
        "--stop-on-first", action="store_true",
        help="abort at the first divergent case",
    )
    p.add_argument(
        "--selftest", action="store_true",
        help="inject a known bug and verify the harness catches it",
    )
    p.add_argument("--verbose", action="store_true", help="per-case progress on stderr")
    p.set_defaults(func=cmd_verify)
