"""The engine matrix: every implementation and execution path under test.

A :class:`EngineVariant` pairs an engine (by registry name, including the
``cublastp:<strategy>`` forms) with an *execution path* — how the query
and database reach it:

``direct``
    ``engine.run(engine.compile(q), db)``, the plain protocol call.
``view``
    The database is wrapped in a full-range zero-copy
    :class:`~repro.io.database.DatabaseView` first; results must be
    identical to the copy (PR 2's invariant).
``mmap``
    The database round-trips through the versioned binary format and is
    re-opened memory-mapped; exercises the storage layer end to end.
``batch``
    The query goes through a threaded
    :class:`~repro.engine.executor.BatchExecutor` (jobs=2, duplicated
    query) — scheduling must not perturb output.
``process``
    The same duplicated-query batch through the *process* backend: the
    database crosses to warm workers via a spilled binary file, results
    come back as canonical-form payloads — the whole
    :mod:`~repro.engine.procpool` marshalling story must be lossless.
``sweep``
    The duplicated-query batch in the executor's ``db-sweep`` mode: the
    inverted, batch-first dataflow (one blocked database pass through a
    merged :class:`~repro.seeding.multi_query.MultiQueryIndex`) must be
    result-identical to per-query search.
``sweep-process``
    Same inversion under the process backend, where workers own database
    *blocks* and ship back query-tagged extension streams — the merge in
    block order must reconstruct the per-query results exactly.

:func:`default_matrix` is the full implementation-under-test list; the
``reference`` pipeline (:data:`ORACLE_NAME`) is the oracle it is checked
against. :class:`BuggedEngine` deliberately corrupts an engine's output
and exists so the subsystem can prove — in CI, continuously — that it
*would* catch a real divergence (``repro verify --selftest``).
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable

from repro.core.statistics import SearchParams
from repro.engine.executor import BatchExecutor
from repro.engine.protocol import CUBLASTP_STRATEGY_NAMES, Engine, make_engine

if TYPE_CHECKING:
    from repro.core.results import SearchResult
    from repro.io.database import SequenceDatabase
    from repro.verify.cases import Case

#: The engine whose output is ground truth.
ORACLE_NAME = "reference"

#: Execution paths a variant may route through.
PATHS = ("direct", "view", "mmap", "batch", "process", "sweep", "sweep-process")


@dataclass(frozen=True)
class EngineVariant:
    """One implementation under test: an engine on an execution path.

    ``sanitize=True`` builds the engine with
    ``CuBlastpConfig(sanitize=True)``, so every simulated kernel runs
    under the memory sanitizer (racecheck/initcheck/boundscheck) and any
    hazard fails the case — the conformance corpus doubles as the
    sanitizer's clean-run fixture (docs/ANALYSIS.md).
    """

    name: str
    engine_name: str
    path: str = "direct"
    sanitize: bool = False

    def make(self, params: SearchParams) -> Engine:
        config = None
        if self.sanitize:
            from repro.cublastp import CuBlastpConfig

            config = CuBlastpConfig(sanitize=True)
        return make_engine(self.engine_name, params, config=config)

    def run_case(self, case: "Case") -> "SearchResult":
        """Run the case through this variant, returning its result."""
        engine = self.make(case.params)
        if self.path == "mmap":
            # Round-trip through the binary format and search the live
            # memory-mapped database (the mapping stays open for the run).
            from repro.io.database import SequenceDatabase

            with tempfile.TemporaryDirectory(prefix="repro-verify-") as tmp:
                path = Path(tmp) / "case.rpdb"
                case.db.save(path)
                db = SequenceDatabase.load(path, mmap=True)
                return engine.run(engine.compile(case.query), db)
        if self.path in ("batch", "process", "sweep", "sweep-process"):
            backend = "process" if self.path in ("process", "sweep-process") else "thread"
            mode = "db-sweep" if self.path.startswith("sweep") else "per-query"
            return _run_batched(
                engine, case.query_id, case.query, case.db, backend, mode=mode
            )
        if self.path == "view":
            db: "SequenceDatabase" = case.db.view(0, len(case.db))
        elif self.path == "direct":
            db = case.db
        else:
            raise ValueError(f"unknown execution path {self.path!r}")
        return engine.run(engine.compile(case.query), db)


def _run_batched(
    engine: Engine,
    query_id: str,
    query: str,
    db: "SequenceDatabase",
    backend: str = "thread",
    mode: str = "per-query",
) -> "SearchResult":
    """Run the query twice through an executor; both copies must agree
    with each other (a scheduling-sensitivity check local to this path)
    and the first is returned for the oracle comparison."""
    from repro.verify.canonical import results_equal

    executor = BatchExecutor(
        engine, jobs=2, backend=backend, mode=mode, collect_reports=False
    )
    outcomes = list(
        executor.stream([(query_id, query), (f"{query_id}+dup", query)], db)
    )
    for outcome in outcomes:
        if outcome.error is not None:
            raise outcome.error
    first, second = outcomes[0].result, outcomes[1].result
    if not results_equal(first, second):
        raise AssertionError(
            "batch executor returned different results for identical queries"
        )
    return first


#: The full matrix: all engines, all three cuBLASTP strategies, and the
#: view/mmap/batch/process execution paths on representative engines.
DEFAULT_VARIANTS: tuple[EngineVariant, ...] = (
    EngineVariant("cublastp-diagonal", "cublastp:diagonal"),
    EngineVariant("cublastp-hit", "cublastp:hit"),
    EngineVariant("cublastp-window", "cublastp:window"),
    EngineVariant("fsa", "fsa"),
    EngineVariant("ncbi", "ncbi"),
    EngineVariant("cuda-blastp", "cuda-blastp"),
    EngineVariant("gpu-blastp", "gpu-blastp"),
    EngineVariant("reference-view", "reference", path="view"),
    EngineVariant("reference-mmap", "reference", path="mmap"),
    EngineVariant("cublastp-view", "cublastp", path="view"),
    EngineVariant("cublastp-batch", "cublastp", path="batch"),
    EngineVariant("cublastp-process", "cublastp", path="process"),
    EngineVariant("cublastp-sanitize", "cublastp", sanitize=True),
    EngineVariant("cublastp-batched", "cublastp", path="sweep"),
    EngineVariant("cublastp-batched-process", "cublastp", path="sweep-process"),
    EngineVariant("cublastp-batched-gapped", "cublastp:batched-gapped"),
)

#: Variant names accepted by ``repro verify --engines``.
VARIANT_NAMES = tuple(v.name for v in DEFAULT_VARIANTS)


def default_matrix() -> list[EngineVariant]:
    """The full implementation-under-test list (oracle excluded)."""
    return list(DEFAULT_VARIANTS)


def variants_by_name(names: "list[str] | tuple[str, ...]") -> list[EngineVariant]:
    """Resolve ``--engines`` selections against the registry.

    Accepts variant names (``cublastp-window``, ``reference-mmap``) and,
    for convenience, bare engine registry names (``fsa``,
    ``cublastp:hit``) which run on the direct path.
    """
    registry = {v.name: v for v in DEFAULT_VARIANTS}
    out: list[EngineVariant] = []
    for name in names:
        if name in registry:
            out.append(registry[name])
        elif name == ORACLE_NAME:
            out.append(EngineVariant("reference", "reference"))
        elif name in ("cublastp",) + CUBLASTP_STRATEGY_NAMES + (
            "fsa", "ncbi", "cuda-blastp", "gpu-blastp",
        ):
            out.append(EngineVariant(name, name))
        else:
            raise ValueError(
                f"unknown engine variant {name!r} "
                f"(choose from {', '.join(VARIANT_NAMES)})"
            )
    return out


class OracleRunner:
    """Callable running a case through the oracle engine.

    The oracle runs the reference pipeline with ``gapped_mode="serial"``
    — the scalar best-first gapped loop — while every variant under test
    defaults to the batched wavefront scheduler, so each of the matrix's
    comparisons doubles as a continuous batched-vs-serial differential
    on the gapped-extension rewrite.
    """

    name = ORACLE_NAME

    def __init__(self, params_override: SearchParams | None = None) -> None:
        self.params_override = params_override

    def __call__(self, case: "Case") -> "SearchResult":
        params = self.params_override or case.params
        engine = make_engine(f"{ORACLE_NAME}:serial-gapped", params)
        return engine.run(engine.compile(case.query), case.db)


@dataclass(frozen=True)
class BuggedEngine:
    """An engine wrapper that injects a deterministic output bug.

    ``score_delta`` perturbs the top alignment's score; ``drop_last``
    silently discards the weakest alignment. Used by ``repro verify
    --selftest`` and the conformance tests to demonstrate the harness
    catches an injected defect within the case budget.
    """

    inner: Engine
    score_delta: int = 1
    drop_last: bool = False
    name: str = "bugged"

    def compile(self, query):
        return self.inner.compile(query)

    def run(self, compiled, db, query_id: str | None = None) -> "SearchResult":
        from dataclasses import replace as dc_replace

        result = self.inner.run(compiled, db)
        alignments = list(result.alignments)
        if alignments:
            if self.drop_last:
                alignments = alignments[:-1]
            elif self.score_delta:
                alignments[0] = dc_replace(
                    alignments[0], score=alignments[0].score + self.score_delta
                )
        result.alignments = alignments
        result.num_reported = len(alignments)
        return result


@dataclass(frozen=True)
class BuggedVariant(EngineVariant):
    """A matrix entry whose engine is wrapped in :class:`BuggedEngine`."""

    score_delta: int = 1
    drop_last: bool = False

    def make(self, params: SearchParams) -> Engine:
        return BuggedEngine(
            make_engine(self.engine_name, params),
            score_delta=self.score_delta,
            drop_last=self.drop_last,
            name=self.name,
        )
