"""Seeded generative workloads for differential testing.

Each *case* is one (query, database, parameters) triple, generated
deterministically from a ``(family, seed)`` pair — recording those two
values is enough to rebuild the exact case anywhere (the reproducer
protocol in :mod:`repro.verify.shrink` depends on this).

The families target the corner cases where GPU seed-filter-extend
pipelines are known to diverge from their CPU references (SaLoBa's
workload-dependence analysis; PAPERS.md):

``random``
    Pure Robinson-Robinson background — mostly chance hits, exercising
    the zero-/few-alignment paths and statistics cutoffs.
``homolog``
    Homolog-enriched databases built on the standard workload generator
    (:mod:`repro.io.workloads`), so gapped extension and traceback see
    real work.
``lowcomplexity``
    SEG-heavy sequences: long single- and dual-residue runs in both the
    query and subjects. Masking differences or off-by-ones in the SEG
    window show up here first.
``pileup``
    Periodic sequences sharing short words with the query — pathological
    diagonal pileups that stress binning, the segmented sort, and the
    two-hit filter's backward scan.
``boundary``
    Degenerate dimensions: word-length queries, single-residue subjects,
    exact self-matches, and hits spaced exactly at the two-hit window
    and word-overlap boundaries (inclusive/exclusive disagreements
    between implementations live on these edges).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.alphabet import decode
from repro.core.statistics import SearchParams
from repro.io.database import SequenceDatabase
from repro.io.workloads import (
    WorkloadSpec,
    generate_database,
    generate_query,
    sample_background,
)

#: Families in generation (round-robin) order.
FAMILIES = ("random", "homolog", "lowcomplexity", "pileup", "boundary")

#: Master seed of the pinned conformance corpus (the paper's IPDPS date).
CORPUS_SEED = 20140519

#: Size of the pinned conformance corpus.
CORPUS_SIZE = 64


@dataclass
class Case:
    """One generated differential-test case.

    ``(family, seed)`` fully determines the case; everything else is
    derived and carried only for convenience.
    """

    family: str
    seed: int
    query_id: str
    query: str
    db: SequenceDatabase
    params: SearchParams
    notes: str = ""

    @property
    def case_id(self) -> str:
        return f"{self.family}-{self.seed:010d}"

    def describe(self) -> str:
        """One-line human summary (sizes, seed, the replay coordinates)."""
        return (
            f"{self.case_id}: query {len(self.query)} aa, "
            f"db {len(self.db)} seqs / {int(self.db.codes.size)} residues"
            + (f" ({self.notes})" if self.notes else "")
        )


def _case_params(rng: np.random.Generator) -> SearchParams:
    """Draw search parameters — defaults most of the time, edges sometimes."""
    return SearchParams(
        threshold=int(rng.choice([10, 11, 11, 11, 12])),
        two_hit_window=int(rng.choice([20, 40, 40, 40])),
        evalue=float(rng.choice([1.0, 10.0, 10.0])),
        max_alignments=int(rng.choice([5, 500, 500])),
    )


def _random_case(seed: int) -> Case:
    rng = np.random.default_rng(seed)
    num = int(rng.integers(5, 14))
    seqs = [sample_background(rng, int(rng.integers(30, 150))) for _ in range(num)]
    query = decode(sample_background(rng, int(rng.integers(24, 100))))
    db = SequenceDatabase.from_strings(
        [decode(s) for s in seqs], [f"rand|{seed}|{i}" for i in range(num)]
    )
    return Case("random", seed, f"q-random-{seed}", query, db, _case_params(rng))


def _homolog_case(seed: int) -> Case:
    rng = np.random.default_rng(seed)
    spec = WorkloadSpec(
        name=f"homolog{seed}",
        num_sequences=int(rng.integers(8, 18)),
        mean_length=int(rng.integers(70, 160)),
        homolog_fraction=float(rng.uniform(0.3, 0.7)),
        num_domains=int(rng.integers(3, 8)),
        mutation_rate=float(rng.uniform(0.05, 0.35)),
        seed=seed,
    )
    db = generate_database(spec)
    qlen = int(rng.integers(40, 180))
    query = generate_query(qlen, spec, query_seed=int(rng.integers(0, 1 << 16)))
    params = SearchParams(
        **spec.search_params_kwargs,
        threshold=int(rng.choice([10, 11, 12])),
    )
    return Case("homolog", seed, f"q-homolog-{seed}", query, db, params)


def _lowcomplexity_piece(rng: np.random.Generator, length: int) -> np.ndarray:
    """A low-entropy stretch over one or two residue codes."""
    codes = rng.choice(20, size=int(rng.integers(1, 3)), replace=False)
    return rng.choice(codes, size=length).astype(np.uint8)


def _lowcomplexity_case(seed: int) -> Case:
    rng = np.random.default_rng(seed)
    num = int(rng.integers(4, 10))
    seqs = []
    for _ in range(num):
        parts = [sample_background(rng, int(rng.integers(8, 30)))]
        for _ in range(int(rng.integers(1, 4))):
            parts.append(_lowcomplexity_piece(rng, int(rng.integers(15, 60))))
            parts.append(sample_background(rng, int(rng.integers(5, 25))))
        seqs.append(np.concatenate(parts))
    # Query: background flanks around a SEG-triggering core.
    q = np.concatenate(
        [
            sample_background(rng, int(rng.integers(12, 30))),
            _lowcomplexity_piece(rng, int(rng.integers(20, 50))),
            sample_background(rng, int(rng.integers(12, 30))),
        ]
    )
    db = SequenceDatabase.from_strings(
        [decode(s) for s in seqs], [f"lc|{seed}|{i}" for i in range(num)]
    )
    return Case(
        "lowcomplexity", seed, f"q-lc-{seed}", decode(q), db, _case_params(rng),
        notes="SEG-heavy",
    )


def _pileup_case(seed: int) -> Case:
    rng = np.random.default_rng(seed)
    # A small shared word set guarantees dense, repeated diagonals.
    words = [sample_background(rng, 3) for _ in range(int(rng.integers(1, 4)))]

    def weave(n_words: int) -> np.ndarray:
        picks = [words[int(rng.integers(0, len(words)))] for _ in range(n_words)]
        return np.concatenate(picks)

    num = int(rng.integers(3, 8))
    seqs = [
        np.concatenate([weave(int(rng.integers(8, 30))), sample_background(rng, 6)])
        for _ in range(num)
    ]
    q = np.concatenate(
        [sample_background(rng, 8), weave(int(rng.integers(6, 16))),
         sample_background(rng, 8)]
    )
    db = SequenceDatabase.from_strings(
        [decode(s) for s in seqs], [f"pile|{seed}|{i}" for i in range(num)]
    )
    return Case(
        "pileup", seed, f"q-pileup-{seed}", decode(q), db, _case_params(rng),
        notes="diagonal pileups",
    )


def _boundary_case(seed: int) -> Case:
    rng = np.random.default_rng(seed)
    params = _case_params(rng)
    window = params.two_hit_window
    kind = int(rng.integers(0, 4))
    filler = sample_background(rng, 120)
    if kind == 0:
        # Word-length query: the smallest compilable query (one word).
        query = decode(sample_background(rng, int(rng.integers(3, 8))))
        seqs = [decode(sample_background(rng, int(rng.integers(20, 80))))
                for _ in range(3)]
        notes = "minimal query"
    elif kind == 1:
        # Exact self-match: the query itself is a subject.
        query = decode(sample_background(rng, int(rng.integers(30, 90))))
        seqs = [query, decode(sample_background(rng, 40))]
        notes = "exact self-match"
    elif kind == 2:
        # Single- and sub-word-length subjects mixed with a normal one.
        query = decode(sample_background(rng, 50))
        seqs = [decode(sample_background(rng, n)) for n in (1, 2, 3, 4)]
        seqs.append(decode(filler[:70]))
        notes = "sub-word subjects"
    else:
        # Two query words recur in a subject spaced exactly at the two-hit
        # window and exactly at the word-overlap bound — the inclusive/
        # exclusive edges of the seeding rule.
        word = sample_background(rng, 3)
        qbg = sample_background(rng, 46)
        q = qbg.copy()
        q[10:13] = word
        sub = sample_background(rng, window + 40)
        sub[5:8] = word
        sub[5 + 3 : 5 + 6] = word          # distance == word_length
        sub[5 + window : 5 + window + 3] = word  # distance == window
        query = decode(q)
        seqs = [decode(sub), decode(sample_background(rng, 30))]
        notes = f"window-edge spacing (A={window})"
    db = SequenceDatabase.from_strings(
        seqs, [f"bnd|{seed}|{i}" for i in range(len(seqs))]
    )
    return Case("boundary", seed, f"q-boundary-{seed}", query, db, params, notes=notes)


_BUILDERS = {
    "random": _random_case,
    "homolog": _homolog_case,
    "lowcomplexity": _lowcomplexity_case,
    "pileup": _pileup_case,
    "boundary": _boundary_case,
}


def build_case(family: str, seed: int) -> Case:
    """Rebuild the case identified by ``(family, seed)`` — the replay entry."""
    try:
        builder = _BUILDERS[family]
    except KeyError:
        raise ValueError(
            f"unknown case family {family!r} (choose from {', '.join(FAMILIES)})"
        ) from None
    return builder(int(seed))


def generate_cases(
    count: int, seed: int, families: "tuple[str, ...] | list[str] | None" = None
) -> list[Case]:
    """Generate ``count`` cases, round-robin over ``families``.

    Child seeds derive from ``seed`` through :class:`numpy.random.SeedSequence`,
    so one master seed yields a well-spread, fully replayable batch.
    """
    if count < 1:
        raise ValueError("count must be positive")
    fams = tuple(families) if families else FAMILIES
    for f in fams:
        if f not in _BUILDERS:
            raise ValueError(
                f"unknown case family {f!r} (choose from {', '.join(FAMILIES)})"
            )
    child_seeds = np.random.SeedSequence(seed).generate_state(count)
    return [
        build_case(fams[i % len(fams)], int(child_seeds[i])) for i in range(count)
    ]


def pinned_corpus() -> list[Case]:
    """The 64-case pinned conformance corpus (golden-snapshot locked)."""
    return generate_cases(CORPUS_SIZE, CORPUS_SEED)
