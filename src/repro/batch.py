"""Multi-query batch search.

Real BLAST deployments stream many queries against one database; the
query-side structures (neighbourhood, DFA, PSSM) are rebuilt per query but
the database stays resident. This helper runs a batch through any engine
in the package and aggregates the timing — mirroring how the paper's
evaluation profiles batches of queries drawn from NR.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.core.results import SearchResult
from repro.core.statistics import SearchParams
from repro.cublastp.config import CuBlastpConfig
from repro.cublastp.search import CuBlastp
from repro.io.database import SequenceDatabase


@dataclass
class BatchResult:
    """Outcome of a multi-query batch."""

    results: list[tuple[str, SearchResult]] = field(default_factory=list)
    total_modelled_ms: float = 0.0

    def __len__(self) -> int:
        return len(self.results)

    @property
    def total_reported(self) -> int:
        return sum(r.num_reported for _, r in self.results)

    def result_for(self, query_id: str) -> SearchResult:
        for qid, r in self.results:
            if qid == query_id:
                return r
        raise KeyError(query_id)

    def summary(self) -> str:
        from repro.io.report import summary_table

        return summary_table(self.results)


def batch_search(
    queries: Iterable[tuple[str, str]],
    db: SequenceDatabase,
    params: SearchParams | None = None,
    config: CuBlastpConfig | None = None,
    engine_factory: Callable[..., object] | None = None,
) -> BatchResult:
    """Search every ``(query_id, sequence)`` pair against ``db``.

    Parameters
    ----------
    queries:
        Iterable of ``(identifier, residue string)`` pairs.
    engine_factory:
        Constructor called as ``factory(sequence, params)`` (baselines) —
        defaults to cuBLASTP with the given ``config``. Engines must offer
        ``search`` and optionally ``search_with_report``.

    Returns
    -------
    BatchResult
        Per-query results in input order, plus the summed modelled time
        when the engine reports one.
    """
    out = BatchResult()
    for qid, seq in queries:
        if engine_factory is None:
            engine = CuBlastp(seq, params, config)
        else:
            engine = engine_factory(seq, params)
        if hasattr(engine, "search_with_report"):
            result, report = engine.search_with_report(db)
            out.total_modelled_ms += getattr(report, "overall_ms", 0.0)
        else:
            result = engine.search(db)
        out.results.append((qid, result))
    return out
