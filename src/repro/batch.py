"""Multi-query batch search.

Real BLAST deployments stream many queries against one database; the
query-side structures (neighbourhood, DFA, PSSM) are compiled per query
but the database stays resident. :func:`batch_search` is the stable
entry point; it is now a thin shim over the engine layer's
:class:`~repro.engine.executor.BatchExecutor`, which adds concurrency
(``jobs``), per-query error isolation, compiled-query caching, and
streaming consumption — see :mod:`repro.engine`.
"""

from __future__ import annotations

import inspect
from typing import Any, Callable, Iterable

from repro.core.results import SearchResult
from repro.core.statistics import SearchParams
from repro.cublastp.config import CuBlastpConfig
from repro.engine.compiled import QueryCache
from repro.engine.executor import BatchExecutor, QueryOutcome
from repro.engine.protocol import make_engine
from repro.io.database import SequenceDatabase


class BatchResult:
    """Outcome of a multi-query batch.

    Wraps the per-query :class:`~repro.engine.executor.QueryOutcome`
    records (input order). Failed queries keep their error record in
    :attr:`errors` / :attr:`records` without aborting the batch;
    successful ones appear in :attr:`results` and :attr:`reports`.
    """

    def __init__(self, records: list[QueryOutcome] | None = None) -> None:
        self.records: list[QueryOutcome] = list(records or [])
        # Query-id index for O(1) result_for (first occurrence wins, as
        # the former linear scan did).
        self._by_id: dict[str, QueryOutcome] = {}
        for rec in self.records:
            self._by_id.setdefault(rec.query_id, rec)

    def __len__(self) -> int:
        return len(self.records)

    @property
    def results(self) -> list[tuple[str, SearchResult]]:
        """``(query_id, result)`` pairs of the successful queries."""
        return [(r.query_id, r.result) for r in self.records if r.ok]

    @property
    def reports(self) -> list[tuple[str, Any]]:
        """``(query_id, report)`` pairs for queries whose engine reported."""
        return [(r.query_id, r.report) for r in self.records if r.report is not None]

    @property
    def errors(self) -> list[tuple[str, Exception]]:
        """``(query_id, error)`` pairs of the failed queries."""
        return [(r.query_id, r.error) for r in self.records if not r.ok]

    @property
    def total_modelled_ms(self) -> float:
        """Summed modelled end-to-end time over the reporting engines."""
        return sum(
            getattr(r.report, "overall_ms", 0.0)
            for r in self.records
            if r.report is not None
        )

    @property
    def total_reported(self) -> int:
        return sum(r.num_reported for _, r in self.results)

    def result_for(self, query_id: str) -> SearchResult:
        """The result of ``query_id`` (O(1); raises the query's error if
        it failed, :class:`KeyError` if it was never in the batch)."""
        rec = self._by_id.get(query_id)
        if rec is None:
            raise KeyError(query_id)
        if not rec.ok:
            raise rec.error
        return rec.result

    def summary(self) -> str:
        from repro.io.report import summary_table

        return summary_table(self.results)


class _FactoryEngine:
    """Adapter: a legacy ``factory(sequence, params)`` as an engine.

    Kept for callers that pass bare constructors. The factory receives the
    raw sequence (exact legacy semantics, no compiled-query sharing); a
    factory whose signature accepts ``config`` also receives the batch's
    config — previously it was silently dropped.
    """

    name = "factory"

    def __init__(
        self,
        factory: Callable[..., object],
        params: SearchParams | None,
        config: CuBlastpConfig | None,
    ) -> None:
        self.factory = factory
        self.factory_params = params
        self.config = config
        self._pass_config = config is not None and self._accepts_config(factory)

    @staticmethod
    def _accepts_config(factory: Callable[..., object]) -> bool:
        try:
            sig_params = inspect.signature(factory).parameters.values()
        except (TypeError, ValueError):
            return False
        return any(
            p.name == "config" or p.kind is inspect.Parameter.VAR_KEYWORD
            for p in sig_params
        )

    def compile(self, query: str) -> str:
        return query  # opaque: the factory does its own build

    def _make(self, sequence: str):
        if self._pass_config:
            return self.factory(sequence, self.factory_params, config=self.config)
        return self.factory(sequence, self.factory_params)

    def run(self, compiled: str, db: SequenceDatabase, query_id: str | None = None):
        return self._make(compiled).search(db)

    def run_with_report(
        self, compiled: str, db: SequenceDatabase, query_id: str | None = None
    ):
        engine = self._make(compiled)
        if hasattr(engine, "search_with_report"):
            return engine.search_with_report(db)
        return engine.search(db), None


def batch_search(
    queries: Iterable[tuple[str, str]],
    db: SequenceDatabase | str,
    params: SearchParams | None = None,
    config: CuBlastpConfig | None = None,
    engine_factory: Callable[..., object] | None = None,
    *,
    jobs: int = 1,
    cache: QueryCache | None = None,
) -> BatchResult:
    """Search every ``(query_id, sequence)`` pair against ``db``.

    Parameters
    ----------
    queries:
        Iterable of ``(identifier, residue string)`` pairs.
    db:
        A resident database, or a path to one saved with
        :meth:`SequenceDatabase.save` (resolved through the default
        :class:`~repro.io.store.DatabaseStore`).
    engine_factory:
        Legacy constructor called as ``factory(sequence, params)`` —
        defaults to cuBLASTP with the given ``config``. Factories whose
        signature accepts ``config`` receive it too. Prefer passing an
        :class:`~repro.engine.protocol.Engine` to
        :class:`~repro.engine.executor.BatchExecutor` directly.
    jobs:
        Concurrent worker threads (results stay in input order and are
        identical to a serial run).
    cache:
        Optional :class:`~repro.engine.compiled.QueryCache` for
        repeated-query traffic.

    Returns
    -------
    BatchResult
        Per-query results in input order, plus the per-query reports and
        the summed modelled time when the engine reports one.
    """
    if engine_factory is None:
        engine = make_engine("cublastp", params, config=config)
    else:
        engine = _FactoryEngine(engine_factory, params, config)
    executor = BatchExecutor(engine, jobs=jobs, cache=cache)
    return executor.run(queries, db)
