"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``search``
    BLASTP-search a FASTA database with a FASTA query (or a literal
    sequence), printing the pairwise report or tabular output. Chooses
    the cuBLASTP engine by default; ``--engine`` selects a baseline.
``makedb``
    Generate a synthetic database (the workload generator) as FASTA, for
    trying the tool without real data.
``db build`` / ``db inspect`` / ``db stamp``
    Convert a FASTA database to the versioned binary format (mmap-loaded,
    no re-encoding on open), print a saved database's header and
    statistics, and bump (or set) the header's content-version stamp —
    the generation counter the serving layer's result cache keys on.
``serve``
    Run the always-on HTTP search service: concurrent requests coalesce
    into executor batches, results are cached by
    ``(query, db-version, params)``, overload sheds with 429 (see
    :mod:`repro.serve` and docs/SERVING.md).
``profile``
    Run a search and print the simulated GPU kernel profiles and the
    end-to-end breakdown (the Fig. 19 view for your own inputs).
``verify``
    Differential conformance: generate seeded workloads and check every
    engine and execution path against the reference oracle, hit for hit
    (see :mod:`repro.verify` and docs/TESTING.md).
``lint``
    Static analysis: run the reprolint AST rules that encode this
    repo's determinism and simulator invariants (see
    :mod:`repro.analysis` and docs/ANALYSIS.md).

Database arguments everywhere accept either a FASTA file or a saved
binary database; binary paths open through the process-wide
:class:`~repro.io.store.DatabaseStore` (resident, mmap-backed).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core import SearchParams
from repro.cublastp import CuBlastp, CuBlastpConfig, ExtensionMode
from repro.engine import ENGINE_NAMES, BatchExecutor, Engine, QueryCache, make_engine
from repro.io import (
    FastaRecord,
    SequenceDatabase,
    generate_database,
    get_default_store,
    read_fasta_file,
    write_fasta,
)
from repro.io import storage
from repro.io.report import format_pairwise, write_tabular
from repro.io.workloads import WorkloadSpec


def _load_database(arg: str) -> SequenceDatabase:
    """Resolve a database argument: binary store path or FASTA file."""
    if storage.sniff_format(arg) in ("binary", "npz"):
        return get_default_store().open(arg)
    return SequenceDatabase.from_records(read_fasta_file(arg))


def _load_queries(arg: str) -> list[tuple[str, str]]:
    """Resolve a query argument: (multi-record) FASTA path or literal string."""
    path = Path(arg)
    if path.exists():
        records = read_fasta_file(path)
        if not records:
            raise SystemExit(f"error: {arg}: no FASTA records")
        return [(r.identifier, r.sequence) for r in records]
    if all(c.isalpha() for c in arg) and len(arg) >= 6:
        return [("query", arg.upper())]
    raise SystemExit(f"error: {arg}: not a file and not a residue string")


def _load_query(arg: str) -> tuple[str, str]:
    """First query of the argument (single-query commands)."""
    return _load_queries(arg)[0]


def _build_params(args: argparse.Namespace) -> SearchParams:
    return SearchParams(
        evalue=args.evalue,
        threshold=args.threshold,
        two_hit_window=args.window,
        max_alignments=args.max_alignments,
        effective_db_residues=args.effective_db_size,
    )


def _make_engine(args: argparse.Namespace) -> Engine:
    """Build the Engine-protocol instance the arguments select."""
    params = _build_params(args)
    config = None
    if args.engine == "cublastp":
        config = CuBlastpConfig(
            extension_mode=ExtensionMode(getattr(args, "extension", "window")),
            num_bins=getattr(args, "bins", 128),
            cpu_threads=args.threads,
        )
    return make_engine(args.engine, params, config=config, threads=args.threads)


def cmd_search(args: argparse.Namespace) -> int:
    queries = _load_queries(args.query)
    db = _load_database(args.database)
    engine = _make_engine(args)
    # The executor keeps the database resident, compiles each distinct
    # query once, runs ``--jobs`` searches concurrently, and streams
    # outcomes back in input order — so the printed report is identical
    # for every jobs value.
    executor = BatchExecutor(
        engine,
        jobs=args.jobs,
        backend=getattr(args, "backend", "thread"),
        mode="db-sweep" if getattr(args, "batch_mode", False) else "per-query",
        cache=QueryCache(),
        collect_reports=False,
    )
    if executor.jobs_clamped:
        print(
            f"note: --jobs {executor.requested_jobs} clamped to "
            f"{executor.jobs} (host cores)",
            file=sys.stderr,
        )
    first_tabular = True
    failed = 0
    for outcome in executor.stream(queries, db):
        if outcome.error is not None:
            failed += 1
            print(f"error: query {outcome.query_id}: {outcome.error}", file=sys.stderr)
            continue
        if args.outfmt == "tabular":
            write_tabular(outcome.query_id, outcome.result, sys.stdout, header=first_tabular)
            first_tabular = False
        else:
            sys.stdout.write(format_pairwise(outcome.query_id, outcome.result))
            if len(queries) > 1:
                sys.stdout.write("\n" + "=" * 70 + "\n\n")
    return 1 if failed else 0


def cmd_makedb(args: argparse.Namespace) -> int:
    spec = WorkloadSpec(
        name=args.name,
        num_sequences=args.sequences,
        mean_length=args.mean_length,
        homolog_fraction=args.homologs,
        seed=args.seed,
    )
    db = generate_database(spec)
    records = [
        FastaRecord(db.identifier(i), "", db.sequence_str(i)) for i in range(len(db))
    ]
    write_fasta(records, args.output)
    print(f"wrote {len(db)} sequences ({int(db.codes.size):,} residues) to {args.output}")
    return 0


def cmd_db_build(args: argparse.Namespace) -> int:
    if storage.sniff_format(args.input) in ("binary", "npz"):
        db = SequenceDatabase.load(args.input)  # migrate (e.g. legacy .npz)
    else:
        records = read_fasta_file(args.input)
        if not records:
            raise SystemExit(f"error: {args.input}: no FASTA records")
        db = SequenceDatabase.from_records(records)
    db.save(args.output)
    st = db.stats()
    print(
        f"wrote {args.output}: {st.num_sequences} sequences, "
        f"{st.total_residues:,} residues "
        f"(format v{storage.FORMAT_VERSION}, mmap-loadable)"
    )
    return 0


def cmd_db_inspect(args: argparse.Namespace) -> int:
    fmt = storage.sniff_format(args.database)
    if fmt == "unknown":
        raise SystemExit(f"error: {args.database}: not a saved database")
    if fmt == "npz":
        print(f"{args.database}: legacy .npz archive (deprecated; re-save "
              "with 'repro db build' to migrate)")
        db = SequenceDatabase.load(args.database)
    else:
        head = storage.read_header(args.database)
        print(f"{args.database}: repro binary database")
        print(f"  format version  {head['version']}")
        print(f"  db version      {head['db_version']}")
        print(f"  file size       {head['file_bytes']:,} B")
        print(f"  codes section   {head['codes_len']:,} B @ {head['off_codes']}")
        print(f"  offsets section {(head['num_sequences'] + 1) * 8:,} B @ {head['off_offsets']}")
        db = get_default_store().open(args.database)
    st = db.stats()
    print(f"  sequences       {st.num_sequences:,}")
    print(f"  residues        {st.total_residues:,}")
    print(f"  length          min {st.min_length} / mean {st.mean_length:.1f} / max {st.max_length}")
    if args.identifiers:
        for i in range(min(args.identifiers, len(db))):
            print(f"    [{i}] {db.identifier(i)} ({int(db.lengths[i])} aa)")
    return 0


def cmd_db_stamp(args: argparse.Namespace) -> int:
    if storage.sniff_format(args.database) != "binary":
        raise SystemExit(f"error: {args.database}: not a binary database")
    old = storage.read_db_version(args.database)
    new = storage.stamp_db_version(args.database, args.set)
    print(f"{args.database}: db_version {old} -> {new}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve import SearchService, serve_forever

    # Binary paths pass through as paths — the header's version stamp
    # keys the result cache and workers mmap the file directly. FASTA
    # loads in-memory (stamp 0: caching works, invalidation has no file
    # stamp to watch).
    if storage.sniff_format(args.database) == "binary":
        db = args.database
    else:
        db = _load_database(args.database)
    engine = make_engine(args.engine, _build_params(args))
    service = SearchService(
        db,
        engine=engine,
        backend=args.backend,
        jobs=args.jobs,
        mode=args.mode,
        window_ms=args.window_ms,
        max_batch=args.max_batch,
        max_pending=args.max_pending,
        cache_capacity=args.cache_capacity,
    )
    service.start()
    print(
        f"serving {args.database} on http://{args.host}:{args.port} "
        f"(engine={args.engine}, backend={args.backend}, jobs={service.executor.jobs}, "
        f"mode={args.mode}, window={args.window_ms}ms, db_version={service.db_version})",
        flush=True,
    )
    try:
        asyncio.run(serve_forever(service, args.host, args.port))
    except KeyboardInterrupt:
        pass
    finally:
        service.close()
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    from repro.engine import EventLog

    query_id, query = _load_query(args.query)
    db = _load_database(args.database)
    params = _build_params(args)
    events = EventLog()
    result, report = CuBlastp(query, params, events=events).search_with_report(db)
    print(f"query {query_id} vs {args.database}: {result.summary()}\n")
    print(f"{'kernel':<22} {'ms':>9} {'gld':>6} {'div':>6} {'occ':>6}")
    for name, prof in report.gpu.profiles.items():
        print(
            f"{name:<22} {prof.elapsed_ms():>9.4f} "
            f"{prof.global_load_efficiency:>6.0%} "
            f"{prof.divergence_overhead:>6.0%} {prof.occupancy:>6.0%}"
        )
    # The stage table is read off the phase-event stream the search
    # emitted — the same numbers the report carries, one schema for all
    # engines.
    print(f"\n{'stage':<22} {'ms':>9}  share")
    for stage, ms in events.breakdown(engine=CuBlastp.name).items():
        print(f"{stage:<22} {ms:>9.4f}  {ms / report.serial_ms:>5.0%}")
    print(
        f"\npipelined end-to-end {report.overall_ms:.4f} ms "
        f"(overlap hides {report.overlap_saved_ms:.4f} ms)"
    )
    return 0


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="cuBLASTP reproduction: protein sequence search on a simulated GPU",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_param_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--evalue", type=float, default=10.0)
        p.add_argument("--threshold", type=int, default=11, help="neighbourhood T")
        p.add_argument("--window", type=int, default=40, help="two-hit window A")
        p.add_argument("--max-alignments", type=int, default=500)
        p.add_argument(
            "--effective-db-size",
            type=int,
            default=None,
            help="evaluate E-values as if the database had this many residues",
        )
        p.add_argument("--threads", type=int, default=4, help="CPU threads (model)")

    def add_search_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("query", help="query FASTA file or literal residue string")
        p.add_argument("database", help="database FASTA file")
        add_param_args(p)

    p_search = sub.add_parser("search", help="run a BLASTP search")
    add_search_args(p_search)
    p_search.add_argument("--engine", choices=sorted(ENGINE_NAMES), default="cublastp")
    p_search.add_argument(
        "--extension", choices=[m.value for m in ExtensionMode], default="window"
    )
    p_search.add_argument("--bins", type=int, default=128, help="bins per warp")
    p_search.add_argument("--outfmt", choices=["pairwise", "tabular"], default="pairwise")
    p_search.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        help="concurrent multi-query searches (results stay in input order)",
    )
    p_search.add_argument(
        "--backend",
        choices=BatchExecutor.BACKENDS,
        default="thread",
        help="worker pool flavour: threads share the GIL (cheap, limited "
        "scaling); processes re-open the database via mmap and scale the "
        "hot phases across cores",
    )
    p_search.add_argument(
        "--batch-mode",
        action="store_true",
        help="batch-first db-sweep: one blocked database pass serves the "
        "whole query batch through a merged multi-query index (results "
        "identical to the per-query default); with --backend process, "
        "workers own database blocks instead of queries",
    )
    p_search.set_defaults(func=cmd_search)

    p_db = sub.add_parser("db", help="manage saved binary databases")
    db_sub = p_db.add_subparsers(dest="db_command", required=True)
    p_build = db_sub.add_parser(
        "build", help="convert FASTA (or legacy .npz) to the binary format"
    )
    p_build.add_argument("input", help="FASTA file or legacy .npz archive")
    p_build.add_argument("output", help="output binary database path")
    p_build.set_defaults(func=cmd_db_build)
    p_inspect = db_sub.add_parser("inspect", help="print a saved database's header and stats")
    p_inspect.add_argument("database", help="saved database path")
    p_inspect.add_argument(
        "--identifiers",
        type=int,
        default=0,
        metavar="N",
        help="also list the first N sequence identifiers",
    )
    p_inspect.set_defaults(func=cmd_db_inspect)
    p_stamp = db_sub.add_parser(
        "stamp",
        help="bump (or set) the content-version stamp in a binary database "
        "header — serving caches key on it, so a bump invalidates them",
    )
    p_stamp.add_argument("database", help="saved binary database path")
    p_stamp.add_argument(
        "--set",
        type=int,
        default=None,
        metavar="N",
        help="set the stamp to N instead of incrementing",
    )
    p_stamp.set_defaults(func=cmd_db_stamp)

    p_serve = sub.add_parser("serve", help="run the always-on HTTP search service")
    p_serve.add_argument("database", help="database FASTA file or saved binary path")
    add_param_args(p_serve)
    p_serve.add_argument("--engine", choices=sorted(ENGINE_NAMES), default="cublastp")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8713)
    p_serve.add_argument(
        "--backend",
        choices=BatchExecutor.BACKENDS,
        default="thread",
        help="executor backend for coalesced batches (process keeps a warm "
        "worker pool across coalescing windows)",
    )
    p_serve.add_argument("--jobs", type=_positive_int, default=1)
    p_serve.add_argument(
        "--mode",
        choices=BatchExecutor.MODES,
        default="db-sweep",
        help="batch scheduling mode (db-sweep: one database pass per "
        "coalesced batch)",
    )
    p_serve.add_argument(
        "--window-ms",
        type=float,
        default=20.0,
        help="coalescing window: a batch closes at latest this long after "
        "its first arrival",
    )
    p_serve.add_argument(
        "--max-batch", type=_positive_int, default=32, help="requests per batch at most"
    )
    p_serve.add_argument(
        "--max-pending",
        type=_positive_int,
        default=256,
        help="admission bound on queued+executing requests (past it: 429)",
    )
    p_serve.add_argument(
        "--cache-capacity",
        type=int,
        default=1024,
        help="result-cache entries (0 disables caching)",
    )
    p_serve.set_defaults(func=cmd_serve)

    p_makedb = sub.add_parser("makedb", help="generate a synthetic FASTA database")
    p_makedb.add_argument("output", help="output FASTA path")
    p_makedb.add_argument("--sequences", type=int, default=400)
    p_makedb.add_argument("--mean-length", type=int, default=250)
    p_makedb.add_argument("--homologs", type=float, default=0.05)
    p_makedb.add_argument("--seed", type=int, default=20140519)
    p_makedb.add_argument("--name", default="synthdb")
    p_makedb.set_defaults(func=cmd_makedb)

    p_profile = sub.add_parser("profile", help="print simulated GPU profiles")
    add_search_args(p_profile)
    p_profile.set_defaults(func=cmd_profile)

    from repro.analysis.cli import add_lint_parser
    from repro.verify.cli import add_verify_parser

    add_verify_parser(sub)
    add_lint_parser(sub)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
