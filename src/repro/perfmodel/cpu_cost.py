"""CPU time models built on counted work.

Each function converts *measured* work quantities (from an actual search)
into modelled milliseconds. Multithreaded phases schedule per-item costs
with longest-processing-time (LPT) onto the thread count and report the
makespan — the same quantity a wall clock would see, including imbalance.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.core.gapped import GappedExtension
from repro.core.results import ExtensionArray, UngappedExtension
from repro.perfmodel.calibration import CPU_CLOCK_GHZ, CostConstants


def _cycles_to_ms(cycles: float, clock_ghz: float = CPU_CLOCK_GHZ) -> float:
    return cycles / (clock_ghz * 1e9) * 1e3


def ungapped_cells(
    extensions: "ExtensionArray | Sequence[UngappedExtension]", x_drop: int
) -> int:
    """Residues examined across all ungapped extensions.

    Each walk overshoots its best prefix until the x-drop fires, by up to
    ``x_drop`` mostly-negative single steps per direction; the model
    charges the returned segment length plus that overshoot — the honest
    approximation DESIGN.md documents for cost accounting.
    """
    if isinstance(extensions, ExtensionArray):
        return int(np.sum(extensions.lengths)) + 2 * x_drop * len(extensions)
    return sum(e.length + 2 * x_drop for e in extensions)


def critical_phase_ms(
    num_words: int,
    num_hits: int,
    ext_cells: int,
    costs: CostConstants,
    threads: int = 1,
) -> float:
    """Modelled time of hit detection + ungapped extension on the CPU.

    With ``threads > 1`` the phase parallelises over subject sequences;
    word/hit/cell work is assumed balanced by the sheer number of
    sequences (the fine-grained imbalance that matters on a GPU warp
    averages out over thousands of sequences per thread).
    """
    cycles = (
        num_words * costs.word_lookup
        + num_hits * costs.hit_process
        + ext_cells * costs.ungapped_cell
    )
    ms = _cycles_to_ms(cycles / max(1, threads))
    if threads > 1:
        ms += costs.thread_sync_us / 1e3
    return ms


def gapped_work_items(gapped: Iterable[GappedExtension], costs: CostConstants) -> list[float]:
    """Per-extension gapped-DP cost in cycles.

    Charges the cells the x-drop DP *actually computed* (the live band the
    extension records), falling back to the bounding-box area when an
    extension predates cell counting — the band is typically several times
    smaller than the box, and using the box would overstate phase 3.
    """
    items = []
    for g in gapped:
        cells = g.cells
        if not cells:
            rows = g.box_query_end - g.box_query_start + 1
            cols = g.box_subject_end - g.box_subject_start + 1
            cells = rows * cols
        items.append(cells * costs.gapped_cell + costs.gapped_overhead)
    return items


def traceback_work_items(gapped: Iterable[GappedExtension], costs: CostConstants) -> list[float]:
    """Per-alignment traceback cost in cycles.

    A production traceback re-runs the *banded* DP with path bookkeeping,
    so the charge is the extension's band cells at the (heavier) traceback
    cell cost; the bounding box is the fallback when cells weren't counted.
    (This repo's reference traceback solves the whole box for simplicity —
    the model prices the algorithm BLAST ships, not that shortcut.)
    """
    items = []
    for g in gapped:
        cells = g.cells
        if not cells:
            rows = g.box_query_end - g.box_query_start + 1
            cols = g.box_subject_end - g.box_subject_start + 1
            cells = rows * cols
        items.append(cells * costs.traceback_cell + costs.gapped_overhead)
    return items


def thread_makespan_ms(
    items_cycles: Sequence[float],
    threads: int,
    costs: CostConstants,
    clock_ghz: float = CPU_CLOCK_GHZ,
) -> float:
    """LPT-schedule per-item costs onto ``threads`` and return the makespan.

    This is how the multithreaded gapped-extension / traceback phases are
    timed: a handful of large DP boxes on one thread caps scaling exactly
    as it would with real pthreads (Fig. 13's sub-linear tail).
    """
    if threads < 1:
        raise ValueError("threads must be positive")
    if not items_cycles:
        return 0.0
    loads = [0.0] * threads
    heapq.heapify(loads)
    for c in sorted(items_cycles, reverse=True):
        lightest = heapq.heappop(loads)
        heapq.heappush(loads, lightest + c)
    makespan = max(loads)
    ms = _cycles_to_ms(makespan, clock_ghz)
    if threads > 1:
        ms += costs.thread_sync_us / 1e3
    return ms


@dataclass(frozen=True)
class CpuPhaseTimes:
    """Modelled times of the CPU-side phases of one search."""

    gapped_ms: float
    traceback_ms: float
    threads: int

    @property
    def total_ms(self) -> float:
        return self.gapped_ms + self.traceback_ms
