"""Calibrated cost constants of the CPU model.

Absolute CPU timings in this repo come from counting abstract operations
and pricing them with the constants below. The constants are *calibrated*,
not measured on the paper's hardware (DESIGN.md §2): they were chosen so
that (a) the per-phase time breakdown of the sequential baseline matches
FSA-BLAST's published profile (hit detection + ungapped extension ~70-80 %
of total, Fig. 11), and (b) total sequential search time per database
residue is in the right order of magnitude for a ~3 GHz core. Cross-
implementation *ratios* — every speedup the benchmarks report — depend on
the counted work and the GPU model, not on the absolute scale of these
numbers, and the ablation benches vary them to show that.
"""

from __future__ import annotations

from dataclasses import dataclass


#: Clock of the modelled CPU (Intel Core i5-2400, the paper's host).
CPU_CLOCK_GHZ = 3.1


@dataclass(frozen=True)
class CostConstants:
    """Per-operation cycle costs of a CPU BLASTP implementation.

    Attributes
    ----------
    word_lookup:
        Per subject word: DFA transition + word-entry fetch + loop control.
    hit_process:
        Per hit: diagonal computation, lasthit load/compare/update.
    ungapped_cell:
        Per residue examined during ungapped extension (score fetch,
        accumulate, compare).
    gapped_cell:
        Per DP cell of gapped extension (three-matrix affine update).
    traceback_cell:
        Per DP cell of the traceback pass (scores + path bookkeeping).
    gapped_overhead:
        Fixed per-extension setup (buffers, bounds).
    thread_sync_us:
        Per-thread-join synchronisation overhead of the pthreads phases.
    """

    word_lookup: float = 24.0
    hit_process: float = 14.0
    ungapped_cell: float = 5.0
    gapped_cell: float = 12.0
    traceback_cell: float = 14.0
    gapped_overhead: float = 400.0
    thread_sync_us: float = 5.0


#: FSA-BLAST: the fastest sequential CPU code (Cameron's optimisations).
DEFAULT_COSTS = CostConstants()

#: NCBI BLAST: same algorithms, heavier engine — the conventional ~25 %
#: single-thread handicap against FSA-BLAST that the FSA papers report.
NCBI_COSTS = CostConstants(
    word_lookup=30.0,
    hit_process=17.5,
    ungapped_cell=6.25,
    gapped_cell=15.0,
    traceback_cell=17.5,
    gapped_overhead=500.0,
    thread_sync_us=20.0,
)
