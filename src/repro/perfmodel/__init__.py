"""Performance models for the CPU-side implementations and comparisons.

The GPU implementations are timed by the simulator's cycle model; the CPU
implementations (FSA-BLAST, NCBI-BLAST xT, and cuBLASTP's own CPU phases)
are timed by the cost model here: abstract operations are counted from the
*actual* search (word scans, hits, extension cells, DP cells) and priced
with the calibrated per-operation cycle constants of
:mod:`repro.perfmodel.calibration`. Multithreaded timings schedule the
per-item costs onto threads (LPT) and take the makespan, so load-imbalance
effects are real rather than assumed.
"""

from repro.perfmodel.calibration import CPU_CLOCK_GHZ, CostConstants, DEFAULT_COSTS, NCBI_COSTS
from repro.perfmodel.cpu_cost import (
    CpuPhaseTimes,
    critical_phase_ms,
    gapped_work_items,
    thread_makespan_ms,
    traceback_work_items,
    ungapped_cells,
)

__all__ = [
    "CPU_CLOCK_GHZ",
    "CostConstants",
    "CpuPhaseTimes",
    "DEFAULT_COSTS",
    "NCBI_COSTS",
    "critical_phase_ms",
    "gapped_work_items",
    "thread_makespan_ms",
    "traceback_work_items",
    "ungapped_cells",
]
