"""Seeding structures: W-mer words, neighbourhoods, and lookup structures.

Hit detection needs, for every length-``W`` word of a subject sequence, the
list of query positions whose neighbourhood contains that word. Two
interchangeable structures provide that mapping:

* :class:`~repro.seeding.lookup.WordLookupTable` — the flat, word-indexed
  table classic BLAST uses on the CPU;
* :class:`~repro.seeding.dfa.QueryDFA` — the deterministic finite automaton
  of Cameron et al. (Fig. 2a), whose small state table is what cuBLASTP
  pins in shared memory while the position lists ride the read-only cache.

Both are built from the same neighbourhood (:func:`build_neighborhood`) and
yield byte-identical hits; tests enforce this equivalence.
"""

from repro.seeding.dfa import QueryDFA
from repro.seeding.multi_query import MultiQueryIndex, TaggedHits
from repro.seeding.seg import masked_fraction, seg_mask, window_entropy
from repro.seeding.lookup import WordLookupTable
from repro.seeding.words import (
    DEFAULT_THRESHOLD,
    DEFAULT_WORD_LENGTH,
    Neighborhood,
    all_words,
    build_neighborhood,
    num_words,
    word_indices,
)

__all__ = [
    "DEFAULT_THRESHOLD",
    "DEFAULT_WORD_LENGTH",
    "MultiQueryIndex",
    "Neighborhood",
    "QueryDFA",
    "TaggedHits",
    "WordLookupTable",
    "all_words",
    "build_neighborhood",
    "masked_fraction",
    "num_words",
    "seg_mask",
    "window_entropy",
    "word_indices",
]
