"""Flat word-indexed lookup table (classic CPU BLAST seeding structure)."""

from __future__ import annotations

import numpy as np

from repro.matrices.blosum import ScoringMatrix
from repro.seeding.words import (
    DEFAULT_THRESHOLD,
    DEFAULT_WORD_LENGTH,
    Neighborhood,
    build_neighborhood,
    word_indices,
)


class WordLookupTable:
    """Word index -> query positions, via direct array indexing.

    This is the structure FSA-BLAST scans on the CPU: compute the word index
    of the subject window, then read the matching query positions. It wraps
    a :class:`~repro.seeding.words.Neighborhood` and adds the subject-side
    scan helper used by the reference hit-detection implementation.
    """

    def __init__(self, neighborhood: Neighborhood) -> None:
        self._nbr = neighborhood

    @classmethod
    def build(
        cls,
        query_codes: np.ndarray,
        matrix: ScoringMatrix,
        word_length: int = DEFAULT_WORD_LENGTH,
        threshold: int = DEFAULT_THRESHOLD,
    ) -> "WordLookupTable":
        """Build the table for a query under the given scoring system."""
        return cls(build_neighborhood(query_codes, matrix, word_length, threshold))

    @property
    def neighborhood(self) -> Neighborhood:
        return self._nbr

    @property
    def word_length(self) -> int:
        return self._nbr.word_length

    @property
    def query_length(self) -> int:
        return self._nbr.query_length

    def positions_for_word(self, word_index: int) -> np.ndarray:
        """Query positions matching one word."""
        return self._nbr.positions_for_word(word_index)

    def scan(self, subject_codes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Find every hit between the query and one subject sequence.

        Vectorised column-major scan: all subject windows are converted to
        word indices at once, and the CSR neighbourhood is gathered per
        window.

        Returns
        -------
        (query_pos, subject_pos):
            Two aligned ``int32``/``int64`` arrays; hit ``k`` pairs query
            position ``query_pos[k]`` with subject position
            ``subject_pos[k]``. Ordered column-major (by subject position,
            then query position), matching Fig. 3's hit-detection order.
        """
        nbr = self._nbr
        widx = word_indices(subject_codes, nbr.word_length)
        if widx.size == 0:
            return (np.zeros(0, dtype=np.int32), np.zeros(0, dtype=np.int64))
        starts = nbr.offsets[widx]
        counts = nbr.offsets[widx + 1] - starts
        total = int(counts.sum())
        if total == 0:
            return (np.zeros(0, dtype=np.int32), np.zeros(0, dtype=np.int64))
        # Expand the CSR slices: subject_pos repeats each window by its hit
        # count; query positions are gathered with a ragged-range trick.
        subject_pos = np.repeat(np.arange(widx.size, dtype=np.int64), counts)
        # ragged ranges: for each expanded element, its offset within its slice
        cum = np.cumsum(counts)
        within = np.arange(total, dtype=np.int64) - np.repeat(cum - counts, counts)
        query_pos = nbr.positions[np.repeat(starts, counts) + within]
        return (query_pos.astype(np.int32), subject_pos)
