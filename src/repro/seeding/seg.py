"""SEG low-complexity filtering (Wootton & Federhen, 1993).

Real protein searches mask low-complexity query regions (poly-A runs,
proline-rich stretches, coiled coils) before seeding: such regions pepper
the database with biologically meaningless hits that cost time in every
phase. NCBI BLASTP applies SEG to the query by default as *soft masking* —
masked positions are excluded from the lookup structure, but extensions
crossing them still score against the original residues.

This implementation follows SEG's trigger/extension structure on Shannon
entropy: a sliding window whose entropy falls below ``locut`` triggers,
and the masked region extends while neighbouring windows stay below
``hicut``. (The original uses K2 compositional complexity; window entropy
is the standard simplification and agrees on everything a synthetic
workload can contain.)
"""

from __future__ import annotations

import numpy as np

from repro.alphabet import ALPHABET_SIZE

#: SEG defaults for protein (window 12, locut 2.2, hicut 2.5 bits).
DEFAULT_WINDOW = 12
DEFAULT_LOCUT = 2.2
DEFAULT_HICUT = 2.5


def window_entropy(codes: np.ndarray, window: int = DEFAULT_WINDOW) -> np.ndarray:
    """Shannon entropy (bits) of every length-``window`` residue window.

    Returns an array of length ``len(codes) - window + 1`` (empty when the
    sequence is shorter than the window).
    """
    codes = np.asarray(codes, dtype=np.int64)
    n = codes.size - window + 1
    if n <= 0:
        return np.zeros(0, dtype=np.float64)
    # Sliding composition via cumulative one-hot counts: counts[i, a] =
    # occurrences of residue a in codes[i : i + window].
    onehot = np.zeros((codes.size + 1, ALPHABET_SIZE), dtype=np.int32)
    np.add.at(onehot, (np.arange(1, codes.size + 1), codes), 1)
    cum = np.cumsum(onehot, axis=0)
    counts = cum[window:] - cum[:-window]
    p = counts / window
    with np.errstate(divide="ignore", invalid="ignore"):
        terms = np.where(p > 0, -p * np.log2(p), 0.0)
    return terms.sum(axis=1)


def seg_mask(
    codes: np.ndarray,
    window: int = DEFAULT_WINDOW,
    locut: float = DEFAULT_LOCUT,
    hicut: float = DEFAULT_HICUT,
) -> np.ndarray:
    """Boolean mask of low-complexity residues.

    A window with entropy < ``locut`` triggers masking; the masked region
    extends over every overlapping window whose entropy stays < ``hicut``
    (SEG's two-threshold hysteresis). All residues covered by a qualifying
    window are masked.
    """
    if not locut <= hicut:
        raise ValueError("locut must not exceed hicut")
    codes = np.asarray(codes)
    mask = np.zeros(codes.size, dtype=bool)
    ent = window_entropy(codes, window)
    if ent.size == 0:
        return mask
    trigger = ent < locut
    if not trigger.any():
        return mask
    extendable = ent < hicut
    # Grow each trigger window left/right through extendable windows.
    covered = np.zeros(ent.size, dtype=bool)
    i = 0
    n = ent.size
    while i < n:
        if trigger[i] and not covered[i]:
            lo = i
            while lo > 0 and extendable[lo - 1]:
                lo -= 1
            hi = i
            while hi + 1 < n and extendable[hi + 1]:
                hi += 1
            covered[lo : hi + 1] = True
            i = hi + 1
        else:
            i += 1
    for w in np.nonzero(covered)[0]:
        mask[w : w + window] = True
    return mask


def masked_fraction(codes: np.ndarray, **kwargs) -> float:
    """Fraction of residues SEG masks (diagnostics and tests)."""
    codes = np.asarray(codes)
    if codes.size == 0:
        return 0.0
    return float(seg_mask(codes, **kwargs).mean())
