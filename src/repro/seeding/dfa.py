"""Deterministic finite automaton for hit detection (Cameron et al., Fig. 2a).

The DFA reads a subject sequence one residue at a time. Its state is the
last ``W - 1`` residues seen; on reading residue ``c`` in state ``s`` it
emits the word ``s · c`` and transitions to the state formed by dropping the
oldest residue. Emitting a word means handing back the query-position list
from the neighbourhood — the actual per-word work of hit detection.

The split the paper's hierarchical buffering exploits is explicit here:

* :attr:`QueryDFA.next_state` and :attr:`QueryDFA.word_of` — the *state
  tables*, small and fixed-size (``ALPHABET_SIZE**(W-1) x ALPHABET_SIZE``
  of ``uint16``/``int32``), pinned in simulated shared memory;
* :attr:`QueryDFA.offsets` / :attr:`QueryDFA.positions` — the *query
  position lists*, query-length dependent, placed in global memory and read
  through the simulated read-only cache (Fig. 10, Fig. 17).
"""

from __future__ import annotations

import numpy as np

from repro.alphabet import ALPHABET_SIZE
from repro.matrices.blosum import ScoringMatrix
from repro.seeding.words import (
    DEFAULT_THRESHOLD,
    DEFAULT_WORD_LENGTH,
    Neighborhood,
    build_neighborhood,
)


class QueryDFA:
    """DFA over subject residues emitting query-position lists per word."""

    def __init__(self, neighborhood: Neighborhood) -> None:
        self._nbr = neighborhood
        w = neighborhood.word_length
        n_states = ALPHABET_SIZE ** (w - 1)
        states = np.arange(n_states, dtype=np.int64)
        letters = np.arange(ALPHABET_SIZE, dtype=np.int64)
        # State encodes the last W-1 residues base-ALPHABET_SIZE, oldest in
        # the highest digit. Reading letter c: word = state*A + c, next
        # state = (state mod A^(W-2)) * A + c.
        tail = states % (ALPHABET_SIZE ** (w - 2)) if w >= 2 else states * 0
        self._next_state = (
            tail[:, None] * ALPHABET_SIZE + letters[None, :]
        ).astype(np.uint16)
        self._word_of = (
            states[:, None] * ALPHABET_SIZE + letters[None, :]
        ).astype(np.int32)

    @classmethod
    def build(
        cls,
        query_codes: np.ndarray,
        matrix: ScoringMatrix,
        word_length: int = DEFAULT_WORD_LENGTH,
        threshold: int = DEFAULT_THRESHOLD,
    ) -> "QueryDFA":
        """Build the DFA for a query under the given scoring system."""
        return cls(build_neighborhood(query_codes, matrix, word_length, threshold))

    # -- structure ---------------------------------------------------------

    @property
    def neighborhood(self) -> Neighborhood:
        return self._nbr

    @property
    def word_length(self) -> int:
        return self._nbr.word_length

    @property
    def num_states(self) -> int:
        return self._next_state.shape[0]

    @property
    def next_state(self) -> np.ndarray:
        """``uint16`` transition table ``(num_states, ALPHABET_SIZE)``."""
        return self._next_state

    @property
    def word_of(self) -> np.ndarray:
        """``int32`` emitted-word table ``(num_states, ALPHABET_SIZE)``."""
        return self._word_of

    @property
    def offsets(self) -> np.ndarray:
        """Per-word CSR offsets into :attr:`positions` (global memory side)."""
        return self._nbr.offsets

    @property
    def positions(self) -> np.ndarray:
        """Flattened query-position lists (global memory side)."""
        return self._nbr.positions

    @property
    def state_table_nbytes(self) -> int:
        """Shared-memory footprint of the state tables."""
        return int(self._next_state.nbytes + self._word_of.nbytes)

    @property
    def position_lists_nbytes(self) -> int:
        """Global-memory footprint of offsets + position lists."""
        return int(self._nbr.offsets.nbytes + self._nbr.positions.nbytes)

    # -- traversal ---------------------------------------------------------

    def initial_state(self, prefix_codes: np.ndarray) -> int:
        """State after reading the first ``W - 1`` residues."""
        w = self.word_length
        state = 0
        for c in np.asarray(prefix_codes[: w - 1], dtype=np.int64):
            state = state * ALPHABET_SIZE + int(c)
        return state

    def scan(self, subject_codes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Letter-by-letter DFA traversal of one subject sequence.

        Semantically identical to
        :meth:`repro.seeding.lookup.WordLookupTable.scan` (tests assert so);
        this path exists to model the DFA's memory behaviour faithfully and
        to serve as the reference for the GPU hit-detection kernel.

        Returns
        -------
        (query_pos, subject_pos):
            Hits in column-major order.
        """
        codes = np.asarray(subject_codes, dtype=np.int64)
        w = self.word_length
        if codes.size < w:
            return (np.zeros(0, dtype=np.int32), np.zeros(0, dtype=np.int64))
        qpos_parts: list[np.ndarray] = []
        spos_parts: list[np.ndarray] = []
        state = self.initial_state(codes)
        for j in range(w - 1, codes.size):
            c = int(codes[j])
            word = int(self._word_of[state, c])
            state = int(self._next_state[state, c])
            plist = self._nbr.positions_for_word(word)
            if plist.size:
                qpos_parts.append(plist)
                spos_parts.append(
                    np.full(plist.size, j - (w - 1), dtype=np.int64)
                )
        if not qpos_parts:
            return (np.zeros(0, dtype=np.int32), np.zeros(0, dtype=np.int64))
        return (
            np.concatenate(qpos_parts).astype(np.int32),
            np.concatenate(spos_parts),
        )
