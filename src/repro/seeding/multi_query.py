"""Merged multi-query seeding index: one word table for a whole batch.

Per-query search walks the database once per query; the batched sweep
(:mod:`repro.core.sweep`) inverts that by walking the database *once* and
asking, for every subject word, "which positions of which queries match?"
:class:`MultiQueryIndex` is the structure that answers it: the CSR
neighbourhoods of every compiled query in the batch, merged into one
word → ``[(query_id, query_pos)]`` table. Chorus-style multi-query hashed
seeding, restated over this repo's CSR neighbourhoods.

Semantics are pinned by construction: for each query, the hits produced
by :meth:`MultiQueryIndex.sweep_block` (after dropping the query tag) are
exactly the hits :func:`~repro.core.hit_detection.detect_hits` finds for
that query alone — same multiset, grouped per subject window in the same
(query-insertion, ascending query-position) order. The property suite
(``tests/property``) and the unit tests enforce the equivalence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.core.hits import HitArray
from repro.errors import ConfigError
from repro.io.database import SequenceDatabase
from repro.seeding.words import Neighborhood, num_words, word_indices

if TYPE_CHECKING:
    from repro.engine.compiled import CompiledQuery


@dataclass
class TaggedHits:
    """Query-tagged hits of one database block, structure-of-arrays.

    All arrays are aligned. ``seq_id`` / ``subject_pos`` are local to the
    swept block (the caller rebases through
    :meth:`~repro.io.database.SequenceDatabase.to_global`); ``query_id``
    indexes the batch the owning :class:`MultiQueryIndex` was built from.
    """

    query_id: np.ndarray
    seq_id: np.ndarray
    query_pos: np.ndarray
    subject_pos: np.ndarray
    #: ``int64`` array: hits per batch query (length ``num_queries``).
    per_query: np.ndarray

    def __len__(self) -> int:
        return int(self.seq_id.size)


class MultiQueryIndex:
    """One word → ``[(query_id, query_pos)]`` table for a query batch.

    Built by merging the per-query CSR neighbourhoods: entries of one word
    are grouped by query (batch order) with query positions ascending
    inside each group, so untagging a sweep recovers each query's own
    neighbourhood order. Every query must share one word length — mixed
    seeding geometries cannot share a sweep (:class:`ConfigError`).
    """

    def __init__(
        self,
        word_length: int,
        offsets: np.ndarray,
        positions: np.ndarray,
        query_ids: np.ndarray,
        query_lengths: Sequence[int],
    ) -> None:
        self.word_length = word_length
        self.offsets = offsets
        self.positions = positions
        self.query_ids = query_ids
        self.query_lengths = list(query_lengths)

    @property
    def num_queries(self) -> int:
        return len(self.query_lengths)

    @property
    def total_entries(self) -> int:
        """Total (word, query, position) entries across the batch."""
        return int(self.positions.size)

    @classmethod
    def build(cls, neighborhoods: Sequence[Neighborhood]) -> "MultiQueryIndex":
        """Merge per-query neighbourhoods into one batch table."""
        if not neighborhoods:
            raise ConfigError("a multi-query index needs at least one query")
        word_length = neighborhoods[0].word_length
        for nbr in neighborhoods:
            if nbr.word_length != word_length:
                raise ConfigError(
                    "all queries of a batch must share one word length "
                    f"(got W={word_length} and W={nbr.word_length})"
                )
        n_words = num_words(word_length)
        word_ids = np.arange(n_words, dtype=np.int64)
        # Per entry: its word, owning query, and query position — then one
        # stable sort by word merges the per-query CSR tables while keeping
        # (query order, ascending position) inside each word's slice.
        words = np.concatenate(
            [np.repeat(word_ids, np.diff(nbr.offsets)) for nbr in neighborhoods]
        )
        qids = np.concatenate(
            [
                np.full(nbr.total_entries, q, dtype=np.int32)
                for q, nbr in enumerate(neighborhoods)
            ]
        )
        positions = np.concatenate([nbr.positions for nbr in neighborhoods])
        order = np.argsort(words, kind="stable")
        counts = np.bincount(words, minlength=n_words)
        offsets = np.zeros(n_words + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        return cls(
            word_length=word_length,
            offsets=offsets,
            positions=positions[order],
            query_ids=qids[order],
            query_lengths=[nbr.query_length for nbr in neighborhoods],
        )

    @classmethod
    def from_compiled(cls, compiled: "Sequence[CompiledQuery]") -> "MultiQueryIndex":
        """Build from the batch's compiled queries (the usual entry point)."""
        return cls.build([c.lookup.neighborhood for c in compiled])

    def entries_for_word(self, word_index: int) -> tuple[np.ndarray, np.ndarray]:
        """``(query_ids, query_positions)`` whose neighbourhood has the word."""
        lo, hi = self.offsets[word_index], self.offsets[word_index + 1]
        return self.query_ids[lo:hi], self.positions[lo:hi]

    # -- the sweep ---------------------------------------------------------

    def sweep_block(self, db: SequenceDatabase) -> TaggedHits:
        """All hits of every batch query against one database block.

        The same vectorised pass as
        :func:`~repro.core.hit_detection.detect_hits` — word indices for
        all subject windows, one CSR gather, ragged expansion — except the
        gather also carries the query tag, so one walk of the block serves
        the entire batch.
        """
        w = self.word_length
        offsets = db.offsets
        codes = db.codes

        widx_all = word_indices(codes, w)
        if widx_all.size == 0:
            return self._empty()
        window_global = np.arange(widx_all.size, dtype=np.int64)
        # Sequence owning each window start; a window is valid when it
        # ends within the same sequence.
        owner = np.searchsorted(offsets, window_global, side="right") - 1
        valid = window_global + w <= offsets[owner + 1]
        widx = widx_all[valid]
        owner = owner[valid]
        local_pos = window_global[valid] - offsets[owner]

        starts = self.offsets[widx]
        counts = (self.offsets[widx + 1] - starts).astype(np.int64)
        total = int(counts.sum())
        if total == 0:
            return self._empty()

        # Ragged expansion of the CSR slices (the WordLookupTable.scan
        # trick), gathering query ids alongside query positions.
        seq_id = np.repeat(owner, counts)
        subject_pos = np.repeat(local_pos, counts)
        cum = np.cumsum(counts)
        within = np.arange(total, dtype=np.int64) - np.repeat(cum - counts, counts)
        entry = np.repeat(starts, counts) + within
        query_pos = self.positions[entry].astype(np.int64)
        query_id = self.query_ids[entry]
        per_query = np.bincount(query_id, minlength=self.num_queries).astype(np.int64)
        return TaggedHits(
            query_id=query_id,
            seq_id=seq_id,
            query_pos=query_pos,
            subject_pos=subject_pos,
            per_query=per_query,
        )

    def _empty(self) -> TaggedHits:
        return TaggedHits(
            query_id=np.zeros(0, dtype=np.int32),
            seq_id=np.zeros(0, dtype=np.int64),
            query_pos=np.zeros(0, dtype=np.int64),
            subject_pos=np.zeros(0, dtype=np.int64),
            per_query=np.zeros(self.num_queries, dtype=np.int64),
        )

    def untag(self, tagged: TaggedHits, query_index: int) -> HitArray:
        """One query's hits of a sweep, as a plain :class:`HitArray`.

        The returned hits are exactly what per-query hit detection finds
        for that query against the same block (same multiset; the
        conformance argument the batched pipeline rests on).
        """
        mask = tagged.query_id == query_index
        return HitArray(
            seq_id=tagged.seq_id[mask],
            query_pos=tagged.query_pos[mask],
            subject_pos=tagged.subject_pos[mask],
            query_length=self.query_lengths[query_index],
        )
