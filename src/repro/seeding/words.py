"""Word (W-mer) enumeration and query neighbourhoods.

A *word* is a length-``W`` window of residues (``W = 3`` for BLASTP). Words
are identified by their base-``ALPHABET_SIZE`` integer index, so a word list
is just an integer array and neighbourhood lookup is array indexing.

The *neighbourhood* of a query position ``p`` is the set of words ``w``
whose PSSM score against ``query[p : p+W]`` reaches the threshold ``T``
(BLASTP default 11). Hit detection then reports a hit ``(p, s)`` whenever
the subject word at position ``s`` lies in the neighbourhood of ``p``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.alphabet import ALPHABET_SIZE
from repro.errors import SequenceError
from repro.matrices.blosum import ScoringMatrix
from repro.matrices.pssm import build_pssm

#: BLASTP defaults: word length 3, neighbourhood threshold 11.
DEFAULT_WORD_LENGTH = 3
DEFAULT_THRESHOLD = 11


def num_words(word_length: int = DEFAULT_WORD_LENGTH) -> int:
    """Number of distinct words of the given length (``ALPHABET_SIZE ** W``)."""
    return ALPHABET_SIZE**word_length


def all_words(word_length: int = DEFAULT_WORD_LENGTH) -> np.ndarray:
    """Enumerate every word as residue codes.

    Returns
    -------
    numpy.ndarray
        ``uint8`` array of shape ``(num_words, word_length)``; row ``i`` is
        the code sequence of the word with index ``i``.
    """
    n = num_words(word_length)
    idx = np.arange(n, dtype=np.int64)
    cols = []
    for k in range(word_length):
        shift = ALPHABET_SIZE ** (word_length - 1 - k)
        cols.append((idx // shift) % ALPHABET_SIZE)
    return np.stack(cols, axis=1).astype(np.uint8)


def word_indices(codes: np.ndarray, word_length: int = DEFAULT_WORD_LENGTH) -> np.ndarray:
    """Word index of every length-``W`` window of a code sequence.

    Parameters
    ----------
    codes:
        ``uint8`` residue codes.
    word_length:
        Window size ``W``.

    Returns
    -------
    numpy.ndarray
        ``int64`` array of length ``len(codes) - W + 1`` (empty when the
        sequence is shorter than ``W``).
    """
    codes = np.asarray(codes, dtype=np.uint8)
    n = codes.size - word_length + 1
    if n <= 0:
        return np.zeros(0, dtype=np.int64)
    out = np.zeros(n, dtype=np.int64)
    for k in range(word_length):
        out *= ALPHABET_SIZE
        out += codes[k : k + n]
    return out


@dataclass(frozen=True)
class Neighborhood:
    """Inverted word -> query-position mapping in CSR form.

    For word index ``w``, the matching query positions are
    ``positions[offsets[w] : offsets[w + 1]]`` — sorted ascending, which the
    GPU hit-detection kernel relies on for deterministic binning order.

    Attributes
    ----------
    word_length:
        ``W``.
    threshold:
        Neighbourhood score threshold ``T``.
    offsets:
        ``int64`` array of length ``num_words + 1``.
    positions:
        ``int32`` array of query positions, grouped by word.
    query_length:
        Length of the query the neighbourhood was built from.
    """

    word_length: int
    threshold: int
    offsets: np.ndarray
    positions: np.ndarray
    query_length: int

    def positions_for_word(self, word_index: int) -> np.ndarray:
        """Query positions whose neighbourhood contains ``word_index``."""
        return self.positions[self.offsets[word_index] : self.offsets[word_index + 1]]

    @property
    def total_entries(self) -> int:
        """Total number of (word, position) pairs in the neighbourhood."""
        return int(self.positions.size)

    @property
    def max_positions_per_word(self) -> int:
        """Largest position list over all words (bin sizing uses this)."""
        if self.positions.size == 0:
            return 0
        return int(np.diff(self.offsets).max())


def build_neighborhood(
    query_codes: np.ndarray,
    matrix: ScoringMatrix,
    word_length: int = DEFAULT_WORD_LENGTH,
    threshold: int = DEFAULT_THRESHOLD,
    masked: np.ndarray | None = None,
) -> Neighborhood:
    """Build the neighbourhood of every query position.

    The full ``num_words x num_positions`` score table is computed in one
    vectorised pass (a few tens of MB for the longest paper query), then
    thresholded and inverted into CSR form.

    Parameters
    ----------
    masked:
        Optional boolean low-complexity mask over query residues (SEG,
        soft masking): positions whose word overlaps a masked residue are
        excluded from the neighbourhood — no seeding there — while
        extension scoring (the PSSM) keeps the original residues.

    Raises
    ------
    SequenceError
        When the query is shorter than the word length.
    """
    query_codes = np.asarray(query_codes, dtype=np.uint8)
    qlen = query_codes.size
    n_pos = qlen - word_length + 1
    if n_pos <= 0:
        raise SequenceError(f"query of length {qlen} is shorter than W={word_length}")
    pssm = build_pssm(query_codes, matrix)
    words = all_words(word_length)
    # scores[w, p] = sum_k pssm[words[w, k], p + k]
    scores = np.zeros((words.shape[0], n_pos), dtype=np.int32)
    for k in range(word_length):
        scores += pssm[words[:, k], k : k + n_pos].astype(np.int32)
    if masked is not None:
        masked = np.asarray(masked, dtype=bool)
        if masked.size != qlen:
            raise SequenceError("mask length must equal query length")
        bad = np.zeros(n_pos, dtype=bool)
        for k in range(word_length):
            bad |= masked[k : k + n_pos]
        scores[:, bad] = np.iinfo(np.int32).min
    word_ids, pos = np.nonzero(scores >= threshold)
    counts = np.bincount(word_ids, minlength=words.shape[0])
    offsets = np.zeros(words.shape[0] + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    # np.nonzero returns row-major order: grouped by word, positions ascending.
    return Neighborhood(
        word_length=word_length,
        threshold=threshold,
        offsets=offsets,
        positions=pos.astype(np.int32),
        query_length=qlen,
    )
