"""Device specification: the hardware constants of the simulated GPU.

Defaults model the NVIDIA Tesla K20c (Kepler GK110) the paper evaluates on.
Where a constant feeds the timing model rather than the functional model it
is documented with its derivation, so the model is auditable end-to-end.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DeviceSpec:
    """Simulated device parameters.

    Functional parameters
    ---------------------
    ``warp_size``, ``shared_mem_per_sm``, ``readonly_cache_bytes``,
    ``cache_line_bytes``, ``shared_banks``, ``max_threads_per_sm``,
    ``max_blocks_per_sm``, ``registers_per_sm`` shape what kernels may do
    and the occupancy calculation.

    Timing parameters
    -----------------
    ``clock_ghz`` converts cycles to time. ``global_tx_cycles`` is the
    amortised issue cost of one 128-byte global transaction per SM, derived
    from bandwidth: the K20c sustains ~208 GB/s over 13 SMs at 0.706 GHz,
    i.e. ~22.7 bytes/cycle/SM, so a 128-byte transaction occupies the
    memory path for ~5.6 cycles — rounded to 6. ``readonly_hit_cycles``
    and ``shared_cycles`` are per-access issue costs; ``atomic_cycles`` is
    the per-serialised-update cost of a shared-memory atomic.
    """

    name: str = "Tesla K20c (simulated)"
    num_sms: int = 13
    warp_size: int = 32
    warp_schedulers_per_sm: int = 4
    clock_ghz: float = 0.706
    mem_bandwidth_gbps: float = 208.0
    shared_mem_per_sm: int = 48 * 1024
    readonly_cache_bytes: int = 48 * 1024
    cache_line_bytes: int = 128
    shared_banks: int = 32
    shared_bank_bytes: int = 4
    max_threads_per_sm: int = 2048
    max_blocks_per_sm: int = 16
    max_threads_per_block: int = 1024
    registers_per_sm: int = 65536
    global_tx_cycles: int = 6
    readonly_hit_cycles: int = 1
    shared_cycles: int = 1
    atomic_cycles: int = 4
    #: Per-update cost of a *global* atomic: on Kepler these round-trip
    #: through L2 and serialise device-wide on hot addresses, costing an
    #: order of magnitude more than shared-memory atomics.
    global_atomic_cycles: int = 48
    #: L2 cache capacity (K20c: 1.25 MB) and the per-line hit cost used
    #: when the optional L2 model is enabled (see KernelContext.use_l2).
    l2_bytes: int = 1280 * 1024
    l2_hit_cycles: int = 2
    device_memory_bytes: int = 5 * 1024**3

    def cycles_to_ms(self, cycles: float) -> float:
        """Convert issue cycles to milliseconds at the device clock."""
        return cycles / (self.clock_ghz * 1e9) * 1e3


#: The paper's evaluation GPU.
K20C = DeviceSpec()
