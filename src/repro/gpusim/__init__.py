"""A functional SIMT GPU simulator with a cycle-level cost model.

This package is the paper's "NVIDIA Kepler K20c" substitute (DESIGN.md §2).
Kernels are written against a :class:`~repro.gpusim.warp.Warp` API — 32-lane
numpy vectors with an explicit divergence mask stack — and executed warp by
warp. The simulator derives, from the kernel's *actual behaviour on actual
data*:

* issue cycles (divergent branches execute both paths, so serialisation
  cost emerges rather than being estimated);
* global-memory transactions via 128-byte coalescing analysis, and the
  load efficiency NVIDIA's profiler would report;
* read-only-cache hits/misses (48-kB LRU over 128-byte lines);
* shared-memory bank conflicts (32 four-byte banks);
* atomic serialisation;
* occupancy, from the same register/shared-memory/block arithmetic as the
  CUDA occupancy calculator.

Elapsed time is modelled, not measured: see
:meth:`~repro.gpusim.profiler.KernelProfile.elapsed_ms` for the formula and
:class:`~repro.gpusim.device.DeviceSpec` for the K20c constants.
"""

from repro.gpusim.device import K20C, DeviceSpec
from repro.gpusim.kernel import Kernel, KernelContext, launch
from repro.gpusim.memory import GlobalBuffer, MemorySpace
from repro.gpusim.cache import ReadOnlyCache
from repro.gpusim.occupancy import OccupancyResult, occupancy
from repro.gpusim.profiler import KernelProfile
from repro.gpusim.sanitizer import Sanitizer, SanitizerReport
from repro.gpusim.shared import SharedMemory
from repro.gpusim.transfer import TransferModel
from repro.gpusim.warp import Warp

__all__ = [
    "K20C",
    "DeviceSpec",
    "GlobalBuffer",
    "Kernel",
    "KernelContext",
    "KernelProfile",
    "MemorySpace",
    "OccupancyResult",
    "ReadOnlyCache",
    "Sanitizer",
    "SanitizerReport",
    "SharedMemory",
    "TransferModel",
    "Warp",
    "launch",
    "occupancy",
]
