"""Memory sanitizer for the lane-level simulator (racecheck + initcheck).

``compute-sanitizer`` for the real cuBLASTP kernels is the tool that
keeps "no synchronisation needed" claims honest; this module is its
analogue for the simulator. Opt in with ``KernelContext(sanitize=True)``
and every :class:`~repro.gpusim.warp.Warp` memory instruction records the
active lanes' element indices per warp. At block/launch boundaries the
recorded sets are analysed:

racecheck
    The simulator *serialises* warps, so a cross-warp data race can never
    corrupt a result here — but the same kernel on hardware would be
    broken. The check therefore flags **semantic** races: two different
    warps touching the same shared-memory cell where at least one access
    is a non-atomic write (write-write and read-write hazards; atomics
    pair safely with atomics). There is no ``__syncthreads`` in the
    kernel model — ``setup_block`` runs before any warp, which is the
    only ordered point — so *any* cross-warp overlap inside ``run_warp``
    is a hazard. Global memory gets the write-write half of the check
    (cross-launch reuse is ordered by launch boundaries and in-launch
    read-after-atomic idioms are legitimate, so global reads are not
    tracked).

initcheck
    ``SharedMemory.alloc`` is *raw* storage — the functional zeros it
    hands out model a convenient simulator, not the hardware contract.
    Reading (or atomically updating, which reads the old value) a cell no
    warp has written and no ``alloc_from``/``fill`` initialised is
    flagged. Global buffers are always initialised at allocation
    (``DeviceMemory.alloc`` copies data in), so initcheck is a
    shared-memory concern.

boundscheck
    Out-of-region lane indices raise immediately as
    :class:`~repro.errors.SanitizerError` with the offending stride —
    same condition the engine already hard-errors on, but typed and
    reported with per-warp context.

Hazards are aggregated per (region, hazard kind) with a sample cell and
an occurrence count, so a racy loop produces one report, not thousands.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SanitizerError

#: Sentinel warp id for "no warp has accessed this cell yet".
_NOBODY = -1


@dataclass(frozen=True)
class SanitizerReport:
    """One aggregated sanitizer diagnostic."""

    check: str  #: ``racecheck`` | ``initcheck`` | ``boundscheck``
    space: str  #: ``shared`` | ``global``
    region: str  #: shared region or global buffer name
    kernel: str
    hazard: str  #: e.g. ``write-write``, ``uninitialized-read``
    count: int  #: cells involved
    sample_index: int  #: one offending element index
    sample_warps: tuple[int, int]  #: two warps involved at the sample
    block_id: int | None = None  #: block (shared hazards only)

    def __str__(self) -> str:
        where = f"{self.space} {self.region!r}"
        if self.block_id is not None:
            where += f" (block {self.block_id})"
        w0, w1 = self.sample_warps
        warps = f"warp {w0}" if w1 == _NOBODY else f"warps {w0} and {w1}"
        return (
            f"{self.check}: {self.hazard} on {where} in kernel "
            f"{self.kernel!r}: {self.count} cell(s), e.g. index "
            f"{self.sample_index} by {warps}"
        )


class _RegionState:
    """Streaming access state for one region (or global buffer)."""

    __slots__ = ("size", "last_writer", "last_atomic", "last_reader", "multi_reader", "init")

    def __init__(self, size: int, initialized: bool, track_reads: bool) -> None:
        self.size = size
        self.last_writer = np.full(size, _NOBODY, dtype=np.int64)
        self.last_atomic = np.full(size, _NOBODY, dtype=np.int64)
        if track_reads:
            self.last_reader = np.full(size, _NOBODY, dtype=np.int64)
            self.multi_reader = np.zeros(size, dtype=bool)
            self.init = np.full(size, initialized, dtype=bool)
        else:
            self.last_reader = None
            self.multi_reader = None
            self.init = None


@dataclass
class _Hazard:
    """Aggregation bucket: one (region, kind) pair across a block/launch."""

    count: int = 0
    sample_index: int = _NOBODY
    sample_warps: tuple[int, int] = (_NOBODY, _NOBODY)

    def add(self, indices: np.ndarray, warp: int, others: np.ndarray) -> None:
        if indices.size == 0:
            return
        if self.count == 0:
            self.sample_index = int(indices[0])
            self.sample_warps = (warp, int(others[0]))
        self.count += int(indices.size)


class Sanitizer:
    """Per-context access recorder + hazard analyser.

    One instance lives on a :class:`~repro.gpusim.kernel.KernelContext`
    for its whole lifetime; reports accumulate across launches until
    :meth:`raise_if_dirty` or :meth:`reset`.
    """

    def __init__(self) -> None:
        self.reports: list[SanitizerReport] = []
        self._shared: dict[str, _RegionState] = {}
        self._global: dict[str, _RegionState] = {}
        #: (space, region, hazard) -> aggregation bucket for the open
        #: block (shared) / launch (global).
        self._pending: dict[tuple[str, str, str], _Hazard] = {}

    # -- region lifecycle (SharedMemory hooks) ------------------------------

    def on_shared_alloc(self, name: str, size: int, initialized: bool) -> None:
        self._shared[name] = _RegionState(size, initialized, track_reads=True)

    def on_shared_fill(self, name: str) -> None:
        state = self._shared.get(name)
        if state is not None and state.init is not None:
            state.init[:] = True

    # -- access recording (Warp hooks; indices are active lanes only) -------

    def shared_read(self, name: str, warp_id: int, idx: np.ndarray) -> None:
        state = self._require(self._shared, name, "shared")
        cells = self._cells(state, "shared", name, warp_id, idx)
        self._check_uninit(state, name, warp_id, cells)
        # Read-after-write from another warp.
        w = state.last_writer[cells]
        self._hazard(
            "shared", name, "read-write",
            cells[(w != _NOBODY) & (w != warp_id)], warp_id, w[(w != _NOBODY) & (w != warp_id)],
        )
        a = state.last_atomic[cells]
        self._hazard(
            "shared", name, "atomic-read",
            cells[(a != _NOBODY) & (a != warp_id)], warp_id, a[(a != _NOBODY) & (a != warp_id)],
        )
        state.multi_reader[cells] |= (state.last_reader[cells] != _NOBODY) & (
            state.last_reader[cells] != warp_id
        )
        state.last_reader[cells] = warp_id

    def shared_write(self, name: str, warp_id: int, idx: np.ndarray) -> None:
        state = self._require(self._shared, name, "shared")
        cells = self._cells(state, "shared", name, warp_id, idx)
        self._record_write("shared", name, state, warp_id, cells, atomic=False)

    def shared_atomic(self, name: str, warp_id: int, idx: np.ndarray) -> None:
        state = self._require(self._shared, name, "shared")
        cells = self._cells(state, "shared", name, warp_id, idx)
        # An atomic RMW reads the old value: uninitialised cells count.
        self._check_uninit(state, name, warp_id, cells)
        self._record_write("shared", name, state, warp_id, cells, atomic=True)

    def global_read(self, name: str, size: int, warp_id: int, idx: np.ndarray) -> None:
        state = self._global_state(name, size)
        self._cells(state, "global", name, warp_id, idx)  # bounds only

    def global_write(self, name: str, size: int, warp_id: int, idx: np.ndarray) -> None:
        state = self._global_state(name, size)
        cells = self._cells(state, "global", name, warp_id, idx)
        self._record_write("global", name, state, warp_id, cells, atomic=False)

    def global_atomic(self, name: str, size: int, warp_id: int, idx: np.ndarray) -> None:
        state = self._global_state(name, size)
        cells = self._cells(state, "global", name, warp_id, idx)
        self._record_write("global", name, state, warp_id, cells, atomic=True)

    # -- launch boundaries (launcher hooks) ---------------------------------

    def finish_block(self, kernel: str, block_id: int) -> None:
        """Close one block: emit its shared hazards, drop shared state."""
        self._flush("shared", kernel, block_id)
        self._shared.clear()

    def finish_launch(self, kernel: str) -> None:
        """Close one launch: emit global hazards, drop global state."""
        self._flush("global", kernel, None)
        self._global.clear()

    def raise_if_dirty(self) -> None:
        """Raise :class:`SanitizerError` when any report accumulated."""
        if self.reports:
            lines = "\n".join(f"  {r}" for r in self.reports)
            raise SanitizerError(
                f"sanitizer: {len(self.reports)} report(s):\n{lines}"
            )

    def reset(self) -> None:
        self.reports.clear()
        self._shared.clear()
        self._global.clear()
        self._pending.clear()

    # -- internals -----------------------------------------------------------

    @staticmethod
    def _require(table: dict[str, _RegionState], name: str, space: str) -> _RegionState:
        state = table.get(name)
        if state is None:
            raise SanitizerError(f"sanitizer: access to unregistered {space} region {name!r}")
        return state

    def _global_state(self, name: str, size: int) -> _RegionState:
        state = self._global.get(name)
        if state is None or state.size != size:
            # Global buffers are initialised at allocation; reads untracked.
            state = _RegionState(size, initialized=True, track_reads=False)
            self._global[name] = state
        return state

    def _cells(
        self, state: _RegionState, space: str, name: str, warp_id: int, idx: np.ndarray
    ) -> np.ndarray:
        cells = np.unique(np.asarray(idx, dtype=np.int64))
        if cells.size and (int(cells[0]) < 0 or int(cells[-1]) >= state.size):
            bad = int(cells[-1]) if int(cells[-1]) >= state.size else int(cells[0])
            report = SanitizerReport(
                check="boundscheck",
                space=space,
                region=name,
                kernel="<in flight>",
                hazard="out-of-region-stride",
                count=1,
                sample_index=bad,
                sample_warps=(warp_id, _NOBODY),
            )
            self.reports.append(report)
            raise SanitizerError(f"sanitizer: {report}")
        return cells

    def _check_uninit(
        self, state: _RegionState, name: str, warp_id: int, cells: np.ndarray
    ) -> None:
        if state.init is None:
            return
        cold = cells[~state.init[cells]]
        self._hazard(
            "shared", name, "uninitialized-read",
            cold, warp_id, np.full(cold.size, _NOBODY, dtype=np.int64),
        )

    def _record_write(
        self,
        space: str,
        name: str,
        state: _RegionState,
        warp_id: int,
        cells: np.ndarray,
        atomic: bool,
    ) -> None:
        w = state.last_writer[cells]
        other_w = (w != _NOBODY) & (w != warp_id)
        self._hazard(space, name, "write-write", cells[other_w], warp_id, w[other_w])
        a = state.last_atomic[cells]
        other_a = (a != _NOBODY) & (a != warp_id)
        if not atomic:
            # Plain write over another warp's atomic territory.
            self._hazard(space, name, "write-write", cells[other_a], warp_id, a[other_a])
        if state.last_reader is not None:
            r = state.last_reader[cells]
            other_r = (r != _NOBODY) & ((r != warp_id) | state.multi_reader[cells])
            self._hazard(space, name, "read-write", cells[other_r], warp_id, r[other_r])
        if atomic:
            state.last_atomic[cells] = warp_id
        else:
            state.last_writer[cells] = warp_id
        if state.init is not None:
            state.init[cells] = True

    def _hazard(
        self, space: str, region: str, kind: str,
        indices: np.ndarray, warp: int, others: np.ndarray,
    ) -> None:
        if indices.size == 0:
            return
        key = (space, region, kind)
        bucket = self._pending.get(key)
        if bucket is None:
            bucket = self._pending[key] = _Hazard()
        bucket.add(indices, warp, others)

    def _flush(self, space: str, kernel: str, block_id: int | None) -> None:
        check = {
            "write-write": "racecheck",
            "read-write": "racecheck",
            "atomic-read": "racecheck",
            "uninitialized-read": "initcheck",
        }
        for (sp, region, kind), bucket in sorted(self._pending.items()):
            if sp != space:
                continue
            self.reports.append(
                SanitizerReport(
                    check=check[kind],
                    space=sp,
                    region=region,
                    kernel=kernel,
                    hazard=kind,
                    count=bucket.count,
                    sample_index=bucket.sample_index,
                    sample_warps=bucket.sample_warps,
                    block_id=block_id,
                )
            )
        self._pending = {k: v for k, v in self._pending.items() if k[0] != space}
