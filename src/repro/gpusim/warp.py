"""The warp execution engine: 32 lanes, a divergence mask stack, counters.

Kernels in this repo are written *per warp*: lane-local values are numpy
arrays of shape ``(32,)`` and control flow that would diverge on hardware
is expressed through :meth:`Warp.where` (predicated blocks) and
:meth:`Warp.loop_while` (divergent loops). The engine executes exactly what
a SIMT machine would: a divergent branch runs both paths with complementary
masks, so its serialisation cost lands in the cycle counters without any
estimation.

Cost convention
---------------
Every call below that represents a device instruction charges at least one
issue slot and records the active lane count. Pure numpy arithmetic on lane
arrays between calls is *not* automatically charged; kernels follow the
documented convention of calling :meth:`Warp.alu` once per pseudo-code
statement they execute, keeping instruction counts comparable across the
implementations being benchmarked (all kernels in this repo are written at
the same granularity — that uniformity, not absolute instruction fidelity,
is what the paper's relative claims need).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Callable, Iterator

import numpy as np

from repro.errors import GpuSimError
from repro.gpusim.cache import ReadOnlyCache
from repro.gpusim.device import DeviceSpec
from repro.gpusim.memory import GlobalBuffer, MemorySpace, coalesce_transactions
from repro.gpusim.profiler import KernelProfile
from repro.gpusim.shared import SharedMemory

if TYPE_CHECKING:
    from repro.gpusim.sanitizer import Sanitizer


def _as_lanes(value: Any, n: int) -> np.ndarray:
    """Lane-shape a value: scalars fan out, (n,) arrays pass through."""
    arr = np.asarray(value)
    if arr.ndim == 0:
        return np.full(n, arr.item(), dtype=arr.dtype if arr.dtype != object else None)
    return arr

#: Hard iteration ceiling for divergent loops: generous for real kernels,
#: small enough to catch accidental infinite loops quickly.
_LOOP_LIMIT = 1_000_000


class Warp:
    """One warp's execution context.

    Parameters
    ----------
    device, profile, shared, cache:
        Engine plumbing: hardware constants, the accumulating profile, the
        block's shared memory, and the (possibly disabled) read-only cache.
    warp_id:
        Global warp index (``blockIdx * warpsPerBlock + warpInBlock``).
    num_warps:
        Total warps in the grid — the stride of grid-stride loops.
    use_readonly_cache:
        When ``False``, READONLY buffers take the plain global path
        (Fig. 17's ablation).
    """

    def __init__(
        self,
        device: DeviceSpec,
        profile: KernelProfile,
        shared: SharedMemory,
        cache: ReadOnlyCache,
        warp_id: int,
        num_warps: int,
        use_readonly_cache: bool = True,
        l2: "ReadOnlyCache | None" = None,
        sanitizer: Sanitizer | None = None,
    ) -> None:
        self.device = device
        self.profile = profile
        self.shared = shared
        self.cache = cache
        self.warp_id = warp_id
        self.num_warps = num_warps
        self.use_readonly_cache = use_readonly_cache
        #: Optional L2 model (None = default timing, misses cost full
        #: transactions; see gpusim.cache.make_l2_cache).
        self.l2 = l2
        #: Optional memory sanitizer (``KernelContext(sanitize=True)``);
        #: every load/store/atomic below reports its active-lane element
        #: indices to it before touching the backing array.
        self.sanitizer = sanitizer
        self.lane_id = np.arange(device.warp_size, dtype=np.int64)
        self._mask_stack: list[np.ndarray] = [
            np.ones(device.warp_size, dtype=bool)
        ]
        self._count_stack: list[int] = [device.warp_size]

    # -- masks and control flow --------------------------------------------

    @property
    def active(self) -> np.ndarray:
        """Current active-lane mask (top of the divergence stack)."""
        return self._mask_stack[-1]

    def any_active(self) -> bool:
        return bool(self.active.any())

    def _charge(self, cycles: int = 1) -> None:
        self.profile.instructions += 1
        self.profile.active_lane_slots += self._count_stack[-1]
        self.profile.issue_cycles += cycles

    def alu(self, n: int = 1) -> None:
        """Charge ``n`` ALU warp instructions at the current mask."""
        for _ in range(n):
            self._charge(1)

    @contextmanager
    def where(self, cond: np.ndarray) -> Iterator[None]:
        """Execute a block with lanes masked by ``cond``.

        Counts a divergent branch when only part of the currently active
        lanes take the block. An if/else pair is written as two ``where``
        blocks with complementary conditions — both paths issue
        instructions, exactly like SIMT serialisation.
        """
        cond = np.asarray(cond, dtype=bool) & self.active
        n_cond = int(cond.sum())
        self._charge(1)  # the predicate evaluation / branch instruction
        if 0 < n_cond < self._count_stack[-1]:
            self.profile.divergent_branches += 1
        self._mask_stack.append(cond)
        self._count_stack.append(n_cond)
        try:
            yield
        finally:
            self._mask_stack.pop()
            self._count_stack.pop()

    def loop_while(self, cond_fn: Callable[[], np.ndarray]) -> Iterator[int]:
        """Divergent loop: iterate while any active lane's condition holds.

        Lanes whose condition is false are masked off but the warp keeps
        issuing until every lane finishes — the load-imbalance effect the
        paper's Fig. 4 illustrates. Yields the iteration index.
        """
        iteration = 0
        while True:
            cond = np.asarray(cond_fn(), dtype=bool) & self.active
            self._charge(1)  # condition evaluation
            n_cond = int(cond.sum())
            if n_cond == 0:
                return
            if n_cond < self._count_stack[-1]:
                self.profile.divergent_branches += 1
            self._mask_stack.append(cond)
            self._count_stack.append(n_cond)
            try:
                yield iteration
            finally:
                self._mask_stack.pop()
                self._count_stack.pop()
            iteration += 1
            if iteration > _LOOP_LIMIT:  # pragma: no cover - debugging aid
                raise GpuSimError("divergent loop exceeded iteration limit")

    # -- global memory -------------------------------------------------------

    def load(self, buf: GlobalBuffer, idx: np.ndarray, fill: int = 0) -> np.ndarray:
        """Gather ``buf[idx]`` for active lanes (inactive lanes get ``fill``).

        Charges coalescing-derived transaction cycles, or read-only-cache
        probe cycles for READONLY buffers when the cache is enabled.
        """
        idx = _as_lanes(idx, self.device.warp_size).astype(np.int64, copy=False)
        act = self.active
        n_active = self._count_stack[-1]
        cost = 1
        if n_active == self.device.warp_size:
            ai = idx
        else:
            ai = idx[act]
        if n_active and self.sanitizer is not None:
            self.sanitizer.global_read(buf.name, buf.data.size, self.warp_id, ai)
        if n_active == self.device.warp_size:
            buf.check_bounds(idx)
            out = buf.data[idx]
            addrs = buf.byte_addresses(ai)
        elif n_active:
            buf.check_bounds(ai)
            out = np.full(self.device.warp_size, fill, dtype=buf.data.dtype)
            out[act] = buf.data[ai]
            addrs = buf.byte_addresses(ai)
        else:
            out = np.full(self.device.warp_size, fill, dtype=buf.data.dtype)
        if n_active:
            if buf.space is MemorySpace.READONLY and self.use_readonly_cache:
                first = addrs // self.device.cache_line_bytes
                last = (addrs + buf.itemsize - 1) // self.device.cache_line_bytes
                lines = set(first.tolist()) | set(last.tolist())
                hits, misses = self.cache.access_lines(lines)
                self.profile.readonly_hits += hits
                self.profile.readonly_misses += misses
                cost += hits * self.device.readonly_hit_cycles
                cost += misses * self.device.global_tx_cycles
            else:
                tx = coalesce_transactions(addrs, buf.itemsize, self.device.cache_line_bytes)
                req = n_active * buf.itemsize
                self.profile.global_transactions += tx
                self.profile.global_requested_bytes += req
                self.profile.global_load_transactions += tx
                self.profile.global_load_requested_bytes += req
                cost += self._global_cost(addrs, buf.itemsize, tx)
        self._charge(cost)
        return out

    def _global_cost(self, addrs: np.ndarray, itemsize: int, tx: int) -> int:
        """Cycle cost of a global access: full transactions, or L2-probed
        when the optional L2 model is enabled."""
        if self.l2 is None:
            return tx * self.device.global_tx_cycles
        line = self.device.cache_line_bytes
        first = addrs // line
        last = (addrs + itemsize - 1) // line
        lines = set(first.tolist()) | set(last.tolist())
        hits, misses = self.l2.access_lines(lines)
        return hits * self.device.l2_hit_cycles + misses * self.device.global_tx_cycles

    def load_span(self, buf: GlobalBuffer, start: int, count: int) -> np.ndarray:
        """Warp-cooperative load of ``count`` consecutive elements.

        Models the standard tiling idiom (each lane loads a wide-word slice
        of a contiguous tile, values then exchanged through registers or
        shuffles): the whole span is fetched in one instruction at full
        coalescing. Returns the span's values; subsequent per-lane reads of
        the returned tile are register traffic and should be charged as ALU
        by the caller.
        """
        if count <= 0:
            return np.zeros(0, dtype=buf.data.dtype)
        idx = np.arange(start, start + count, dtype=np.int64)
        if self.sanitizer is not None:
            self.sanitizer.global_read(buf.name, buf.data.size, self.warp_id, idx)
        buf.check_bounds(idx)
        addrs = buf.byte_addresses(idx[[0, -1]])
        first = addrs[0] // self.device.cache_line_bytes
        last = (addrs[1] + buf.itemsize - 1) // self.device.cache_line_bytes
        tx = int(last - first + 1)
        req = count * buf.itemsize
        self.profile.global_transactions += tx
        self.profile.global_requested_bytes += req
        self.profile.global_load_transactions += tx
        self.profile.global_load_requested_bytes += req
        self._charge(1 + tx * self.device.global_tx_cycles)
        return buf.data[idx].copy()

    def store(self, buf: GlobalBuffer, idx: np.ndarray, values: np.ndarray) -> None:
        """Scatter ``values`` to ``buf[idx]`` for active lanes.

        Lanes writing the same address resolve in ascending lane order
        (last writer wins), which is a *defined* outcome rather than
        hardware's undefined one — determinism matters more to this
        simulator than modelling a race.
        """
        if buf.space is MemorySpace.READONLY:
            raise GpuSimError(f"store to read-only buffer {buf.name!r}")
        idx = _as_lanes(idx, self.device.warp_size).astype(np.int64, copy=False)
        values = _as_lanes(values, self.device.warp_size)
        act = self.active
        n_active = int(act.sum())
        cost = 1
        if n_active:
            ai = idx[act]
            if self.sanitizer is not None:
                self.sanitizer.global_write(buf.name, buf.data.size, self.warp_id, ai)
            buf.check_bounds(ai)
            buf.data[ai] = values[act].astype(buf.data.dtype)
            addrs = buf.byte_addresses(ai)
            tx = coalesce_transactions(addrs, buf.itemsize, self.device.cache_line_bytes)
            req = n_active * buf.itemsize
            self.profile.global_transactions += tx
            self.profile.global_requested_bytes += req
            self.profile.global_store_transactions += tx
            self.profile.global_store_requested_bytes += req
            cost += self._global_cost(addrs, buf.itemsize, tx)
        self._charge(cost)

    def atomic_add_global(self, buf: GlobalBuffer, idx: np.ndarray, values: np.ndarray) -> np.ndarray:
        """Global-memory atomicAdd; returns the pre-add values per lane.

        Charged at :attr:`DeviceSpec.global_atomic_cycles` per same-address
        pile-up — global atomics round-trip through L2, which is why
        GPU-BLASTP's two-level output buffering (one atomic per sequence
        instead of per extension) pays off.
        """
        return self._atomic_add(buf.data, idx, values, self.device.global_atomic_cycles, buf)

    # -- shared memory -------------------------------------------------------

    def load_shared(self, name: str, idx: np.ndarray, fill: int = 0) -> np.ndarray:
        """Gather from a shared region with bank-conflict charging."""
        region = self.shared.region(name)
        idx = _as_lanes(idx, self.device.warp_size).astype(np.int64, copy=False)
        act = self.active
        out = np.full(self.device.warp_size, fill, dtype=region.dtype)
        cost = self.device.shared_cycles
        if act.any():
            if self.sanitizer is not None:
                self.sanitizer.shared_read(name, self.warp_id, idx[act])
            self._check_shared_bounds(name, idx[act])
            out[act] = region[idx[act]]
            conflicts = self.shared.conflict_cycles(name, idx[act])
            self.profile.shared_conflict_cycles += conflicts
            cost += conflicts
        self.profile.shared_accesses += 1
        self._charge(cost)
        return out

    def store_shared(self, name: str, idx: np.ndarray, values: np.ndarray) -> None:
        """Scatter to a shared region (ascending-lane-order resolution)."""
        region = self.shared.region(name)
        idx = _as_lanes(idx, self.device.warp_size).astype(np.int64, copy=False)
        values = _as_lanes(values, self.device.warp_size)
        act = self.active
        cost = self.device.shared_cycles
        if act.any():
            if self.sanitizer is not None:
                self.sanitizer.shared_write(name, self.warp_id, idx[act])
            self._check_shared_bounds(name, idx[act])
            region[idx[act]] = values[act].astype(region.dtype)
            conflicts = self.shared.conflict_cycles(name, idx[act])
            self.profile.shared_conflict_cycles += conflicts
            cost += conflicts
        self.profile.shared_accesses += 1
        self._charge(cost)

    def atomic_add_shared(self, name: str, idx: np.ndarray, values: np.ndarray) -> np.ndarray:
        """Shared-memory atomicAdd; returns pre-add values per lane.

        Same-address updates serialise; the charge is ``atomic_cycles`` per
        deepest same-address pile-up, matching how shared atomics replay.
        """
        region = self.shared.region(name)
        return self._atomic_add(region, idx, values, self.device.atomic_cycles, None, name)

    def _check_shared_bounds(self, name: str, idx: np.ndarray) -> None:
        region = self.shared.region(name)
        if idx.size and (int(idx.min()) < 0 or int(idx.max()) >= region.size):
            raise GpuSimError(
                f"shared region {name!r}: index out of bounds "
                f"[{int(idx.min())}, {int(idx.max())}] vs size {region.size}"
            )

    def _atomic_add(
        self,
        target: np.ndarray,
        idx: np.ndarray,
        values: np.ndarray,
        unit_cycles: int,
        buf: GlobalBuffer | None,
        shared_name: str | None = None,
    ) -> np.ndarray:
        idx = _as_lanes(idx, self.device.warp_size).astype(np.int64, copy=False)
        values = _as_lanes(values, self.device.warp_size)
        act = self.active
        old = np.zeros(self.device.warp_size, dtype=target.dtype)
        cost = 1
        n_active = int(act.sum())
        if n_active:
            ai = idx[act]
            if buf is not None:
                if self.sanitizer is not None:
                    self.sanitizer.global_atomic(buf.name, buf.data.size, self.warp_id, ai)
                buf.check_bounds(ai)
            elif shared_name is not None:
                if self.sanitizer is not None:
                    self.sanitizer.shared_atomic(shared_name, self.warp_id, ai)
                self._check_shared_bounds(shared_name, ai)
            # Deterministic serialisation in ascending lane order.
            for lane in np.nonzero(act)[0]:
                old[lane] = target[idx[lane]]
                target[idx[lane]] += values[lane]
            worst = int(np.unique(ai, return_counts=True)[1].max()) if ai.size else 0
            cost += unit_cycles * worst
            self.profile.atomic_ops += n_active
            self.profile.atomic_serial_cycles += unit_cycles * worst
        self._charge(cost)
        return old

    # -- warp-level primitives ------------------------------------------------

    def inclusive_scan(self, values: np.ndarray) -> np.ndarray:
        """Inclusive prefix sum across lanes (inactive lanes contribute 0).

        Models the CUB/shuffle-based scan: log2(32) = 5 issue slots.
        """
        values = np.where(self.active, np.asarray(values, dtype=np.int64), 0)
        self.alu(5)
        return np.cumsum(values)

    def reduce_max(self, values: np.ndarray, neutral: int = -(2**60)) -> int:
        """Warp-wide max over active lanes (5 shuffle steps)."""
        values = np.where(self.active, np.asarray(values, dtype=np.int64), neutral)
        self.alu(5)
        return int(values.max()) if self.active.any() else neutral

    def ballot(self, cond: np.ndarray) -> np.ndarray:
        """Active-lane vote: boolean array of lanes where ``cond`` holds."""
        self.alu(1)
        return np.asarray(cond, dtype=bool) & self.active

    def shfl(self, values: np.ndarray, src_lane: int) -> np.ndarray:
        """Broadcast ``values[src_lane]`` to every lane (one shuffle)."""
        self.alu(1)
        return np.full(self.device.warp_size, np.asarray(values)[src_lane])
