"""Kernel definition and launch machinery.

A :class:`Kernel` is a per-warp program plus its launch configuration
(block size, register footprint, per-block shared-memory setup). The
launcher iterates blocks and warps, accumulating all counters into one
:class:`~repro.gpusim.profiler.KernelProfile` whose occupancy is computed
from the *measured* shared-memory usage of the first block — so a kernel
that allocates bigger shared ``top`` arrays automatically reports (and
pays for) lower occupancy, which is the mechanism behind Fig. 14.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import ConfigError
from repro.gpusim.cache import ReadOnlyCache
from repro.gpusim.device import DeviceSpec
from repro.gpusim.memory import DeviceMemory
from repro.gpusim.occupancy import occupancy
from repro.gpusim.profiler import KernelProfile
from repro.gpusim.sanitizer import Sanitizer
from repro.gpusim.shared import SharedMemory
from repro.gpusim.warp import Warp


@dataclass
class KernelContext:
    """Shared state of a simulated device session.

    One context corresponds to one CUDA context: buffers allocated here are
    visible to every kernel launched against it, and the read-only cache
    persists across launches within one pipeline stage.

    ``memory`` and ``cache`` accept ``None`` only as a construction-time
    default: ``__post_init__`` always narrows them to real instances, so
    after construction they are never ``None`` (``l2`` and ``sanitizer``
    stay genuinely optional — present only when their mode is enabled).
    """

    device: DeviceSpec
    use_readonly_cache: bool = True
    #: Enable the optional L2 model (default timing omits it; see
    #: DESIGN.md §5b and benchmarks/bench_ablation_l2.py).
    use_l2: bool = False
    #: Enable the memory sanitizer (racecheck/initcheck/boundscheck; see
    #: repro.gpusim.sanitizer and docs/ANALYSIS.md). Off by default — the
    #: recording roughly doubles per-access overhead.
    sanitize: bool = False
    memory: DeviceMemory | None = None
    cache: ReadOnlyCache | None = None
    l2: ReadOnlyCache | None = None
    sanitizer: Sanitizer | None = None
    params: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.memory is None:
            self.memory = DeviceMemory(self.device.device_memory_bytes)
        if self.cache is None:
            self.cache = ReadOnlyCache(self.device)
        if self.l2 is None and self.use_l2:
            from repro.gpusim.cache import make_l2_cache

            self.l2 = make_l2_cache(self.device)
        if self.sanitizer is None and self.sanitize:
            self.sanitizer = Sanitizer()


class Kernel:
    """Base class for lane-simulated kernels.

    Subclasses set :attr:`block_threads` / :attr:`registers_per_thread`,
    allocate shared regions in :meth:`setup_block`, and implement the
    per-warp program in :meth:`run_warp`.
    """

    name: str = "kernel"
    block_threads: int = 128
    registers_per_thread: int = 32

    def setup_block(self, ctx: KernelContext, shared: SharedMemory, block_id: int) -> int:
        """Allocate shared regions for one block.

        Returns
        -------
        int
            Bytes cooperatively loaded from global memory into shared
            memory during block setup (charged as coalesced transactions).
        """
        return 0

    def run_warp(self, ctx: KernelContext, warp: Warp, block_id: int, warp_in_block: int) -> None:
        """The per-warp program body."""
        raise NotImplementedError

    def grid_blocks(self, ctx: KernelContext) -> int:
        """Default grid size: enough blocks to fill every SM at occupancy."""
        # Computed by the launcher after occupancy is known; kernels may
        # override for fixed-size grids.
        return -1


def launch(
    kernel: Kernel,
    ctx: KernelContext,
    grid_blocks: int | None = None,
) -> KernelProfile:
    """Execute ``kernel`` and return its accumulated profile.

    Parameters
    ----------
    grid_blocks:
        Blocks in the grid. Defaults to filling the device at the
        kernel's achieved occupancy (``num_sms * blocks_per_sm``), the
        usual persistent-blocks launch for grid-stride kernels.
    """
    device = ctx.device
    if kernel.block_threads % device.warp_size != 0:
        raise ConfigError(
            f"kernel {kernel.name!r}: block_threads must be a multiple of "
            f"warp size {device.warp_size}"
        )
    warps_per_block = kernel.block_threads // device.warp_size
    profile = KernelProfile(name=kernel.name, device=device)
    cache = ctx.cache
    assert cache is not None  # narrowed in KernelContext.__post_init__
    san = ctx.sanitizer if ctx.sanitize else None

    # Dry block 0 to measure shared usage for occupancy. The same SharedMemory
    # is then reused as block 0's real shared memory.
    first_shared = SharedMemory(device, sanitizer=san)
    init_bytes = kernel.setup_block(ctx, first_shared, 0)
    occ = occupancy(
        device,
        kernel.block_threads,
        first_shared.used_bytes,
        kernel.registers_per_thread,
    )
    profile.occupancy = occ.occupancy
    profile.extra["occupancy_limited_by"] = occ.limited_by
    profile.extra["shared_bytes_per_block"] = first_shared.used_bytes

    if grid_blocks is None:
        requested = kernel.grid_blocks(ctx)
        grid_blocks = (
            requested if requested > 0 else device.num_sms * occ.blocks_per_sm
        )
    num_warps = grid_blocks * warps_per_block

    line = device.cache_line_bytes
    for block_id in range(grid_blocks):
        if block_id == 0:
            shared = first_shared
        else:
            shared = SharedMemory(device, sanitizer=san)
            init_bytes = kernel.setup_block(ctx, shared, block_id)
        if init_bytes:
            tx = -(-init_bytes // line)
            profile.global_transactions += tx
            profile.global_requested_bytes += init_bytes
            profile.issue_cycles += tx * device.global_tx_cycles
        profile.blocks_launched += 1
        for w in range(warps_per_block):
            warp = Warp(
                device=device,
                profile=profile,
                shared=shared,
                cache=cache,
                warp_id=block_id * warps_per_block + w,
                num_warps=num_warps,
                use_readonly_cache=ctx.use_readonly_cache,
                l2=ctx.l2 if ctx.use_l2 else None,
                sanitizer=san,
            )
            profile.warps_executed += 1
            kernel.run_warp(ctx, warp, block_id, w)
        if san is not None:
            san.finish_block(kernel.name, block_id)
    if san is not None:
        san.finish_launch(kernel.name)
    return profile
