"""Global-memory model: buffers, address assignment, coalescing analysis.

Every array a kernel touches lives in a :class:`GlobalBuffer` with a device
address, so a warp's lane indices translate to byte addresses and the
128-byte transaction count of each access is computed exactly — the same
arithmetic NVIDIA describes for Kepler global loads. Functional data stays
a plain numpy array; the wrapper only adds addressing and accounting.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.errors import GpuSimError


class MemorySpace(enum.Enum):
    """Where a buffer lives; affects access cost and cache eligibility."""

    GLOBAL = "global"
    #: Global memory tagged ``const __restrict__`` — reads may go through
    #: the 48-kB read-only cache (Fig. 10).
    READONLY = "readonly"


@dataclass
class GlobalBuffer:
    """A device allocation.

    Attributes
    ----------
    name:
        Debug name.
    data:
        Backing numpy array (1-D). Indexing is in *elements*; the byte
        address of element ``i`` is ``address + i * itemsize``.
    address:
        Simulated device byte address (256-byte aligned, like cudaMalloc).
    space:
        GLOBAL or READONLY.
    """

    name: str
    data: np.ndarray
    address: int
    space: MemorySpace = MemorySpace.GLOBAL

    def __post_init__(self) -> None:
        if self.data.ndim != 1:
            raise GpuSimError(f"buffer {self.name!r}: device buffers are 1-D")
        if self.space is MemorySpace.READONLY:
            self.data = self.data.copy()
            self.data.flags.writeable = False

    @property
    def itemsize(self) -> int:
        return int(self.data.itemsize)

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)

    def byte_addresses(self, indices: np.ndarray) -> np.ndarray:
        """Byte address of each element index."""
        return self.address + np.asarray(indices, dtype=np.int64) * self.itemsize

    def check_bounds(self, indices: np.ndarray) -> None:
        """Raise on any out-of-bounds element index (device OOB = bug)."""
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size and (int(idx.min()) < 0 or int(idx.max()) >= self.data.size):
            raise GpuSimError(
                f"buffer {self.name!r}: index out of bounds "
                f"[{int(idx.min())}, {int(idx.max())}] vs size {self.data.size}"
            )


class DeviceMemory:
    """Allocator handing out addresses and tracking total usage."""

    _ALIGN = 256

    def __init__(self, capacity_bytes: int) -> None:
        self.capacity_bytes = capacity_bytes
        self._next_address = self._ALIGN
        self.buffers: dict[str, GlobalBuffer] = {}

    @property
    def used_bytes(self) -> int:
        return self._next_address

    def alloc(
        self,
        name: str,
        data: np.ndarray,
        space: MemorySpace = MemorySpace.GLOBAL,
    ) -> GlobalBuffer:
        """Allocate a buffer initialised with ``data`` (copied in)."""
        data = np.ascontiguousarray(data)
        if data.ndim != 1:
            data = data.reshape(-1)
        size = int(data.nbytes)
        padded = (size + self._ALIGN - 1) // self._ALIGN * self._ALIGN
        if self._next_address + padded > self.capacity_bytes:
            raise GpuSimError(
                f"device out of memory allocating {name!r} "
                f"({size} bytes; {self.used_bytes} already in use)"
            )
        buf = GlobalBuffer(name=name, data=data.copy() if space is MemorySpace.GLOBAL else data, address=self._next_address, space=space)
        self._next_address += padded
        if name in self.buffers:
            raise GpuSimError(f"buffer name {name!r} already allocated")
        self.buffers[name] = buf
        return buf

    def alloc_zeros(
        self, name: str, size: int, dtype: np.dtype | type = np.int64
    ) -> GlobalBuffer:
        """Allocate a zero-initialised buffer of ``size`` elements."""
        return self.alloc(name, np.zeros(size, dtype=dtype))


def coalesce_transactions(byte_addresses: np.ndarray, itemsize: int, line_bytes: int) -> int:
    """Number of 128-byte transactions needed to service one warp access.

    Each active lane touches ``itemsize`` bytes at its address; the memory
    system fetches every distinct cache line covered. Fully coalesced
    4-byte accesses by 32 lanes touch exactly one line; a stride-N gather
    touches up to 32.
    """
    if byte_addresses.size == 0:
        return 0
    first = byte_addresses // line_bytes
    last = (byte_addresses + itemsize - 1) // line_bytes
    # Elements can straddle a line boundary; count both ends' lines.
    # (Python sets beat np.union1d by ~10x at warp-sized inputs, and this
    # runs once per simulated memory instruction.)
    lines = set(first.tolist())
    lines.update(last.tolist())
    return len(lines)
