"""PCIe transfer model.

cuBLASTP streams database blocks to the GPU and extension results back,
overlapped with computation (Fig. 12). Real PCIe measurement is out of
scope (DESIGN.md §6); transfers are modelled as fixed launch latency plus
bytes over effective bandwidth — the standard first-order model, and
accurate enough for the overlap bookkeeping of Fig. 19(d).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TransferModel:
    """Host<->device copy timing.

    Attributes
    ----------
    bandwidth_gbps:
        Effective PCIe throughput (PCIe 2.0 x16 sustains ~6-8 GB/s for
        pinned memory; 8 is the paper-era optimistic figure).
    latency_us:
        Per-copy launch/driver latency.
    """

    bandwidth_gbps: float = 8.0
    latency_us: float = 10.0

    def h2d_ms(self, nbytes: int) -> float:
        """Host-to-device copy time in milliseconds."""
        return self._ms(nbytes)

    def d2h_ms(self, nbytes: int) -> float:
        """Device-to-host copy time in milliseconds."""
        return self._ms(nbytes)

    def _ms(self, nbytes: int) -> float:
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return self.latency_us / 1e3 + nbytes / (self.bandwidth_gbps * 1e9) * 1e3
