"""Read-only data cache (Kepler's 48-kB texture-path cache).

Buffers allocated in :class:`~repro.gpusim.memory.MemorySpace.READONLY`
space — the simulator's equivalent of tagging a pointer ``const
__restrict__`` — are read through this cache. It is a set-associative LRU
over 128-byte lines; hits cost :attr:`DeviceSpec.readonly_hit_cycles`
instead of a global transaction, which is the entire effect Fig. 17
measures.

Kepler has one such cache per SM; since the engine executes warps serially
it simulates a single cache of one SM's capacity, warmed per kernel launch.
That underestimates aggregate capacity (13 caches on the real chip) but
the hit *ratio* of the reuse-heavy structures cuBLASTP stores there (DFA
position lists, PSSM) is capacity-insensitive once the working set fits,
which is the regime the paper exploits.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.gpusim.device import DeviceSpec


class ReadOnlyCache:
    """Set-associative LRU cache of 128-byte lines.

    Parameters
    ----------
    device:
        Supplies capacity and line size.
    ways:
        Associativity (default 4, matching the texture cache's behaviour
        closely enough for hit-ratio modelling).
    """

    def __init__(self, device: DeviceSpec, ways: int = 4) -> None:
        self.line_bytes = device.cache_line_bytes
        num_lines = device.readonly_cache_bytes // self.line_bytes
        self.ways = ways
        self.num_sets = max(1, num_lines // ways)
        self._sets: list[OrderedDict[int, None]] = [
            OrderedDict() for _ in range(self.num_sets)
        ]
        self.hits = 0
        self.misses = 0

    def reset(self) -> None:
        """Invalidate all lines and zero the counters."""
        for s in self._sets:
            s.clear()
        self.hits = 0
        self.misses = 0

    def access_lines(self, line_ids: "set[int] | list[int]") -> tuple[int, int]:
        """Probe a set of line ids (one warp access), LRU-updating each.

        Returns
        -------
        (hits, misses) for this access.
        """
        hits = misses = 0
        for line in line_ids:
            s = self._sets[line % self.num_sets]
            if line in s:
                s.move_to_end(line)
                hits += 1
            else:
                misses += 1
                s[line] = None
                if len(s) > self.ways:
                    s.popitem(last=False)
        self.hits += hits
        self.misses += misses
        return hits, misses

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


def make_l2_cache(device: DeviceSpec, ways: int = 16) -> ReadOnlyCache:
    """An L2-sized set-associative LRU for the optional L2 model.

    Same mechanics as the read-only cache, sized to
    :attr:`DeviceSpec.l2_bytes`. The default timing model deliberately
    omits L2 (DESIGN.md §5b documents the resulting bias against
    scattered-access kernels); enabling it via
    ``KernelContext(use_l2=True)`` quantifies that bias —
    ``benchmarks/bench_ablation_l2.py``.
    """
    cache = ReadOnlyCache.__new__(ReadOnlyCache)
    cache.line_bytes = device.cache_line_bytes
    num_lines = device.l2_bytes // device.cache_line_bytes
    cache.ways = ways
    cache.num_sets = max(1, num_lines // ways)
    cache._sets = [OrderedDict() for _ in range(cache.num_sets)]
    cache.hits = 0
    cache.misses = 0
    return cache
