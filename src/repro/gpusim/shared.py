"""Per-block shared memory with bank-conflict accounting.

Shared memory is modelled as named regions inside one block-sized
allocation. Accesses are charged :attr:`DeviceSpec.shared_cycles` plus
replay cycles when multiple active lanes hit different addresses in the
same 4-byte bank — the standard Kepler 32-bank rule (broadcasts of the
*same* address are free, as on hardware).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ResourceExceededError
from repro.gpusim.device import DeviceSpec


class SharedMemory:
    """One block's shared memory: named numpy regions + conflict model."""

    def __init__(self, device: DeviceSpec) -> None:
        self._device = device
        self._regions: dict[str, np.ndarray] = {}
        self._offsets: dict[str, int] = {}
        self._used = 0

    @property
    def used_bytes(self) -> int:
        return self._used

    def alloc(self, name: str, size: int, dtype: np.dtype | type = np.int32) -> np.ndarray:
        """Reserve a region; raises when the block exceeds the SM's 48 kB."""
        if name in self._regions:
            raise ResourceExceededError(f"shared region {name!r} already allocated")
        arr = np.zeros(size, dtype=dtype)
        if self._used + arr.nbytes > self._device.shared_mem_per_sm:
            raise ResourceExceededError(
                f"shared memory request for {name!r} exceeds "
                f"{self._device.shared_mem_per_sm} bytes per block "
                f"({self._used} already used, {arr.nbytes} requested)"
            )
        self._offsets[name] = self._used
        self._used += int(arr.nbytes)
        self._regions[name] = arr
        return arr

    def alloc_from(self, name: str, data: np.ndarray) -> np.ndarray:
        """Reserve a region initialised with a copy of ``data``."""
        arr = self.alloc(name, int(np.asarray(data).reshape(-1).size), np.asarray(data).dtype)
        arr[:] = np.asarray(data).reshape(-1)
        return arr

    def region(self, name: str) -> np.ndarray:
        return self._regions[name]

    def conflict_cycles(self, name: str, indices: np.ndarray) -> int:
        """Extra replay cycles of one warp access to region ``name``.

        Cost model: lanes touching distinct addresses within one bank
        serialise; lanes reading the same address broadcast. The charge is
        ``max_per_bank - 1`` replays.
        """
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size <= 1:
            return 0
        arr = self._regions[name]
        byte_addr = self._offsets[name] + idx * arr.itemsize
        banks = (byte_addr // self._device.shared_bank_bytes) % self._device.shared_banks
        # Distinct addresses per bank: same-address lanes broadcast.
        pairs = np.unique(np.stack([banks, byte_addr], axis=1), axis=0)
        counts = np.bincount(pairs[:, 0].astype(np.int64), minlength=self._device.shared_banks)
        worst = int(counts.max()) if counts.size else 1
        return max(0, worst - 1)
