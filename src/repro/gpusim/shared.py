"""Per-block shared memory with bank-conflict accounting.

Shared memory is modelled as named regions inside one block-sized
allocation. Accesses are charged :attr:`DeviceSpec.shared_cycles` plus
replay cycles when multiple active lanes hit different addresses in the
same 4-byte bank — the standard Kepler 32-bank rule (broadcasts of the
*same* address are free, as on hardware).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ResourceExceededError
from repro.gpusim.device import DeviceSpec

if TYPE_CHECKING:
    from repro.gpusim.sanitizer import Sanitizer


class SharedMemory:
    """One block's shared memory: named numpy regions + conflict model.

    When a :class:`~repro.gpusim.sanitizer.Sanitizer` is attached, each
    region's initialisation state is tracked: :meth:`alloc` hands out
    *raw* storage (functionally zeroed for determinism, but reading it
    before a write is an initcheck hazard), while :meth:`alloc_from` and
    :meth:`fill` produce initialised regions — ``fill`` models the
    cooperative memset a real block performs before use.
    """

    def __init__(self, device: DeviceSpec, sanitizer: Sanitizer | None = None) -> None:
        self._device = device
        self._sanitizer = sanitizer
        self._regions: dict[str, np.ndarray] = {}
        self._offsets: dict[str, int] = {}
        self._used = 0

    @property
    def used_bytes(self) -> int:
        return self._used

    def alloc(self, name: str, size: int, dtype: np.dtype | type = np.int32) -> np.ndarray:
        """Reserve a region; raises when the block exceeds the SM's 48 kB."""
        if name in self._regions:
            raise ResourceExceededError(f"shared region {name!r} already allocated")
        arr = np.zeros(size, dtype=dtype)
        if self._used + arr.nbytes > self._device.shared_mem_per_sm:
            raise ResourceExceededError(
                f"shared memory request for {name!r} exceeds "
                f"{self._device.shared_mem_per_sm} bytes per block "
                f"({self._used} already used, {arr.nbytes} requested)"
            )
        self._offsets[name] = self._used
        self._used += int(arr.nbytes)
        self._regions[name] = arr
        if self._sanitizer is not None:
            self._sanitizer.on_shared_alloc(name, size, initialized=False)
        return arr

    def alloc_from(self, name: str, data: np.ndarray) -> np.ndarray:
        """Reserve a region initialised with a copy of ``data``."""
        arr = self.alloc(name, int(np.asarray(data).reshape(-1).size), np.asarray(data).dtype)
        arr[:] = np.asarray(data).reshape(-1)
        if self._sanitizer is not None:
            self._sanitizer.on_shared_fill(name)
        return arr

    def fill(self, name: str, value: int = 0) -> None:
        """Initialise a whole region (the cooperative-memset idiom).

        Functionally redundant when ``value`` is 0 (``alloc`` zeroes for
        determinism), but under ``sanitize=True`` this is what marks the
        region initialised — mirroring the memset a real kernel needs
        before reading cells it might never write.
        """
        self._regions[name][:] = value
        if self._sanitizer is not None:
            self._sanitizer.on_shared_fill(name)

    def region(self, name: str) -> np.ndarray:
        return self._regions[name]

    def conflict_cycles(self, name: str, indices: np.ndarray) -> int:
        """Extra replay cycles of one warp access to region ``name``.

        Cost model: lanes touching distinct addresses within one bank
        serialise; lanes reading the same address broadcast. The charge is
        ``max_per_bank - 1`` replays.
        """
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size <= 1:
            return 0
        arr = self._regions[name]
        byte_addr = self._offsets[name] + idx * arr.itemsize
        banks = (byte_addr // self._device.shared_bank_bytes) % self._device.shared_banks
        # Distinct addresses per bank: same-address lanes broadcast.
        pairs = np.unique(np.stack([banks, byte_addr], axis=1), axis=0)
        counts = np.bincount(pairs[:, 0].astype(np.int64), minlength=self._device.shared_banks)
        worst = int(counts.max()) if counts.size else 1
        return max(0, worst - 1)
