"""CUDA occupancy calculation.

Achieved occupancy — resident warps per SM over the hardware maximum — is
one of the three profiler metrics Fig. 19 compares, and the mechanism
behind Fig. 14's hit-detection slowdown at high bin counts (bigger shared
``top`` arrays limit resident blocks). The arithmetic below follows the
CUDA occupancy calculator: resident blocks are the minimum over the block,
thread, register, and shared-memory limits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.gpusim.device import DeviceSpec


@dataclass(frozen=True)
class OccupancyResult:
    """Resident-block computation for one kernel configuration."""

    blocks_per_sm: int
    warps_per_sm: int
    occupancy: float
    limited_by: str


def occupancy(
    device: DeviceSpec,
    block_threads: int,
    shared_bytes_per_block: int,
    registers_per_thread: int = 32,
) -> OccupancyResult:
    """Occupancy for a kernel configuration on ``device``.

    Parameters
    ----------
    block_threads:
        Threads per block (rounded up to whole warps internally).
    shared_bytes_per_block:
        Static + dynamic shared memory per block.
    registers_per_thread:
        Register footprint (kernels in this repo declare a nominal value).
    """
    if block_threads <= 0 or block_threads > device.max_threads_per_block:
        raise ConfigError(
            f"block of {block_threads} threads invalid "
            f"(max {device.max_threads_per_block})"
        )
    if shared_bytes_per_block > device.shared_mem_per_sm:
        raise ConfigError(
            f"block needs {shared_bytes_per_block} B shared memory; "
            f"SM has {device.shared_mem_per_sm}"
        )
    warps_per_block = -(-block_threads // device.warp_size)
    rounded_threads = warps_per_block * device.warp_size

    limits = {
        "blocks": device.max_blocks_per_sm,
        "threads": device.max_threads_per_sm // rounded_threads,
        "registers": device.registers_per_sm
        // max(1, registers_per_thread * rounded_threads),
        "shared": (
            device.shared_mem_per_sm // shared_bytes_per_block
            if shared_bytes_per_block > 0
            else device.max_blocks_per_sm
        ),
    }
    limiter = min(limits, key=lambda k: limits[k])
    blocks = max(0, limits[limiter])
    if blocks == 0:
        raise ConfigError("kernel configuration fits zero blocks per SM")
    warps = blocks * warps_per_block
    max_warps = device.max_threads_per_sm // device.warp_size
    return OccupancyResult(
        blocks_per_sm=blocks,
        warps_per_sm=min(warps, max_warps),
        occupancy=min(1.0, warps / max_warps),
        limited_by=limiter,
    )
