"""Kernel profiles: the counters a real GPU profiler would report.

Counters are accumulated by the warp engine during execution; the derived
metrics reproduce the three quantities Fig. 19 compares across BLASTP
implementations — global load efficiency, divergence overhead, and achieved
occupancy — plus the modelled elapsed time every performance figure uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpusim.device import DeviceSpec


@dataclass
class KernelProfile:
    """Execution counters and derived metrics of one kernel launch.

    Attributes
    ----------
    issue_cycles:
        Warp-instruction issue slots consumed, summed over all warps.
        Divergent branches contribute both paths (the engine executes both
        under masks), so this is the post-serialisation cost.
    instructions:
        Warp instructions issued (each costs >= 1 issue cycle).
    active_lane_slots:
        Sum over instructions of the number of active lanes.
    divergent_branches:
        Branches where a warp's lanes took both paths.
    global_transactions / global_requested_bytes:
        128-byte transaction count and the bytes lanes actually asked for.
    readonly_hits / readonly_misses:
        Read-only cache line probes.
    shared_accesses / shared_conflict_cycles:
        Shared-memory requests and the extra replay cycles bank conflicts
        cost.
    atomic_ops / atomic_serial_cycles:
        Atomic updates and their serialisation cost.
    occupancy:
        Achieved occupancy in [0, 1] from the occupancy calculator.
    """

    name: str
    device: DeviceSpec
    issue_cycles: int = 0
    instructions: int = 0
    active_lane_slots: int = 0
    divergent_branches: int = 0
    global_transactions: int = 0
    global_requested_bytes: int = 0
    global_load_transactions: int = 0
    global_load_requested_bytes: int = 0
    global_store_transactions: int = 0
    global_store_requested_bytes: int = 0
    readonly_hits: int = 0
    readonly_misses: int = 0
    shared_accesses: int = 0
    shared_conflict_cycles: int = 0
    atomic_ops: int = 0
    atomic_serial_cycles: int = 0
    occupancy: float = 1.0
    blocks_launched: int = 0
    warps_executed: int = 0
    extra: dict = field(default_factory=dict)

    # -- derived metrics ----------------------------------------------------

    @property
    def warp_execution_efficiency(self) -> float:
        """Mean fraction of lanes active per issued instruction."""
        if self.instructions == 0:
            return 1.0
        return self.active_lane_slots / (self.instructions * self.device.warp_size)

    @property
    def divergence_overhead(self) -> float:
        """1 - warp execution efficiency (Fig. 19b's metric)."""
        return 1.0 - self.warp_execution_efficiency

    @property
    def global_load_efficiency(self) -> float:
        """Requested / transferred bytes for *loads* (Fig. 19a's metric).

        Matches nvprof's ``gld_efficiency``: stores have their own
        efficiency and read-only-cache traffic takes the texture path, so
        neither enters this ratio. As with nvprof, broadcast loads (many
        lanes requesting the same address, served by one transaction) can
        push the ratio above 100 %.
        """
        if self.global_load_transactions == 0:
            return 1.0
        return self.global_load_requested_bytes / (
            self.global_load_transactions * self.device.cache_line_bytes
        )

    @property
    def global_store_efficiency(self) -> float:
        """Requested / transferred bytes for stores (gst_efficiency)."""
        if self.global_store_transactions == 0:
            return 1.0
        return self.global_store_requested_bytes / (
            self.global_store_transactions * self.device.cache_line_bytes
        )

    @property
    def total_cycles(self) -> int:
        """All issue cycles including memory, conflict and atomic costs."""
        return self.issue_cycles

    def elapsed_ms(self) -> float:
        """Modelled wall time of the launch.

        The engine executes warps serially and sums their issue cycles; a
        real device spreads warps over ``num_sms`` SMs, each dual-issuing
        from several schedulers when enough warps are resident to hide
        latency. We model per-SM throughput as ``warp_schedulers_per_sm``
        issue slots per cycle scaled by achieved occupancy (clamped to at
        least one scheduler — a single resident warp still issues):

        ``elapsed = total_cycles / (num_sms * max(1, schedulers * occupancy))``

        The formula is deliberately simple and is applied identically to
        every implementation, so cross-implementation ratios (the paper's
        speedups) depend only on counted work, divergence, coalescing and
        occupancy — the effects the paper attributes its wins to.
        """
        d = self.device
        per_sm_issue = max(1.0, d.warp_schedulers_per_sm * self.occupancy)
        return d.cycles_to_ms(self.total_cycles / (d.num_sms * per_sm_issue))

    def merge(self, other: "KernelProfile") -> None:
        """Accumulate another profile's counters into this one (same kernel)."""
        self.issue_cycles += other.issue_cycles
        self.instructions += other.instructions
        self.active_lane_slots += other.active_lane_slots
        self.divergent_branches += other.divergent_branches
        self.global_transactions += other.global_transactions
        self.global_requested_bytes += other.global_requested_bytes
        self.global_load_transactions += other.global_load_transactions
        self.global_load_requested_bytes += other.global_load_requested_bytes
        self.global_store_transactions += other.global_store_transactions
        self.global_store_requested_bytes += other.global_store_requested_bytes
        self.readonly_hits += other.readonly_hits
        self.readonly_misses += other.readonly_misses
        self.shared_accesses += other.shared_accesses
        self.shared_conflict_cycles += other.shared_conflict_cycles
        self.atomic_ops += other.atomic_ops
        self.atomic_serial_cycles += other.atomic_serial_cycles
        self.blocks_launched += other.blocks_launched
        self.warps_executed += other.warps_executed

    def summary(self) -> str:
        """One-line human-readable profile."""
        return (
            f"{self.name}: {self.elapsed_ms():.3f} ms, "
            f"eff={self.warp_execution_efficiency:.1%}, "
            f"gld={self.global_load_efficiency:.1%}, "
            f"occ={self.occupancy:.1%}, "
            f"div_branches={self.divergent_branches}"
        )
