"""Packed sequence database and zero-copy views.

A :class:`SequenceDatabase` stores all subject sequences in one contiguous
``uint8`` code array plus a CSR-style offset table. This is the layout the
GPU kernels scan (coalesced, position-indexed) and the layout FSA-BLAST
iterates, so both the simulator and the CPU reference share one source of
truth for subject data.

Slicing is zero-copy wherever the layout allows it: a contiguous run of
sequences is a :class:`DatabaseView` — shared ``codes`` storage, rebased
offsets, a global-id mapping — which is what the Fig. 12 block pipeline
streams and what the cluster layer hands to each node under the
contiguous scheme. Non-contiguous selections (interleaved partitions,
length sorting) materialise a copy through one vectorised gather; the
``materialize`` flag on :meth:`SequenceDatabase.subset` makes the choice
explicit.

Persistence goes through :mod:`repro.io.storage` — a versioned binary
format that reloads via ``mmap`` without any pickling (legacy ``.npz``
archives are still readable behind a :class:`DeprecationWarning`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.alphabet import decode, encode
from repro.errors import SequenceError
from repro.io.fasta import FastaRecord


@dataclass(frozen=True)
class DatabaseStats:
    """Summary statistics of a database, as the paper reports for its inputs."""

    num_sequences: int
    total_residues: int
    mean_length: float
    max_length: int
    min_length: int


class SequenceDatabase:
    """An immutable collection of encoded subject sequences.

    Parameters
    ----------
    codes:
        Concatenated ``uint8`` residue codes of every sequence.
    offsets:
        ``int64`` array of length ``num_sequences + 1``; sequence ``i``
        occupies ``codes[offsets[i]:offsets[i+1]]``.
    identifiers:
        Optional per-sequence identifiers (defaults to ``seq{i}``).
    """

    def __init__(
        self,
        codes: np.ndarray,
        offsets: np.ndarray,
        identifiers: Sequence[str] | None = None,
    ) -> None:
        codes = np.ascontiguousarray(codes, dtype=np.uint8)
        offsets = np.ascontiguousarray(offsets, dtype=np.int64)
        if offsets.ndim != 1 or offsets.size < 1:
            raise SequenceError("offsets must be a 1-D array with at least one entry")
        if offsets[0] != 0 or offsets[-1] != codes.size:
            raise SequenceError("offsets must start at 0 and end at len(codes)")
        if np.any(np.diff(offsets) <= 0):
            raise SequenceError("empty sequences are not allowed in a database")
        self._codes = codes
        self._offsets = offsets
        self._lengths: np.ndarray | None = None
        n = offsets.size - 1
        if identifiers is None:
            identifiers = [f"seq{i}" for i in range(n)]
        if len(identifiers) != n:
            raise SequenceError(f"{len(identifiers)} identifiers for {n} sequences")
        self._identifiers: list[str] | None = list(identifiers)

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_strings(cls, sequences: Iterable[str], identifiers: Sequence[str] | None = None) -> "SequenceDatabase":
        """Build a database from residue strings."""
        encoded = [encode(s) for s in sequences]
        if not encoded:
            raise SequenceError("database must contain at least one sequence")
        offsets = np.zeros(len(encoded) + 1, dtype=np.int64)
        np.cumsum([len(e) for e in encoded], out=offsets[1:])
        codes = np.concatenate(encoded) if encoded else np.zeros(0, dtype=np.uint8)
        return cls(codes, offsets, identifiers)

    @classmethod
    def from_records(cls, records: Iterable[FastaRecord]) -> "SequenceDatabase":
        """Build a database from parsed FASTA records."""
        records = list(records)
        return cls.from_strings(
            [r.sequence for r in records], [r.identifier for r in records]
        )

    # -- accessors ---------------------------------------------------------

    @property
    def codes(self) -> np.ndarray:
        """Concatenated residue codes (read-only view)."""
        view = self._codes.view()
        view.flags.writeable = False
        return view

    @property
    def offsets(self) -> np.ndarray:
        """CSR offsets (read-only view)."""
        view = self._offsets.view()
        view.flags.writeable = False
        return view

    @property
    def identifiers(self) -> list[str]:
        """Per-sequence identifiers.

        The returned list is the database's own storage (no copy is made);
        treat it as read-only.
        """
        if self._identifiers is None:  # lazily built by views
            self._identifiers = self._build_identifiers()
        return self._identifiers

    def _build_identifiers(self) -> list[str]:  # overridden by DatabaseView
        raise AssertionError("base databases always carry identifiers")

    @property
    def lengths(self) -> np.ndarray:
        """Length of each sequence (computed once, then cached)."""
        if self._lengths is None:
            lengths = np.diff(self._offsets)
            lengths.flags.writeable = False
            self._lengths = lengths
        return self._lengths

    def __len__(self) -> int:
        return self._offsets.size - 1

    def sequence(self, index: int) -> np.ndarray:
        """Residue codes of sequence ``index`` (zero-copy view)."""
        if not 0 <= index < len(self):
            raise IndexError(index)
        return self._codes[self._offsets[index] : self._offsets[index + 1]]

    def sequence_str(self, index: int) -> str:
        """Residue string of sequence ``index``."""
        return decode(self.sequence(index))

    def identifier(self, index: int) -> str:
        return self.identifiers[index]

    def stats(self) -> DatabaseStats:
        """Compute summary statistics."""
        lengths = self.lengths
        return DatabaseStats(
            num_sequences=len(self),
            total_residues=int(self._codes.size),
            mean_length=float(lengths.mean()),
            max_length=int(lengths.max()),
            min_length=int(lengths.min()),
        )

    # -- global-id mapping -------------------------------------------------
    #
    # A plain database is its own coordinate system; views override these
    # to translate into the parent's ids, so code that remaps (the cluster
    # merge, block pipelines) can treat both uniformly.

    @property
    def base(self) -> "SequenceDatabase":
        """The database owning the underlying storage (``self`` here)."""
        return self

    def to_global(self, local_seq_id: int) -> int:
        """Map a local sequence id to the owning database's id space."""
        if not 0 <= local_seq_id < len(self):
            raise IndexError(local_seq_id)
        return local_seq_id

    @property
    def global_ids(self) -> np.ndarray:
        """Ids of this database's sequences in the owning database."""
        return np.arange(len(self), dtype=np.int64)

    # -- transformations ---------------------------------------------------

    def view(self, start: int, stop: int) -> "SequenceDatabase":
        """Zero-copy view of the contiguous sequence range ``[start, stop)``.

        The view shares this database's ``codes`` storage (no residues are
        copied); only the rebased offset table is new. ``view(0, len(db))``
        returns ``self``.
        """
        if start == 0 and stop == len(self):
            return self
        return DatabaseView(self, start, stop)

    def sorted_by_length(self, descending: bool = True) -> "SequenceDatabase":
        """Return the sequences ordered by length (a copy unless already
        sorted, in which case the database itself comes back).

        CUDA-BLASTP pre-sorts the database by sequence length to improve the
        load balance of its one-thread-per-sequence kernel; that baseline
        calls this before launching.
        """
        order = np.argsort(self.lengths, kind="stable")
        if descending:
            order = order[::-1]
        return self.subset(order)

    def subset(self, indices: np.ndarray, materialize: bool | None = None) -> "SequenceDatabase":
        """Return a database containing ``indices`` in the given order.

        A contiguous ascending run of indices returns a zero-copy
        :class:`DatabaseView`; any other selection materialises a new
        packed database through one vectorised gather. Pass
        ``materialize=True`` to force a copy even for contiguous runs
        (e.g. to detach from a large parent), or ``materialize=False`` to
        *require* the zero-copy path (raises :class:`SequenceError` when
        the selection is not contiguous).
        """
        indices = np.asarray(indices, dtype=np.int64)
        if indices.ndim != 1:
            raise SequenceError("subset indices must be 1-D")
        if indices.size == 0:
            raise SequenceError(
                "subset of zero sequences is not allowed (databases are non-empty)"
            )
        if np.any((indices < 0) | (indices >= len(self))):
            raise IndexError("subset index out of range")
        contiguous = bool(np.all(np.diff(indices) == 1))
        if contiguous and not materialize:
            return self.view(int(indices[0]), int(indices[-1]) + 1)
        if materialize is False:
            raise SequenceError("non-contiguous subset cannot be a zero-copy view")
        # One vectorised gather: for output position p in sequence k, the
        # source index is starts[k] + (p - new_offsets[k]).
        lengths = self.lengths[indices]
        offsets = np.zeros(indices.size + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        starts = self._offsets[indices]
        gather = np.repeat(starts - offsets[:-1], lengths) + np.arange(
            offsets[-1], dtype=np.int64
        )
        ident_src = self.identifiers
        idents = [ident_src[int(i)] for i in indices]
        return SequenceDatabase(self._codes[gather], offsets, idents)

    def block_bounds(self, num_blocks: int) -> np.ndarray:
        """Residue-balanced contiguous cut points for ``num_blocks`` blocks.

        Returns ``min(num_blocks, len(self)) + 1`` sequence indices; block
        ``b`` covers sequences ``[bounds[b], bounds[b+1])``. The split
        balances total residues, not sequence counts, so per-block kernel
        time stays roughly even (the Fig. 12 schedule's assumption).
        """
        if num_blocks <= 0:
            raise ValueError("num_blocks must be positive")
        num_blocks = min(num_blocks, len(self))
        target = self._codes.size / num_blocks
        bounds = [0]
        for b in range(1, num_blocks):
            cut = int(np.searchsorted(self._offsets, b * target))
            cut = min(max(cut, bounds[-1] + 1), len(self) - (num_blocks - b))
            bounds.append(cut)
        bounds.append(len(self))
        return np.asarray(bounds, dtype=np.int64)

    def blocks(self, num_blocks: int) -> list["SequenceDatabase"]:
        """Split into ``num_blocks`` contiguous, residue-balanced blocks.

        The CPU/GPU pipeline (Fig. 12) streams the database in blocks;
        each block is a zero-copy :class:`DatabaseView` sharing this
        database's residue storage.
        """
        bounds = self.block_bounds(num_blocks)
        return [
            self.view(int(bounds[b]), int(bounds[b + 1]))
            for b in range(bounds.size - 1)
        ]

    # -- persistence ---------------------------------------------------------

    def save(self, path, *, db_version: int | None = None) -> None:
        """Write the packed database to ``path`` in the versioned binary
        format (see :mod:`repro.io.storage`).

        The binary form (header + raw codes/offsets/identifier blob)
        reloads through ``mmap`` without re-encoding or pickling — the
        role makeblastdb's volumes play for BLAST. ``db_version`` sets
        the header's content stamp (cache-invalidation key for the
        serving layer); by default a fresh save stamps generation 1.
        """
        from repro.io import storage

        if db_version is None:
            storage.save_database(self, path)
        else:
            storage.save_database(self, path, db_version=db_version)

    @classmethod
    def load(cls, path, *, mmap: bool = True) -> "SequenceDatabase":
        """Reload a database written by :meth:`save`.

        The current binary format maps the ``codes``/``offsets`` sections
        directly from disk (read-only, no copy) when ``mmap`` is true.
        Legacy ``.npz`` archives are still read, behind a
        :class:`DeprecationWarning`.
        """
        from repro.io import storage

        return storage.load_database(path, mmap=mmap)


class DatabaseView(SequenceDatabase):
    """A zero-copy contiguous slice ``[start, stop)`` of a parent database.

    The view's ``codes`` are a numpy slice of the parent's storage
    (``np.shares_memory(view.codes, parent.codes)`` holds); only the
    rebased offset table — ``num_sequences + 1`` int64s — is allocated.
    Identifiers are sliced lazily on first access. Views of views collapse
    onto the root parent, so chains never deepen.
    """

    def __init__(self, parent: SequenceDatabase, start: int, stop: int) -> None:
        if isinstance(parent, DatabaseView):
            start += parent._start
            stop += parent._start
            parent = parent._parent
        if not (isinstance(start, (int, np.integer)) and isinstance(stop, (int, np.integer))):
            raise SequenceError("view bounds must be integers")
        if not 0 <= start < stop <= len(parent):
            raise SequenceError(
                f"view [{start}, {stop}) out of range for {len(parent)} sequences"
            )
        self._parent = parent
        self._start = int(start)
        self._stop = int(stop)
        base = parent._offsets[start]
        # Plain 1-D slices: the codes view shares the parent's buffer.
        self._codes = parent._codes[base : parent._offsets[stop]]
        self._offsets = parent._offsets[start : stop + 1] - base
        self._lengths = None
        self._identifiers = None

    # -- identity ----------------------------------------------------------

    @property
    def parent(self) -> SequenceDatabase:
        """The database whose storage this view shares."""
        return self._parent

    @property
    def base(self) -> SequenceDatabase:
        return self._parent

    @property
    def start(self) -> int:
        """First parent sequence id covered by this view."""
        return self._start

    @property
    def stop(self) -> int:
        """One past the last parent sequence id covered by this view."""
        return self._stop

    def to_global(self, local_seq_id: int) -> int:
        if not 0 <= local_seq_id < len(self):
            raise IndexError(local_seq_id)
        return self._start + local_seq_id

    @property
    def global_ids(self) -> np.ndarray:
        return np.arange(self._start, self._stop, dtype=np.int64)

    def _build_identifiers(self) -> list[str]:
        return self._parent.identifiers[self._start : self._stop]

    def identifier(self, index: int) -> str:
        if not 0 <= index < len(self):
            raise IndexError(index)
        return self._parent.identifier(self._start + index)

    def detach(self) -> SequenceDatabase:
        """Materialise this view as an independent packed database."""
        return SequenceDatabase(
            self._codes.copy(), self._offsets.copy(), list(self.identifiers)
        )
