"""Packed sequence database.

A :class:`SequenceDatabase` stores all subject sequences in one contiguous
``uint8`` code array plus a CSR-style offset table. This is the layout the
GPU kernels scan (coalesced, position-indexed) and the layout FSA-BLAST
iterates, so both the simulator and the CPU reference share one source of
truth for subject data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.alphabet import decode, encode
from repro.errors import SequenceError
from repro.io.fasta import FastaRecord


@dataclass(frozen=True)
class DatabaseStats:
    """Summary statistics of a database, as the paper reports for its inputs."""

    num_sequences: int
    total_residues: int
    mean_length: float
    max_length: int
    min_length: int


class SequenceDatabase:
    """An immutable collection of encoded subject sequences.

    Parameters
    ----------
    codes:
        Concatenated ``uint8`` residue codes of every sequence.
    offsets:
        ``int64`` array of length ``num_sequences + 1``; sequence ``i``
        occupies ``codes[offsets[i]:offsets[i+1]]``.
    identifiers:
        Optional per-sequence identifiers (defaults to ``seq{i}``).
    """

    def __init__(
        self,
        codes: np.ndarray,
        offsets: np.ndarray,
        identifiers: Sequence[str] | None = None,
    ) -> None:
        codes = np.ascontiguousarray(codes, dtype=np.uint8)
        offsets = np.ascontiguousarray(offsets, dtype=np.int64)
        if offsets.ndim != 1 or offsets.size < 1:
            raise SequenceError("offsets must be a 1-D array with at least one entry")
        if offsets[0] != 0 or offsets[-1] != codes.size:
            raise SequenceError("offsets must start at 0 and end at len(codes)")
        if np.any(np.diff(offsets) <= 0):
            raise SequenceError("empty sequences are not allowed in a database")
        self._codes = codes
        self._offsets = offsets
        n = offsets.size - 1
        if identifiers is None:
            identifiers = [f"seq{i}" for i in range(n)]
        if len(identifiers) != n:
            raise SequenceError(f"{len(identifiers)} identifiers for {n} sequences")
        self._identifiers = list(identifiers)

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_strings(cls, sequences: Iterable[str], identifiers: Sequence[str] | None = None) -> "SequenceDatabase":
        """Build a database from residue strings."""
        encoded = [encode(s) for s in sequences]
        if not encoded:
            raise SequenceError("database must contain at least one sequence")
        offsets = np.zeros(len(encoded) + 1, dtype=np.int64)
        np.cumsum([len(e) for e in encoded], out=offsets[1:])
        codes = np.concatenate(encoded) if encoded else np.zeros(0, dtype=np.uint8)
        return cls(codes, offsets, identifiers)

    @classmethod
    def from_records(cls, records: Iterable[FastaRecord]) -> "SequenceDatabase":
        """Build a database from parsed FASTA records."""
        records = list(records)
        return cls.from_strings(
            [r.sequence for r in records], [r.identifier for r in records]
        )

    # -- accessors ---------------------------------------------------------

    @property
    def codes(self) -> np.ndarray:
        """Concatenated residue codes (read-only view)."""
        view = self._codes.view()
        view.flags.writeable = False
        return view

    @property
    def offsets(self) -> np.ndarray:
        """CSR offsets (read-only view)."""
        view = self._offsets.view()
        view.flags.writeable = False
        return view

    @property
    def identifiers(self) -> list[str]:
        return list(self._identifiers)

    @property
    def lengths(self) -> np.ndarray:
        """Length of each sequence."""
        return np.diff(self._offsets)

    def __len__(self) -> int:
        return self._offsets.size - 1

    def sequence(self, index: int) -> np.ndarray:
        """Residue codes of sequence ``index`` (zero-copy view)."""
        if not 0 <= index < len(self):
            raise IndexError(index)
        return self._codes[self._offsets[index] : self._offsets[index + 1]]

    def sequence_str(self, index: int) -> str:
        """Residue string of sequence ``index``."""
        return decode(self.sequence(index))

    def identifier(self, index: int) -> str:
        return self._identifiers[index]

    def stats(self) -> DatabaseStats:
        """Compute summary statistics."""
        lengths = self.lengths
        return DatabaseStats(
            num_sequences=len(self),
            total_residues=int(self._codes.size),
            mean_length=float(lengths.mean()),
            max_length=int(lengths.max()),
            min_length=int(lengths.min()),
        )

    # -- transformations ---------------------------------------------------

    def sorted_by_length(self, descending: bool = True) -> "SequenceDatabase":
        """Return a copy with sequences ordered by length.

        CUDA-BLASTP pre-sorts the database by sequence length to improve the
        load balance of its one-thread-per-sequence kernel; that baseline
        calls this before launching.
        """
        order = np.argsort(self.lengths, kind="stable")
        if descending:
            order = order[::-1]
        return self.subset(order)

    def subset(self, indices: np.ndarray) -> "SequenceDatabase":
        """Return a new database containing ``indices`` in the given order."""
        indices = np.asarray(indices, dtype=np.int64)
        parts = [self.sequence(int(i)) for i in indices]
        offsets = np.zeros(len(parts) + 1, dtype=np.int64)
        np.cumsum([len(p) for p in parts], out=offsets[1:])
        codes = np.concatenate(parts)
        idents = [self._identifiers[int(i)] for i in indices]
        return SequenceDatabase(codes, offsets, idents)

    # -- persistence ---------------------------------------------------------

    def save(self, path) -> None:
        """Write the packed database to ``path`` (.npz).

        The binary form (codes + offsets + identifiers) reloads without
        re-encoding — the role makeblastdb's volumes play for BLAST.
        """
        np.savez_compressed(
            path,
            codes=self._codes,
            offsets=self._offsets,
            identifiers=np.array(self._identifiers, dtype=object),
        )

    @classmethod
    def load(cls, path) -> "SequenceDatabase":
        """Reload a database written by :meth:`save`."""
        with np.load(path, allow_pickle=True) as data:
            return cls(
                data["codes"],
                data["offsets"],
                [str(x) for x in data["identifiers"]],
            )

    def blocks(self, num_blocks: int) -> list["SequenceDatabase"]:
        """Split into ``num_blocks`` contiguous, residue-balanced blocks.

        The CPU/GPU pipeline (Fig. 12) streams the database in blocks; the
        split balances total residues, not sequence counts, so per-block
        kernel time stays roughly even.
        """
        if num_blocks <= 0:
            raise ValueError("num_blocks must be positive")
        num_blocks = min(num_blocks, len(self))
        target = self._codes.size / num_blocks
        bounds = [0]
        for b in range(1, num_blocks):
            cut = int(np.searchsorted(self._offsets, b * target))
            cut = min(max(cut, bounds[-1] + 1), len(self) - (num_blocks - b))
            bounds.append(cut)
        bounds.append(len(self))
        return [
            self.subset(np.arange(bounds[b], bounds[b + 1]))
            for b in range(num_blocks)
        ]
