"""Synthetic workload generation.

The paper evaluates on NCBI ``swissprot`` (~300 k sequences, mean length 370)
and ``env_nr`` (~6 M sequences, mean length ~200) with query sequences of
length 127, 517 and 1054. Those databases are not available offline, so this
module generates statistical stand-ins (see DESIGN.md §2):

* residues are sampled from the Robinson-Robinson background composition, so
  word-hit statistics (hits per subject word, filter survival ratio) match
  real protein data;
* sequence lengths follow a log-normal distribution fitted to each
  database's reported mean;
* a shared *domain library* is implanted — mutated — into both the queries
  and a fraction of subjects, so ungapped extensions, gapped extensions and
  full tracebacks genuinely occur, exercising all four BLASTP phases.

All generation is deterministic given the spec's seed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.alphabet import background_frequencies, decode
from repro.io.database import SequenceDatabase

#: Codes of the 20 standard residues (mutations never introduce B/Z/X/*).
_STANDARD_CODES = np.arange(20, dtype=np.uint8)


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of one synthetic database.

    Attributes
    ----------
    name:
        Workload name, e.g. ``"swissprot_mini"``.
    num_sequences:
        Number of subject sequences to generate.
    mean_length:
        Target mean sequence length (log-normal location is fitted to it).
    length_sigma:
        Log-normal shape parameter; ~0.45 matches protein databases.
    homolog_fraction:
        Fraction of subjects that carry at least one implanted domain.
        The default (2 %) keeps the gapped-extension phase at the same
        small share of total work as real NCBI databases show (Fig. 11's
        13 % gapped / 5 % traceback profile for FSA-BLAST); raising it
        makes homolog-dense workloads for the examples.
    num_domains:
        Size of the shared domain library.
    mutation_rate:
        Per-residue substitution probability applied to implanted domains.
    seed:
        Master seed; the domain library and every sequence derive from it.
    """

    name: str
    num_sequences: int
    mean_length: int
    length_sigma: float = 0.45
    homolog_fraction: float = 0.02
    num_domains: int = 12
    mutation_rate: float = 0.25
    seed: int = 20140519  # IPDPS 2014 conference date
    #: Residue count of the real database this workload stands in for;
    #: searches pass it as ``SearchParams.effective_db_residues`` so
    #: E-value cutoffs behave as they would at the paper's scale.
    emulated_residues: int = 110_000_000

    @property
    def search_params_kwargs(self) -> dict:
        """Keyword arguments wiring this workload into ``SearchParams``."""
        return {"effective_db_residues": self.emulated_residues}

    def scaled(self, factor: float) -> "WorkloadSpec":
        """Return a copy with the sequence count scaled by ``factor``."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        return replace(self, num_sequences=max(1, int(round(self.num_sequences * factor))))


def sample_background(rng: np.random.Generator, length: int) -> np.ndarray:
    """Sample ``length`` residue codes from the Robinson background.

    Public so other generators (the differential-testing case builders in
    :mod:`repro.verify.cases`) can layer on the same composition; ``rng``
    is always caller-supplied, keeping every draw seed-pinned.
    """
    probs = background_frequencies()
    return rng.choice(len(probs), size=length, p=probs).astype(np.uint8)


def _domain_library(spec: WorkloadSpec) -> list[np.ndarray]:
    """The conserved domains shared between queries and homologous subjects."""
    rng = np.random.default_rng(spec.seed ^ 0xD0AA11)
    lengths = rng.integers(30, 80, size=spec.num_domains)
    return [sample_background(rng, int(n)) for n in lengths]


def _mutate(rng: np.random.Generator, domain: np.ndarray, rate: float) -> np.ndarray:
    """Apply point substitutions and an occasional short indel to a domain."""
    out = domain.copy()
    mask = rng.random(out.size) < rate
    out[mask] = rng.choice(_STANDARD_CODES, size=int(mask.sum()))
    # One short indel in ~40% of implants: exercises gapped extension.
    if rng.random() < 0.4 and out.size > 12:
        pos = int(rng.integers(3, out.size - 6))
        gap = int(rng.integers(1, 4))
        if rng.random() < 0.5:
            out = np.delete(out, slice(pos, pos + gap))
        else:
            out = np.insert(out, pos, rng.choice(_STANDARD_CODES, size=gap))
    return out


def _implant(rng: np.random.Generator, seq: np.ndarray, piece: np.ndarray) -> np.ndarray:
    """Overwrite a random window of ``seq`` with ``piece`` (truncated to fit)."""
    if piece.size >= seq.size:
        piece = piece[: max(1, seq.size - 2)]
    start = int(rng.integers(0, seq.size - piece.size + 1))
    seq = seq.copy()
    seq[start : start + piece.size] = piece
    return seq


def generate_database(spec: WorkloadSpec) -> SequenceDatabase:
    """Generate the synthetic database described by ``spec``."""
    rng = np.random.default_rng(spec.seed)
    domains = _domain_library(spec)
    # Fit the log-normal location so that E[length] == mean_length.
    mu = np.log(spec.mean_length) - spec.length_sigma**2 / 2.0
    lengths = rng.lognormal(mean=mu, sigma=spec.length_sigma, size=spec.num_sequences)
    lengths = np.clip(lengths.round().astype(np.int64), 20, 36805)
    sequences: list[np.ndarray] = []
    for n in lengths:
        seq = sample_background(rng, int(n))
        if rng.random() < spec.homolog_fraction:
            for _ in range(int(rng.integers(1, 3))):
                dom = domains[int(rng.integers(0, len(domains)))]
                seq = _implant(rng, seq, _mutate(rng, dom, spec.mutation_rate))
        sequences.append(seq)
    offsets = np.zeros(len(sequences) + 1, dtype=np.int64)
    np.cumsum([len(s) for s in sequences], out=offsets[1:])
    codes = np.concatenate(sequences)
    idents = [f"{spec.name}|{i}" for i in range(len(sequences))]
    return SequenceDatabase(codes, offsets, idents)


def generate_query(length: int, spec: WorkloadSpec, query_seed: int = 0) -> str:
    """Generate a query of exactly ``length`` residues sharing ``spec``'s domains.

    The query embeds several lightly mutated library domains, so it is a
    genuine homolog of the planted subjects — searches return real
    alignments rather than only chance hits.
    """
    if length < 20:
        raise ValueError("query length must be at least 20")
    rng = np.random.default_rng(spec.seed ^ (0xBEEF + query_seed) ^ length)
    domains = _domain_library(spec)
    seq = sample_background(rng, length)
    num_implants = max(1, length // 160)
    for _ in range(num_implants):
        dom = domains[int(rng.integers(0, len(domains)))]
        seq = _implant(rng, seq, _mutate(rng, dom, rate=0.08))
    assert seq.size == length
    return decode(seq)


def standard_queries(spec: WorkloadSpec) -> dict[str, str]:
    """The paper's three query regimes: short (127), medium (517), long (1054)."""
    return {
        f"query{n}": generate_query(n, spec, query_seed=i)
        for i, n in enumerate((127, 517, 1054))
    }


def standard_workloads(scale: float = 1.0) -> dict[str, WorkloadSpec]:
    """Sandbox-sized stand-ins for the paper's two databases.

    ``scale=1.0`` gives 400 swissprot-like and 1200 env_nr-like sequences —
    a deliberate reduction from 300 k / 6 M (DESIGN.md §2). The *relative*
    character of the two databases (env_nr: many short sequences; swissprot:
    fewer, longer ones) is preserved, which is what the cross-database
    comparisons in Fig. 18 depend on.
    """
    specs = {
        "swissprot_mini": WorkloadSpec(
            name="swissprot_mini",
            num_sequences=400,
            mean_length=370,
            emulated_residues=110_000_000,  # swissprot: 150 MB
            # Homologs are rare in real search (tens per 100 M residues);
            # keeping them rare preserves the phase balance of Fig. 11.
            homolog_fraction=0.008,
        ),
        "env_nr_mini": WorkloadSpec(
            name="env_nr_mini",
            num_sequences=1200,
            mean_length=200,
            seed=20140520,
            emulated_residues=1_250_000_000,  # env_nr: 1.7 GB, ~6 M seqs
            homolog_fraction=0.005,
        ),
    }
    if scale != 1.0:
        specs = {k: v.scaled(scale) for k, v in specs.items()}
    return specs
