"""Resident database store: open-by-path, LRU residency, shard handles.

Production BLAST servers keep hot databases resident and stream queries
against them; a :class:`DatabaseStore` is that residency policy in one
place. Callers open databases by path (``mmap``-loaded through
:mod:`repro.io.storage`) or register in-memory databases under a name;
the store keeps at most ``capacity`` path-opened databases alive,
evicting least-recently-used ones, and counts hits/misses/evictions so a
deployment can size its residency budget.

Shard handles expose a database's cluster partitions without recomputing
them per query: :meth:`DatabaseStore.shards` partitions once per
``(key, num_shards, scheme)`` and hands out lightweight
:class:`ShardHandle` references — under the contiguous scheme each shard
is a zero-copy :class:`~repro.io.database.DatabaseView`, so residency is
paid once for the whole node set.

The batch executor, the cluster layer, the CLI and the benchmark harness
all resolve databases through a store instead of ad-hoc loading; the
module-level :func:`get_default_store` is the shared per-process default.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable

from repro.analysis.witness import new_lock, thread_shared
from repro.errors import SequenceError
from repro.io.database import SequenceDatabase

if TYPE_CHECKING:
    from repro.cluster.partition import Partition


@dataclass
class StoreStats:
    """Residency counters of one :class:`DatabaseStore`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0


@dataclass(frozen=True)
class ShardHandle:
    """One shard of a partitioned, store-resident database.

    Resolving :attr:`db` (or :attr:`partition`) goes through the owning
    store's partition cache, so every handle of the same partitioning
    shares one computation — and, under the contiguous scheme, one
    underlying code buffer.
    """

    store: "DatabaseStore" = field(repr=False)
    key: str
    node: int
    num_shards: int
    interleaved: bool = True

    @property
    def partition(self) -> "Partition":
        parts = self.store._partitions(self.key, self.num_shards, self.interleaved)
        return parts[self.node]

    @property
    def db(self) -> SequenceDatabase:
        return self.partition.db


@thread_shared
class DatabaseStore:
    """LRU-resident database handles, opened by path or registered name.

    Parameters
    ----------
    capacity:
        Maximum number of path-opened databases kept resident; the least
        recently used is evicted past that. Registered (named, in-memory)
        databases are pinned and never evicted.
    mmap:
        Whether path opens map the file (the default) or read it eagerly.
    """

    def __init__(self, capacity: int = 4, *, mmap: bool = True) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.mmap = mmap
        self.stats = StoreStats()  # guarded-by: self._lock
        self._lock = new_lock("DatabaseStore._lock")
        self._resident: OrderedDict[str, SequenceDatabase] = OrderedDict()  # guarded-by: self._lock
        self._pinned: dict[str, SequenceDatabase] = {}  # guarded-by: self._lock
        self._shards: dict[tuple[str, int, bool], list] = {}  # guarded-by: self._lock
        self._blocks: dict[tuple[str, int], list] = {}  # guarded-by: self._lock

    # -- keys --------------------------------------------------------------

    @staticmethod
    def _key_for(path) -> str:
        p = Path(path)
        try:
            return str(p.resolve())
        except OSError:  # pragma: no cover - exotic filesystems
            return str(p)

    # -- residency ---------------------------------------------------------

    def open(self, path) -> SequenceDatabase:
        """The database at ``path``, loading it on first use (LRU-cached).

        ``path`` may also be a name previously registered with
        :meth:`add`.
        """
        name = str(path)
        with self._lock:
            if name in self._pinned:
                self.stats.hits += 1
                return self._pinned[name]
            key = self._key_for(path)
            if key in self._resident:
                self.stats.hits += 1
                self._resident.move_to_end(key)
                return self._resident[key]
        # Load outside the lock: opens of different paths proceed in
        # parallel; a racing duplicate load is benign (last one wins).
        db = SequenceDatabase.load(path, mmap=self.mmap)
        with self._lock:
            self.stats.misses += 1
            self._resident[key] = db
            self._resident.move_to_end(key)
            while len(self._resident) > self.capacity:
                evicted_key, _ = self._resident.popitem(last=False)
                self.stats.evictions += 1
                self._drop_shards(evicted_key)
        return db

    def add(self, name: str, db: SequenceDatabase) -> SequenceDatabase:
        """Register an in-memory database under ``name`` (pinned)."""
        with self._lock:
            self._pinned[name] = db
        return db

    def get(
        self, name: str, build: Callable[[], SequenceDatabase] | None = None
    ) -> SequenceDatabase:
        """A registered or path database; ``build`` constructs-and-pins on miss."""
        with self._lock:
            if name in self._pinned:
                self.stats.hits += 1
                return self._pinned[name]
        if build is not None:
            with self._lock:
                self.stats.misses += 1
            return self.add(name, build())
        return self.open(name)

    def resolve(self, db) -> SequenceDatabase:
        """Coerce a database-or-path argument to a database.

        :class:`SequenceDatabase` instances pass through untouched;
        strings and paths go through :meth:`open`.
        """
        if isinstance(db, SequenceDatabase):
            return db
        if isinstance(db, (str, Path)):
            return self.open(db)
        raise SequenceError(f"not a database or path: {db!r}")

    @property
    def resident(self) -> int:
        """Number of databases currently held (pinned + LRU)."""
        with self._lock:
            return len(self._resident) + len(self._pinned)

    def evict(self, path) -> bool:
        """Drop a path-opened database from residency (if present)."""
        key = self._key_for(path)
        with self._lock:
            present = key in self._resident
            if present:
                del self._resident[key]
                self.stats.evictions += 1
                self._drop_shards(key)
            return present

    def clear(self) -> None:
        """Drop every resident and pinned database."""
        with self._lock:
            self._resident.clear()
            self._pinned.clear()
            self._shards.clear()
            self._blocks.clear()

    # -- sharding ----------------------------------------------------------

    def shards(
        self, path, num_shards: int, *, interleaved: bool = True
    ) -> list[ShardHandle]:
        """Shard handles for the database at ``path`` (or registered name).

        The underlying partitioning is computed once per
        ``(database, num_shards, scheme)`` and cached alongside the
        residency entry.
        """
        db = self.resolve(path)
        name = str(path)
        key = name if name in self._pinned else self._key_for(path)
        parts = self._partitions(key, num_shards, interleaved, db=db)
        return [
            ShardHandle(self, key, node=p.node, num_shards=num_shards, interleaved=interleaved)
            for p in parts
        ]

    def _partitions(
        self,
        key: str,
        num_shards: int,
        interleaved: bool,
        db: SequenceDatabase | None = None,
    ) -> list:
        from repro.cluster.partition import partition_database

        cache_key = (key, num_shards, interleaved)
        with self._lock:
            cached = self._shards.get(cache_key)
        if cached is not None:
            return cached
        if db is None:
            db = self._pinned.get(key)
        if db is None:
            db = self.open(key)
        parts = partition_database(db, num_shards, interleaved=interleaved)
        with self._lock:
            self._shards[cache_key] = parts
        return parts

    # -- sweep blocks ------------------------------------------------------

    def blocks(self, path, num_blocks: int) -> list[SequenceDatabase]:
        """The residue-balanced block partition of the database at ``path``.

        The db-sweep executor cuts the same blocks for every batch against
        a database; caching the cut per ``(database, num_blocks)`` means
        successive batches share one list of zero-copy views, alongside
        the residency entry (dropped together on eviction).
        """
        db = self.resolve(path)
        name = str(path)
        key = name if name in self._pinned else self._key_for(path)
        cache_key = (key, num_blocks)
        with self._lock:
            cached = self._blocks.get(cache_key)
        if cached is not None:
            return cached
        cut = db.blocks(num_blocks)
        with self._lock:
            self._blocks[cache_key] = cut
        return cut

    def _drop_shards(self, key: str) -> None:
        # Caller holds the lock.
        for cache_key in [k for k in self._shards if k[0] == key]:
            del self._shards[cache_key]
        for cache_key in [k for k in self._blocks if k[0] == key]:
            del self._blocks[cache_key]


_DEFAULT_STORE: DatabaseStore | None = None
_DEFAULT_LOCK = new_lock("store._DEFAULT_LOCK")


def get_default_store() -> DatabaseStore:
    """The process-wide default store (created on first use)."""
    global _DEFAULT_STORE
    with _DEFAULT_LOCK:
        if _DEFAULT_STORE is None:
            _DEFAULT_STORE = DatabaseStore()
        return _DEFAULT_STORE
