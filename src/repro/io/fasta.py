"""Minimal, strict FASTA reader/writer.

BLAST databases arrive as FASTA; this module parses them into
:class:`FastaRecord` objects that :class:`repro.io.database.SequenceDatabase`
then packs for search. Parsing is line-based and streaming-friendly, and
deliberately strict: silent acceptance of malformed records is how sequence
bugs hide.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

from repro.alphabet import is_valid_sequence
from repro.errors import FastaFormatError


@dataclass(frozen=True)
class FastaRecord:
    """One FASTA record: identifier, free-text description, residue string."""

    identifier: str
    description: str
    sequence: str

    def __len__(self) -> int:
        return len(self.sequence)


def read_fasta(lines: Iterable[str], validate: bool = True) -> Iterator[FastaRecord]:
    """Parse FASTA records from an iterable of lines.

    Parameters
    ----------
    lines:
        Any iterable of text lines (an open file works directly).
    validate:
        When ``True`` (default), reject residue characters outside the
        protein alphabet with :class:`~repro.errors.FastaFormatError`.

    Yields
    ------
    FastaRecord
        Records in file order.
    """
    header: str | None = None
    chunks: list[str] = []
    lineno = 0

    def emit() -> FastaRecord:
        assert header is not None
        seq = "".join(chunks)
        if not seq:
            raise FastaFormatError(f"record {header!r} has an empty sequence")
        if validate and not is_valid_sequence(seq):
            bad = sorted({c for c in seq if not is_valid_sequence(c)})
            raise FastaFormatError(f"record {header!r} contains invalid residues: {bad}")
        ident, _, desc = header.partition(" ")
        return FastaRecord(identifier=ident, description=desc.strip(), sequence=seq)

    for raw in lines:
        lineno += 1
        line = raw.rstrip("\n").rstrip("\r")
        if not line:
            continue
        if line.startswith(";"):  # legacy FASTA comment lines
            continue
        if line.startswith(">"):
            if header is not None:
                yield emit()
            header = line[1:].strip()
            if not header:
                raise FastaFormatError(f"line {lineno}: empty FASTA header")
            chunks = []
        else:
            if header is None:
                raise FastaFormatError(f"line {lineno}: sequence data before any header")
            chunks.append(line.strip())
    if header is not None:
        yield emit()


def read_fasta_file(path: str | Path, validate: bool = True) -> list[FastaRecord]:
    """Read every record from a FASTA file into a list."""
    with open(path, encoding="ascii") as fh:
        return list(read_fasta(fh, validate=validate))


def write_fasta(records: Iterable[FastaRecord], path: str | Path, width: int = 60) -> None:
    """Write records to ``path`` wrapping sequence lines at ``width`` columns."""
    if width <= 0:
        raise ValueError("width must be positive")
    with open(path, "w", encoding="ascii") as fh:
        for rec in records:
            desc = f" {rec.description}" if rec.description else ""
            fh.write(f">{rec.identifier}{desc}\n")
            seq = rec.sequence
            for start in range(0, len(seq), width):
                fh.write(seq[start : start + width] + "\n")
