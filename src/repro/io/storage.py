"""Versioned on-disk database format with ``mmap`` loading.

Layout of a ``.rpdb`` file (all integers little-endian)::

    [ 0, 64)                      header (struct, zero-padded to 64 B)
    [64, 64 + (n+1)*8)            offsets   int64[n + 1]
    ...                           ident_lengths  uint32[n]   (UTF-8 bytes each)
    ...                           ident_blob     the concatenated UTF-8 names
    ...                           codes     uint8[total_residues]

The header records every section size, so readers never scan. ``codes``
and ``offsets`` are raw array dumps: :func:`load_database` maps them
straight from the file (``np.memmap``, mode ``"r"``) — a reload touches
no residue bytes until a kernel actually scans them, and the arrays come
back read-only. Nothing in the format is pickled, unlike the legacy
``.npz`` archives (still readable, behind a :class:`DeprecationWarning`).

Versioning: :data:`FORMAT_VERSION` is bumped on any layout change; a
reader refuses files from the future rather than misparsing them.

Separate from the *format* version, the header carries a *content*
version stamp (``db_version``): a monotonically bumped int64 that names
the database's content generation. Rebuilding or refreshing a database
bumps the stamp (``repro db stamp``, :func:`stamp_db_version`), and the
serving layer keys its result cache on it — so cached results for a
replaced database become unreachable the moment the stamp changes,
without any byte-level content hashing. The stamp lives in what was
reserved header padding, so format version 1 files written before it
read back as stamp 0.
"""

from __future__ import annotations

import struct
import warnings
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import SequenceError

if TYPE_CHECKING:
    from repro.io.database import SequenceDatabase

#: File magic of the binary database format.
MAGIC = b"RPDB"
#: Current format version (bumped on any layout change).
FORMAT_VERSION = 1
#: Zip local-file magic — how legacy ``.npz`` archives are recognised.
_ZIP_MAGIC = b"PK\x03\x04"

#: magic, version, flags, num_sequences, codes_len, ident_blob_len,
#: db_version (the content stamp; 0 on files written before it existed).
_HEADER = struct.Struct("<4sHHqqqq")
#: Fixed header span; offsets start here, 8-byte aligned for int64 maps.
HEADER_SIZE = 64
#: Byte offset of the ``db_version`` stamp within the header (the field
#: :func:`stamp_db_version` rewrites in place).
_STAMP_OFFSET = 32
#: ``db_version`` given to newly saved databases.
DEFAULT_DB_VERSION = 1


def _section_layout(num_sequences: int, codes_len: int, ident_blob_len: int):
    """Byte offsets of (offsets, ident_lengths, ident_blob, codes)."""
    off_offsets = HEADER_SIZE
    off_ident_lengths = off_offsets + (num_sequences + 1) * 8
    off_ident_blob = off_ident_lengths + num_sequences * 4
    off_codes = off_ident_blob + ident_blob_len
    return off_offsets, off_ident_lengths, off_ident_blob, off_codes


def save_database(db: "SequenceDatabase", path, *, db_version: int = DEFAULT_DB_VERSION) -> None:
    """Write ``db`` to ``path`` in the current binary format.

    ``db_version`` is the content stamp recorded in the header — bump it
    (or :func:`stamp_db_version` in place) when the database content is
    regenerated, so version-keyed caches stop serving stale results.
    """
    path = Path(path)
    identifiers = db.identifiers
    ident_bytes = [ident.encode("utf-8") for ident in identifiers]
    ident_lengths = np.asarray([len(b) for b in ident_bytes], dtype="<u4")
    blob = b"".join(ident_bytes)
    header = _HEADER.pack(
        MAGIC, FORMAT_VERSION, 0, len(db), int(db.codes.size), len(blob), int(db_version)
    )
    with open(path, "wb") as f:
        f.write(header.ljust(HEADER_SIZE, b"\x00"))
        f.write(np.ascontiguousarray(db.offsets, dtype="<i8").tobytes())
        f.write(ident_lengths.tobytes())
        f.write(blob)
        f.write(np.ascontiguousarray(db.codes, dtype=np.uint8).tobytes())


def read_header(path) -> dict:
    """Parse and validate a binary database header without loading data.

    Returns the header fields plus section byte offsets — what ``repro db
    inspect`` prints.
    """
    path = Path(path)
    with open(path, "rb") as f:
        raw = f.read(HEADER_SIZE)
    if len(raw) < _HEADER.size or raw[:4] != MAGIC:
        raise SequenceError(f"{path}: not a {MAGIC.decode()} database file")
    (magic, version, flags, num_sequences, codes_len, ident_blob_len, db_version) = (
        _HEADER.unpack(raw[: _HEADER.size])
    )
    if version > FORMAT_VERSION:
        raise SequenceError(
            f"{path}: format version {version} is newer than this reader "
            f"(understands <= {FORMAT_VERSION})"
        )
    if num_sequences < 1 or codes_len < num_sequences:
        raise SequenceError(f"{path}: corrupt header")
    off_offsets, off_ident_lengths, off_ident_blob, off_codes = _section_layout(
        num_sequences, codes_len, ident_blob_len
    )
    return {
        "version": version,
        "flags": flags,
        "db_version": db_version,
        "num_sequences": num_sequences,
        "codes_len": codes_len,
        "ident_blob_len": ident_blob_len,
        "off_offsets": off_offsets,
        "off_ident_lengths": off_ident_lengths,
        "off_ident_blob": off_ident_blob,
        "off_codes": off_codes,
        "file_bytes": path.stat().st_size,
    }


def read_db_version(path) -> int:
    """The content version stamp of a saved binary database.

    Files written before the stamp existed read back as ``0`` (the field
    occupies formerly reserved, zero-padded header space).
    """
    return int(read_header(path)["db_version"])


def stamp_db_version(path, db_version: int | None = None) -> int:
    """Rewrite a saved database's content stamp in place; return the new value.

    ``db_version=None`` bumps the current stamp by one. Only the 8-byte
    header field is touched — sections and mmaps of the old stamp's
    content are unaffected, which is exactly the point: the stamp names a
    content *generation* for cache invalidation, it is not a checksum.
    """
    head = read_header(path)  # validates magic/version before writing
    new_version = head["db_version"] + 1 if db_version is None else int(db_version)
    with open(path, "r+b") as f:
        f.seek(_STAMP_OFFSET)
        f.write(struct.pack("<q", new_version))
    return new_version


def sniff_format(path) -> str:
    """Classify ``path``: ``"binary"``, ``"npz"`` (legacy) or ``"unknown"``."""
    try:
        with open(path, "rb") as f:
            head = f.read(4)
    except OSError:
        return "unknown"
    if head == MAGIC:
        return "binary"
    if head == _ZIP_MAGIC:
        return "npz"
    return "unknown"


def load_database(path, *, mmap: bool = True) -> "SequenceDatabase":
    """Load a database, dispatching on the file's magic.

    Binary files map their ``codes``/``offsets`` sections from disk when
    ``mmap`` is true (read-only, zero-copy); legacy ``.npz`` archives go
    through the deprecated pickle-enabled reader.
    """
    fmt = sniff_format(path)
    if fmt == "binary":
        return _load_binary(path, mmap=mmap)
    if fmt == "npz":
        return load_legacy_npz(path)
    raise SequenceError(f"{path}: not a database file (unknown magic)")


def _load_binary(path, *, mmap: bool) -> "SequenceDatabase":
    from repro.io.database import SequenceDatabase

    path = Path(path)
    head = read_header(path)
    n = head["num_sequences"]
    expected = head["off_codes"] + head["codes_len"]
    if head["file_bytes"] < expected:
        raise SequenceError(
            f"{path}: truncated ({head['file_bytes']} bytes, need {expected})"
        )
    if mmap:
        offsets = np.memmap(
            path, dtype="<i8", mode="r", offset=head["off_offsets"], shape=(n + 1,)
        )
        codes = np.memmap(
            path,
            dtype=np.uint8,
            mode="r",
            offset=head["off_codes"],
            shape=(head["codes_len"],),
        )
    else:
        with open(path, "rb") as f:
            f.seek(head["off_offsets"])
            offsets = np.fromfile(f, dtype="<i8", count=n + 1)
            f.seek(head["off_codes"])
            codes = np.fromfile(f, dtype=np.uint8, count=head["codes_len"])
    with open(path, "rb") as f:
        f.seek(head["off_ident_lengths"])
        ident_lengths = np.fromfile(f, dtype="<u4", count=n)
        blob = f.read(head["ident_blob_len"])
    ends = np.cumsum(ident_lengths)
    identifiers = [
        blob[start:end].decode("utf-8")
        for start, end in zip(ends - ident_lengths, ends)
    ]
    return SequenceDatabase(codes, offsets, identifiers)


def load_legacy_npz(path) -> "SequenceDatabase":
    """Read a pre-format-1 ``.npz`` archive (deprecated).

    The archive stores identifiers as a pickled object array, so loading
    requires ``allow_pickle`` — one of the reasons the binary format
    replaced it. Re-save with :meth:`SequenceDatabase.save` to migrate.
    """
    from repro.io.database import SequenceDatabase

    warnings.warn(
        "legacy .npz database archives are deprecated; re-save with "
        "SequenceDatabase.save() to migrate to the mmap-able binary format",
        DeprecationWarning,
        stacklevel=2,
    )
    with np.load(path, allow_pickle=True) as data:
        return SequenceDatabase(
            data["codes"],
            data["offsets"],
            [str(x) for x in data["identifiers"]],
        )
