"""Search-result rendering: BLAST-style pairwise report and tabular output.

Downstream tooling expects BLAST's two classic formats: the human-readable
pairwise report and the 12-column tabular format (``-outfmt 6``), whose
columns are::

    qseqid sseqid pident length mismatch gapopen qstart qend sstart send
    evalue bitscore

Coordinates are converted to BLAST's 1-based inclusive convention on
output (everything inside the library is 0-based).
"""

from __future__ import annotations

from typing import Iterable, TextIO

from repro.core.results import Alignment, SearchResult

#: Column names of the tabular format, for documentation and tests.
TABULAR_COLUMNS = (
    "qseqid",
    "sseqid",
    "pident",
    "length",
    "mismatch",
    "gapopen",
    "qstart",
    "qend",
    "sstart",
    "send",
    "evalue",
    "bitscore",
)


def _gap_opens(alignment: Alignment) -> int:
    """Number of gap *openings* (runs of '-' in either row)."""
    opens = 0
    prev = None  # 'q', 's' or None
    for ca, cb in zip(alignment.aligned_query, alignment.aligned_subject):
        cur = "q" if ca == "-" else ("s" if cb == "-" else None)
        if cur is not None and cur != prev:
            opens += 1
        prev = cur
    return opens


def tabular_line(query_id: str, a: Alignment) -> str:
    """One outfmt-6 line for an alignment."""
    aligned_cols = a.length - a.gaps
    mismatch = aligned_cols - a.identities
    pident = 100.0 * a.identities / a.length if a.length else 0.0
    fields = (
        query_id,
        a.subject_identifier,
        f"{pident:.2f}",
        str(a.length),
        str(mismatch),
        str(_gap_opens(a)),
        str(a.query_start + 1),
        str(a.query_end + 1),
        str(a.subject_start + 1),
        str(a.subject_end + 1),
        f"{a.evalue:.2e}",
        f"{a.bit_score:.1f}",
    )
    return "\t".join(fields)


def write_tabular(
    query_id: str, result: SearchResult, out: TextIO, header: bool = False
) -> None:
    """Write the whole result in tabular format."""
    if header:
        out.write("# " + "\t".join(TABULAR_COLUMNS) + "\n")
    for a in result.alignments:
        out.write(tabular_line(query_id, a) + "\n")


def format_pairwise(
    query_id: str,
    result: SearchResult,
    line_width: int = 60,
    max_alignments: int | None = None,
) -> str:
    """The classic BLAST pairwise report as a string."""
    lines: list[str] = []
    lines.append(f"Query= {query_id}")
    lines.append(f"         ({result.query_length} letters)")
    lines.append("")
    lines.append(
        f"Database: {result.db_sequences:,} sequences; "
        f"{result.db_residues:,} total letters"
    )
    lines.append("")
    shown = result.alignments[: max_alignments or len(result.alignments)]
    if not shown:
        lines.append(" ***** No hits found ******")
        return "\n".join(lines) + "\n"

    lines.append("Sequences producing significant alignments:"
                 "                          (Bits)  Value")
    lines.append("")
    for a in shown:
        name = a.subject_identifier[:60]
        lines.append(f"{name:<66}{a.bit_score:7.1f}  {a.evalue:.0e}")
    lines.append("")

    for a in shown:
        lines.append(f">{a.subject_identifier}")
        lines.append(
            f" Score = {a.bit_score:.1f} bits ({a.score}),  "
            f"Expect = {a.evalue:.0e}"
        )
        pident = 100 * a.identities // a.length if a.length else 0
        ppos = 100 * a.positives // a.length if a.length else 0
        lines.append(
            f" Identities = {a.identities}/{a.length} ({pident}%), "
            f"Positives = {a.positives}/{a.length} ({ppos}%), "
            f"Gaps = {a.gaps}/{a.length}"
        )
        lines.append("")
        qpos, spos = a.query_start + 1, a.subject_start + 1
        for start in range(0, a.length, line_width):
            q_seg = a.aligned_query[start : start + line_width]
            m_seg = a.midline[start : start + line_width]
            s_seg = a.aligned_subject[start : start + line_width]
            q_adv = sum(1 for c in q_seg if c != "-")
            s_adv = sum(1 for c in s_seg if c != "-")
            lines.append(f"Query  {qpos:<5} {q_seg}  {qpos + q_adv - 1}")
            lines.append(f"             {m_seg}")
            lines.append(f"Sbjct  {spos:<5} {s_seg}  {spos + s_adv - 1}")
            lines.append("")
            qpos += q_adv
            spos += s_adv
    return "\n".join(lines) + "\n"


def summary_table(results: Iterable[tuple[str, SearchResult]]) -> str:
    """A compact multi-query summary (one line per query)."""
    lines = [f"{'query':<20} {'hits':>9} {'seeds':>8} {'gapped':>7} {'reported':>9}"]
    for qid, r in results:
        lines.append(
            f"{qid:<20} {r.num_hits:>9} {r.num_seeds:>8} "
            f"{r.num_gapped_extensions:>7} {r.num_reported:>9}"
        )
    return "\n".join(lines) + "\n"
