"""Sequence input/output: FASTA parsing, packed databases, synthetic workloads."""

from repro.io.database import DatabaseStats, SequenceDatabase
from repro.io.fasta import FastaRecord, read_fasta, read_fasta_file, write_fasta
from repro.io.report import format_pairwise, summary_table, tabular_line, write_tabular
from repro.io.workloads import (
    WorkloadSpec,
    generate_database,
    generate_query,
    standard_queries,
    standard_workloads,
)

__all__ = [
    "DatabaseStats",
    "FastaRecord",
    "SequenceDatabase",
    "WorkloadSpec",
    "format_pairwise",
    "generate_database",
    "generate_query",
    "read_fasta",
    "read_fasta_file",
    "standard_queries",
    "standard_workloads",
    "summary_table",
    "tabular_line",
    "write_fasta",
    "write_tabular",
]
