"""Sequence input/output: FASTA parsing, packed databases and zero-copy
views, the versioned on-disk format, the resident store, synthetic
workloads."""

from repro.io.database import DatabaseStats, DatabaseView, SequenceDatabase
from repro.io.fasta import FastaRecord, read_fasta, read_fasta_file, write_fasta
from repro.io.report import format_pairwise, summary_table, tabular_line, write_tabular
from repro.io.store import DatabaseStore, ShardHandle, StoreStats, get_default_store
from repro.io.workloads import (
    WorkloadSpec,
    generate_database,
    generate_query,
    standard_queries,
    standard_workloads,
)

__all__ = [
    "DatabaseStats",
    "DatabaseStore",
    "DatabaseView",
    "FastaRecord",
    "SequenceDatabase",
    "ShardHandle",
    "StoreStats",
    "get_default_store",
    "WorkloadSpec",
    "format_pairwise",
    "generate_database",
    "generate_query",
    "read_fasta",
    "read_fasta_file",
    "standard_queries",
    "standard_workloads",
    "summary_table",
    "tabular_line",
    "write_fasta",
    "write_tabular",
]
