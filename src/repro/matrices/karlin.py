"""Karlin-Altschul statistics: lambda, K, bit scores and E-values.

BLAST reports an alignment's significance as an E-value derived from its raw
score via ``E = K * m * n * exp(-lambda * S)``. For ungapped alignments
``lambda`` is the unique positive root of ``sum_ij p_i p_j exp(lambda*s_ij)
= 1`` and ``K`` follows from the score distribution; for gapped alignments
no closed form exists and BLAST ships empirically fitted constants per
(matrix, gap costs) combination. We solve the ungapped case numerically and
table the gapped constants for the matrix/gap settings this repo supports,
exactly as NCBI BLAST does.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy.optimize import brentq

from repro.alphabet import background_frequencies
from repro.matrices.blosum import ScoringMatrix


@dataclass(frozen=True)
class KarlinParams:
    """Statistical parameters of a scoring system.

    Attributes
    ----------
    lam:
        The Karlin-Altschul lambda (nats per score unit).
    K:
        The Karlin-Altschul K constant.
    H:
        Relative entropy of the scoring system (nats per aligned pair).
    """

    lam: float
    K: float
    H: float

    def bit_score(self, raw_score: float) -> float:
        """Convert a raw score to a normalised bit score."""
        return (self.lam * raw_score - math.log(self.K)) / math.log(2.0)

    def evalue(self, raw_score: float, query_len: int, db_len: int) -> float:
        """Expected number of chance alignments scoring >= ``raw_score``.

        ``query_len`` and ``db_len`` are the effective search-space sides;
        we use the plain lengths (length adjustment is a refinement BLAST
        applies for short queries and is out of scope here).
        """
        return self.K * query_len * db_len * math.exp(-self.lam * raw_score)

    def score_for_evalue(self, evalue: float, query_len: int, db_len: int) -> int:
        """Smallest integer raw score whose E-value is <= ``evalue``.

        Used to derive phase cutoffs (e.g. the gapped-trigger score) from a
        significance target, the way BLAST derives its defaults.
        """
        if evalue <= 0:
            raise ValueError("evalue must be positive")
        s = math.log(self.K * query_len * db_len / evalue) / self.lam
        return max(1, math.ceil(s))


def _solve_lambda(scores: np.ndarray, probs: np.ndarray) -> float:
    """Solve sum_ij p_i p_j exp(lambda * s_ij) = 1 for lambda > 0."""
    pq = np.outer(probs, probs)

    def phi(lam: float) -> float:
        return float(np.sum(pq * np.exp(lam * scores)) - 1.0)

    # phi(0) == 0 always; for a valid scoring system (negative expectation,
    # positive max score) phi dips negative then grows without bound, so the
    # positive root is bracketed between a small epsilon and an upper bound
    # found by doubling.
    lo = 1e-6
    if phi(lo) >= 0:
        raise ValueError("scoring system has non-negative expected score")
    hi = 0.5
    while phi(hi) < 0:
        hi *= 2.0
        if hi > 64:  # pragma: no cover - defensive
            raise RuntimeError("failed to bracket lambda")
    return float(brentq(phi, lo, hi, xtol=1e-12))


def ungapped_params(matrix: ScoringMatrix) -> KarlinParams:
    """Compute ungapped Karlin-Altschul parameters for a scoring matrix.

    Lambda is solved exactly; H is the relative entropy at that lambda; K is
    estimated with the standard geometric-decay approximation
    ``K ~ H/lambda * exp(-1.9*H/lambda)`` renormalised against the known
    BLOSUM62 anchor (lambda=0.3176, K=0.134), which keeps K within a few
    percent for BLOSUM-family matrices — sufficient because E-values depend
    on K only logarithmically.
    """
    probs = background_frequencies()
    active = probs > 0
    scores = matrix.scores[np.ix_(active, active)].astype(np.float64)
    p = probs[active]
    p = p / p.sum()
    lam = _solve_lambda(scores, p)
    pq = np.outer(p, p)
    weights = pq * np.exp(lam * scores)
    H = float(lam * np.sum(weights * scores))
    # Anchor-calibrated K estimate (see docstring).
    ratio = H / lam
    k_shape = ratio * math.exp(-1.9 * ratio)
    anchor_shape = (0.4012 / 0.3176) * math.exp(-1.9 * (0.4012 / 0.3176))
    K = 0.134 * k_shape / anchor_shape
    return KarlinParams(lam=lam, K=K, H=H)


# NCBI's fitted gapped constants, keyed by (matrix name, gap_open,
# gap_extend). Values from the BLAST+ source (blast_stat.c).
_GAPPED_TABLE: dict[tuple[str, int, int], KarlinParams] = {
    ("BLOSUM62", 11, 1): KarlinParams(lam=0.267, K=0.041, H=0.14),
    ("BLOSUM62", 10, 1): KarlinParams(lam=0.243, K=0.024, H=0.10),
    ("BLOSUM62", 12, 1): KarlinParams(lam=0.281, K=0.057, H=0.17),
    ("BLOSUM62", 9, 2): KarlinParams(lam=0.286, K=0.058, H=0.18),
    ("BLOSUM62", 11, 2): KarlinParams(lam=0.297, K=0.082, H=0.27),
}


def length_adjustment(
    params: KarlinParams,
    query_length: int,
    db_residues: int,
    db_sequences: int,
    iterations: int = 20,
) -> int:
    """BLAST's edge-effect correction to the search space.

    An alignment of expected length ``l`` cannot start in the last ``l``
    residues of the query or of a subject, so the effective search space
    shrinks. BLAST solves the fixed point::

        l = ln(K * (m - l) * (n - N*l)) / H

    iteratively (``m`` query length, ``n`` total residues, ``N`` sequence
    count) and clamps so effective lengths stay positive.

    Returns
    -------
    int
        The length adjustment ``l`` (0 when the search space is too small
        for the correction to apply).
    """
    if query_length <= 0 or db_residues <= 0 or db_sequences <= 0:
        raise ValueError("search-space dimensions must be positive")
    if params.H <= 0:
        return 0
    ell = 0.0
    for _ in range(iterations):
        m_eff = max(1.0, query_length - ell)
        n_eff = max(1.0, db_residues - db_sequences * ell)
        nxt = math.log(max(params.K * m_eff * n_eff, math.e)) / params.H
        # Keep the effective lengths positive (BLAST's clamp).
        nxt = min(nxt, query_length - 1, db_residues / db_sequences - 1)
        nxt = max(nxt, 0.0)
        if abs(nxt - ell) < 0.5:
            ell = nxt
            break
        ell = nxt
    return int(ell)


def effective_search_space(
    params: KarlinParams,
    query_length: int,
    db_residues: int,
    db_sequences: int,
) -> float:
    """Edge-corrected ``m' * n'`` product BLAST plugs into E-values."""
    ell = length_adjustment(params, query_length, db_residues, db_sequences)
    m_eff = max(1, query_length - ell)
    n_eff = max(1, db_residues - db_sequences * ell)
    return float(m_eff) * float(n_eff)


def gapped_params(
    matrix: ScoringMatrix,
    gap_open: int | None = None,
    gap_extend: int | None = None,
) -> KarlinParams:
    """Look up gapped Karlin-Altschul parameters.

    Falls back to the ungapped parameters scaled by the canonical
    gapped/ungapped lambda ratio of BLOSUM62 when the exact combination is
    not tabled — adequate for the synthetic matrices used in tests, where
    only score *ordering* matters.
    """
    go = matrix.gap_open if gap_open is None else gap_open
    ge = matrix.gap_extend if gap_extend is None else gap_extend
    key = (matrix.name, go, ge)
    if key in _GAPPED_TABLE:
        return _GAPPED_TABLE[key]
    base = ungapped_params(matrix)
    scale = 0.267 / 0.3176
    return KarlinParams(lam=base.lam * scale, K=base.K * 0.3, H=base.H * 0.35)
