"""Deriving BLOSUM-family matrices from alignment blocks (Henikoff &
Henikoff, 1992).

BLOSUM62 is not axiomatic — it is computed from ungapped alignment blocks:
sequences more than L % identical are clustered (and down-weighted so deep
families don't dominate), substitution pairs are counted between clusters,
and each score is the rounded log-odds of the observed pair frequency over
the frequency expected from residue abundances, in half-bit units::

    s_ij = round(2 * log2(q_ij / e_ij))

Having the constructor in the library closes a substrate loop: the scoring
matrix the whole search stack consumes can be *rebuilt* from data, and the
tests recover a BLOSUM62-correlated matrix from synthetic blocks sampled
through BLOSUM62's own substitution statistics.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.alphabet import ALPHABET, ALPHABET_SIZE, encode
from repro.matrices.blosum import ScoringMatrix

#: Number of real amino acids (blocks only contain standard residues).
_NUM_AA = 20


def cluster_sequences(rows: np.ndarray, identity_threshold: float) -> np.ndarray:
    """Single-linkage clustering of block rows at an identity threshold.

    Two sequences with >= ``identity_threshold`` fractional identity join
    the same cluster (transitively). Returns the cluster id of each row.
    """
    n = rows.shape[0]
    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for i in range(n):
        for j in range(i + 1, n):
            identity = float((rows[i] == rows[j]).mean())
            if identity >= identity_threshold:
                ri, rj = find(i), find(j)
                if ri != rj:
                    parent[ri] = rj
    labels = np.array([find(i) for i in range(n)])
    _, compact = np.unique(labels, return_inverse=True)
    return compact


def count_block_pairs(
    rows: np.ndarray, clusters: np.ndarray
) -> np.ndarray:
    """Weighted substitution-pair counts of one block.

    Pairs are counted between *different* clusters only, each sequence
    weighted by ``1 / |its cluster|`` — the Henikoff correction that stops
    near-duplicate sequences from drowning the statistics.
    """
    counts = np.zeros((_NUM_AA, _NUM_AA), dtype=np.float64)
    sizes = np.bincount(clusters)
    weights = 1.0 / sizes[clusters]
    n = rows.shape[0]
    for i in range(n):
        for j in range(i + 1, n):
            if clusters[i] == clusters[j]:
                continue
            w = weights[i] * weights[j]
            a, b = rows[i], rows[j]
            np.add.at(counts, (a, b), w)
            np.add.at(counts, (b, a), w)
    return counts


def blosum_from_blocks(
    blocks: Sequence[Sequence[str]],
    identity_threshold: float = 0.62,
    name: str | None = None,
    gap_open: int = 11,
    gap_extend: int = 1,
) -> ScoringMatrix:
    """Compute a BLOSUM-style matrix from ungapped alignment blocks.

    Parameters
    ----------
    blocks:
        Each block is a list of equal-length residue strings (an ungapped
        multiple alignment of a conserved region).
    identity_threshold:
        The clustering level: 0.62 yields a BLOSUM62-style matrix, lower
        thresholds give matrices for more diverged comparisons (BLOSUM45),
        higher for closer ones (BLOSUM80).

    Returns
    -------
    ScoringMatrix
        Half-bit log-odds scores over the full 24-letter alphabet
        (ambiguity codes scored as abundance-weighted averages, ``*``
        as the conventional -4/+1).
    """
    if not 0 < identity_threshold <= 1:
        raise ValueError("identity_threshold must be in (0, 1]")
    total = np.zeros((_NUM_AA, _NUM_AA), dtype=np.float64)
    for block in blocks:
        if len(block) < 2:
            continue
        lengths = {len(s) for s in block}
        if len(lengths) != 1:
            raise ValueError("block rows must have equal length")
        rows = np.stack([encode(s) for s in block])
        if int(rows.max()) >= _NUM_AA:
            raise ValueError("blocks may only contain the 20 standard residues")
        clusters = cluster_sequences(rows, identity_threshold)
        if clusters.max() == 0:
            continue  # one cluster: no between-cluster pairs
        total += count_block_pairs(rows, clusters)
    if total.sum() == 0:
        raise ValueError("no between-cluster pairs in the blocks")

    q = total / total.sum()
    p = q.sum(axis=1)
    expected = np.outer(p, p)
    scores20 = np.zeros((_NUM_AA, _NUM_AA), dtype=np.int16)
    for i in range(_NUM_AA):
        for j in range(_NUM_AA):
            if q[i, j] > 0 and expected[i, j] > 0:
                s = 2.0 * math.log2(q[i, j] / expected[i, j])
            else:
                # Unobserved pair: the conventional strong penalty.
                s = -4.0
            scores20[i, j] = int(round(s))

    full = np.full((ALPHABET_SIZE, ALPHABET_SIZE), -1, dtype=np.int16)
    full[:_NUM_AA, :_NUM_AA] = scores20
    # Ambiguity codes: B averages N/D, Z averages Q/E, X averages everything
    # (abundance-weighted), * is -4 against all and +1 with itself.
    idx = {c: ALPHABET.index(c) for c in "NDQEBZX*"}
    for amb, pair in (("B", ("N", "D")), ("Z", ("Q", "E"))):
        cols = [idx[c] for c in pair]
        avg = np.round(scores20[:, cols].mean(axis=1)).astype(np.int16)
        full[: _NUM_AA, idx[amb]] = avg
        full[idx[amb], : _NUM_AA] = avg
        full[idx[amb], idx[amb]] = int(
            round(scores20[np.ix_(cols, cols)].mean())
        )
    x_avg = np.round((scores20 * p[None, :]).sum(axis=1)).astype(np.int16)
    full[: _NUM_AA, idx["X"]] = x_avg
    full[idx["X"], : _NUM_AA] = x_avg
    full[idx["X"], idx["X"]] = -1
    star = idx["*"]
    full[star, :] = -4
    full[:, star] = -4
    full[star, star] = 1
    # Cross ambiguity entries (B/Z/X against each other): mild penalty.
    for a in ("B", "Z", "X"):
        for b in ("B", "Z", "X"):
            if a != b:
                full[idx[a], idx[b]] = -1
    full[idx["B"], idx["*"]] = full[idx["*"], idx["B"]] = -4
    # Symmetrise defensively (rounding asymmetries from the averages).
    full = ((full + full.T) / 2).round().astype(np.int16)

    return ScoringMatrix(
        name=name or f"BLOSUM{int(identity_threshold * 100)}(derived)",
        scores=full,
        gap_open=gap_open,
        gap_extend=gap_extend,
    )
