"""Position-specific scoring matrix (PSSM) construction.

The PSSM is the query-side scoring structure of Fig. 2(b): column ``i``
holds, for every alphabet symbol, the score of aligning that symbol against
``query[i]``. Scoring a subject residue against a query position is then a
single lookup ``pssm[subject_code, i]`` instead of the two loads the plain
substitution matrix needs — the memory-traffic trade-off the paper's
hierarchical-buffering study (Fig. 15) measures.
"""

from __future__ import annotations

import numpy as np

from repro.matrices.blosum import ScoringMatrix

#: Bytes per PSSM column: one int16 score for each alphabet symbol, padded to
#: 32 rows exactly as the paper budgets it ("each column contains 64 bytes,
#: 32 rows with 2 bytes each").
PSSM_COLUMN_BYTES = 32 * 2


def build_pssm(query_codes: np.ndarray, matrix: ScoringMatrix) -> np.ndarray:
    """Build the PSSM for an encoded query.

    Parameters
    ----------
    query_codes:
        ``uint8`` residue codes of the query sequence.
    matrix:
        Substitution matrix providing the per-pair scores.

    Returns
    -------
    numpy.ndarray
        ``int16`` array of shape ``(ALPHABET_SIZE, len(query))``;
        ``pssm[code, i] == matrix.score(code, query[i])``.
    """
    query_codes = np.asarray(query_codes, dtype=np.uint8)
    if query_codes.ndim != 1:
        raise ValueError("query must be a 1-D code array")
    if query_codes.size == 0:
        raise ValueError("query must be non-empty")
    # Fancy-index the matrix columns by the query codes: one column per
    # query position, rows indexed by subject residue code.
    return matrix.scores[:, query_codes].astype(np.int16)


def pssm_memory_bytes(query_length: int) -> int:
    """Device-memory footprint of a PSSM for a query of the given length.

    This is the quantity the §3.5 placement policy compares against the
    48-kB shared-memory budget: the PSSM fits while ``query_length <= 768``.
    """
    if query_length <= 0:
        raise ValueError("query_length must be positive")
    return query_length * PSSM_COLUMN_BYTES
