"""Substitution matrices.

:data:`BLOSUM62` is the standard NCBI matrix, stored in the row/column order
of :data:`repro.alphabet.ALPHABET` (``ARNDCQEGHILKMFPSTWYVBZX*``). It is the
only matrix the paper evaluates; :func:`match_mismatch_matrix` exists for
tests and toy examples where hand-checkable scores are needed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.alphabet import ALPHABET, ALPHABET_SIZE

_BLOSUM62_TABLE = """
A  4 -1 -2 -2  0 -1 -1  0 -2 -1 -1 -1 -1 -2 -1  1  0 -3 -2  0 -2 -1  0 -4
R -1  5  0 -2 -3  1  0 -2  0 -3 -2  2 -1 -3 -2 -1 -1 -3 -2 -3 -1  0 -1 -4
N -2  0  6  1 -3  0  0  0  1 -3 -3  0 -2 -3 -2  1  0 -4 -2 -3  3  0 -1 -4
D -2 -2  1  6 -3  0  2 -1 -1 -3 -4 -1 -3 -3 -1  0 -1 -4 -3 -3  4  1 -1 -4
C  0 -3 -3 -3  9 -3 -4 -3 -3 -1 -1 -3 -1 -2 -3 -1 -1 -2 -2 -1 -3 -3 -2 -4
Q -1  1  0  0 -3  5  2 -2  0 -3 -2  1  0 -3 -1  0 -1 -2 -1 -2  0  3 -1 -4
E -1  0  0  2 -4  2  5 -2  0 -3 -3  1 -2 -3 -1  0 -1 -3 -2 -2  1  4 -1 -4
G  0 -2  0 -1 -3 -2 -2  6 -2 -4 -4 -2 -3 -3 -2  0 -2 -2 -3 -3 -1 -2 -1 -4
H -2  0  1 -1 -3  0  0 -2  8 -3 -3 -1 -2 -1 -2 -1 -2 -2  2 -3  0  0 -1 -4
I -1 -3 -3 -3 -1 -3 -3 -4 -3  4  2 -3  1  0 -3 -2 -1 -3 -1  3 -3 -3 -1 -4
L -1 -2 -3 -4 -1 -2 -3 -4 -3  2  4 -2  2  0 -3 -2 -1 -2 -1  1 -4 -3 -1 -4
K -1  2  0 -1 -3  1  1 -2 -1 -3 -2  5 -1 -3 -1  0 -1 -3 -2 -2  0  1 -1 -4
M -1 -1 -2 -3 -1  0 -2 -3 -2  1  2 -1  5  0 -2 -1 -1 -1 -1  1 -3 -1 -1 -4
F -2 -3 -3 -3 -2 -3 -3 -3 -1  0  0 -3  0  6 -4 -2 -2  1  3 -1 -3 -3 -1 -4
P -1 -2 -2 -1 -3 -1 -1 -2 -2 -3 -3 -1 -2 -4  7 -1 -1 -4 -3 -2 -2 -1 -2 -4
S  1 -1  1  0 -1  0  0  0 -1 -2 -2  0 -1 -2 -1  4  1 -3 -2 -2  0  0  0 -4
T  0 -1  0 -1 -1 -1 -1 -2 -2 -1 -1 -1 -1 -2 -1  1  5 -2 -2  0 -1 -1  0 -4
W -3 -3 -4 -4 -2 -2 -3 -2 -2 -3 -2 -3 -1  1 -4 -3 -2 11  2 -3 -4 -3 -2 -4
Y -2 -2 -2 -3 -2 -1 -2 -3  2 -1 -1 -2 -1  3 -3 -2 -2  2  7 -1 -3 -2 -1 -4
V  0 -3 -3 -3 -1 -2 -2 -3 -3  3  1 -2  1 -1 -2 -2  0 -3 -1  4 -3 -2 -1 -4
B -2 -1  3  4 -3  0  1 -1  0 -3 -4  0 -3 -3 -2  0 -1 -4 -3 -3  4  1 -1 -4
Z -1  0  0  1 -3  3  4 -2  0 -3 -3  1 -1 -3 -1  0 -1 -3 -2 -2  1  4 -1 -4
X  0 -1 -1 -1 -2 -1 -1 -1 -1 -1 -1 -1 -1 -1 -2  0  0 -2 -1 -1 -1 -1 -1 -4
* -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4  1
"""


def _parse_table(text: str) -> np.ndarray:
    rows: dict[str, list[int]] = {}
    for line in text.strip().splitlines():
        parts = line.split()
        rows[parts[0]] = [int(v) for v in parts[1:]]
    matrix = np.zeros((ALPHABET_SIZE, ALPHABET_SIZE), dtype=np.int16)
    for i, letter in enumerate(ALPHABET):
        row = rows[letter]
        if len(row) != ALPHABET_SIZE:
            raise ValueError(f"row {letter!r} has {len(row)} entries")
        matrix[i, :] = row
    return matrix


@dataclass(frozen=True)
class ScoringMatrix:
    """A substitution matrix plus the metadata BLAST needs alongside it.

    Attributes
    ----------
    name:
        Display name (``"BLOSUM62"``).
    scores:
        ``int16`` array of shape ``(ALPHABET_SIZE, ALPHABET_SIZE)`` indexed by
        residue codes. ``int16`` matches the 2-byte element size the paper
        uses when budgeting shared memory (1024 elements -> 2 kB).
    gap_open:
        Default affine gap-open penalty (cost of the first gapped residue).
    gap_extend:
        Default affine gap-extension penalty per further residue.
    """

    name: str
    scores: np.ndarray = field(repr=False)
    gap_open: int = 11
    gap_extend: int = 1

    def __post_init__(self) -> None:
        scores = np.asarray(self.scores, dtype=np.int16)
        if scores.shape != (ALPHABET_SIZE, ALPHABET_SIZE):
            raise ValueError(f"scoring matrix must be {ALPHABET_SIZE}x{ALPHABET_SIZE}")
        if not np.array_equal(scores, scores.T):
            raise ValueError("scoring matrix must be symmetric")
        object.__setattr__(self, "scores", scores)

    def score(self, a: int, b: int) -> int:
        """Score one residue-code pair."""
        return int(self.scores[a, b])

    @property
    def nbytes(self) -> int:
        """Memory footprint of the score table in bytes."""
        return int(self.scores.nbytes)


#: The standard NCBI BLOSUM62 matrix with BLASTP default gap costs (11, 1).
BLOSUM62 = ScoringMatrix(name="BLOSUM62", scores=_parse_table(_BLOSUM62_TABLE))


def match_mismatch_matrix(match: int = 5, mismatch: int = -4) -> ScoringMatrix:
    """Build a uniform match/mismatch matrix for tests and toy examples.

    All 24 symbols score ``match`` against themselves and ``mismatch``
    against anything else; hand-computing expected alignment scores stays
    trivial, which is what unit tests want.
    """
    if match <= 0 or mismatch >= 0:
        raise ValueError("need match > 0 and mismatch < 0 for valid local alignment")
    scores = np.full((ALPHABET_SIZE, ALPHABET_SIZE), mismatch, dtype=np.int16)
    np.fill_diagonal(scores, match)
    return ScoringMatrix(name=f"match{match}/mismatch{mismatch}", scores=scores)
