"""Scoring matrices, position-specific scoring matrices, and score statistics.

This package provides the two scoring data structures the paper contrasts in
its hierarchical-buffering study (Fig. 2b/2c, Fig. 15):

* the fixed :data:`~repro.matrices.blosum.BLOSUM62` substitution matrix
  (24 x 24, 2 bytes/element -> 1.125 kB, always fits in shared memory), and
* the query-derived PSSM (:func:`~repro.matrices.pssm.build_pssm`), whose
  footprint grows with query length (64 B/column).

Karlin-Altschul statistics (:mod:`repro.matrices.karlin`) convert raw
alignment scores into bit scores and E-values exactly as BLAST does.
"""

from repro.matrices.blosum import BLOSUM62, ScoringMatrix, match_mismatch_matrix
from repro.matrices.henikoff import blosum_from_blocks
from repro.matrices.karlin import KarlinParams, gapped_params, ungapped_params
from repro.matrices.pssm import build_pssm, pssm_memory_bytes

__all__ = [
    "BLOSUM62",
    "KarlinParams",
    "ScoringMatrix",
    "blosum_from_blocks",
    "build_pssm",
    "gapped_params",
    "match_mismatch_matrix",
    "pssm_memory_bytes",
    "ungapped_params",
]
