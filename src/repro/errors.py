"""Exception hierarchy for the repro library.

Everything raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SequenceError(ReproError):
    """Invalid sequence content or encoding."""


class FastaFormatError(ReproError):
    """Malformed FASTA input."""


class ConfigError(ReproError):
    """Invalid search or simulator configuration."""


class GpuSimError(ReproError):
    """Violation of the simulated device's execution or memory model."""


class ResourceExceededError(GpuSimError):
    """A kernel asked for more of a device resource than exists.

    Raised, for example, when a block's shared-memory request exceeds the
    per-SM shared memory, mirroring a CUDA launch failure.
    """


class SanitizerError(GpuSimError):
    """The memory sanitizer found a hazard (``KernelContext(sanitize=True)``).

    Carries the formatted racecheck/initcheck/boundscheck reports; see
    :mod:`repro.gpusim.sanitizer` and docs/ANALYSIS.md.
    """
