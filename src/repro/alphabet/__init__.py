"""Protein alphabet: residue encoding, validation and background statistics.

BLAST operates on small-integer encodings of amino-acid residues rather than
on characters; every downstream structure (PSSM, DFA, word indices) is built
on the encoding defined here.
"""

from repro.alphabet.protein import (
    ALPHABET,
    ALPHABET_SIZE,
    GAP_CHAR,
    ROBINSON_FREQUENCIES,
    UNKNOWN_CODE,
    background_frequencies,
    decode,
    encode,
    is_valid_sequence,
)

__all__ = [
    "ALPHABET",
    "ALPHABET_SIZE",
    "GAP_CHAR",
    "ROBINSON_FREQUENCIES",
    "UNKNOWN_CODE",
    "background_frequencies",
    "decode",
    "encode",
    "is_valid_sequence",
]
