"""The 24-letter protein alphabet used throughout the library.

The ordering matches the classic NCBI ``ARNDCQEGHILKMFPSTWYVBZX*`` layout:
the 20 standard amino acids first, then the ambiguity codes ``B`` (Asx) and
``Z`` (Glx), the unknown residue ``X``, and the stop/masking symbol ``*``.
Rare residues (``U`` selenocysteine, ``O`` pyrrolysine, ``J`` Leu/Ile
ambiguity) are folded into ``X``, which is what FSA-BLAST does on input.

Sequences are stored as ``numpy.uint8`` arrays of codes in ``[0, 24)``; all
hot paths (word extraction, PSSM lookup) index arrays with these codes
directly, so the encoding is the single source of truth for array layouts.
"""

from __future__ import annotations

import numpy as np

#: Canonical residue ordering. Index in this string == integer code.
ALPHABET: str = "ARNDCQEGHILKMFPSTWYVBZX*"

#: Number of symbols in the alphabet (and the row count of scoring matrices).
ALPHABET_SIZE: int = len(ALPHABET)

#: Code assigned to unknown / unrepresentable residues.
UNKNOWN_CODE: int = ALPHABET.index("X")

#: Character used for gaps in alignment rendering (never stored in sequences).
GAP_CHAR: str = "-"

# Robinson & Robinson (1991) amino-acid background frequencies, the standard
# composition BLAST uses for Karlin-Altschul statistics and that our workload
# generator samples from. Order follows the 20 standard residues of ALPHABET.
ROBINSON_FREQUENCIES: dict[str, float] = {
    "A": 0.07805,
    "R": 0.05129,
    "N": 0.04487,
    "D": 0.05364,
    "C": 0.01925,
    "Q": 0.04264,
    "E": 0.06295,
    "G": 0.07377,
    "H": 0.02199,
    "I": 0.05142,
    "L": 0.09019,
    "K": 0.05744,
    "M": 0.02243,
    "F": 0.03856,
    "P": 0.05203,
    "S": 0.07120,
    "T": 0.05841,
    "W": 0.01330,
    "Y": 0.03216,
    "V": 0.06441,
}

# Build the char -> code translation table once. 256 entries; unknown
# characters (and the folded rare residues) map to UNKNOWN_CODE.
_ENCODE_TABLE = np.full(256, UNKNOWN_CODE, dtype=np.uint8)
for _i, _c in enumerate(ALPHABET):
    _ENCODE_TABLE[ord(_c)] = _i
    _ENCODE_TABLE[ord(_c.lower())] = _i
for _c in "UOJ":
    _ENCODE_TABLE[ord(_c)] = UNKNOWN_CODE
    _ENCODE_TABLE[ord(_c.lower())] = UNKNOWN_CODE

_DECODE_TABLE = np.frombuffer(ALPHABET.encode("ascii"), dtype=np.uint8)


def encode(sequence: str | bytes) -> np.ndarray:
    """Encode a residue string into a ``uint8`` code array.

    Unknown characters are mapped to ``X`` rather than rejected, mirroring
    the permissive input handling of FSA-BLAST. Use :func:`is_valid_sequence`
    first when strict validation is wanted.

    Parameters
    ----------
    sequence:
        Residues as ``str`` or ASCII ``bytes``.

    Returns
    -------
    numpy.ndarray
        ``uint8`` array of codes, one per residue.
    """
    if isinstance(sequence, str):
        sequence = sequence.encode("ascii", errors="replace")
    raw = np.frombuffer(sequence, dtype=np.uint8)
    return _ENCODE_TABLE[raw]


def decode(codes: np.ndarray) -> str:
    """Decode a ``uint8`` code array back into a residue string."""
    codes = np.asarray(codes, dtype=np.uint8)
    if codes.size and int(codes.max()) >= ALPHABET_SIZE:
        raise ValueError(
            f"code {int(codes.max())} out of range for alphabet of size {ALPHABET_SIZE}"
        )
    return _DECODE_TABLE[codes].tobytes().decode("ascii")


def is_valid_sequence(sequence: str) -> bool:
    """Return ``True`` when every character is a recognised residue letter.

    The folded rare residues (``U``, ``O``, ``J``) count as valid because
    they encode deterministically (to ``X``).
    """
    allowed = set(ALPHABET + ALPHABET.lower() + "UOJuoj")
    return all(c in allowed for c in sequence)


def background_frequencies() -> np.ndarray:
    """Background probability for each alphabet code.

    The 20 standard residues carry Robinson-Robinson frequencies; the four
    ambiguity/stop codes get probability zero (BLAST statistics treat them
    as non-scoring). The standard-residue block sums to ~1.0.

    Returns
    -------
    numpy.ndarray
        ``float64`` array of length :data:`ALPHABET_SIZE`.
    """
    freqs = np.zeros(ALPHABET_SIZE, dtype=np.float64)
    for residue, p in ROBINSON_FREQUENCIES.items():
        freqs[ALPHABET.index(residue)] = p
    return freqs / freqs.sum()
