"""The four-phase BLASTP pipeline (hit detection, ungapped extension,
gapped extension, alignment with traceback) plus its statistics and results.

This package is the *semantic* definition of protein search in this repo:
the sequential CPU reference (FSA-BLAST baseline) calls these functions
directly, and every GPU kernel in :mod:`repro.cublastp` is tested to produce
byte-identical phase outputs — which is how the paper's "output identical to
FSA-BLAST" claim is enforced rather than asserted.
"""

from repro.core.gapped import GappedExtension, gapped_extend
from repro.core.hit_detection import DatabaseHits, detect_hits
from repro.core.hits import HitArray, diagonal_of
from repro.core.pipeline import BlastpPipeline, PhaseCounts
from repro.core.results import (
    Alignment,
    ExtensionArray,
    SearchResult,
    UngappedExtension,
)
from repro.core.statistics import SearchParams, resolve_cutoffs
from repro.core.sweep import (
    DEFAULT_BLOCK_RESIDUES,
    num_sweep_blocks,
    search_batch_sweep,
    sweep_extend_block,
    sweep_finish,
)
from repro.core.traceback import (
    TracebackAlignment,
    batch_traceback_align,
    traceback_align,
)
from repro.core.two_hit import select_seeds_and_extend
from repro.core.ungapped import ungapped_extend

__all__ = [
    "Alignment",
    "DEFAULT_BLOCK_RESIDUES",
    "BlastpPipeline",
    "DatabaseHits",
    "ExtensionArray",
    "GappedExtension",
    "HitArray",
    "PhaseCounts",
    "SearchParams",
    "SearchResult",
    "TracebackAlignment",
    "UngappedExtension",
    "batch_traceback_align",
    "detect_hits",
    "diagonal_of",
    "gapped_extend",
    "num_sweep_blocks",
    "resolve_cutoffs",
    "search_batch_sweep",
    "select_seeds_and_extend",
    "sweep_extend_block",
    "sweep_finish",
    "traceback_align",
    "ungapped_extend",
]
