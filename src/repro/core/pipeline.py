"""The reference four-phase BLASTP pipeline.

:class:`BlastpPipeline` wires the phase implementations together and is the
single source of truth for inter-phase plumbing (seed choice, containment
de-duplication, cutoff application). Baselines and the cuBLASTP search reuse
these phase methods wherever their algorithms coincide, so behavioural
differences between implementations are confined to the phases the paper
actually re-designs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.core.gapped import GappedExtension, gapped_extend
from repro.core.gapped_batch import batch_gapped_extend
from repro.core.hit_detection import DatabaseHits, detect_hits
from repro.core.results import (
    Alignment,
    ExtensionArray,
    SearchResult,
    UngappedExtension,
)
from repro.core.statistics import (
    Cutoffs,
    SearchParams,
    bit_scores_for_scores,
    evalues_for_scores,
    resolve_cutoffs,
)
from repro.core.traceback import batch_traceback_align
from repro.core.two_hit import select_seeds_and_extend
from repro.engine.compiled import CompiledQuery, compile_query
from repro.io.database import SequenceDatabase

if TYPE_CHECKING:
    from repro.engine.events import EventLog


@dataclass(frozen=True)
class PhaseCounts:
    """Work-item counts of one search, phase by phase.

    These drive the performance models: both the CPU cost model and the GPU
    simulator charge per work item, so identical counts guarantee the
    performance comparison measures *architecture*, not workload drift.
    """

    num_hits: int
    num_seeds: int
    num_ungapped_extensions: int
    num_gapped_triggers: int
    num_gapped_extensions: int
    num_traceback: int
    num_reported: int


class BlastpPipeline:
    """Reference BLASTP search for one query.

    Parameters
    ----------
    query:
        Query sequence as a residue string, an encoded ``uint8`` array, or
        an already-built :class:`~repro.engine.compiled.CompiledQuery`
        (shared query-side structures; ``params`` rebinds it when given).
        ``None`` builds a query-less instance usable only through the
        engine protocol (:meth:`compile` / :meth:`run`).
    params:
        Search parameters (defaults are the BLASTP standards).
    events:
        Optional :class:`~repro.engine.events.EventLog` the phases emit
        start/end events into.
    """

    #: Engine-protocol name.
    name = "reference"

    #: Gapped-extension scheduling modes: ``"wave"`` batch-extends the
    #: best surviving trigger per sequence each round through the
    #: lanes x band slab DP; ``"serial"`` is the scalar best-first loop
    #: (the differential oracle for the batched path).
    GAPPED_MODES = ("wave", "serial")

    def __init__(
        self,
        query: str | np.ndarray | CompiledQuery | None = None,
        params: SearchParams | None = None,
        *,
        events: EventLog | None = None,
        query_id: str | None = None,
        gapped_mode: str = "wave",
    ) -> None:
        self.events = events
        self.query_id = query_id
        if gapped_mode not in self.GAPPED_MODES:
            raise ValueError(
                f"unknown gapped_mode {gapped_mode!r} "
                f"(choose from {', '.join(self.GAPPED_MODES)})"
            )
        self.gapped_mode = gapped_mode
        if query is None:
            self.compiled: CompiledQuery | None = None
            self.params = params or SearchParams()
            return
        self.compiled = compile_query(query, params)
        self.params = self.compiled.params
        self.query_codes = self.compiled.query_codes
        self.pssm = self.compiled.pssm
        self.seg_mask = self.compiled.seg_mask
        self.lookup = self.compiled.lookup

    @property
    def query_length(self) -> int:
        return int(self.query_codes.size)

    # -- engine protocol ---------------------------------------------------

    def compile(self, query: str | np.ndarray) -> CompiledQuery:
        """Compile ``query`` under this engine's parameters."""
        return compile_query(query, self.params)

    def _bind(self, compiled: CompiledQuery, query_id: str | None) -> BlastpPipeline:
        """This engine bound to a compiled query (cheap: no rebuild)."""
        if compiled is self.compiled and query_id == self.query_id:
            return self
        return type(self)(
            compiled,
            events=self.events,
            query_id=query_id,
            gapped_mode=self.gapped_mode,
        )

    def run(
        self,
        compiled: CompiledQuery,
        db: SequenceDatabase,
        query_id: str | None = None,
    ) -> SearchResult:
        """Search ``db`` with an already-compiled query."""
        return self._bind(compiled, query_id).search(db)

    def run_with_report(
        self,
        compiled: CompiledQuery,
        db: SequenceDatabase,
        query_id: str | None = None,
    ) -> tuple[SearchResult, PhaseCounts]:
        """Like :meth:`run`, with the per-phase work counts as the report."""
        return self._bind(compiled, query_id).search_with_counts(db)

    def search_batch(
        self,
        compiled: "list[CompiledQuery]",
        db: SequenceDatabase,
        query_ids: "list[str | None] | None" = None,
        *,
        block_residues: int | None = None,
        blocks: "list[SequenceDatabase] | None" = None,
    ) -> list[SearchResult]:
        """Search a whole query batch with one blocked database sweep.

        The batch-first inversion of :meth:`run`: hit detection walks the
        database once through a merged
        :class:`~repro.seeding.multi_query.MultiQueryIndex` instead of
        once per query. Results are identical, query for query, to
        running each compiled query through :meth:`run` (the conformance
        matrix pins it). Returns one result per query, in input order.
        """
        from repro.core.sweep import search_batch_sweep

        ids = query_ids if query_ids is not None else [None] * len(compiled)
        pipelines = [self._bind(c, qid) for c, qid in zip(compiled, ids)]
        outcomes = search_batch_sweep(
            pipelines,
            db,
            block_residues=block_residues,
            blocks=blocks,
            engine_name=self.name,
            events=self.events,
        )
        return [result for result, _counts in outcomes]

    def cutoffs(self, db: SequenceDatabase) -> Cutoffs:
        """Raw-score cutoffs for this query against ``db``."""
        return resolve_cutoffs(self.params, self.query_length, int(db.codes.size))

    # -- phases ------------------------------------------------------------

    def phase_hit_detection(self, db: SequenceDatabase) -> DatabaseHits:
        """Phase 1: all word hits, column-major order."""
        return detect_hits(self.lookup, db)

    def phase_ungapped(
        self, db_hits: DatabaseHits, db: SequenceDatabase, cutoffs: Cutoffs
    ) -> tuple[ExtensionArray, int]:
        """Phase 2: two-hit seeding + x-drop ungapped extension."""
        return self.phase_ungapped_hits(db_hits.hits, db, cutoffs)

    def phase_ungapped_hits(
        self, hits, db: SequenceDatabase, cutoffs: Cutoffs
    ) -> tuple[ExtensionArray, int]:
        """Phase 2 on a bare hit array (what the batched sweep unpacks
        from its query-tagged stream, block by block)."""
        return select_seeds_and_extend(
            hits,
            db,
            self.pssm,
            self.params.word_length,
            self.params.two_hit_window,
            cutoffs.x_drop_ungapped,
        )

    def phase_gapped(
        self,
        extensions: ExtensionArray | list[UngappedExtension],
        db: SequenceDatabase,
        cutoffs: Cutoffs,
    ) -> tuple[list[GappedExtension], int]:
        """Phase 3: gapped extension on high-scoring ungapped segments.

        Segments scoring below the gap trigger are dropped — a vectorised
        columnar filter, as is the best-first ordering and per-segment
        seed-point arithmetic. Triggered segments are processed best-first
        per sequence, and a segment whose seed point already lies inside
        an accepted extension's bounding box is skipped (BLAST's
        containment rule) — it would rediscover the same alignment.

        Scheduling: the only serial dependency in the best-first loop is
        BLAST's *per-sequence* containment rule, so the wave mode
        processes candidates in rounds — each round batch-extends the
        first surviving candidate of every sequence (provably
        independent: a box only ever suppresses later seeds of its own
        sequence) through one lanes x band slab DP, applies the new
        boxes with a vectorised containment test, and repeats. The
        accepted set, each extension's fields, and the output order are
        identical to the serial loop; the property suite and the verify
        matrix (whose oracle runs ``gapped_mode="serial"``) pin it.

        Returns
        -------
        (gapped_extensions, num_triggers)
        """
        ext = ExtensionArray.coerce(extensions)
        trig = ext.take(ext.score >= cutoffs.gap_trigger)
        num_triggers = len(trig)
        # Best-first per sequence; lexsort is stable, so full ties keep
        # the stream order exactly as the old list.sort(key=...) did.
        order = np.lexsort(
            (trig.query_start, trig.subject_start, trig.seq_id, -trig.score)
        )
        mid = trig.lengths // 2
        seqs = trig.seq_id[order].astype(np.int64)
        seed_q = (trig.query_start + mid)[order].astype(np.int64)
        seed_s = (trig.subject_start + mid)[order].astype(np.int64)
        if self.gapped_mode == "serial":
            accepted = self._gapped_serial(db, cutoffs, seqs, seed_q, seed_s)
            return accepted, num_triggers

        go, ge = self.params.gap_open, self.params.gap_extend
        xd = cutoffs.x_drop_gapped
        accepted = []
        accepted_pos: list[np.ndarray] = []
        # ``pos`` holds the surviving candidates as indices into the
        # best-first order; each wave takes every sequence's head.
        pos = np.arange(seqs.size, dtype=np.int64)
        while pos.size:
            rem_seq = seqs[pos]
            by_seq = np.argsort(rem_seq, kind="stable")
            head = np.ones(by_seq.size, dtype=bool)
            srt = rem_seq[by_seq]
            head[1:] = srt[1:] != srt[:-1]
            pick = by_seq[head]  # one head per sequence, ascending seq_id
            chosen = pos[pick]
            wave = batch_gapped_extend(
                self.pssm, db, seqs[chosen], seed_q[chosen], seed_s[chosen],
                go, ge, xd,
            )
            accepted.extend(wave)
            accepted_pos.append(chosen)
            rest = np.delete(pos, pick)
            if rest.size == 0:
                break
            # Vectorised containment: each remaining candidate tests
            # against its sequence's box from this wave (sequences are
            # unique within a wave, so searchsorted finds the one box).
            wave_seq = srt[head]
            slot = np.searchsorted(wave_seq, seqs[rest])
            slot_c = np.minimum(slot, wave_seq.size - 1)
            bqs = np.fromiter(
                (g.box_query_start for g in wave), np.int64, len(wave)
            )
            bqe = np.fromiter(
                (g.box_query_end for g in wave), np.int64, len(wave)
            )
            bss = np.fromiter(
                (g.box_subject_start for g in wave), np.int64, len(wave)
            )
            bse = np.fromiter(
                (g.box_subject_end for g in wave), np.int64, len(wave)
            )
            covered = (
                (wave_seq[slot_c] == seqs[rest])
                & (bqs[slot_c] <= seed_q[rest]) & (seed_q[rest] <= bqe[slot_c])
                & (bss[slot_c] <= seed_s[rest]) & (seed_s[rest] <= bse[slot_c])
            )
            pos = rest[~covered]
        if not accepted:
            return [], num_triggers
        # Waves visit candidates out of best-first order (every sequence's
        # head at once); restore the serial loop's acceptance order.
        serial_order = np.argsort(np.concatenate(accepted_pos))
        return [accepted[int(k)] for k in serial_order], num_triggers

    def _gapped_serial(
        self,
        db: SequenceDatabase,
        cutoffs: Cutoffs,
        seqs: np.ndarray,
        seed_q: np.ndarray,
        seed_s: np.ndarray,
    ) -> list[GappedExtension]:
        """The scalar best-first gapped loop (differential oracle).

        Walks the best-first candidate columns in order, skipping any
        seed inside an accepted same-sequence bounding box — the box
        test is one vectorised comparison against flat accepted-box
        columns per candidate, not a Python scan over box tuples.
        """
        accepted: list[GappedExtension] = []
        box_cols = np.empty((5, 0), dtype=np.int64)
        for k in range(seqs.size):
            if box_cols.shape[1]:
                b_seq, bqs, bqe, bss, bse = box_cols
                covered = bool(
                    np.any(
                        (b_seq == seqs[k])
                        & (bqs <= seed_q[k]) & (seed_q[k] <= bqe)
                        & (bss <= seed_s[k]) & (seed_s[k] <= bse)
                    )
                )
                if covered:
                    continue
            gext = gapped_extend(
                self.pssm,
                db.sequence(int(seqs[k])),
                int(seqs[k]),
                int(seed_q[k]),
                int(seed_s[k]),
                self.params.gap_open,
                self.params.gap_extend,
                cutoffs.x_drop_gapped,
            )
            accepted.append(gext)
            box_cols = np.concatenate(
                [
                    box_cols,
                    np.array(
                        [
                            [gext.seq_id],
                            [gext.box_query_start],
                            [gext.box_query_end],
                            [gext.box_subject_start],
                            [gext.box_subject_end],
                        ],
                        dtype=np.int64,
                    ),
                ],
                axis=1,
            )
        return accepted

    def phase_traceback(
        self,
        gapped: list[GappedExtension],
        db: SequenceDatabase,
        cutoffs: Cutoffs,
    ) -> list[Alignment]:
        """Phase 4: re-score with traceback, apply the E-value cutoff.

        The score-surviving boxes are re-solved as one lanes-stacked
        batched fill (:func:`~repro.core.traceback.batch_traceback_align`
        — the same lanes x band shape as the gapped phase); only the
        walk-back and rendering stay per-alignment, which is cold
        (reported alignments number in the tens).
        """
        seen: set[tuple[int, int, int, int, int]] = set()
        out: list[Alignment] = []
        db_residues = cutoffs.effective_db_residues or int(db.codes.size)
        # Cold filter: gapped extensions number in the tens here, and the
        # survivors feed one batched fill below.
        survivors = [  # reprolint: disable=no-per-record-loop-in-phase
            g for g in gapped if g.score >= cutoffs.report_cutoff
        ]
        tbs = batch_traceback_align(
            self.pssm,
            self.query_codes,
            [db.sequence(g.seq_id) for g in survivors],
            [
                (
                    g.box_query_start,
                    g.box_query_end,
                    g.box_subject_start,
                    g.box_subject_end,
                )
                for g in survivors
            ],
            self.params.gap_open,
            self.params.gap_extend,
        )
        for gext, tb in zip(survivors, tbs):
            if tb is None:
                continue
            key = (gext.seq_id, tb.query_start, tb.query_end, tb.subject_start, tb.subject_end)
            if key in seen:
                continue
            seen.add(key)
            evalue = cutoffs.gapped.evalue(tb.score, self.query_length, db_residues)
            if evalue > self.params.evalue:
                continue
            out.append(
                Alignment(
                    seq_id=gext.seq_id,
                    subject_identifier=db.identifier(gext.seq_id),
                    score=tb.score,
                    bit_score=cutoffs.gapped.bit_score(tb.score),
                    evalue=evalue,
                    query_start=tb.query_start,
                    query_end=tb.query_end,
                    subject_start=tb.subject_start,
                    subject_end=tb.subject_end,
                    aligned_query=tb.aligned_query,
                    aligned_subject=tb.aligned_subject,
                    midline=tb.midline,
                    identities=tb.identities,
                    positives=tb.positives,
                    gaps=tb.gaps,
                )
            )
        out.sort(key=lambda a: (-a.score, a.seq_id, a.query_start, a.subject_start))
        return out[: self.params.max_alignments]

    def phase_ungapped_report(
        self,
        extensions: ExtensionArray | list[UngappedExtension],
        db: SequenceDatabase,
        cutoffs: Cutoffs,
    ) -> list[Alignment]:
        """Render ungapped HSPs directly (BLAST's ``-ungapped`` mode).

        Replaces phases 3 and 4: extensions meeting the E-value threshold
        under the *ungapped* Karlin-Altschul statistics become reported
        alignments (no gap columns by construction). E-values, bit
        scores, the threshold filter and the first-occurrence de-dup all
        run columnar; only the surviving (reported) rows are rendered.
        """
        from repro.alphabet import decode

        ext = ExtensionArray.coerce(extensions)
        db_residues = cutoffs.effective_db_residues or int(db.codes.size)
        evalues = evalues_for_scores(
            cutoffs.ungapped, ext.score, self.query_length, db_residues
        )
        idx = np.flatnonzero(evalues <= self.params.evalue)
        if idx.size:
            # First survivor per (seq_id, query_start, subject_start):
            # sort by the key (stable, so ties keep stream order), keep
            # each run's head, then restore stream order — exactly the
            # retired ``seen``-set walk.
            order = np.lexsort(
                (ext.subject_start[idx], ext.query_start[idx], ext.seq_id[idx])
            )
            srt = idx[order]
            sid, qst, sst = ext.seq_id[srt], ext.query_start[srt], ext.subject_start[srt]
            head = np.ones(srt.size, dtype=bool)
            head[1:] = (
                (sid[1:] != sid[:-1]) | (qst[1:] != qst[:-1]) | (sst[1:] != sst[:-1])
            )
            idx = np.sort(srt[head])
        bits = bit_scores_for_scores(cutoffs.ungapped, ext.score[idx])
        out: list[Alignment] = []
        for j, k in enumerate(idx):
            qs, qe = int(ext.query_start[k]), int(ext.query_end[k])
            ss, se = int(ext.subject_start[k]), int(ext.subject_end[k])
            seq_id = int(ext.seq_id[k])
            q_seg = self.query_codes[qs : qe + 1]
            s_seg = db.sequence(seq_id)[ss : se + 1]
            aligned_query = decode(q_seg)
            # Vectorised midline/identity: identity columns echo the
            # query letter, positive-scoring mismatches mark '+'.
            eq = q_seg == s_seg
            pos = self.pssm[s_seg, np.arange(qs, qe + 1)] > 0
            midline = np.where(
                eq,
                np.frombuffer(aligned_query.encode("ascii"), dtype="S1"),
                np.where(pos, b"+", b" "),
            ).tobytes().decode("ascii")
            out.append(
                Alignment(
                    seq_id=seq_id,
                    subject_identifier=db.identifier(seq_id),
                    score=int(ext.score[k]),
                    bit_score=float(bits[j]),
                    evalue=float(evalues[k]),
                    query_start=qs,
                    query_end=qe,
                    subject_start=ss,
                    subject_end=se,
                    aligned_query=aligned_query,
                    aligned_subject=decode(s_seg),
                    midline=midline,
                    identities=int(eq.sum()),
                    positives=int((eq | pos).sum()),
                    gaps=0,
                )
            )
        out.sort(key=lambda a: (-a.score, a.seq_id, a.query_start, a.subject_start))
        return out[: self.params.max_alignments]

    # -- end-to-end --------------------------------------------------------

    def search(self, db: SequenceDatabase) -> SearchResult:
        """Run all four phases and assemble the result."""
        result, _ = self.search_with_counts(db)
        return result

    def search_with_counts(self, db: SequenceDatabase) -> tuple[SearchResult, PhaseCounts]:
        """Run all four phases and also return the per-phase work counts.

        With an :class:`~repro.engine.events.EventLog` attached, each phase
        emits start/end events carrying its work-item count (the reference
        pipeline attributes no modelled time — it *is* the semantics, not a
        performance model).
        """
        from contextlib import nullcontext

        def phase(name: str):
            if self.events is None:
                return nullcontext({})
            return self.events.phase(self.name, name, query_id=self.query_id)

        cutoffs = self.cutoffs(db)
        with phase("hit_detection") as ev:
            db_hits = self.phase_hit_detection(db)
            ev["work_items"] = len(db_hits)
        with phase("ungapped_extension") as ev:
            extensions, num_seeds = self.phase_ungapped(db_hits, db, cutoffs)
            ev["work_items"] = len(extensions)
        if self.params.ungapped_only:
            gapped, num_triggers = [], 0
            with phase("final_alignment") as ev:
                alignments = self.phase_ungapped_report(extensions, db, cutoffs)
                ev["work_items"] = len(alignments)
        else:
            with phase("gapped_extension") as ev:
                gapped, num_triggers = self.phase_gapped(extensions, db, cutoffs)
                ev["work_items"] = len(gapped)
            with phase("final_alignment") as ev:
                alignments = self.phase_traceback(gapped, db, cutoffs)
                ev["work_items"] = len(alignments)
        counts = PhaseCounts(
            num_hits=len(db_hits),
            num_seeds=num_seeds,
            num_ungapped_extensions=len(extensions),
            num_gapped_triggers=num_triggers,
            num_gapped_extensions=len(gapped),
            num_traceback=len(gapped),
            num_reported=len(alignments),
        )
        result = SearchResult(
            query_length=self.query_length,
            db_sequences=len(db),
            db_residues=int(db.codes.size),
            alignments=alignments,
            num_hits=counts.num_hits,
            num_seeds=counts.num_seeds,
            num_ungapped_extensions=counts.num_ungapped_extensions,
            num_gapped_extensions=counts.num_gapped_extensions,
            num_reported=counts.num_reported,
        )
        return result, counts
