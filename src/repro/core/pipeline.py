"""The reference four-phase BLASTP pipeline.

:class:`BlastpPipeline` wires the phase implementations together and is the
single source of truth for inter-phase plumbing (seed choice, containment
de-duplication, cutoff application). Baselines and the cuBLASTP search reuse
these phase methods wherever their algorithms coincide, so behavioural
differences between implementations are confined to the phases the paper
actually re-designs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.core.gapped import GappedExtension, gapped_extend
from repro.core.hit_detection import DatabaseHits, detect_hits
from repro.core.results import Alignment, SearchResult, UngappedExtension
from repro.core.statistics import Cutoffs, SearchParams, resolve_cutoffs
from repro.core.traceback import traceback_align
from repro.core.two_hit import select_seeds_and_extend
from repro.engine.compiled import CompiledQuery, compile_query
from repro.io.database import SequenceDatabase

if TYPE_CHECKING:
    from repro.engine.events import EventLog


@dataclass(frozen=True)
class PhaseCounts:
    """Work-item counts of one search, phase by phase.

    These drive the performance models: both the CPU cost model and the GPU
    simulator charge per work item, so identical counts guarantee the
    performance comparison measures *architecture*, not workload drift.
    """

    num_hits: int
    num_seeds: int
    num_ungapped_extensions: int
    num_gapped_triggers: int
    num_gapped_extensions: int
    num_traceback: int
    num_reported: int


class BlastpPipeline:
    """Reference BLASTP search for one query.

    Parameters
    ----------
    query:
        Query sequence as a residue string, an encoded ``uint8`` array, or
        an already-built :class:`~repro.engine.compiled.CompiledQuery`
        (shared query-side structures; ``params`` rebinds it when given).
        ``None`` builds a query-less instance usable only through the
        engine protocol (:meth:`compile` / :meth:`run`).
    params:
        Search parameters (defaults are the BLASTP standards).
    events:
        Optional :class:`~repro.engine.events.EventLog` the phases emit
        start/end events into.
    """

    #: Engine-protocol name.
    name = "reference"

    def __init__(
        self,
        query: str | np.ndarray | CompiledQuery | None = None,
        params: SearchParams | None = None,
        *,
        events: EventLog | None = None,
        query_id: str | None = None,
    ) -> None:
        self.events = events
        self.query_id = query_id
        if query is None:
            self.compiled: CompiledQuery | None = None
            self.params = params or SearchParams()
            return
        self.compiled = compile_query(query, params)
        self.params = self.compiled.params
        self.query_codes = self.compiled.query_codes
        self.pssm = self.compiled.pssm
        self.seg_mask = self.compiled.seg_mask
        self.lookup = self.compiled.lookup

    @property
    def query_length(self) -> int:
        return int(self.query_codes.size)

    # -- engine protocol ---------------------------------------------------

    def compile(self, query: str | np.ndarray) -> CompiledQuery:
        """Compile ``query`` under this engine's parameters."""
        return compile_query(query, self.params)

    def _bind(self, compiled: CompiledQuery, query_id: str | None) -> BlastpPipeline:
        """This engine bound to a compiled query (cheap: no rebuild)."""
        if compiled is self.compiled and query_id == self.query_id:
            return self
        return type(self)(compiled, events=self.events, query_id=query_id)

    def run(
        self,
        compiled: CompiledQuery,
        db: SequenceDatabase,
        query_id: str | None = None,
    ) -> SearchResult:
        """Search ``db`` with an already-compiled query."""
        return self._bind(compiled, query_id).search(db)

    def run_with_report(
        self,
        compiled: CompiledQuery,
        db: SequenceDatabase,
        query_id: str | None = None,
    ) -> tuple[SearchResult, PhaseCounts]:
        """Like :meth:`run`, with the per-phase work counts as the report."""
        return self._bind(compiled, query_id).search_with_counts(db)

    def search_batch(
        self,
        compiled: "list[CompiledQuery]",
        db: SequenceDatabase,
        query_ids: "list[str | None] | None" = None,
        *,
        block_residues: int | None = None,
        blocks: "list[SequenceDatabase] | None" = None,
    ) -> list[SearchResult]:
        """Search a whole query batch with one blocked database sweep.

        The batch-first inversion of :meth:`run`: hit detection walks the
        database once through a merged
        :class:`~repro.seeding.multi_query.MultiQueryIndex` instead of
        once per query. Results are identical, query for query, to
        running each compiled query through :meth:`run` (the conformance
        matrix pins it). Returns one result per query, in input order.
        """
        from repro.core.sweep import search_batch_sweep

        ids = query_ids if query_ids is not None else [None] * len(compiled)
        pipelines = [self._bind(c, qid) for c, qid in zip(compiled, ids)]
        outcomes = search_batch_sweep(
            pipelines,
            db,
            block_residues=block_residues,
            blocks=blocks,
            engine_name=self.name,
            events=self.events,
        )
        return [result for result, _counts in outcomes]

    def cutoffs(self, db: SequenceDatabase) -> Cutoffs:
        """Raw-score cutoffs for this query against ``db``."""
        return resolve_cutoffs(self.params, self.query_length, int(db.codes.size))

    # -- phases ------------------------------------------------------------

    def phase_hit_detection(self, db: SequenceDatabase) -> DatabaseHits:
        """Phase 1: all word hits, column-major order."""
        return detect_hits(self.lookup, db)

    def phase_ungapped(
        self, db_hits: DatabaseHits, db: SequenceDatabase, cutoffs: Cutoffs
    ) -> tuple[list[UngappedExtension], int]:
        """Phase 2: two-hit seeding + x-drop ungapped extension."""
        return self.phase_ungapped_hits(db_hits.hits, db, cutoffs)

    def phase_ungapped_hits(
        self, hits, db: SequenceDatabase, cutoffs: Cutoffs
    ) -> tuple[list[UngappedExtension], int]:
        """Phase 2 on a bare hit array (what the batched sweep unpacks
        from its query-tagged stream, block by block)."""
        return select_seeds_and_extend(
            hits,
            db,
            self.pssm,
            self.params.word_length,
            self.params.two_hit_window,
            cutoffs.x_drop_ungapped,
        )

    def phase_gapped(
        self,
        extensions: list[UngappedExtension],
        db: SequenceDatabase,
        cutoffs: Cutoffs,
    ) -> tuple[list[GappedExtension], int]:
        """Phase 3: gapped extension on high-scoring ungapped segments.

        Segments scoring below the gap trigger are dropped. Triggered
        segments are processed best-first per sequence, and a segment whose
        seed point already lies inside an accepted extension's bounding box
        is skipped (BLAST's containment rule) — it would rediscover the
        same alignment.

        Returns
        -------
        (gapped_extensions, num_triggers)
        """
        triggered = [e for e in extensions if e.score >= cutoffs.gap_trigger]
        num_triggers = len(triggered)
        triggered.sort(key=lambda e: (-e.score, e.seq_id, e.subject_start, e.query_start))
        accepted: list[GappedExtension] = []
        boxes: dict[int, list[tuple[int, int, int, int]]] = {}
        for ext in triggered:
            mid = ext.length // 2
            seed_q = ext.query_start + mid
            seed_s = ext.subject_start + mid
            covered = any(
                bqs <= seed_q <= bqe and bss <= seed_s <= bse
                for (bqs, bqe, bss, bse) in boxes.get(ext.seq_id, [])
            )
            if covered:
                continue
            gext = gapped_extend(
                self.pssm,
                db.sequence(ext.seq_id),
                ext.seq_id,
                seed_q,
                seed_s,
                self.params.gap_open,
                self.params.gap_extend,
                cutoffs.x_drop_gapped,
            )
            accepted.append(gext)
            boxes.setdefault(ext.seq_id, []).append(
                (gext.box_query_start, gext.box_query_end,
                 gext.box_subject_start, gext.box_subject_end)
            )
        return accepted, num_triggers

    def phase_traceback(
        self,
        gapped: list[GappedExtension],
        db: SequenceDatabase,
        cutoffs: Cutoffs,
    ) -> list[Alignment]:
        """Phase 4: re-score with traceback, apply the E-value cutoff."""
        seen: set[tuple[int, int, int, int, int]] = set()
        out: list[Alignment] = []
        db_residues = cutoffs.effective_db_residues or int(db.codes.size)
        for gext in gapped:
            if gext.score < cutoffs.report_cutoff:
                continue
            tb = traceback_align(
                self.pssm,
                self.query_codes,
                db.sequence(gext.seq_id),
                (
                    gext.box_query_start,
                    gext.box_query_end,
                    gext.box_subject_start,
                    gext.box_subject_end,
                ),
                self.params.gap_open,
                self.params.gap_extend,
            )
            if tb is None:
                continue
            key = (gext.seq_id, tb.query_start, tb.query_end, tb.subject_start, tb.subject_end)
            if key in seen:
                continue
            seen.add(key)
            evalue = cutoffs.gapped.evalue(tb.score, self.query_length, db_residues)
            if evalue > self.params.evalue:
                continue
            out.append(
                Alignment(
                    seq_id=gext.seq_id,
                    subject_identifier=db.identifier(gext.seq_id),
                    score=tb.score,
                    bit_score=cutoffs.gapped.bit_score(tb.score),
                    evalue=evalue,
                    query_start=tb.query_start,
                    query_end=tb.query_end,
                    subject_start=tb.subject_start,
                    subject_end=tb.subject_end,
                    aligned_query=tb.aligned_query,
                    aligned_subject=tb.aligned_subject,
                    midline=tb.midline,
                    identities=tb.identities,
                    positives=tb.positives,
                    gaps=tb.gaps,
                )
            )
        out.sort(key=lambda a: (-a.score, a.seq_id, a.query_start, a.subject_start))
        return out[: self.params.max_alignments]

    def phase_ungapped_report(
        self,
        extensions: list[UngappedExtension],
        db: SequenceDatabase,
        cutoffs: Cutoffs,
    ) -> list[Alignment]:
        """Render ungapped HSPs directly (BLAST's ``-ungapped`` mode).

        Replaces phases 3 and 4: extensions meeting the E-value threshold
        under the *ungapped* Karlin-Altschul statistics become reported
        alignments (no gap columns by construction).
        """
        from repro.alphabet import decode

        db_residues = cutoffs.effective_db_residues or int(db.codes.size)
        seen: set[tuple[int, int, int]] = set()
        out: list[Alignment] = []
        for ext in extensions:
            evalue = cutoffs.ungapped.evalue(ext.score, self.query_length, db_residues)
            if evalue > self.params.evalue:
                continue
            key = (ext.seq_id, ext.query_start, ext.subject_start)
            if key in seen:
                continue
            seen.add(key)
            q_seg = self.query_codes[ext.query_start : ext.query_end + 1]
            s_seg = db.sequence(ext.seq_id)[ext.subject_start : ext.subject_end + 1]
            midline = []
            identities = positives = 0
            for k, (a, b) in enumerate(zip(q_seg, s_seg)):
                if a == b:
                    identities += 1
                    positives += 1
                    midline.append(decode(np.array([a], dtype=np.uint8)))
                elif int(self.pssm[b, ext.query_start + k]) > 0:
                    positives += 1
                    midline.append("+")
                else:
                    midline.append(" ")
            out.append(
                Alignment(
                    seq_id=ext.seq_id,
                    subject_identifier=db.identifier(ext.seq_id),
                    score=ext.score,
                    bit_score=cutoffs.ungapped.bit_score(ext.score),
                    evalue=evalue,
                    query_start=ext.query_start,
                    query_end=ext.query_end,
                    subject_start=ext.subject_start,
                    subject_end=ext.subject_end,
                    aligned_query=decode(q_seg),
                    aligned_subject=decode(s_seg),
                    midline="".join(midline),
                    identities=identities,
                    positives=positives,
                    gaps=0,
                )
            )
        out.sort(key=lambda a: (-a.score, a.seq_id, a.query_start, a.subject_start))
        return out[: self.params.max_alignments]

    # -- end-to-end --------------------------------------------------------

    def search(self, db: SequenceDatabase) -> SearchResult:
        """Run all four phases and assemble the result."""
        result, _ = self.search_with_counts(db)
        return result

    def search_with_counts(self, db: SequenceDatabase) -> tuple[SearchResult, PhaseCounts]:
        """Run all four phases and also return the per-phase work counts.

        With an :class:`~repro.engine.events.EventLog` attached, each phase
        emits start/end events carrying its work-item count (the reference
        pipeline attributes no modelled time — it *is* the semantics, not a
        performance model).
        """
        from contextlib import nullcontext

        def phase(name: str):
            if self.events is None:
                return nullcontext({})
            return self.events.phase(self.name, name, query_id=self.query_id)

        cutoffs = self.cutoffs(db)
        with phase("hit_detection") as ev:
            db_hits = self.phase_hit_detection(db)
            ev["work_items"] = len(db_hits)
        with phase("ungapped_extension") as ev:
            extensions, num_seeds = self.phase_ungapped(db_hits, db, cutoffs)
            ev["work_items"] = len(extensions)
        if self.params.ungapped_only:
            gapped, num_triggers = [], 0
            with phase("final_alignment") as ev:
                alignments = self.phase_ungapped_report(extensions, db, cutoffs)
                ev["work_items"] = len(alignments)
        else:
            with phase("gapped_extension") as ev:
                gapped, num_triggers = self.phase_gapped(extensions, db, cutoffs)
                ev["work_items"] = len(gapped)
            with phase("final_alignment") as ev:
                alignments = self.phase_traceback(gapped, db, cutoffs)
                ev["work_items"] = len(alignments)
        counts = PhaseCounts(
            num_hits=len(db_hits),
            num_seeds=num_seeds,
            num_ungapped_extensions=len(extensions),
            num_gapped_triggers=num_triggers,
            num_gapped_extensions=len(gapped),
            num_traceback=len(gapped),
            num_reported=len(alignments),
        )
        result = SearchResult(
            query_length=self.query_length,
            db_sequences=len(db),
            db_residues=int(db.codes.size),
            alignments=alignments,
            num_hits=counts.num_hits,
            num_seeds=counts.num_seeds,
            num_ungapped_extensions=counts.num_ungapped_extensions,
            num_gapped_extensions=counts.num_gapped_extensions,
            num_reported=counts.num_reported,
        )
        return result, counts
