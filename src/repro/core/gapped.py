"""Phase 3: gapped extension — affine-gap x-drop dynamic programming.

A gapped extension grows from a *seed point* (one aligned residue pair
inside a high-scoring ungapped segment) in two independent half-extensions:
backward over the prefixes ending at the seed and forward over the suffixes
starting after it. Each half is a banded DP pruned by the x-drop rule: a
cell dies once its score falls more than ``x_drop`` below the best score
seen so far, and the live window shrinks from both ends as rows advance.

Vectorisation note: the horizontal-gap array ``F`` of an affine DP row has a
serial dependency (``F[j] = max(H[j-1] - open, F[j-1] - extend)``), which
normally forces a scalar loop. Unrolled, it is ``F[j] = max_{k<j} (G[k] +
extend*k) - open - extend*(j-1)`` with ``G`` the gapless part of ``H`` — a
running maximum, computed with ``np.maximum.accumulate``. Every row of the
DP is therefore a handful of whole-window numpy operations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Effectively minus infinity for int64 score arithmetic without overflow.
NEG_INF = np.int64(-(2**40))


@dataclass(frozen=True)
class HalfExtension:
    """Result of one direction of the gapped DP.

    ``best`` is the maximum cell score (0 for the empty alignment);
    ``best_i``/``best_j`` its row/column (0 means no residue consumed);
    ``reach_i``/``reach_j`` the furthest row/column that held a live cell —
    the bounding box the traceback phase re-solves.
    """

    best: int
    best_i: int
    best_j: int
    reach_i: int
    reach_j: int
    #: DP cells actually computed (the live band, not the bounding box) —
    #: what the CPU cost model charges for this half.
    cells: int = 0


@dataclass(frozen=True)
class GappedExtension:
    """A gapped extension through one seed point.

    Coordinates are inclusive and cover the best-scoring path of the two
    halves. ``score`` is the sum of both halves; the seed residue pair is
    counted by the backward half (which starts *at* the seed).
    """

    seq_id: int
    score: int
    query_start: int
    query_end: int
    subject_start: int
    subject_end: int
    seed_query: int
    seed_subject: int
    # Bounding box reached by live DP cells; traceback re-solves inside it.
    box_query_start: int
    box_query_end: int
    box_subject_start: int
    box_subject_end: int
    #: DP cells the two x-drop halves actually computed (a diagonal band,
    #: typically far smaller than the bounding box).
    cells: int = 0


def _half_extend(
    row_scores: "np.ndarray",
    gap_open: int,
    gap_extend: int,
    x_drop: int,
) -> HalfExtension:
    """Run one half of the x-drop DP.

    Parameters
    ----------
    row_scores:
        ``(n, m)`` substitution scores in walk order: ``row_scores[i-1,
        j-1]`` scores aligning the ``i``-th residue of the vertical
        sequence against the ``j``-th of the horizontal one.
    gap_open:
        Penalty of the first residue of a gap (positive number).
    gap_extend:
        Penalty of each further gap residue (positive number).
    x_drop:
        Prune cells scoring more than this below the running best.
    """
    n, m = row_scores.shape
    best = 0
    best_i = best_j = 0
    reach_i = reach_j = 0
    if n == 0 or m == 0:
        # No room to move diagonally; a gap-only alignment never scores > 0,
        # so the empty alignment is optimal.
        return HalfExtension(0, 0, 0, 0, 0, 0)

    go = int(gap_open)
    ge = int(gap_extend)
    h_prev = np.full(m + 1, NEG_INF, dtype=np.int64)
    e_prev = np.full(m + 1, NEG_INF, dtype=np.int64)
    # Row 0: empty prefix plus leading gaps in the horizontal sequence.
    h_prev[0] = 0
    j0 = np.arange(1, m + 1, dtype=np.int64)
    h_prev[1:] = -go - (j0 - 1) * ge
    live = np.nonzero(h_prev >= -x_drop)[0]
    lo, hi = int(live[0]), int(live[-1])
    reach_j = hi

    jj = np.arange(m + 1, dtype=np.int64)
    cells = hi - lo + 1  # row 0's live span
    for i in range(1, n + 1):
        hi_new = min(hi + 1, m)
        w = slice(lo, hi_new + 1)
        width = hi_new + 1 - lo
        cells += width

        # Diagonal moves: H(i-1, j-1) + s(i, j); undefined at j == 0.
        diag = np.full(width, NEG_INF, dtype=np.int64)
        jstart = max(lo, 1)
        diag[jstart - lo :] = (
            h_prev[jstart - 1 : hi_new] + row_scores[i - 1, jstart - 1 : hi_new]
        )
        # Vertical gaps (consume the vertical sequence).
        e_cur = np.maximum(h_prev[w] - go, e_prev[w] - ge)
        g = np.maximum(diag, e_cur)
        # Horizontal gaps via the running-max unrolling (see module docstring).
        t = g + ge * jj[w]
        run = np.maximum.accumulate(t)
        f = np.full(width, NEG_INF, dtype=np.int64)
        if width > 1:
            f[1:] = run[:-1] - go - ge * (jj[w][1:] - 1)
        h_cur = np.maximum(g, f)

        row_best = int(h_cur.max())
        if row_best > best:
            best = row_best
            best_i = i
            best_j = lo + int(np.argmax(h_cur))
        # Prune against the updated best; trim dead cells from both ends.
        alive = h_cur >= best - x_drop
        if not alive.any():
            reach_i = i
            break
        first = int(np.argmax(alive))
        last = width - 1 - int(np.argmax(alive[::-1]))
        new_lo, new_hi = lo + first, lo + last

        h_next = np.full(m + 1, NEG_INF, dtype=np.int64)
        e_next = np.full(m + 1, NEG_INF, dtype=np.int64)
        h_next[w] = h_cur
        e_next[w] = e_cur
        h_prev, e_prev = h_next, e_next
        lo, hi = new_lo, new_hi
        reach_i = i
        reach_j = max(reach_j, hi)
        if lo > m:  # pragma: no cover - defensive; lo <= m by construction
            break
    return HalfExtension(best, best_i, best_j, reach_i, reach_j, int(cells))


def gapped_extend(
    pssm: np.ndarray,
    subject_codes: np.ndarray,
    seq_id: int,
    seed_query: int,
    seed_subject: int,
    gap_open: int,
    gap_extend: int,
    x_drop: int,
) -> GappedExtension:
    """Gapped extension through the seed pair ``(seed_query, seed_subject)``.

    The backward half walks ``query[seed_query], query[seed_query-1], ...``
    against ``subject[seed_subject], ...`` (so it scores the seed pair
    itself); the forward half starts one residue past the seed. The two
    optima are independent, and their sum is the extension score — the same
    decomposition NCBI's ``ALIGN_EX`` uses.
    """
    qlen = pssm.shape[1]
    subject_codes = np.asarray(subject_codes, dtype=np.uint8)
    slen = subject_codes.size
    if not (0 <= seed_query < qlen and 0 <= seed_subject < slen):
        raise ValueError("seed point outside sequence bounds")

    # Backward: rows are query residues seed_query, seed_query-1, ...;
    # columns subject residues seed_subject, seed_subject-1, ...
    back_scores = pssm[
        subject_codes[seed_subject::-1][:, None],
        np.arange(seed_query, -1, -1, dtype=np.int64)[None, :],
    ].T.astype(np.int64)
    back = _half_extend(back_scores, gap_open, gap_extend, x_drop)

    # Forward: rows seed_query+1, ...; columns seed_subject+1, ...
    fwd_scores = pssm[
        subject_codes[seed_subject + 1 :][:, None],
        np.arange(seed_query + 1, qlen, dtype=np.int64)[None, :],
    ].T.astype(np.int64)
    fwd = _half_extend(fwd_scores, gap_open, gap_extend, x_drop)

    q_start = seed_query - (back.best_i - 1) if back.best_i > 0 else seed_query + 1
    s_start = seed_subject - (back.best_j - 1) if back.best_j > 0 else seed_subject + 1
    q_end = seed_query + fwd.best_i if fwd.best_i > 0 else seed_query
    s_end = seed_subject + fwd.best_j if fwd.best_j > 0 else seed_subject
    return GappedExtension(
        seq_id=seq_id,
        score=back.best + fwd.best,
        query_start=q_start,
        query_end=q_end,
        subject_start=s_start,
        subject_end=s_end,
        seed_query=seed_query,
        seed_subject=seed_subject,
        box_query_start=max(0, seed_query - back.reach_i),
        box_query_end=min(seed_query + fwd.reach_i, qlen - 1),
        box_subject_start=max(0, seed_subject - back.reach_j),
        box_subject_end=min(seed_subject + fwd.reach_j, slen - 1),
        cells=back.cells + fwd.cells,
    )
