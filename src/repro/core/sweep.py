"""Batched database sweep: one blocked pass serves an entire query batch.

Per-query search costs ``O(queries x database)`` passes over the subject
codes. This driver inverts the loop: the database is streamed once in
residue-balanced blocks (:meth:`~repro.io.database.SequenceDatabase.blocks`),
each block is swept through a :class:`~repro.seeding.multi_query.MultiQueryIndex`
(one word-index pass for the whole batch), and the query-tagged hit stream
is untagged into per-query two-hit seeding + ungapped extension *inside the
block*. Only the surviving extensions — thousands, not the millions of raw
hits — accumulate across blocks; gapped extension and traceback then run
per query exactly as the per-query pipeline does.

Why this is result-identical to per-query search (the conformance
argument, enforced by the verify matrix's ``cublastp-batched`` variants
and the property suite):

* hit detection — the sweep produces, per query, the same hit multiset as
  :func:`~repro.core.hit_detection.detect_hits`;
* two-hit + ungapped extension — blocks split on sequence boundaries, and
  :func:`~repro.core.two_hit.select_seeds_and_extend` groups by
  ``(seq_id, diagonal)`` after a global ``seq_id``-major lexsort; since no
  group straddles a block and blocks ascend in ``seq_id``, the per-block
  extension columns concatenated in block order equal the one-shot
  :class:`~repro.core.results.ExtensionArray`;
* gapped extension onward — runs on the accumulated extension columns
  with the same cutoffs (statistics are resolved against the *whole*
  database, never a block), through the same phase methods.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from typing import TYPE_CHECKING, Sequence

from repro.core.pipeline import BlastpPipeline, PhaseCounts
from repro.core.results import ExtensionArray, SearchResult
from repro.io.database import SequenceDatabase
from repro.seeding.multi_query import MultiQueryIndex

if TYPE_CHECKING:
    from repro.core.statistics import Cutoffs
    from repro.engine.events import EventLog

#: Default residues per sweep block. Small enough that one block's tagged
#: hits for a large batch stay tens of MB; large enough that the per-block
#: fixed costs (word indexing setup, per-query untag) amortise.
DEFAULT_BLOCK_RESIDUES = 50_000


def num_sweep_blocks(db: SequenceDatabase, block_residues: int | None = None) -> int:
    """Block count giving roughly ``block_residues`` residues per block."""
    target = DEFAULT_BLOCK_RESIDUES if block_residues is None else block_residues
    if target < 1:
        raise ValueError("block_residues must be positive")
    return max(1, min(len(db), round(int(db.codes.size) / target)))


def sweep_extend_block(
    index: MultiQueryIndex,
    pipelines: Sequence[BlastpPipeline],
    block: SequenceDatabase,
    cutoffs: "Sequence[Cutoffs]",
    seq_id_base: int = 0,
) -> tuple[list[ExtensionArray], list[int], list[int], dict[str, float]]:
    """Sweep one block and run block-local phase 2 for every query.

    Returns per-query ``(extensions, num_hits, num_seeds)`` plus a
    ``{"hit_detection": ms, "ungapped_extension": ms}`` wall split —
    extension columns carry global sequence ids (``seq_id_base`` rebases
    the block-local ids in one vectorised add), so accumulating them
    across blocks needs no further translation, and the wall split lets
    a process-backend caller re-emit per-phase timing the parent never
    saw first-hand.

    Subject coordinates inside an extension are sequence-local, so only
    the sequence id needs rebasing.
    """
    t0 = time.perf_counter()
    tagged = index.sweep_block(block)
    t1 = time.perf_counter()
    extensions: list[ExtensionArray] = []
    num_hits: list[int] = []
    num_seeds: list[int] = []
    for q, pipe in enumerate(pipelines):
        hits_q = int(tagged.per_query[q])
        num_hits.append(hits_q)
        if hits_q == 0:
            extensions.append(ExtensionArray.empty())
            num_seeds.append(0)
            continue
        exts, seeds = pipe.phase_ungapped_hits(index.untag(tagged, q), block, cutoffs[q])
        extensions.append(exts.with_seq_offset(seq_id_base))
        num_seeds.append(seeds)
    phase_wall = {
        "hit_detection": (t1 - t0) * 1e3,
        "ungapped_extension": (time.perf_counter() - t1) * 1e3,
    }
    return extensions, num_hits, num_seeds, phase_wall


def sweep_finish(
    pipe: BlastpPipeline,
    db: SequenceDatabase,
    extensions: ExtensionArray,
    num_hits: int,
    num_seeds: int,
    cutoffs: "Cutoffs",
    *,
    engine_name: str | None = None,
    events: "EventLog | None" = None,
) -> tuple[SearchResult, PhaseCounts]:
    """Phases 3+4 for one query, from its accumulated extension list.

    This is the tail of :meth:`BlastpPipeline.search_with_counts` with the
    first two phases already paid by the sweep; the result assembly is
    identical field for field.
    """
    name = engine_name or pipe.name

    def phase(phase_name: str):
        if events is None:
            return nullcontext({})
        return events.phase(name, phase_name, query_id=pipe.query_id)

    if pipe.params.ungapped_only:
        gapped, num_triggers = [], 0
        with phase("final_alignment") as ev:
            alignments = pipe.phase_ungapped_report(extensions, db, cutoffs)
            ev["work_items"] = len(alignments)
    else:
        with phase("gapped_extension") as ev:
            gapped, num_triggers = pipe.phase_gapped(extensions, db, cutoffs)
            ev["work_items"] = len(gapped)
        with phase("final_alignment") as ev:
            alignments = pipe.phase_traceback(gapped, db, cutoffs)
            ev["work_items"] = len(alignments)
    counts = PhaseCounts(
        num_hits=num_hits,
        num_seeds=num_seeds,
        num_ungapped_extensions=len(extensions),
        num_gapped_triggers=num_triggers,
        num_gapped_extensions=len(gapped),
        num_traceback=len(gapped),
        num_reported=len(alignments),
    )
    result = SearchResult(
        query_length=pipe.query_length,
        db_sequences=len(db),
        db_residues=int(db.codes.size),
        alignments=alignments,
        num_hits=counts.num_hits,
        num_seeds=counts.num_seeds,
        num_ungapped_extensions=counts.num_ungapped_extensions,
        num_gapped_extensions=counts.num_gapped_extensions,
        num_reported=counts.num_reported,
    )
    return result, counts


def search_batch_sweep(
    pipelines: Sequence[BlastpPipeline],
    db: SequenceDatabase,
    *,
    block_residues: int | None = None,
    blocks: Sequence[SequenceDatabase] | None = None,
    engine_name: str | None = None,
    events: "EventLog | None" = None,
) -> list[tuple[SearchResult, PhaseCounts]]:
    """Run the whole batch through one blocked database sweep.

    Parameters
    ----------
    pipelines:
        One *bound* :class:`BlastpPipeline` per batch query (each carries
        its compiled query and ``query_id``).
    db:
        The full database (cutoff statistics are resolved against it).
    block_residues:
        Target residues per block (default
        :data:`DEFAULT_BLOCK_RESIDUES`); ignored when ``blocks`` is given.
    blocks:
        Pre-cut contiguous blocks of ``db`` (e.g. the store's cached
        partition, :meth:`~repro.io.store.DatabaseStore.blocks`); each
        must be a :class:`~repro.io.database.DatabaseView` of ``db`` in
        ascending order — exactly what ``db.blocks(n)`` yields.
    engine_name:
        Name phase events are emitted under (default: the pipelines').
    events:
        Optional event log; the sweep emits ``hit_detection`` /
        ``ungapped_extension`` pairs per block (batch-scoped, they sum in
        ``wall_breakdown``) and per-query ``gapped_extension`` /
        ``final_alignment`` pairs.
    """
    if not pipelines:
        return []
    index = MultiQueryIndex.from_compiled([p.compiled for p in pipelines])
    name = engine_name or pipelines[0].name

    def phase(phase_name: str, query_id: str | None = None):
        if events is None:
            return nullcontext({})
        return events.phase(name, phase_name, query_id=query_id)

    cutoffs = [pipe.cutoffs(db) for pipe in pipelines]
    if blocks is None:
        blocks = db.blocks(num_sweep_blocks(db, block_residues))
    n_queries = len(pipelines)
    # Per-query extension columns accumulate block by block and
    # concatenate once at finish — no per-record work crosses a block.
    all_extensions: list[list[ExtensionArray]] = [[] for _ in range(n_queries)]
    total_hits = [0] * n_queries
    total_seeds = [0] * n_queries
    # Blocks of a view collapse onto the root parent, so their ``start``
    # is in root coordinates; rebase relative to ``db``'s own origin.
    db_start = getattr(db, "start", 0)
    for block in blocks:
        base = getattr(block, "start", db_start) - db_start
        with phase("hit_detection") as ev:
            tagged = index.sweep_block(block)
            ev["work_items"] = len(tagged)
        with phase("ungapped_extension") as ev:
            block_ext = 0
            for q, pipe in enumerate(pipelines):
                hits_q = int(tagged.per_query[q])
                total_hits[q] += hits_q
                if hits_q == 0:
                    continue
                exts, seeds = pipe.phase_ungapped_hits(
                    index.untag(tagged, q), block, cutoffs[q]
                )
                all_extensions[q].append(exts.with_seq_offset(base))
                total_seeds[q] += seeds
                block_ext += len(exts)
            ev["work_items"] = block_ext
    return [
        sweep_finish(
            pipe,
            db,
            ExtensionArray.concat(all_extensions[q]),
            total_hits[q],
            total_seeds[q],
            cutoffs[q],
            engine_name=name,
            events=events,
        )
        for q, pipe in enumerate(pipelines)
    ]
