"""Result types produced by the BLASTP phases."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, order=True)
class UngappedExtension:
    """Output of phase 2 for one triggered hit.

    Coordinates are inclusive residue indices of the maximal-scoring
    ungapped segment; ``subject_end - subject_start == query_end -
    query_start`` always (no gaps by definition). Ordering is lexicographic
    on the fields, giving a deterministic canonical order for
    output-equality tests across implementations.
    """

    seq_id: int
    query_start: int
    query_end: int
    subject_start: int
    subject_end: int
    score: int

    def __post_init__(self) -> None:
        if self.subject_end - self.subject_start != self.query_end - self.query_start:
            raise ValueError("ungapped extension must stay on one diagonal")

    @property
    def length(self) -> int:
        """Number of aligned residue pairs."""
        return self.subject_end - self.subject_start + 1

    @property
    def diagonal_offset(self) -> int:
        """``subject_start - query_start`` (constant along the segment)."""
        return self.subject_start - self.query_start


@dataclass(frozen=True)
class Alignment:
    """A reported alignment after traceback (phase 4).

    ``aligned_query``/``aligned_subject`` are equal-length strings using
    ``-`` for gaps; ``midline`` marks identities (letter), positives
    (``+``) and mismatches/gaps (space), like BLAST's pairwise output.
    """

    seq_id: int
    subject_identifier: str
    score: int
    bit_score: float
    evalue: float
    query_start: int
    query_end: int
    subject_start: int
    subject_end: int
    aligned_query: str
    aligned_subject: str
    midline: str
    identities: int
    positives: int
    gaps: int

    @property
    def length(self) -> int:
        """Alignment length including gap columns."""
        return len(self.aligned_query)


@dataclass
class SearchResult:
    """Complete output of one BLASTP search.

    ``alignments`` is sorted by descending score (ties broken by
    ``seq_id`` then coordinates, so ordering is deterministic); the phase
    statistics feed both the performance models and the paper's
    hit-survival claims.
    """

    query_length: int
    db_sequences: int
    db_residues: int
    alignments: list[Alignment] = field(default_factory=list)
    num_hits: int = 0
    num_seeds: int = 0
    num_ungapped_extensions: int = 0
    num_gapped_extensions: int = 0
    num_reported: int = 0

    def best(self) -> Alignment | None:
        """Highest-scoring alignment, or ``None`` when nothing was reported."""
        return self.alignments[0] if self.alignments else None

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"hits={self.num_hits} seeds={self.num_seeds} "
            f"ungapped={self.num_ungapped_extensions} "
            f"gapped={self.num_gapped_extensions} reported={self.num_reported}"
        )
