"""Result types produced by the BLASTP phases."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar, Iterable, Iterator, Sequence

import numpy as np


@dataclass(frozen=True, order=True)
class UngappedExtension:
    """Output of phase 2 for one triggered hit.

    Coordinates are inclusive residue indices of the maximal-scoring
    ungapped segment; ``subject_end - subject_start == query_end -
    query_start`` always (no gaps by definition). Ordering is lexicographic
    on the fields, giving a deterministic canonical order for
    output-equality tests across implementations.
    """

    seq_id: int
    query_start: int
    query_end: int
    subject_start: int
    subject_end: int
    score: int

    def __post_init__(self) -> None:
        if self.subject_end - self.subject_start != self.query_end - self.query_start:
            raise ValueError("ungapped extension must stay on one diagonal")

    @property
    def length(self) -> int:
        """Number of aligned residue pairs."""
        return self.subject_end - self.subject_start + 1

    @property
    def diagonal_offset(self) -> int:
        """``subject_start - query_start`` (constant along the segment)."""
        return self.subject_start - self.query_start


@dataclass(eq=False)
class ExtensionArray:
    """Columnar (struct-of-arrays) form of a phase-2 extension stream.

    The phase 2→4 hot path moves extensions as six aligned ``int64``
    columns instead of one :class:`UngappedExtension` object per record:
    the batch x-drop math in :mod:`repro.core.ungapped` already produces
    columns, and every downstream consumer (gap-trigger filtering,
    containment seeding, e-value computation, sweep/process marshalling)
    reduces them with array operations. Records exist only at the edges —
    :meth:`to_records` / :meth:`from_records` / iteration are the shims
    for cold paths and tests, and they are deliberately the *only* places
    a per-record Python loop survives.

    Row order is meaningful and preserved by every transform here: the
    coverage pass emits ``(seq_id, diagonal, subject_pos)`` seed order,
    and the downstream phases depend on that order for deterministic
    tie-breaking, so concatenation and ``take`` never re-sort implicitly.
    """

    seq_id: np.ndarray
    query_start: np.ndarray
    query_end: np.ndarray
    subject_start: np.ndarray
    subject_end: np.ndarray
    score: np.ndarray

    #: Column names in canonical (payload) order.
    FIELDS: ClassVar[tuple[str, ...]] = (
        "seq_id", "query_start", "query_end",
        "subject_start", "subject_end", "score",
    )

    def __post_init__(self) -> None:
        for name in self.FIELDS:
            col = np.ascontiguousarray(getattr(self, name), dtype=np.int64)
            if col.ndim != 1:
                raise ValueError(f"column {name!r} must be one-dimensional")
            setattr(self, name, col)
        n = self.seq_id.size
        if any(getattr(self, name).size != n for name in self.FIELDS):
            raise ValueError("extension columns must be aligned")
        if n and (
            (self.subject_end - self.subject_start)
            != (self.query_end - self.query_start)
        ).any():
            raise ValueError("ungapped extension must stay on one diagonal")

    # -- container protocol (record shims) ---------------------------------

    def __len__(self) -> int:
        return int(self.seq_id.size)

    def __bool__(self) -> bool:
        return self.seq_id.size > 0

    def __iter__(self) -> Iterator[UngappedExtension]:
        for k in range(self.seq_id.size):
            yield self.record(k)

    def __getitem__(self, index: int) -> UngappedExtension:
        return self.record(index)

    def record(self, index: int) -> UngappedExtension:
        """Row ``index`` as an :class:`UngappedExtension` (cold paths only)."""
        return UngappedExtension(
            seq_id=int(self.seq_id[index]),
            query_start=int(self.query_start[index]),
            query_end=int(self.query_end[index]),
            subject_start=int(self.subject_start[index]),
            subject_end=int(self.subject_end[index]),
            score=int(self.score[index]),
        )

    # -- construction ------------------------------------------------------

    @classmethod
    def empty(cls) -> "ExtensionArray":
        z = np.zeros(0, dtype=np.int64)
        return cls(z, z.copy(), z.copy(), z.copy(), z.copy(), z.copy())

    @classmethod
    def from_records(
        cls, records: Iterable[UngappedExtension]
    ) -> "ExtensionArray":
        """Build columns from record objects, preserving order."""
        records = list(records)
        if not records:
            return cls.empty()
        return cls(*(
            np.array([getattr(e, name) for e in records], dtype=np.int64)
            for name in cls.FIELDS
        ))

    @classmethod
    def coerce(
        cls, extensions: "ExtensionArray | Iterable[UngappedExtension]"
    ) -> "ExtensionArray":
        """``extensions`` as columns; record sequences are converted."""
        if isinstance(extensions, cls):
            return extensions
        return cls.from_records(extensions)

    @classmethod
    def concat(cls, parts: "Sequence[ExtensionArray]") -> "ExtensionArray":
        """Row-wise concatenation, order preserved (block accumulation)."""
        parts = [p for p in parts if len(p)]
        if not parts:
            return cls.empty()
        if len(parts) == 1:
            return parts[0]
        return cls(*(
            np.concatenate([getattr(p, name) for p in parts])
            for name in cls.FIELDS
        ))

    # -- transforms --------------------------------------------------------

    def to_records(self) -> list[UngappedExtension]:
        """All rows as record objects (compat shim for cold consumers)."""
        return [self.record(k) for k in range(self.seq_id.size)]

    def take(self, which: np.ndarray) -> "ExtensionArray":
        """Rows selected by an index array or boolean mask, in order."""
        return type(self)(*(getattr(self, name)[which] for name in self.FIELDS))

    def with_seq_offset(self, offset: int) -> "ExtensionArray":
        """Same rows with ``seq_id`` rebased by ``offset`` (block→global)."""
        if not offset:
            return self
        return type(self)(
            self.seq_id + np.int64(offset),
            self.query_start, self.query_end,
            self.subject_start, self.subject_end, self.score,
        )

    def with_seq_ids(self, seq_id: np.ndarray) -> "ExtensionArray":
        """Same rows under a new ``seq_id`` column (id-space remapping)."""
        return type(self)(
            seq_id, self.query_start, self.query_end,
            self.subject_start, self.subject_end, self.score,
        )

    def sorted_canonical(self) -> "ExtensionArray":
        """Rows in ``(seq_id, query_start, subject_start)`` order.

        The canonical inter-implementation order the GPU readback uses;
        stable, so equal keys keep their input order.
        """
        return self.take(
            np.lexsort((self.subject_start, self.query_start, self.seq_id))
        )

    def sorted_full(self) -> "ExtensionArray":
        """Rows sorted on the full field tuple.

        Matches ``sorted()`` of the record objects (whose dataclass order
        compares all six fields lexicographically).
        """
        return self.take(np.lexsort((
            self.score, self.subject_end, self.subject_start,
            self.query_end, self.query_start, self.seq_id,
        )))

    @property
    def lengths(self) -> np.ndarray:
        """Aligned residue pairs per row (cf. ``UngappedExtension.length``)."""
        return self.subject_end - self.subject_start + 1

    # -- process-boundary payload ------------------------------------------

    def to_columns(self) -> list[list[int]]:
        """Six aligned plain-int lists (picklable builtins, column order
        :data:`FIELDS`) — the cross-process wire form."""
        return [getattr(self, name).tolist() for name in self.FIELDS]

    @classmethod
    def from_columns(cls, columns: Sequence[Sequence[int]]) -> "ExtensionArray":
        """Inverse of :meth:`to_columns`."""
        if len(columns) != len(cls.FIELDS):
            raise ValueError(
                f"extension payload has {len(columns)} columns, "
                f"expected {len(cls.FIELDS)}"
            )
        return cls(*(np.asarray(col, dtype=np.int64) for col in columns))


@dataclass(frozen=True)
class Alignment:
    """A reported alignment after traceback (phase 4).

    ``aligned_query``/``aligned_subject`` are equal-length strings using
    ``-`` for gaps; ``midline`` marks identities (letter), positives
    (``+``) and mismatches/gaps (space), like BLAST's pairwise output.
    """

    seq_id: int
    subject_identifier: str
    score: int
    bit_score: float
    evalue: float
    query_start: int
    query_end: int
    subject_start: int
    subject_end: int
    aligned_query: str
    aligned_subject: str
    midline: str
    identities: int
    positives: int
    gaps: int

    @property
    def length(self) -> int:
        """Alignment length including gap columns."""
        return len(self.aligned_query)


@dataclass
class SearchResult:
    """Complete output of one BLASTP search.

    ``alignments`` is sorted by descending score (ties broken by
    ``seq_id`` then coordinates, so ordering is deterministic); the phase
    statistics feed both the performance models and the paper's
    hit-survival claims.
    """

    query_length: int
    db_sequences: int
    db_residues: int
    alignments: list[Alignment] = field(default_factory=list)
    num_hits: int = 0
    num_seeds: int = 0
    num_ungapped_extensions: int = 0
    num_gapped_extensions: int = 0
    num_reported: int = 0

    def best(self) -> Alignment | None:
        """Highest-scoring alignment, or ``None`` when nothing was reported."""
        return self.alignments[0] if self.alignments else None

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"hits={self.num_hits} seeds={self.num_seeds} "
            f"ungapped={self.num_ungapped_extensions} "
            f"gapped={self.num_gapped_extensions} reported={self.num_reported}"
        )
