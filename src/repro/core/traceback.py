"""Phase 4: alignment with traceback.

Re-solves the affine-gap local DP inside the bounding box that the gapped
extension reached, keeps the full ``H``/``E``/``F`` score matrices, and
walks the optimal path backwards by score comparison (no pointer matrices:
a cell's provenance is recoverable from the stored values, and a fixed
precedence — diagonal, then vertical gap, then horizontal gap — makes the
walk deterministic). This mirrors BLAST's design, where traceback is a
separate, memory-hungrier pass run only for the few alignments that survive
the score cutoffs, which is also why cuBLASTP leaves it on the CPU.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.alphabet import GAP_CHAR, decode

#: Minus infinity for int64 score arithmetic (same convention as gapped.py).
_NEG = np.int64(-(2**40))


@dataclass(frozen=True)
class TracebackAlignment:
    """A fully rendered local alignment.

    Coordinates are inclusive and absolute (query/subject indices, not
    box-relative). ``aligned_query`` and ``aligned_subject`` include
    ``-`` gap characters; ``midline`` follows BLAST convention (residue for
    identity, ``+`` for a positive substitution score, space otherwise).
    """

    score: int
    query_start: int
    query_end: int
    subject_start: int
    subject_end: int
    aligned_query: str
    aligned_subject: str
    midline: str
    identities: int
    positives: int
    gaps: int

    @property
    def length(self) -> int:
        """Alignment length including gap columns."""
        return len(self.aligned_query)


def traceback_align(
    pssm: np.ndarray,
    query_codes: np.ndarray,
    subject_codes: np.ndarray,
    box: tuple[int, int, int, int],
    gap_open: int,
    gap_extend: int,
) -> TracebackAlignment | None:
    """Optimal local alignment within ``box``.

    Parameters
    ----------
    pssm:
        Query PSSM.
    query_codes, subject_codes:
        Full encoded sequences (the box selects the active region).
    box:
        ``(query_start, query_end, subject_start, subject_end)`` inclusive
        bounds, typically the reach of a gapped extension.
    gap_open, gap_extend:
        Affine penalties (positive numbers).

    Returns
    -------
    TracebackAlignment or None
        ``None`` when the box contains no positively scoring alignment.
    """
    qs, qe, ss, se = box
    if not (0 <= qs <= qe < pssm.shape[1] and 0 <= ss <= se < subject_codes.size):
        raise ValueError(f"box {box} out of bounds")
    q = np.asarray(query_codes[qs : qe + 1], dtype=np.uint8)
    s = np.asarray(subject_codes[ss : se + 1], dtype=np.uint8)
    n, m = q.size, s.size
    # Substitution scores for the box: sub[i, j] scores q[i] vs s[j].
    sub = pssm[s[:, None], np.arange(qs, qe + 1)[None, :]].T.astype(np.int64)

    go, ge = int(gap_open), int(gap_extend)
    H = np.zeros((n + 1, m + 1), dtype=np.int64)
    E = np.full((n + 1, m + 1), _NEG, dtype=np.int64)
    F = np.full((n + 1, m + 1), _NEG, dtype=np.int64)
    jj = np.arange(m + 1, dtype=np.int64)
    for i in range(1, n + 1):
        E[i, 1:] = np.maximum(H[i - 1, 1:] - go, E[i - 1, 1:] - ge)
        diag = H[i - 1, :-1] + sub[i - 1]
        g = np.maximum.reduce([np.zeros(m, dtype=np.int64), diag, E[i, 1:]])
        # Horizontal gaps via the running-max unrolling (see gapped.py).
        g_full = np.concatenate(([np.int64(0)], g))  # j = 0 column is 0
        t = g_full + ge * jj
        run = np.maximum.accumulate(t)
        F[i, 1:] = run[:-1] - go - ge * (jj[1:] - 1)
        H[i, 1:] = np.maximum(g, F[i, 1:])

    best = int(H.max())
    if best <= 0:
        return None
    bi, bj = np.unravel_index(int(np.argmax(H)), H.shape)
    i, j = int(bi), int(bj)

    aq: list[int] = []
    asub: list[int] = []
    state = "H"
    end_i, end_j = i, j
    while i > 0 and j > 0:
        if state == "H":
            if H[i, j] == 0:
                break
            if H[i, j] == H[i - 1, j - 1] + sub[i - 1, j - 1]:
                aq.append(int(q[i - 1]))
                asub.append(int(s[j - 1]))
                i -= 1
                j -= 1
            elif H[i, j] == E[i, j]:
                state = "E"
            else:
                state = "F"
        elif state == "E":
            aq.append(int(q[i - 1]))
            asub.append(-1)
            came_ext = E[i, j] == E[i - 1, j] - ge
            i -= 1
            state = "E" if came_ext else "H"
        else:  # state == "F"
            aq.append(-1)
            asub.append(int(s[j - 1]))
            came_ext = F[i, j] == F[i, j - 1] - ge
            j -= 1
            state = "F" if came_ext else "H"

    aq.reverse()
    asub.reverse()
    aligned_query = "".join(
        GAP_CHAR if c < 0 else decode(np.array([c], dtype=np.uint8)) for c in aq
    )
    aligned_subject = "".join(
        GAP_CHAR if c < 0 else decode(np.array([c], dtype=np.uint8)) for c in asub
    )
    # Vectorised midline/identity pass over the alignment columns. Each
    # non-gap column's absolute query position is the start plus the count
    # of preceding query-consuming columns (exclusive prefix sum).
    aq_arr = np.array(aq, dtype=np.int64)
    as_arr = np.array(asub, dtype=np.int64)
    gap_col = (aq_arr < 0) | (as_arr < 0)
    eq = ~gap_col & (aq_arr == as_arr)
    has_q = aq_arr >= 0
    qpos_arr = qs + i + np.cumsum(has_q) - has_q
    sub_pos = pssm[
        np.where(as_arr >= 0, as_arr, 0),
        np.where(has_q, qpos_arr, 0),
    ] > 0
    plus = ~gap_col & ~eq & sub_pos
    gaps = int(gap_col.sum())
    identities = int(eq.sum())
    positives = identities + int(plus.sum())
    midline_arr = np.where(
        eq,
        np.frombuffer(aligned_query.encode("ascii"), dtype="S1"),
        np.where(plus, b"+", b" "),
    )
    return TracebackAlignment(
        score=best,
        query_start=qs + i,
        query_end=qs + end_i - 1,
        subject_start=ss + j,
        subject_end=ss + end_j - 1,
        aligned_query=aligned_query,
        aligned_subject=aligned_subject,
        midline=midline_arr.tobytes().decode("ascii"),
        identities=identities,
        positives=positives,
        gaps=gaps,
    )
