"""Phase 4: alignment with traceback.

Re-solves the affine-gap local DP inside the bounding box that the gapped
extension reached, keeps the full ``H``/``E``/``F`` score matrices, and
walks the optimal path backwards by score comparison (no pointer matrices:
a cell's provenance is recoverable from the stored values, and a fixed
precedence — diagonal, then vertical gap, then horizontal gap — makes the
walk deterministic). This mirrors BLAST's design, where traceback is a
separate, memory-hungrier pass run only for the few alignments that survive
the score cutoffs, which is also why cuBLASTP leaves it on the CPU.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.alphabet import GAP_CHAR, decode

#: Minus infinity for int64 score arithmetic (same convention as gapped.py).
_NEG = np.int64(-(2**40))


@dataclass(frozen=True)
class TracebackAlignment:
    """A fully rendered local alignment.

    Coordinates are inclusive and absolute (query/subject indices, not
    box-relative). ``aligned_query`` and ``aligned_subject`` include
    ``-`` gap characters; ``midline`` follows BLAST convention (residue for
    identity, ``+`` for a positive substitution score, space otherwise).
    """

    score: int
    query_start: int
    query_end: int
    subject_start: int
    subject_end: int
    aligned_query: str
    aligned_subject: str
    midline: str
    identities: int
    positives: int
    gaps: int

    @property
    def length(self) -> int:
        """Alignment length including gap columns."""
        return len(self.aligned_query)


def traceback_align(
    pssm: np.ndarray,
    query_codes: np.ndarray,
    subject_codes: np.ndarray,
    box: tuple[int, int, int, int],
    gap_open: int,
    gap_extend: int,
) -> TracebackAlignment | None:
    """Optimal local alignment within ``box``.

    Parameters
    ----------
    pssm:
        Query PSSM.
    query_codes, subject_codes:
        Full encoded sequences (the box selects the active region).
    box:
        ``(query_start, query_end, subject_start, subject_end)`` inclusive
        bounds, typically the reach of a gapped extension.
    gap_open, gap_extend:
        Affine penalties (positive numbers).

    Returns
    -------
    TracebackAlignment or None
        ``None`` when the box contains no positively scoring alignment.
    """
    qs, qe, ss, se = box
    if not (0 <= qs <= qe < pssm.shape[1] and 0 <= ss <= se < subject_codes.size):
        raise ValueError(f"box {box} out of bounds")
    q = np.asarray(query_codes[qs : qe + 1], dtype=np.uint8)
    s = np.asarray(subject_codes[ss : se + 1], dtype=np.uint8)
    n, m = q.size, s.size
    # Substitution scores for the box: sub[i, j] scores q[i] vs s[j].
    sub = pssm[s[:, None], np.arange(qs, qe + 1)[None, :]].T.astype(np.int64)

    go, ge = int(gap_open), int(gap_extend)
    H = np.zeros((n + 1, m + 1), dtype=np.int64)
    E = np.full((n + 1, m + 1), _NEG, dtype=np.int64)
    F = np.full((n + 1, m + 1), _NEG, dtype=np.int64)
    jj = np.arange(m + 1, dtype=np.int64)
    for i in range(1, n + 1):
        E[i, 1:] = np.maximum(H[i - 1, 1:] - go, E[i - 1, 1:] - ge)
        diag = H[i - 1, :-1] + sub[i - 1]
        g = np.maximum.reduce([np.zeros(m, dtype=np.int64), diag, E[i, 1:]])
        # Horizontal gaps via the running-max unrolling (see gapped.py).
        g_full = np.concatenate(([np.int64(0)], g))  # j = 0 column is 0
        t = g_full + ge * jj
        run = np.maximum.accumulate(t)
        F[i, 1:] = run[:-1] - go - ge * (jj[1:] - 1)
        H[i, 1:] = np.maximum(g, F[i, 1:])

    return _walk(pssm, H, E, F, q, s, qs, ss, go, ge)


#: Padded-cell budget per batched-fill chunk (lanes x rows x cols). Three
#: int64 slabs of this size bound the working set near ~48 MB; a single
#: box larger than the budget still fills alone in its own chunk.
_CHUNK_CELL_BUDGET = 2_000_000


def batch_traceback_align(
    pssm: np.ndarray,
    query_codes: np.ndarray,
    subjects: "list[np.ndarray]",
    boxes: "list[tuple[int, int, int, int]]",
    gap_open: int,
    gap_extend: int,
) -> "list[TracebackAlignment | None]":
    """Traceback-align every box, filling the DP matrices in lockstep.

    The lanes x band batching of the gapped-extension phase, applied to
    the phase-4 re-score: boxes are stacked into padded
    ``(lanes, n+1, m+1)`` slabs and every DP advances one query row per
    step with whole-slab vectorised ops. Lanes are sorted longest-first
    so the lanes still holding row ``i`` always form a prefix of the
    slab, and chunks are cut to :data:`_CHUNK_CELL_BUDGET` padded cells.

    Right-padding columns (``j > m`` for a lane) hold garbage, but every
    in-row dependency flows left-to-right and the diagonal reads column
    ``j - 1``, so real cells never read a padded one; the walk-back then
    runs on the exact ``(n+1, m+1)`` view of each lane. Results are
    element-wise identical to per-box :func:`traceback_align` — the
    property suite pins it.

    ``subjects`` carries one full encoded subject per box (duplicates
    are fine); returns one entry per box, in input order.
    """
    num = len(boxes)
    out: "list[TracebackAlignment | None]" = [None] * num
    if num == 0:
        return out
    go, ge = int(gap_open), int(gap_extend)
    qlen = pssm.shape[1]
    lanes: list[tuple[int, int, int, int, int]] = []
    for k, (box, subject) in enumerate(zip(boxes, subjects)):
        qs, qe, ss, se = box
        if not (0 <= qs <= qe < qlen and 0 <= ss <= se < subject.size):
            raise ValueError(f"box {box} out of bounds")
        lanes.append((k, qs, ss, qe - qs + 1, se - ss + 1))
    lanes.sort(key=lambda lane: -lane[3])
    start = 0
    while start < len(lanes):
        n_max = lanes[start][3]
        m_max = lanes[start][4]
        stop = start + 1
        while stop < len(lanes):
            m_next = max(m_max, lanes[stop][4])
            if (stop + 1 - start) * (n_max + 1) * (m_next + 1) > _CHUNK_CELL_BUDGET:
                break
            m_max = m_next
            stop += 1
        _fill_chunk(pssm, query_codes, subjects, lanes[start:stop], go, ge, out)
        start = stop
    return out


def _fill_chunk(
    pssm: np.ndarray,
    query_codes: np.ndarray,
    subjects: "list[np.ndarray]",
    chunk: "list[tuple[int, int, int, int, int]]",
    go: int,
    ge: int,
    out: "list[TracebackAlignment | None]",
) -> None:
    """Fill one n-descending chunk of ``(k, qs, ss, n, m)`` lanes and walk
    each lane's view, writing results into ``out[k]``."""
    count = len(chunk)
    n_arr = np.array([lane[3] for lane in chunk], dtype=np.int64)
    qs_arr = np.array([lane[1] for lane in chunk], dtype=np.int64)
    n_max = int(n_arr[0])
    m_max = max(lane[4] for lane in chunk)
    scodes = np.zeros((count, m_max), dtype=np.uint8)
    for idx, (k, _qs, ss, _n, m) in enumerate(chunk):
        scodes[idx, :m] = subjects[k][ss : ss + m]
    H = np.zeros((count, n_max + 1, m_max + 1), dtype=np.int64)
    E = np.full((count, n_max + 1, m_max + 1), _NEG, dtype=np.int64)
    F = np.full((count, n_max + 1, m_max + 1), _NEG, dtype=np.int64)
    jj = np.arange(m_max + 1, dtype=np.int64)
    for i in range(1, n_max + 1):
        # Lanes are n-descending: those still holding row i are a prefix.
        live = int(np.searchsorted(-n_arr, np.int64(-i), side="right"))
        sub_row = pssm[scodes[:live], (qs_arr[:live] + i - 1)[:, None]].astype(
            np.int64
        )
        E[:live, i, 1:] = np.maximum(
            H[:live, i - 1, 1:] - go, E[:live, i - 1, 1:] - ge
        )
        diag = H[:live, i - 1, :-1] + sub_row
        g = np.maximum.reduce(
            [np.zeros((live, m_max), dtype=np.int64), diag, E[:live, i, 1:]]
        )
        g_full = np.concatenate(
            (np.zeros((live, 1), dtype=np.int64), g), axis=1
        )
        t = g_full + ge * jj[None, :]
        run = np.maximum.accumulate(t, axis=1)
        F[:live, i, 1:] = run[:, :-1] - go - ge * (jj[None, 1:] - 1)
        H[:live, i, 1:] = np.maximum(g, F[:live, i, 1:])
    for idx, (k, qs, ss, n, m) in enumerate(chunk):
        q = np.asarray(query_codes[qs : qs + n], dtype=np.uint8)
        s = np.asarray(subjects[k][ss : ss + m], dtype=np.uint8)
        out[k] = _walk(
            pssm,
            H[idx, : n + 1, : m + 1],
            E[idx, : n + 1, : m + 1],
            F[idx, : n + 1, : m + 1],
            q,
            s,
            qs,
            ss,
            go,
            ge,
        )


def _walk(
    pssm: np.ndarray,
    H: np.ndarray,
    E: np.ndarray,
    F: np.ndarray,
    q: np.ndarray,
    s: np.ndarray,
    qs: int,
    ss: int,
    go: int,
    ge: int,
) -> TracebackAlignment | None:
    """Walk one filled box back from its best cell and render it.

    ``H``/``E``/``F`` are the ``(n+1, m+1)`` score matrices of the box
    (views into a batch slab are fine — only logical row-major order
    matters); substitution scores are re-read from ``pssm`` on the path,
    so no per-box score matrix needs to be materialised.
    """
    def sub(i: int, j: int) -> int:
        return int(pssm[s[j - 1], qs + i - 1])

    best = int(H.max())
    if best <= 0:
        return None
    bi, bj = np.unravel_index(int(np.argmax(H)), H.shape)
    i, j = int(bi), int(bj)

    aq: list[int] = []
    asub: list[int] = []
    state = "H"
    end_i, end_j = i, j
    while i > 0 and j > 0:
        if state == "H":
            if H[i, j] == 0:
                break
            if H[i, j] == H[i - 1, j - 1] + sub(i, j):
                aq.append(int(q[i - 1]))
                asub.append(int(s[j - 1]))
                i -= 1
                j -= 1
            elif H[i, j] == E[i, j]:
                state = "E"
            else:
                state = "F"
        elif state == "E":
            aq.append(int(q[i - 1]))
            asub.append(-1)
            came_ext = E[i, j] == E[i - 1, j] - ge
            i -= 1
            state = "E" if came_ext else "H"
        else:  # state == "F"
            aq.append(-1)
            asub.append(int(s[j - 1]))
            came_ext = F[i, j] == F[i, j - 1] - ge
            j -= 1
            state = "F" if came_ext else "H"

    aq.reverse()
    asub.reverse()
    aligned_query = "".join(
        GAP_CHAR if c < 0 else decode(np.array([c], dtype=np.uint8)) for c in aq
    )
    aligned_subject = "".join(
        GAP_CHAR if c < 0 else decode(np.array([c], dtype=np.uint8)) for c in asub
    )
    # Vectorised midline/identity pass over the alignment columns. Each
    # non-gap column's absolute query position is the start plus the count
    # of preceding query-consuming columns (exclusive prefix sum).
    aq_arr = np.array(aq, dtype=np.int64)
    as_arr = np.array(asub, dtype=np.int64)
    gap_col = (aq_arr < 0) | (as_arr < 0)
    eq = ~gap_col & (aq_arr == as_arr)
    has_q = aq_arr >= 0
    qpos_arr = qs + i + np.cumsum(has_q) - has_q
    sub_pos = pssm[
        np.where(as_arr >= 0, as_arr, 0),
        np.where(has_q, qpos_arr, 0),
    ] > 0
    plus = ~gap_col & ~eq & sub_pos
    gaps = int(gap_col.sum())
    identities = int(eq.sum())
    positives = identities + int(plus.sum())
    midline_arr = np.where(
        eq,
        np.frombuffer(aligned_query.encode("ascii"), dtype="S1"),
        np.where(plus, b"+", b" "),
    )
    return TracebackAlignment(
        score=best,
        query_start=qs + i,
        query_end=qs + end_i - 1,
        subject_start=ss + j,
        subject_end=ss + end_j - 1,
        aligned_query=aligned_query,
        aligned_subject=aligned_subject,
        midline=midline_arr.tobytes().decode("ascii"),
        identities=identities,
        positives=positives,
        gaps=gaps,
    )
