"""Hit containers shared by every BLASTP implementation in this repo.

A *hit* is a tuple ``(seq_id, query_pos, subject_pos)`` naming one word
match. The *diagonal number* is defined exactly as the paper's Algorithm 1
line 6: ``diagonal = subject_pos - query_pos + query_length``, which maps
the range ``[-query_length, subject_length]`` onto non-negative integers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def diagonal_of(query_pos: np.ndarray, subject_pos: np.ndarray, query_length: int) -> np.ndarray:
    """Diagonal number of each hit (Algorithm 1, line 6)."""
    return np.asarray(subject_pos, dtype=np.int64) - np.asarray(query_pos, dtype=np.int64) + query_length


@dataclass
class HitArray:
    """A flat batch of hits in structure-of-arrays form.

    All arrays are aligned (same length). The column-major invariant —
    within one sequence, ``subject_pos`` is non-decreasing, and hits of the
    same subject position are ordered by ascending ``query_pos`` — holds for
    the output of hit detection and is what the binning/sorting machinery
    re-orders into diagonal-major form.
    """

    seq_id: np.ndarray
    query_pos: np.ndarray
    subject_pos: np.ndarray
    query_length: int

    def __post_init__(self) -> None:
        self.seq_id = np.asarray(self.seq_id, dtype=np.int64)
        self.query_pos = np.asarray(self.query_pos, dtype=np.int64)
        self.subject_pos = np.asarray(self.subject_pos, dtype=np.int64)
        if not (self.seq_id.size == self.query_pos.size == self.subject_pos.size):
            raise ValueError("hit arrays must be aligned")

    def __len__(self) -> int:
        return int(self.seq_id.size)

    @property
    def diagonal(self) -> np.ndarray:
        """Diagonal number of every hit."""
        return diagonal_of(self.query_pos, self.subject_pos, self.query_length)

    def sorted_diagonal_major(self) -> "HitArray":
        """Reorder hits to (seq_id, diagonal, subject_pos) order.

        This is the order the ungapped-extension phase consumes — the
        target order of the paper's binning-sorting step.
        """
        order = np.lexsort((self.subject_pos, self.diagonal, self.seq_id))
        return HitArray(
            seq_id=self.seq_id[order],
            query_pos=self.query_pos[order],
            subject_pos=self.subject_pos[order],
            query_length=self.query_length,
        )

    def as_tuples(self) -> list[tuple[int, int, int]]:
        """Hits as ``(seq_id, query_pos, subject_pos)`` tuples (tests only)."""
        return list(
            zip(
                self.seq_id.tolist(),
                self.query_pos.tolist(),
                self.subject_pos.tolist(),
            )
        )
