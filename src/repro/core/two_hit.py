"""Phase 2 driver: two-hit seed selection + ungapped extension.

Semantics (pinned for the whole library)
----------------------------------------
Within each ``(sequence, diagonal)`` group, hits are visited in ascending
subject position:

1. a hit is a *seed* iff some earlier hit on the same diagonal lies within
   subject distance ``[word_length, two_hit_window]`` — the classic two-hit
   rule. The lower bound excludes overlapping words (two hits closer than
   ``W`` are one similarity region, not two independent matches; NCBI
   BLAST applies the same exclusion), and the first hit of a diagonal
   never seeds;
2. a seed *triggers* an ungapped extension iff its subject position lies
   beyond ``ext_reach``, the subject end of the previous extension on that
   diagonal (Algorithm 3's covered-hit check).

This is precisely what cuBLASTP's filter kernel (rule 1) plus its
diagonal-based extension kernel (rule 2) compute, so the sequential
reference and the fine-grained GPU path produce identical extension sets *by
construction*. The paper's Algorithm 1 writes the extension end back into
``lasthit_arr`` instead of keeping the raw hit position; we keep the raw hit
position so rule 1 matches the filter kernel exactly — the difference only
surfaces for hits that are already covered by an extension, which trigger
nothing either way.
"""

from __future__ import annotations

import numpy as np

from repro.core.hits import HitArray
from repro.core.results import UngappedExtension
from repro.core.ungapped import batch_ungapped_extend
from repro.io.database import SequenceDatabase


def seed_mask(hits: HitArray, two_hit_window: int, word_length: int = 3) -> np.ndarray:
    """Boolean mask of hits satisfying the two-hit rule (rule 1 above).

    Fully vectorised. Hits are grouped by ``(seq_id, diagonal)`` and each
    hit asks: does any earlier hit of my group lie within subject distance
    ``[word_length, two_hit_window]``? Because in-group subject positions
    are sorted, the candidate predecessor closest to the lower bound is
    found with one global ``searchsorted`` on a composite ``group * K +
    position`` key, and the window test is a single comparison. The
    returned mask is aligned with ``hits`` in its *original* order.
    """
    n = len(hits)
    if n == 0:
        return np.zeros(0, dtype=bool)
    diag = hits.diagonal
    order = np.lexsort((hits.subject_pos, diag, hits.seq_id))
    seq_s = hits.seq_id[order]
    diag_s = diag[order]
    spos_s = hits.subject_pos[order]

    # Composite sort key: (group, subject position) flattened into one int64.
    # The position stride must exceed any subject position; diagonals are
    # bounded by query_length + subject_length which is < 2**17 here, and
    # subject positions by 36,805, so a 2**20 stride is safe and overflow-free.
    stride = np.int64(1) << 20
    group = seq_s * (np.int64(1) << 20) + diag_s  # unique per (seq, diag)
    keyed = group * stride + spos_s
    # For hit i, the latest predecessor with spos <= spos_i - word_length:
    target = group * stride + (spos_s - word_length)
    idx = np.searchsorted(keyed, target, side="right") - 1
    valid = idx >= 0
    # The predecessor must be in the same group and within the window.
    pred_ok = np.zeros(n, dtype=bool)
    vi = np.nonzero(valid)[0]
    same = group[idx[vi]] == group[vi]
    within = spos_s[idx[vi]] >= spos_s[vi] - two_hit_window
    pred_ok[vi] = same & within

    mask = np.zeros(n, dtype=bool)
    mask[order] = pred_ok
    return mask


def select_seeds_and_extend(
    hits: HitArray,
    db: SequenceDatabase,
    pssm: np.ndarray,
    word_length: int,
    two_hit_window: int,
    x_drop: int,
) -> tuple[list[UngappedExtension], int]:
    """Apply both rules and run ungapped extension on every triggered seed.

    Returns
    -------
    (extensions, num_seeds):
        Extensions in ``(seq_id, diagonal, subject_pos)`` seed order, and
        the number of hits that passed the two-hit rule (the paper's
        "hits passed to ungapped extension", 5-11 % of all hits).
    """
    mask = seed_mask(hits, two_hit_window, word_length)
    num_seeds = int(mask.sum())
    if num_seeds == 0:
        return [], 0

    seq_id = hits.seq_id[mask]
    qpos = hits.query_pos[mask]
    spos = hits.subject_pos[mask]
    diag = spos - qpos
    order = np.lexsort((spos, diag, seq_id))
    seq_id, qpos, spos, diag = seq_id[order], qpos[order], spos[order], diag[order]

    # Extend every seed in one vectorised batch (results for seeds that turn
    # out to be covered are simply discarded — recomputing eagerly is the
    # same trade the paper's hit-based kernel makes, and it is what lets
    # phase 2 run without a per-seed Python loop).
    q_start, q_end, s_start, s_end, score = batch_ungapped_extend(
        pssm,
        db.codes,
        db.offsets[seq_id],
        db.offsets[seq_id + 1],
        seq_id,
        qpos,
        spos,
        word_length,
        x_drop,
    )

    # Sequential coverage pass per (sequence, diagonal) group: keep a seed
    # only when it starts beyond the previous kept extension's subject end.
    new_group = np.zeros(seq_id.size, dtype=bool)
    new_group[0] = True
    new_group[1:] = (seq_id[1:] != seq_id[:-1]) | (diag[1:] != diag[:-1])
    extensions: list[UngappedExtension] = []
    ext_reach = -1
    for k in range(seq_id.size):
        if new_group[k]:
            ext_reach = -1
        if spos[k] <= ext_reach:
            continue  # covered by the previous extension on this diagonal
        extensions.append(
            UngappedExtension(
                seq_id=int(seq_id[k]),
                query_start=int(q_start[k]),
                query_end=int(q_end[k]),
                subject_start=int(s_start[k]),
                subject_end=int(s_end[k]),
                score=int(score[k]),
            )
        )
        ext_reach = int(s_end[k])
    return extensions, num_seeds
