"""Phase 2 driver: two-hit seed selection + ungapped extension.

Semantics (pinned for the whole library)
----------------------------------------
Within each ``(sequence, diagonal)`` group, hits are visited in ascending
subject position:

1. a hit is a *seed* iff some earlier hit on the same diagonal lies within
   subject distance ``[word_length, two_hit_window]`` — the classic two-hit
   rule. The lower bound excludes overlapping words (two hits closer than
   ``W`` are one similarity region, not two independent matches; NCBI
   BLAST applies the same exclusion), and the first hit of a diagonal
   never seeds;
2. a seed *triggers* an ungapped extension iff its subject position lies
   beyond ``ext_reach``, the subject end of the previous extension on that
   diagonal (Algorithm 3's covered-hit check).

This is precisely what cuBLASTP's filter kernel (rule 1) plus its
diagonal-based extension kernel (rule 2) compute, so the sequential
reference and the fine-grained GPU path produce identical extension sets *by
construction*. The paper's Algorithm 1 writes the extension end back into
``lasthit_arr`` instead of keeping the raw hit position; we keep the raw hit
position so rule 1 matches the filter kernel exactly — the difference only
surfaces for hits that are already covered by an extension, which trigger
nothing either way.
"""

from __future__ import annotations

import numpy as np

from repro.core.hits import HitArray
from repro.core.results import ExtensionArray
from repro.core.ungapped import batch_ungapped_extend
from repro.io.database import SequenceDatabase


def seed_mask(hits: HitArray, two_hit_window: int, word_length: int = 3) -> np.ndarray:
    """Boolean mask of hits satisfying the two-hit rule (rule 1 above).

    Fully vectorised. Hits are grouped by ``(seq_id, diagonal)`` and each
    hit asks: does any earlier hit of my group lie within subject distance
    ``[word_length, two_hit_window]``? Because in-group subject positions
    are sorted, the candidate predecessor closest to the lower bound is
    found with one global ``searchsorted`` on a composite ``group * K +
    position`` key, and the window test is a single comparison. The
    returned mask is aligned with ``hits`` in its *original* order.
    """
    n = len(hits)
    if n == 0:
        return np.zeros(0, dtype=bool)
    diag = hits.diagonal
    order = np.lexsort((hits.subject_pos, diag, hits.seq_id))
    seq_s = hits.seq_id[order]
    diag_s = diag[order]
    spos_s = hits.subject_pos[order]

    # Composite sort key: (group, subject position) flattened into one int64.
    # The position stride must exceed any subject position; diagonals are
    # bounded by query_length + subject_length which is < 2**17 here, and
    # subject positions by 36,805, so a 2**20 stride is safe and overflow-free.
    stride = np.int64(1) << 20
    group = seq_s * (np.int64(1) << 20) + diag_s  # unique per (seq, diag)
    keyed = group * stride + spos_s
    # For hit i, the latest predecessor with spos <= spos_i - word_length:
    target = group * stride + (spos_s - word_length)
    idx = np.searchsorted(keyed, target, side="right") - 1
    valid = idx >= 0
    # The predecessor must be in the same group and within the window.
    pred_ok = np.zeros(n, dtype=bool)
    vi = np.nonzero(valid)[0]
    same = group[idx[vi]] == group[vi]
    within = spos_s[idx[vi]] >= spos_s[vi] - two_hit_window
    pred_ok[vi] = same & within

    mask = np.zeros(n, dtype=bool)
    mask[order] = pred_ok
    return mask


def covered_seed_mask(
    seq_id: np.ndarray,
    diag: np.ndarray,
    spos: np.ndarray,
    s_end: np.ndarray,
) -> np.ndarray:
    """Vectorised coverage rule: which seeds trigger an extension (rule 2).

    Inputs are ``(seq_id, diag, spos)``-lexsorted seed columns with
    ``s_end`` the subject end each seed's extension reached. The scalar
    rule walks a group in ascending ``spos`` keeping a seed iff it starts
    beyond the previously *kept* extension's subject end. Because every
    kept extension contains its own seed word, its reach satisfies
    ``s_end >= spos + W - 1 > previous reach``, so the kept chain inside a
    group is exactly a pointer-jumping chase: from a kept seed, the next
    kept one is the first in-group seed with ``spos > s_end`` — found for
    *all* chains at once with one :func:`numpy.searchsorted` per wave on
    the same composite ``group * stride + spos`` key :func:`seed_mask`
    uses. Wave count is the longest kept chain, not the seed count.

    Returns the kept mask aligned with the (sorted) inputs; kept rows in
    ascending index order are exactly the scalar loop's append order.
    """
    n = seq_id.size
    if n == 0:
        return np.zeros(0, dtype=bool)
    new_group = np.empty(n, dtype=bool)
    new_group[0] = True
    new_group[1:] = (seq_id[1:] != seq_id[:-1]) | (diag[1:] != diag[:-1])
    group_id = np.cumsum(new_group) - 1
    group_first = np.flatnonzero(new_group)
    group_past = np.append(group_first[1:], n)
    # One composite key per seed; the stride clears every position *and*
    # every extension reach so targets never alias the next group.
    stride = np.int64(int(s_end.max()) + 2)
    keyed = group_id * stride + spos
    kept = np.zeros(n, dtype=bool)
    # Wave 0: the first seed of every group (scalar reach resets to -1).
    cur = group_first
    while cur.size:
        kept[cur] = True
        # First in-group seed past this extension's reach, per chain.
        nxt = np.searchsorted(keyed, group_id[cur] * stride + s_end[cur], side="right")
        alive = nxt < group_past[group_id[cur]]
        cur = nxt[alive]
    return kept


def select_seeds_and_extend(
    hits: HitArray,
    db: SequenceDatabase,
    pssm: np.ndarray,
    word_length: int,
    two_hit_window: int,
    x_drop: int,
) -> tuple[ExtensionArray, int]:
    """Apply both rules and run ungapped extension on every triggered seed.

    Returns
    -------
    (extensions, num_seeds):
        An :class:`~repro.core.results.ExtensionArray` in ``(seq_id,
        diagonal, subject_pos)`` seed order, and the number of hits that
        passed the two-hit rule (the paper's "hits passed to ungapped
        extension", 5-11 % of all hits).
    """
    mask = seed_mask(hits, two_hit_window, word_length)
    num_seeds = int(mask.sum())
    if num_seeds == 0:
        return ExtensionArray.empty(), 0

    seq_id = hits.seq_id[mask]
    qpos = hits.query_pos[mask]
    spos = hits.subject_pos[mask]
    diag = spos - qpos
    order = np.lexsort((spos, diag, seq_id))
    seq_id, qpos, spos, diag = seq_id[order], qpos[order], spos[order], diag[order]

    # Extend every seed in one vectorised batch (results for seeds that turn
    # out to be covered are simply discarded — recomputing eagerly is the
    # same trade the paper's hit-based kernel makes, and it is what lets
    # phase 2 run without a per-seed Python loop).
    q_start, q_end, s_start, s_end, score = batch_ungapped_extend(
        pssm,
        db.codes,
        db.offsets[seq_id],
        db.offsets[seq_id + 1],
        seq_id,
        qpos,
        spos,
        word_length,
        x_drop,
    )

    # Coverage pass per (sequence, diagonal) group: keep a seed only when
    # it starts beyond the previous kept extension's subject end. Fully
    # vectorised (see covered_seed_mask); kept rows stay in seed order, so
    # the columns below equal the retired scalar loop's append order.
    kept = covered_seed_mask(seq_id, diag, spos, s_end)
    return (
        ExtensionArray(
            seq_id=seq_id[kept],
            query_start=q_start[kept],
            query_end=q_end[kept],
            subject_start=s_start[kept],
            subject_end=s_end[kept],
            score=score[kept],
        ),
        num_seeds,
    )
