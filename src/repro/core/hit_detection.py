"""Phase 1: hit detection over a whole database (vectorised CPU reference).

Scans every subject sequence column-major — exactly the order of Fig. 3 —
and returns all hits as one flat :class:`~repro.core.hits.HitArray`. This is
the functional reference the GPU hit-detection kernel is tested against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.hits import HitArray
from repro.io.database import SequenceDatabase
from repro.seeding.lookup import WordLookupTable
from repro.seeding.words import word_indices


@dataclass
class DatabaseHits:
    """All hits of one query against one database.

    Attributes
    ----------
    hits:
        Flat hit array in (sequence, column-major) order.
    per_sequence:
        ``int64`` array: number of hits found in each subject sequence.
    """

    hits: HitArray
    per_sequence: np.ndarray

    def __len__(self) -> int:
        return len(self.hits)


def detect_hits(lookup: WordLookupTable, db: SequenceDatabase) -> DatabaseHits:
    """Find every word hit between the query and every database sequence.

    The whole database is processed in one vectorised pass: word indices
    for all subject windows at once, one CSR gather for the neighbourhood
    lists, then a ragged expansion — no per-hit Python work.
    """
    nbr = lookup.neighborhood
    w = nbr.word_length
    offsets = db.offsets
    codes = db.codes
    n_seq = len(db)

    # Word index of every window of every sequence, computed on the packed
    # code array, then windows that straddle a sequence boundary are masked.
    widx_all = word_indices(codes, w)
    if widx_all.size == 0:
        empty = HitArray(
            seq_id=np.zeros(0, dtype=np.int64),
            query_pos=np.zeros(0, dtype=np.int64),
            subject_pos=np.zeros(0, dtype=np.int64),
            query_length=nbr.query_length,
        )
        return DatabaseHits(hits=empty, per_sequence=np.zeros(n_seq, dtype=np.int64))

    window_global = np.arange(widx_all.size, dtype=np.int64)
    # Sequence owning each window start; a window is valid when it ends
    # within the same sequence.
    owner = np.searchsorted(offsets, window_global, side="right") - 1
    valid = window_global + w <= offsets[owner + 1]
    widx = widx_all[valid]
    owner = owner[valid]
    local_pos = window_global[valid] - offsets[owner]

    starts = nbr.offsets[widx]
    counts = (nbr.offsets[widx + 1] - starts).astype(np.int64)
    total = int(counts.sum())
    per_sequence = np.bincount(owner, weights=counts, minlength=n_seq).astype(np.int64)
    if total == 0:
        empty = HitArray(
            seq_id=np.zeros(0, dtype=np.int64),
            query_pos=np.zeros(0, dtype=np.int64),
            subject_pos=np.zeros(0, dtype=np.int64),
            query_length=nbr.query_length,
        )
        return DatabaseHits(hits=empty, per_sequence=per_sequence)

    # Ragged expansion of the CSR slices (same trick as WordLookupTable.scan).
    seq_id = np.repeat(owner, counts)
    subject_pos = np.repeat(local_pos, counts)
    cum = np.cumsum(counts)
    within = np.arange(total, dtype=np.int64) - np.repeat(cum - counts, counts)
    query_pos = nbr.positions[np.repeat(starts, counts) + within].astype(np.int64)

    hits = HitArray(
        seq_id=seq_id,
        query_pos=query_pos,
        subject_pos=subject_pos,
        query_length=nbr.query_length,
    )
    return DatabaseHits(hits=hits, per_sequence=per_sequence)
