"""X-drop ungapped extension (phase 2 inner loop).

From a seed word at ``(query_pos, subject_pos)`` the extension walks outward
in both directions along the diagonal, accumulating PSSM scores and keeping
the best prefix seen; a direction stops when the running score falls more
than ``x_drop`` below that direction's best. The result is the
maximal-scoring ungapped segment through the seed word.

Tie-breaking is pinned library-wide: each direction keeps the *shortest*
prefix achieving its maximum (first ``argmax``). Every implementation — this
vectorised one, the scalar reference below, and the three GPU kernels —
follows the same rule, which is what makes cross-implementation
output-equality tests exact instead of fuzzy.
"""

from __future__ import annotations

import numpy as np

from repro.core.results import UngappedExtension


def _direction_gain(deltas: np.ndarray, x_drop: int) -> tuple[int, int]:
    """Best prefix of a score series under the x-drop rule.

    Parameters
    ----------
    deltas:
        Per-step score contributions, in walk order.
    x_drop:
        Stop once ``best_so_far - current > x_drop``.

    Returns
    -------
    (gain, steps):
        ``gain`` is the best prefix sum (0 when every prefix is negative)
        and ``steps`` the number of residues in that best prefix.
    """
    if deltas.size == 0:
        return 0, 0
    cum = np.cumsum(deltas, dtype=np.int64)
    # Best-so-far includes the empty prefix (score 0): a walk that dives
    # x_drop below zero stops even if it would later recover.
    run_max = np.maximum.accumulate(np.maximum(cum, 0))
    dropped = run_max - cum > x_drop
    if dropped.any():
        limit = int(np.argmax(dropped))  # first index where the drop fires
        cum = cum[: limit + 1]
    best_idx = int(np.argmax(cum))
    gain = int(cum[best_idx])
    if gain <= 0:
        return 0, 0
    return gain, best_idx + 1


def ungapped_extend(
    pssm: np.ndarray,
    subject_codes: np.ndarray,
    seq_id: int,
    query_pos: int,
    subject_pos: int,
    word_length: int,
    x_drop: int,
) -> UngappedExtension:
    """Extend a seed word in both directions (vectorised).

    Parameters
    ----------
    pssm:
        Query PSSM, shape ``(ALPHABET_SIZE, query_length)``.
    subject_codes:
        Residue codes of the subject sequence.
    seq_id:
        Subject index, passed through into the result.
    query_pos, subject_pos:
        Seed word start positions.
    word_length:
        Seed word length ``W``.
    x_drop:
        Raw-score X-drop for both directions.

    Returns
    -------
    UngappedExtension
        The maximal segment (inclusive coordinates) and its score. The
        segment always contains the seed word, even when the word score is
        negative (mirroring FSA-BLAST, which anchors on the word).
    """
    qlen = pssm.shape[1]
    slen = subject_codes.size
    q0, s0 = query_pos, subject_pos
    word_q = np.arange(q0, q0 + word_length)
    word_score = int(
        pssm[subject_codes[s0 : s0 + word_length], word_q].sum(dtype=np.int64)
    )

    # Right: pairs (q0 + W + k, s0 + W + k) while both in range.
    n_right = min(qlen - (q0 + word_length), slen - (s0 + word_length))
    right_deltas = (
        pssm[
            subject_codes[s0 + word_length : s0 + word_length + n_right],
            np.arange(q0 + word_length, q0 + word_length + n_right),
        ].astype(np.int64)
        if n_right > 0
        else np.zeros(0, dtype=np.int64)
    )
    right_gain, right_steps = _direction_gain(right_deltas, x_drop)

    # Left: pairs (q0 - 1 - k, s0 - 1 - k) while both in range.
    n_left = min(q0, s0)
    left_deltas = (
        pssm[
            subject_codes[s0 - n_left : s0][::-1],
            np.arange(q0 - 1, q0 - 1 - n_left, -1),
        ].astype(np.int64)
        if n_left > 0
        else np.zeros(0, dtype=np.int64)
    )
    left_gain, left_steps = _direction_gain(left_deltas, x_drop)

    return UngappedExtension(
        seq_id=seq_id,
        query_start=q0 - left_steps,
        query_end=q0 + word_length - 1 + right_steps,
        subject_start=s0 - left_steps,
        subject_end=s0 + word_length - 1 + right_steps,
        score=word_score + left_gain + right_gain,
    )


#: First-pass window of the escalating batched extension. With the BLASTP
#: default x-drop (~16 raw) roughly nine in ten walks through random
#: protein sequence terminate within 32 residues, so the bulk of the score
#: gathering happens at this width.
FIRST_WINDOW = 32

#: Second-pass window for walks that overrun :data:`FIRST_WINDOW`. Only
#: genuinely homologous segments overrun *this* one, and those few are
#: re-done exactly in a final bounded pass.
BATCH_WINDOW = 128


def _batch_direction(
    deltas: np.ndarray, x_drop: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorised :func:`_direction_gain` over many extensions at once.

    Parameters
    ----------
    deltas:
        ``(n, L)`` per-step contributions; exhausted positions must hold a
        large negative sentinel so the x-drop fires there.
    x_drop:
        X-drop threshold.

    Returns
    -------
    (gain, steps, overran):
        Per-row best prefix sum and its length, plus a mask of rows whose
        walk reached the end of the window without the drop firing — those
        rows need the exact (unwindowed) scalar path.
    """
    n, L = deltas.shape
    if L == 0:
        z = np.zeros(n, dtype=np.int64)
        return z, z.copy(), np.zeros(n, dtype=bool)
    cum = np.cumsum(deltas, axis=1, dtype=np.int64)
    # As in _direction_gain: the empty prefix's 0 floors the running best.
    run = np.maximum.accumulate(np.maximum(cum, 0), axis=1)
    dropped = run - cum > x_drop
    any_drop = dropped.any(axis=1)
    limit = np.where(any_drop, np.argmax(dropped, axis=1), L - 1)
    # Mask positions beyond each row's stop point, then take the best prefix.
    cols = np.arange(L)
    masked = np.where(cols[None, :] <= limit[:, None], cum, NEG_SENTINEL)
    steps = np.argmax(masked, axis=1).astype(np.int64) + 1
    gain = masked[np.arange(n), steps - 1]
    dead = gain <= 0
    gain = np.where(dead, 0, gain)
    steps = np.where(dead, 0, steps)
    return gain, steps, ~any_drop


#: Sentinel well below any reachable score yet safe under int64 cumsum.
NEG_SENTINEL = np.int64(-(2**40))


def batch_ungapped_extend(
    pssm: np.ndarray,
    db_codes: np.ndarray,
    seq_starts: np.ndarray,
    seq_ends: np.ndarray,
    seq_ids: np.ndarray,
    query_pos: np.ndarray,
    subject_pos: np.ndarray,
    word_length: int,
    x_drop: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Extend many seeds at once (the hot path of phase 2).

    Works directly on the packed database code array: for each seed, a
    window of :data:`BATCH_WINDOW` score contributions per direction is
    gathered with fancy indexing and reduced with the same x-drop rule as
    :func:`ungapped_extend`. Seeds whose walk overruns the window (rare:
    only long homologous segments) are redone exactly in one batched
    second pass whose window covers the longest possible walk, so results
    are bit-identical to calling :func:`ungapped_extend` per seed — a
    property the test suite checks.

    Parameters
    ----------
    pssm:
        Query PSSM.
    db_codes:
        Packed residue codes of the whole database.
    seq_starts, seq_ends:
        Absolute [start, end) offsets of each seed's sequence in
        ``db_codes``.
    seq_ids, query_pos, subject_pos:
        Per-seed identity and word start positions (``subject_pos`` is
        sequence-local).
    word_length, x_drop:
        As in :func:`ungapped_extend`.

    Returns
    -------
    (query_start, query_end, subject_start, subject_end, score):
        Aligned ``int64`` arrays, one entry per seed.
    """
    n = seq_ids.size
    qlen = pssm.shape[1]
    if n == 0:
        z = np.zeros(0, dtype=np.int64)
        return z, z.copy(), z.copy(), z.copy(), z.copy()
    q0 = np.asarray(query_pos, dtype=np.int64)
    s0 = np.asarray(subject_pos, dtype=np.int64)
    starts = np.asarray(seq_starts, dtype=np.int64)
    ends = np.asarray(seq_ends, dtype=np.int64)
    abs0 = starts + s0

    # Seed word score.
    k = np.arange(word_length)
    word_codes = db_codes[abs0[:, None] + k[None, :]]
    word_score = pssm[word_codes, q0[:, None] + k[None, :]].sum(axis=1, dtype=np.int64)

    # Escalating windows: every seed gets a FIRST_WINDOW pass; the minority
    # whose walk overruns it (no drop, residues left) escalates to
    # BATCH_WINDOW. A windowed result is exact whenever the drop fired or
    # the sequence ran out inside the window, so each escalation simply
    # recomputes the still-open rows at a larger width.
    gain_l = np.zeros(n, dtype=np.int64)
    steps_l = np.zeros(n, dtype=np.int64)
    gain_r = np.zeros(n, dtype=np.int64)
    steps_r = np.zeros(n, dtype=np.int64)
    pending = np.arange(n)
    for window in (FIRST_WINDOW, BATCH_WINDOW):
        gl, sl, ol, gr, sr, orr = _windowed_directions(
            pssm, db_codes, starts[pending], ends[pending],
            q0[pending], abs0[pending], word_length, x_drop, window,
        )
        gain_l[pending], steps_l[pending] = gl, sl
        gain_r[pending], steps_r[pending] = gr, sr
        pending = pending[ol | orr]
        if pending.size == 0:
            break

    # Batched exact redo for the few BATCH_WINDOW-overrunning seeds: rerun
    # them through the same windowed pass, with the window one slot wider
    # than the longest walk any of them could take (both directions are
    # bounded by the query and the subject slack). The slot past a row's
    # last in-range residue then always holds the sentinel, the drop fires
    # there, and the pass degenerates to the exact (unwindowed)
    # :func:`_direction_gain` — bit-identical to a scalar redo, without
    # the per-row Python loop.
    if pending.size:
        redo = pending
        max_walk = max(
            int(np.max(np.minimum(qlen - (q0[redo] + word_length),
                                  ends[redo] - (abs0[redo] + word_length)))),
            int(np.max(np.minimum(q0[redo], abs0[redo] - starts[redo]))),
        )
        gl, sl, ol, gr, sr, orr = _windowed_directions(
            pssm, db_codes, starts[redo], ends[redo], q0[redo], abs0[redo],
            word_length, x_drop, max_walk + 1,
        )
        assert not (ol.any() or orr.any()), "redo window must cover every walk"
        gain_l[redo], steps_l[redo] = gl, sl
        gain_r[redo], steps_r[redo] = gr, sr

    q_start = q0 - steps_l
    q_end = q0 + word_length - 1 + steps_r
    s_start = s0 - steps_l
    s_end = s0 + word_length - 1 + steps_r
    score = word_score + gain_l + gain_r
    return q_start, q_end, s_start, s_end, score


def _windowed_directions(
    pssm: np.ndarray,
    db_codes: np.ndarray,
    seq_starts: np.ndarray,
    seq_ends: np.ndarray,
    q0: np.ndarray,
    abs0: np.ndarray,
    word_length: int,
    x_drop: int,
    L: int,
) -> tuple[np.ndarray, ...]:
    """Both x-drop directions for a row subset, ``L`` residues per window.

    Returns ``(gain_l, steps_l, over_l, gain_r, steps_r, over_r)``; the
    ``over`` masks flag rows whose walk used the whole window without the
    drop firing (their results are lower bounds, not exact).
    """
    qlen = pssm.shape[1]
    steps_arr = np.arange(1, L + 1, dtype=np.int64)

    # Right direction: pairs (q0 + W - 1 + t, s0 + W - 1 + t), t = 1..L.
    # Out-of-range slots gather a clamped (garbage) score and are then
    # overwritten with the sentinel — one dense fancy-index beats the
    # nonzero + scatter pair on these mostly-valid windows.
    qr = q0[:, None] + word_length - 1 + steps_arr[None, :]
    ar = abs0[:, None] + word_length - 1 + steps_arr[None, :]
    valid_r = (qr < qlen) & (ar < seq_ends[:, None])
    dr = np.where(
        valid_r,
        pssm[db_codes[np.minimum(ar, db_codes.size - 1)], np.minimum(qr, qlen - 1)],
        NEG_SENTINEL,
    )
    gain_r, steps_r, over_r = _batch_direction(dr, x_drop)
    # A row only truly overruns if its last window slot was a real residue.
    over_r &= valid_r[:, -1]

    # Left direction: pairs (q0 - t, s0 - t), t = 1..L.
    ql = q0[:, None] - steps_arr[None, :]
    al = abs0[:, None] - steps_arr[None, :]
    valid_l = (ql >= 0) & (al >= seq_starts[:, None])
    dl = np.where(
        valid_l,
        pssm[db_codes[np.maximum(al, 0)], np.maximum(ql, 0)],
        NEG_SENTINEL,
    )
    gain_l, steps_l, over_l = _batch_direction(dl, x_drop)
    over_l &= valid_l[:, -1]
    return gain_l, steps_l, over_l, gain_r, steps_r, over_r


def ungapped_extend_scalar(
    pssm: np.ndarray,
    subject_codes: np.ndarray,
    seq_id: int,
    query_pos: int,
    subject_pos: int,
    word_length: int,
    x_drop: int,
) -> UngappedExtension:
    """Scalar (per-residue loop) reference for :func:`ungapped_extend`.

    Follows the textbook x-drop loop one residue at a time. Exists so
    property tests can pit the vectorised implementation against an
    independently written one; never used on hot paths.
    """
    qlen = pssm.shape[1]
    slen = subject_codes.size
    q0, s0 = query_pos, subject_pos
    score = 0
    for k in range(word_length):
        score += int(pssm[subject_codes[s0 + k], q0 + k])
    word_score = score

    def walk(qstart: int, sstart: int, step: int) -> tuple[int, int]:
        cur = 0
        best = 0
        best_steps = 0
        steps = 0
        q, s = qstart, sstart
        while 0 <= q < qlen and 0 <= s < slen:
            cur += int(pssm[subject_codes[s], q])
            steps += 1
            if cur > best:
                best = cur
                best_steps = steps
            if best - cur > x_drop:
                break
            q += step
            s += step
        return best, best_steps

    right_gain, right_steps = walk(q0 + word_length, s0 + word_length, +1)
    left_gain, left_steps = walk(q0 - 1, s0 - 1, -1)
    return UngappedExtension(
        seq_id=seq_id,
        query_start=q0 - left_steps,
        query_end=q0 + word_length - 1 + right_steps,
        subject_start=s0 - left_steps,
        subject_end=s0 + word_length - 1 + right_steps,
        score=word_score + left_gain + right_gain,
    )
