"""X-drop ungapped extension (phase 2 inner loop).

From a seed word at ``(query_pos, subject_pos)`` the extension walks outward
in both directions along the diagonal, accumulating PSSM scores and keeping
the best prefix seen; a direction stops when the running score falls more
than ``x_drop`` below that direction's best. The result is the
maximal-scoring ungapped segment through the seed word.

Tie-breaking is pinned library-wide: each direction keeps the *shortest*
prefix achieving its maximum (first ``argmax``). Every implementation — this
vectorised one, the scalar reference below, and the three GPU kernels —
follows the same rule, which is what makes cross-implementation
output-equality tests exact instead of fuzzy.
"""

from __future__ import annotations

import numpy as np

from repro.core.results import UngappedExtension


def _direction_gain(deltas: np.ndarray, x_drop: int) -> tuple[int, int]:
    """Best prefix of a score series under the x-drop rule.

    Parameters
    ----------
    deltas:
        Per-step score contributions, in walk order.
    x_drop:
        Stop once ``best_so_far - current > x_drop``.

    Returns
    -------
    (gain, steps):
        ``gain`` is the best prefix sum (0 when every prefix is negative)
        and ``steps`` the number of residues in that best prefix.
    """
    if deltas.size == 0:
        return 0, 0
    cum = np.cumsum(deltas, dtype=np.int64)
    # Best-so-far includes the empty prefix (score 0): a walk that dives
    # x_drop below zero stops even if it would later recover.
    run_max = np.maximum.accumulate(np.maximum(cum, 0))
    dropped = run_max - cum > x_drop
    if dropped.any():
        limit = int(np.argmax(dropped))  # first index where the drop fires
        cum = cum[: limit + 1]
    best_idx = int(np.argmax(cum))
    gain = int(cum[best_idx])
    if gain <= 0:
        return 0, 0
    return gain, best_idx + 1


def ungapped_extend(
    pssm: np.ndarray,
    subject_codes: np.ndarray,
    seq_id: int,
    query_pos: int,
    subject_pos: int,
    word_length: int,
    x_drop: int,
) -> UngappedExtension:
    """Extend a seed word in both directions (vectorised).

    Parameters
    ----------
    pssm:
        Query PSSM, shape ``(ALPHABET_SIZE, query_length)``.
    subject_codes:
        Residue codes of the subject sequence.
    seq_id:
        Subject index, passed through into the result.
    query_pos, subject_pos:
        Seed word start positions.
    word_length:
        Seed word length ``W``.
    x_drop:
        Raw-score X-drop for both directions.

    Returns
    -------
    UngappedExtension
        The maximal segment (inclusive coordinates) and its score. The
        segment always contains the seed word, even when the word score is
        negative (mirroring FSA-BLAST, which anchors on the word).
    """
    qlen = pssm.shape[1]
    slen = subject_codes.size
    q0, s0 = query_pos, subject_pos
    word_q = np.arange(q0, q0 + word_length)
    word_score = int(
        pssm[subject_codes[s0 : s0 + word_length], word_q].sum(dtype=np.int64)
    )

    # Right: pairs (q0 + W + k, s0 + W + k) while both in range.
    n_right = min(qlen - (q0 + word_length), slen - (s0 + word_length))
    right_deltas = (
        pssm[
            subject_codes[s0 + word_length : s0 + word_length + n_right],
            np.arange(q0 + word_length, q0 + word_length + n_right),
        ].astype(np.int64)
        if n_right > 0
        else np.zeros(0, dtype=np.int64)
    )
    right_gain, right_steps = _direction_gain(right_deltas, x_drop)

    # Left: pairs (q0 - 1 - k, s0 - 1 - k) while both in range.
    n_left = min(q0, s0)
    left_deltas = (
        pssm[
            subject_codes[s0 - n_left : s0][::-1],
            np.arange(q0 - 1, q0 - 1 - n_left, -1),
        ].astype(np.int64)
        if n_left > 0
        else np.zeros(0, dtype=np.int64)
    )
    left_gain, left_steps = _direction_gain(left_deltas, x_drop)

    return UngappedExtension(
        seq_id=seq_id,
        query_start=q0 - left_steps,
        query_end=q0 + word_length - 1 + right_steps,
        subject_start=s0 - left_steps,
        subject_end=s0 + word_length - 1 + right_steps,
        score=word_score + left_gain + right_gain,
    )


#: Window length used by the batched extension before falling back to the
#: scalar path. With the BLASTP default x-drop (~16 raw) extensions through
#: random protein sequence terminate well inside this window; only genuinely
#: homologous segments overrun it, and those are re-done exactly.
BATCH_WINDOW = 128


def _batch_direction(
    deltas: np.ndarray, x_drop: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorised :func:`_direction_gain` over many extensions at once.

    Parameters
    ----------
    deltas:
        ``(n, L)`` per-step contributions; exhausted positions must hold a
        large negative sentinel so the x-drop fires there.
    x_drop:
        X-drop threshold.

    Returns
    -------
    (gain, steps, overran):
        Per-row best prefix sum and its length, plus a mask of rows whose
        walk reached the end of the window without the drop firing — those
        rows need the exact (unwindowed) scalar path.
    """
    n, L = deltas.shape
    if L == 0:
        z = np.zeros(n, dtype=np.int64)
        return z, z.copy(), np.zeros(n, dtype=bool)
    cum = np.cumsum(deltas, axis=1, dtype=np.int64)
    # As in _direction_gain: the empty prefix's 0 floors the running best.
    run = np.maximum.accumulate(np.maximum(cum, 0), axis=1)
    dropped = run - cum > x_drop
    any_drop = dropped.any(axis=1)
    limit = np.where(any_drop, np.argmax(dropped, axis=1), L - 1)
    # Mask positions beyond each row's stop point, then take the best prefix.
    cols = np.arange(L)
    masked = np.where(cols[None, :] <= limit[:, None], cum, NEG_SENTINEL)
    steps = np.argmax(masked, axis=1).astype(np.int64) + 1
    gain = masked[np.arange(n), steps - 1]
    dead = gain <= 0
    gain = np.where(dead, 0, gain)
    steps = np.where(dead, 0, steps)
    return gain, steps, ~any_drop


#: Sentinel well below any reachable score yet safe under int64 cumsum.
NEG_SENTINEL = np.int64(-(2**40))


def batch_ungapped_extend(
    pssm: np.ndarray,
    db_codes: np.ndarray,
    seq_starts: np.ndarray,
    seq_ends: np.ndarray,
    seq_ids: np.ndarray,
    query_pos: np.ndarray,
    subject_pos: np.ndarray,
    word_length: int,
    x_drop: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Extend many seeds at once (the hot path of phase 2).

    Works directly on the packed database code array: for each seed, a
    window of :data:`BATCH_WINDOW` score contributions per direction is
    gathered with fancy indexing and reduced with the same x-drop rule as
    :func:`ungapped_extend`. Seeds whose walk overruns the window (rare:
    only long homologous segments) are redone exactly with the scalar path,
    so results are bit-identical to calling :func:`ungapped_extend` per
    seed — a property the test suite checks.

    Parameters
    ----------
    pssm:
        Query PSSM.
    db_codes:
        Packed residue codes of the whole database.
    seq_starts, seq_ends:
        Absolute [start, end) offsets of each seed's sequence in
        ``db_codes``.
    seq_ids, query_pos, subject_pos:
        Per-seed identity and word start positions (``subject_pos`` is
        sequence-local).
    word_length, x_drop:
        As in :func:`ungapped_extend`.

    Returns
    -------
    (query_start, query_end, subject_start, subject_end, score):
        Aligned ``int64`` arrays, one entry per seed.
    """
    n = seq_ids.size
    qlen = pssm.shape[1]
    if n == 0:
        z = np.zeros(0, dtype=np.int64)
        return z, z.copy(), z.copy(), z.copy(), z.copy()
    L = BATCH_WINDOW
    q0 = np.asarray(query_pos, dtype=np.int64)
    s0 = np.asarray(subject_pos, dtype=np.int64)
    abs0 = np.asarray(seq_starts, dtype=np.int64) + s0

    # Seed word score.
    k = np.arange(word_length)
    word_codes = db_codes[abs0[:, None] + k[None, :]]
    word_score = pssm[word_codes, q0[:, None] + k[None, :]].sum(axis=1, dtype=np.int64)

    steps_arr = np.arange(1, L + 1, dtype=np.int64)

    # Right direction: pairs (q0 + W - 1 + t, s0 + W - 1 + t), t = 1..L.
    qr = q0[:, None] + word_length - 1 + steps_arr[None, :]
    ar = abs0[:, None] + word_length - 1 + steps_arr[None, :]
    valid_r = (qr < qlen) & (ar < np.asarray(seq_ends, dtype=np.int64)[:, None])
    dr = np.full((n, L), NEG_SENTINEL, dtype=np.int64)
    idx = np.nonzero(valid_r)
    dr[idx] = pssm[db_codes[ar[idx]], qr[idx]]
    gain_r, steps_r, over_r = _batch_direction(dr, x_drop)
    # A row only truly overruns if its last window slot was a real residue.
    over_r &= valid_r[:, -1]

    # Left direction: pairs (q0 - t, s0 - t), t = 1..L.
    ql = q0[:, None] - steps_arr[None, :]
    al = abs0[:, None] - steps_arr[None, :]
    valid_l = (ql >= 0) & (al >= np.asarray(seq_starts, dtype=np.int64)[:, None])
    dl = np.full((n, L), NEG_SENTINEL, dtype=np.int64)
    idx = np.nonzero(valid_l)
    dl[idx] = pssm[db_codes[al[idx]], ql[idx]]
    gain_l, steps_l, over_l = _batch_direction(dl, x_drop)
    over_l &= valid_l[:, -1]

    q_start = q0 - steps_l
    q_end = q0 + word_length - 1 + steps_r
    s_start = s0 - steps_l
    s_end = s0 + word_length - 1 + steps_r
    score = word_score + gain_l + gain_r

    # Exact redo for the few window-overrunning seeds.
    redo = np.nonzero(over_r | over_l)[0]
    for i in redo:
        start = int(seq_starts[i])
        subject = db_codes[start : int(seq_ends[i])]
        ext = ungapped_extend(
            pssm, subject, int(seq_ids[i]), int(q0[i]), int(s0[i]), word_length, x_drop
        )
        q_start[i], q_end[i] = ext.query_start, ext.query_end
        s_start[i], s_end[i] = ext.subject_start, ext.subject_end
        score[i] = ext.score
    return q_start, q_end, s_start, s_end, score


def ungapped_extend_scalar(
    pssm: np.ndarray,
    subject_codes: np.ndarray,
    seq_id: int,
    query_pos: int,
    subject_pos: int,
    word_length: int,
    x_drop: int,
) -> UngappedExtension:
    """Scalar (per-residue loop) reference for :func:`ungapped_extend`.

    Follows the textbook x-drop loop one residue at a time. Exists so
    property tests can pit the vectorised implementation against an
    independently written one; never used on hot paths.
    """
    qlen = pssm.shape[1]
    slen = subject_codes.size
    q0, s0 = query_pos, subject_pos
    score = 0
    for k in range(word_length):
        score += int(pssm[subject_codes[s0 + k], q0 + k])
    word_score = score

    def walk(qstart: int, sstart: int, step: int) -> tuple[int, int]:
        cur = 0
        best = 0
        best_steps = 0
        steps = 0
        q, s = qstart, sstart
        while 0 <= q < qlen and 0 <= s < slen:
            cur += int(pssm[subject_codes[s], q])
            steps += 1
            if cur > best:
                best = cur
                best_steps = steps
            if best - cur > x_drop:
                break
            q += step
            s += step
        return best, best_steps

    right_gain, right_steps = walk(q0 + word_length, s0 + word_length, +1)
    left_gain, left_steps = walk(q0 - 1, s0 - 1, -1)
    return UngappedExtension(
        seq_id=seq_id,
        query_start=q0 - left_steps,
        query_end=q0 + word_length - 1 + right_steps,
        subject_start=s0 - left_steps,
        subject_end=s0 + word_length - 1 + right_steps,
        score=word_score + left_gain + right_gain,
    )
