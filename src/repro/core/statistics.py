"""Search parameters and score cutoffs.

BLASTP's heuristics are driven by a handful of thresholds. The user-facing
ones are expressed in *bits* (scale-free); :func:`resolve_cutoffs` converts
them to raw-score cutoffs for a concrete (matrix, query, database)
combination using Karlin-Altschul statistics, which is how NCBI BLAST
derives its internal cutoffs from ``-evalue`` and friends.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError
from repro.matrices.blosum import BLOSUM62, ScoringMatrix
from repro.matrices.karlin import KarlinParams, gapped_params, ungapped_params
from repro.seeding.words import DEFAULT_THRESHOLD, DEFAULT_WORD_LENGTH


@dataclass(frozen=True)
class SearchParams:
    """All tunable parameters of a BLASTP search.

    Defaults mirror NCBI/FSA BLASTP for protein search: ``W=3``, ``T=11``,
    two-hit window 40, ungapped X-drop 7 bits, gapped trigger 22 bits,
    gapped X-drop 15 bits, E-value 10, BLOSUM62 with gaps (11, 1).
    """

    matrix: ScoringMatrix = field(default_factory=lambda: BLOSUM62)
    word_length: int = DEFAULT_WORD_LENGTH
    threshold: int = DEFAULT_THRESHOLD
    two_hit_window: int = 40
    x_drop_ungapped_bits: float = 7.0
    gap_trigger_bits: float = 22.0
    x_drop_gapped_bits: float = 15.0
    evalue: float = 10.0
    gap_open: int = 11
    gap_extend: int = 1
    max_alignments: int = 500
    #: Report ungapped HSPs directly (BLAST's -ungapped mode): phases 3/4
    #: are skipped and E-values use the ungapped Karlin-Altschul params.
    ungapped_only: bool = False
    #: Apply SEG low-complexity soft masking to the query: no seeding from
    #: masked regions, original residues kept for extension scoring (the
    #: NCBI BLASTP default behaviour).
    seg: bool = False
    #: Search-space override: compute E-values and the report cutoff as if
    #: the database had this many residues. The sandbox databases stand in
    #: for multi-GB NCBI ones (DESIGN.md §2); scaling the statistics to the
    #: emulated size keeps cutoff behaviour — which alignments survive to
    #: traceback — faithful to the paper's setting instead of the tiny
    #: stand-in's. ``None`` uses the actual database size.
    effective_db_residues: int | None = None

    def __post_init__(self) -> None:
        if self.word_length < 2:
            raise ConfigError("word_length must be >= 2")
        if self.two_hit_window <= self.word_length:
            raise ConfigError("two_hit_window must exceed word_length")
        if self.evalue <= 0:
            raise ConfigError("evalue must be positive")
        if self.gap_open < 0 or self.gap_extend <= 0:
            raise ConfigError("gap penalties must be non-negative / positive")


@dataclass(frozen=True)
class Cutoffs:
    """Raw-score thresholds for one concrete search.

    Attributes
    ----------
    x_drop_ungapped:
        Raw-score drop that terminates ungapped extension.
    gap_trigger:
        Minimum ungapped-extension score that seeds a gapped extension.
    x_drop_gapped:
        Raw-score drop that prunes the gapped-extension DP.
    report_cutoff:
        Minimum gapped score for an alignment to be reported (from the
        E-value threshold and the search-space size).
    ungapped:
        Ungapped Karlin-Altschul parameters (bit scores for phase 2).
    gapped:
        Gapped Karlin-Altschul parameters (bit scores / E-values reported).
    """

    x_drop_ungapped: int
    gap_trigger: int
    x_drop_gapped: int
    report_cutoff: int
    ungapped: KarlinParams
    gapped: KarlinParams
    #: Residue count used for the statistics (actual or emulated).
    effective_db_residues: int = 0


def bits_to_raw(bits: float, params: KarlinParams) -> int:
    """Smallest raw score reaching ``bits`` bit-score under ``params``."""
    return max(1, math.ceil((bits * math.log(2.0) + math.log(params.K)) / params.lam))


def raw_drop_from_bits(bits: float, params: KarlinParams) -> int:
    """Raw-score equivalent of an X-drop expressed in bits.

    X-drops are score *differences*, so only lambda (not K) enters.
    """
    return max(1, math.floor(bits * math.log(2.0) / params.lam))


def evalues_for_scores(
    karlin: KarlinParams,
    scores: np.ndarray,
    query_length: int,
    db_residues: int,
) -> np.ndarray:
    """Per-row E-values for a raw-score column (columnar phase 3/4 path).

    Bit-identical to calling :meth:`KarlinParams.evalue` per record: the
    canonical comparison is ``repr()``-exact on floats, and ``np.exp`` is
    not guaranteed to match libm's ``math.exp`` in the last ulp, so this
    memoises the *scalar* computation per unique raw score (extension
    streams repeat a handful of scores thousands of times) instead of
    switching transcendental implementations.
    """
    scores = np.asarray(scores, dtype=np.int64)
    uniq, inverse = np.unique(scores, return_inverse=True)
    values = np.array(
        [karlin.evalue(int(s), query_length, db_residues) for s in uniq],
        dtype=np.float64,
    )
    return values[inverse]


def bit_scores_for_scores(karlin: KarlinParams, scores: np.ndarray) -> np.ndarray:
    """Per-row bit scores for a raw-score column.

    Same unique-score memoisation (and exactness argument) as
    :func:`evalues_for_scores`.
    """
    scores = np.asarray(scores, dtype=np.int64)
    uniq, inverse = np.unique(scores, return_inverse=True)
    values = np.array([karlin.bit_score(int(s)) for s in uniq], dtype=np.float64)
    return values[inverse]


def resolve_cutoffs(params: SearchParams, query_length: int, db_residues: int) -> Cutoffs:
    """Convert bit-space parameters to raw cutoffs for a concrete search."""
    if query_length <= 0 or db_residues <= 0:
        raise ConfigError("query_length and db_residues must be positive")
    effective = params.effective_db_residues or db_residues
    ungapped = ungapped_params(params.matrix)
    gapped = gapped_params(params.matrix, params.gap_open, params.gap_extend)
    report = gapped.score_for_evalue(params.evalue, query_length, effective)
    return Cutoffs(
        x_drop_ungapped=raw_drop_from_bits(params.x_drop_ungapped_bits, ungapped),
        gap_trigger=bits_to_raw(params.gap_trigger_bits, ungapped),
        x_drop_gapped=raw_drop_from_bits(params.x_drop_gapped_bits, gapped),
        report_cutoff=report,
        ungapped=ungapped,
        gapped=gapped,
        effective_db_residues=effective,
    )
