"""Batched wavefront gapped extension: lockstep x-drop DP across seeds.

:func:`~repro.core.gapped._half_extend` is already row-vectorised (the
``maximum.accumulate`` unrolling of the F-array), but an x-drop band is
tens of cells wide, so each numpy op touches a handful of values and
Python-level dispatch dominates — the same pathology PR 7 cured for
ungapped extension. The cure is the same shape: stack every live
half-extension into a ``lanes x band`` slab (backward and forward halves
are independent DPs, so they ride as separate lanes) and advance all of
them one DP row per step, with per-lane band bounds, per-lane x-drop
kill masks, lane retirement, and periodic live-lane compaction.

Exactness (the conformance argument, enforced by
``tests/property/test_prop_gapped_batch.py``):

* Each lane's slab columns mirror the scalar DP's ``h_prev``/``e_prev``
  arrays over a window of absolute band positions: computed-window cells
  hold the scalar values bit for bit, everything else holds a garbage
  value ``<= NEG_INF + drift``. Real DP values are bounded by roughly
  ``+/- (query_length * max|pssm| + x_drop + gaps)`` — under ``~10**6`` —
  while garbage starts at ``-2**40`` and can drift upward by at most a
  bounded substitution score per row, so garbage can never win a ``max``
  against a real value, never pass an x-drop liveness test, and never
  steal an ``argmax`` (ties break on the first index in both layouts,
  and all real candidates agree exactly).
* The running maximum for the F-array runs over the whole slab row
  rather than the scalar's live window, but every pre-window term is
  garbage, so at any column where the scalar running max is real the two
  agree exactly; where it is garbage both sides produce garbage and the
  cell dies identically.

Wave scheduling lives in :meth:`BlastpPipeline.phase_gapped`, not here:
this module only answers "extend these (seq, seed) pairs, all at once".
"""

from __future__ import annotations

import numpy as np

from repro.core.gapped import NEG_INF, GappedExtension

#: Slack columns allocated past the widest live band so the window's
#: one-column-per-row right growth doesn't force a re-base every step.
_BAND_MARGIN = 16


def batch_half_extend(
    pssm: np.ndarray,
    codes: np.ndarray,
    q_anchor: np.ndarray,
    q_step: np.ndarray,
    s_anchor: np.ndarray,
    s_step: np.ndarray,
    n_rows: np.ndarray,
    m_cols: np.ndarray,
    gap_open: int,
    gap_extend: int,
    x_drop: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """All half-extensions at once, one slab row per DP row.

    Lane ``l`` runs the scalar :func:`~repro.core.gapped._half_extend` DP
    whose walk cell ``(i, j)`` (``1 <= i <= n_rows[l]``, ``1 <= j <=
    m_cols[l]``) scores ``pssm[codes[s_anchor[l] + s_step[l] * j],
    q_anchor[l] + q_step[l] * i]`` — the anchor/step parameterisation
    covers both walk directions without materialising per-lane score
    matrices.

    Returns the six :class:`~repro.core.gapped.HalfExtension` fields as
    aligned int64 columns: ``(best, best_i, best_j, reach_i, reach_j,
    cells)``.
    """
    q_anchor = np.asarray(q_anchor, dtype=np.int64)
    q_step = np.asarray(q_step, dtype=np.int64)
    s_anchor = np.asarray(s_anchor, dtype=np.int64)
    s_step = np.asarray(s_step, dtype=np.int64)
    n_rows = np.asarray(n_rows, dtype=np.int64)
    m_cols = np.asarray(m_cols, dtype=np.int64)
    num = n_rows.size
    go, ge, xd = int(gap_open), int(gap_extend), int(x_drop)

    best = np.zeros(num, dtype=np.int64)
    best_i = np.zeros(num, dtype=np.int64)
    best_j = np.zeros(num, dtype=np.int64)
    reach_i = np.zeros(num, dtype=np.int64)
    reach_j = np.zeros(num, dtype=np.int64)
    cells = np.zeros(num, dtype=np.int64)

    # Degenerate lanes (no room to move diagonally) keep the all-zero
    # empty-alignment result, exactly like the scalar early return.
    lanes = np.flatnonzero((n_rows > 0) & (m_cols > 0))
    if lanes.size == 0:
        return best, best_i, best_j, reach_i, reach_j, cells

    # Pool state, aligned with ``lanes`` (the global ids of live lanes).
    nn = n_rows[lanes]
    mm = m_cols[lanes]
    qa = q_anchor[lanes]
    qd = q_step[lanes]
    sa = s_anchor[lanes]
    sd = s_step[lanes]
    p_best = np.zeros(lanes.size, dtype=np.int64)
    p_best_i = np.zeros(lanes.size, dtype=np.int64)
    p_best_j = np.zeros(lanes.size, dtype=np.int64)
    p_reach_j = np.zeros(lanes.size, dtype=np.int64)

    # Row 0: empty prefix plus leading horizontal gaps. The live span is
    # [0, hi] with hi the last j where -go - (j-1)*ge >= -x_drop.
    hi_cap = 1 + (xd - go) // ge if go <= xd else 0
    lo = np.zeros(lanes.size, dtype=np.int64)
    hi = np.minimum(mm, hi_cap)
    cells[lanes] = hi + 1
    p_reach_j[:] = hi

    # The slab: per-lane windows of absolute band positions. ``base[l]``
    # is the absolute j of slab column 0; it is kept <= max(lo - 1, 0) so
    # the diagonal read at j = lo always lands inside the frame.
    base = np.zeros(lanes.size, dtype=np.int64)
    width_slab = int(hi.max()) + 2 + _BAND_MARGIN
    jj = np.arange(width_slab, dtype=np.int64)
    # Scalar row 0 is computed for *every* j <= m (the whole gap ramp),
    # not just the live span; mirror that within the frame so the first
    # row's reads past hi match the scalar's (dead but real) values.
    ramp = np.where(jj == 0, np.int64(0), -go - (jj - 1) * ge)
    h_slab = np.where(jj[None, :] <= mm[:, None], ramp[None, :], NEG_INF)
    e_slab = np.full((lanes.size, width_slab), NEG_INF, dtype=np.int64)

    max_code = codes.size - 1
    i = 0
    while lanes.size:
        i += 1
        hi_new = np.minimum(hi + 1, mm)
        jmat = base[:, None] + jj[None, :]
        in_win = (jmat >= lo[:, None]) & (jmat <= hi_new[:, None])
        cells[lanes] += hi_new + 1 - lo

        # Substitution scores for this row; j = 0 has no diagonal move.
        s_pos = sa[:, None] + sd[:, None] * jmat
        sub = np.where(
            in_win & (jmat >= 1),
            pssm[
                codes[np.clip(s_pos, 0, max_code)],
                (qa + qd * i)[:, None],
            ].astype(np.int64),
            NEG_INF,
        )
        diag = np.empty_like(h_slab)
        diag[:, 0] = NEG_INF
        diag[:, 1:] = h_slab[:, :-1]
        diag += sub
        e_cur = np.where(
            in_win, np.maximum(h_slab - go, e_slab - ge), NEG_INF
        )
        g = np.where(in_win, np.maximum(diag, e_cur), NEG_INF)
        # Horizontal gaps via the running-max unrolling (gapped.py). The
        # accumulate spans the whole slab row; pre-window terms are
        # garbage and never beat a real one (module docstring).
        t = g + ge * jmat
        run = np.maximum.accumulate(t, axis=1)
        f = np.empty_like(run)
        f[:, 0] = NEG_INF
        f[:, 1:] = run[:, :-1] - go - ge * (jmat[:, 1:] - 1)
        h_cur = np.where(
            in_win & (jmat > lo[:, None]), np.maximum(g, f), g
        )

        row_best = h_cur.max(axis=1)
        improved = row_best > p_best
        p_best = np.where(improved, row_best, p_best)
        p_best_i = np.where(improved, i, p_best_i)
        p_best_j = np.where(
            improved, base + np.argmax(h_cur, axis=1), p_best_j
        )
        alive = h_cur >= (p_best - xd)[:, None]
        any_alive = alive.any(axis=1)
        first = np.argmax(alive, axis=1)
        last = width_slab - 1 - np.argmax(alive[:, ::-1], axis=1)
        lo = np.where(any_alive, base + first, lo)
        hi = np.where(any_alive, base + last, hi)
        p_reach_j = np.where(any_alive, np.maximum(p_reach_j, hi), p_reach_j)

        # The next row's h_prev/e_prev: computed-window values (including
        # trimmed-dead cells, as the scalar keeps them), garbage outside.
        # ``h_cur`` is already exactly that (its off-window cells are g =
        # NEG_INF by construction).
        h_slab = h_cur
        e_slab = e_cur

        retired = ~any_alive | (nn <= i)
        if retired.any():
            done = retired.nonzero()[0]
            out = lanes[done]
            best[out] = p_best[done]
            best_i[out] = p_best_i[done]
            best_j[out] = p_best_j[done]
            reach_i[out] = i
            reach_j[out] = p_reach_j[done]

        keep = ~retired
        if not keep.any():
            break
        overflow = bool(
            (np.minimum(hi[keep] + 1, mm[keep]) - base[keep]).max()
            > width_slab - 1
        )
        if not retired.any() and not overflow:
            continue

        # Compact + re-base: drop retired lanes, slide each survivor's
        # frame to start one column left of its live span, and re-size the
        # slab to the widest next-row window plus margin.
        sel = keep.nonzero()[0]
        lanes = lanes[sel]
        nn, mm = nn[sel], mm[sel]
        qa, qd, sa, sd = qa[sel], qd[sel], sa[sel], sd[sel]
        lo, hi = lo[sel], hi[sel]
        p_best, p_best_i = p_best[sel], p_best_i[sel]
        p_best_j, p_reach_j = p_best_j[sel], p_reach_j[sel]
        old_base = base[sel]
        base = np.maximum(lo - 1, 0)
        width_slab = int(
            (np.minimum(hi + 1, mm) - base).max()
        ) + 2 + _BAND_MARGIN
        jj = np.arange(width_slab, dtype=np.int64)
        shift = base[:, None] + jj[None, :] - old_base[:, None]
        valid = (shift >= 0) & (shift < h_slab.shape[1])
        gather = np.clip(shift, 0, h_slab.shape[1] - 1)
        rows = sel[:, None]
        h_slab = np.where(valid, h_slab[rows, gather], NEG_INF)
        e_slab = np.where(valid, e_slab[rows, gather], NEG_INF)

    return best, best_i, best_j, reach_i, reach_j, cells


def batch_gapped_extend(
    pssm: np.ndarray,
    db,
    seq_ids: np.ndarray,
    seed_query: np.ndarray,
    seed_subject: np.ndarray,
    gap_open: int,
    gap_extend: int,
    x_drop: int,
) -> list[GappedExtension]:
    """Gapped-extend every ``(seq_id, seed)`` triple in one batched DP.

    Result-identical, element for element, to calling
    :func:`~repro.core.gapped.gapped_extend` on each triple: the backward
    and forward halves of all seeds run as ``2 * len(seq_ids)`` lanes of
    one :func:`batch_half_extend` slab, and the halves are combined with
    the same coordinate arithmetic. Seeds must be in bounds (the pipeline
    derives them from extension columns, which guarantees it).
    """
    seq_ids = np.asarray(seq_ids, dtype=np.int64)
    seed_query = np.asarray(seed_query, dtype=np.int64)
    seed_subject = np.asarray(seed_subject, dtype=np.int64)
    num = seq_ids.size
    if num == 0:
        return []
    qlen = int(pssm.shape[1])
    starts = db.offsets[seq_ids]
    slen = db.offsets[seq_ids + 1] - starts

    # Lanes [0, num) walk backward from the seed (scoring the seed pair),
    # lanes [num, 2*num) forward from one past it.
    q_anchor = np.concatenate([seed_query + 1, seed_query])
    s_anchor = np.concatenate(
        [starts + seed_subject + 1, starts + seed_subject]
    )
    step = np.repeat(np.array([-1, 1], dtype=np.int64), num)
    n_rows = np.concatenate([seed_query + 1, qlen - seed_query - 1])
    m_cols = np.concatenate([seed_subject + 1, slen - seed_subject - 1])
    best, bi, bj, ri, rj, ncells = batch_half_extend(
        pssm, db.codes, q_anchor, step, s_anchor, step,
        n_rows, m_cols, gap_open, gap_extend, x_drop,
    )

    back, fwd = slice(0, num), slice(num, 2 * num)
    q_start = np.where(bi[back] > 0, seed_query - (bi[back] - 1), seed_query + 1)
    s_start = np.where(bj[back] > 0, seed_subject - (bj[back] - 1), seed_subject + 1)
    q_end = np.where(bi[fwd] > 0, seed_query + bi[fwd], seed_query)
    s_end = np.where(bj[fwd] > 0, seed_subject + bj[fwd], seed_subject)
    score = best[back] + best[fwd]
    box_qs = np.maximum(0, seed_query - ri[back])
    box_qe = np.minimum(seed_query + ri[fwd], qlen - 1)
    box_ss = np.maximum(0, seed_subject - rj[back])
    box_se = np.minimum(seed_subject + rj[fwd], slen - 1)
    total_cells = ncells[back] + ncells[fwd]
    return [
        GappedExtension(
            seq_id=int(seq_ids[k]),
            score=int(score[k]),
            query_start=int(q_start[k]),
            query_end=int(q_end[k]),
            subject_start=int(s_start[k]),
            subject_end=int(s_end[k]),
            seed_query=int(seed_query[k]),
            seed_subject=int(seed_subject[k]),
            box_query_start=int(box_qs[k]),
            box_query_end=int(box_qe[k]),
            box_subject_start=int(box_ss[k]),
            box_subject_end=int(box_se[k]),
            cells=int(total_cells[k]),
        )
        for k in range(num)
    ]
