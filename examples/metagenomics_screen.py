#!/usr/bin/env python
"""Metagenomics screen: an env_nr-style search with the full system story.

The paper motivates cuBLASTP with exactly this workload: environmental
(metagenomic) databases of millions of short reads-derived protein
fragments, searched with a reference protein. This example builds an
env_nr-like database, screens it for a target enzyme, and reports what a
systems person wants to see: per-kernel GPU profile, transfer volumes,
CPU-phase times, pipeline overlap, and the speedup over running the same
search on the CPU baselines.

Run:  python examples/metagenomics_screen.py
"""

from repro import (
    CuBlastp,
    FsaBlast,
    NcbiBlast,
    SearchParams,
    generate_database,
    generate_query,
)
from repro.io.workloads import WorkloadSpec


def main() -> None:
    # env_nr in miniature: many short sequences (fragments), few homologs.
    spec = WorkloadSpec(
        name="env_screen",
        num_sequences=500,
        mean_length=190,
        homolog_fraction=0.02,
        seed=7,
        emulated_residues=1_250_000_000,  # statistics at env_nr scale
    )
    db = generate_database(spec)
    query = generate_query(420, spec)  # the reference enzyme
    params = SearchParams(**spec.search_params_kwargs)

    print(f"database: {db.stats()}")
    result, report = CuBlastp(query, params).search_with_report(db)

    print(f"\nscreen results: {result.num_reported} candidate homolog(s)")
    for a in result.alignments:
        print(
            f"  {a.subject_identifier:>16}  bits={a.bit_score:5.1f}  "
            f"E={a.evalue:.1e}  coverage={a.length}/{len(query)}"
        )

    print("\nGPU kernel profile (simulated K20c):")
    for name, prof in report.gpu.profiles.items():
        print(
            f"  {name:<20} {prof.elapsed_ms():7.4f} ms  "
            f"gld={prof.global_load_efficiency:4.0%}  "
            f"div={prof.divergence_overhead:4.0%}  occ={prof.occupancy:4.0%}"
        )
    print(
        f"  transfers: {report.gpu.h2d_bytes / 1024:.0f} KiB up "
        f"({report.h2d_ms:.3f} ms), {report.gpu.d2h_bytes} B back "
        f"({report.d2h_ms:.3f} ms)"
    )
    print(
        f"  CPU phases (x{report.cpu.threads} threads): gapped "
        f"{report.cpu.gapped_ms:.3f} ms, traceback {report.cpu.traceback_ms:.3f} ms"
    )
    print(
        f"  pipelined end-to-end: {report.overall_ms:.3f} ms "
        f"({report.overlap_saved_ms:.3f} ms hidden by overlap)"
    )

    _, fsa_t, _ = FsaBlast(query, params).search_with_timing(db)
    _, ncbi_t, _ = NcbiBlast(query, params, threads=4).search_with_timing(db)
    print(
        f"\nmodelled comparison: FSA-BLAST {fsa_t.overall_ms:.3f} ms "
        f"({fsa_t.overall_ms / report.overall_ms:.1f}x), "
        f"NCBI-BLAST x4 {ncbi_t.overall_ms:.3f} ms "
        f"({ncbi_t.overall_ms / report.overall_ms:.1f}x)"
    )
    print(
        f"hit-survival through filtering: {report.gpu.survival_ratio:.1%} "
        "(the paper reports 5-11 %)"
    )


if __name__ == "__main__":
    main()
