#!/usr/bin/env python
"""Protein-family search: sensitivity of the heuristic vs Smith-Waterman.

A classic BLASTP use case from the paper's introduction: given one family
member, find the rest of the family in a database. This example plants a
family of progressively diverged homologs (10-60 % mutation), searches
with cuBLASTP, and compares against the optimal Smith-Waterman scores to
show where the heuristic keeps full sensitivity and where very distant
relatives start to fall below the reporting threshold.

Run:  python examples/protein_family_search.py
"""

import numpy as np

from repro import CuBlastp, SearchParams, SequenceDatabase
from repro.alphabet import decode, encode
from repro.baselines import sw_search_scores
from repro.matrices import BLOSUM62


def mutate(rng: np.random.Generator, codes: np.ndarray, rate: float) -> np.ndarray:
    """Point-mutate a fraction of residues and apply a few short indels."""
    out = codes.copy()
    mask = rng.random(out.size) < rate
    out[mask] = rng.integers(0, 20, int(mask.sum()))
    for _ in range(int(rate * 10)):
        pos = int(rng.integers(5, out.size - 8))
        gap = int(rng.integers(1, 4))
        if rng.random() < 0.5:
            out = np.delete(out, slice(pos, pos + gap))
        else:
            out = np.insert(out, pos, rng.integers(0, 20, gap).astype(np.uint8))
    return out.astype(np.uint8)


def main() -> None:
    rng = np.random.default_rng(42)
    # The family founder: 180 residues of random protein.
    founder = rng.integers(0, 20, 180).astype(np.uint8)
    query = decode(founder)

    # Database: 8 family members at increasing divergence + 40 decoys.
    divergences = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8]
    members = [decode(mutate(rng, founder, d)) for d in divergences]
    decoys = [decode(rng.integers(0, 20, 200).astype(np.uint8)) for _ in range(40)]
    names = [f"member_{int(100 * d)}pct" for d in divergences] + [
        f"decoy_{i}" for i in range(len(decoys))
    ]
    db = SequenceDatabase.from_strings(members + decoys, names)

    params = SearchParams(evalue=1e-3, effective_db_residues=50_000_000)
    result = CuBlastp(query, params).search(db)
    found = {a.subject_identifier for a in result.alignments}

    sw = sw_search_scores(encode(query), db, BLOSUM62)
    print(f"{'sequence':>14}  {'SW opt':>7}  {'BLAST':>6}  {'found':>5}")
    for i, d in enumerate(divergences):
        blast_score = next(
            (a.score for a in result.alignments if a.seq_id == i), "-"
        )
        print(
            f"{names[i]:>14}  {int(sw[i]):>7}  {str(blast_score):>6}  "
            f"{'yes' if names[i] in found else 'NO':>5}"
        )

    # Sanity: no decoy reported at this E-value, close relatives all found.
    assert not any(n.startswith("decoy") for n in found), "false positive!"
    assert all(f"member_{int(100 * d)}pct" in found for d in divergences[:4])

    hits = [a for a in result.alignments if a.seq_id < len(divergences)]
    ratios = [a.score / sw[a.seq_id] for a in hits]
    print(
        f"\nfamily members found: {len(hits)}/{len(divergences)}; "
        f"BLAST reaches {100 * min(ratios):.0f}-{100 * max(ratios):.0f} % "
        "of the optimal Smith-Waterman score on reported hits"
    )
    if len(hits) < len(divergences):
        print(
            "the most diverged relatives fall below the two-hit / E-value "
            "thresholds — the sensitivity/speed trade BLAST makes by design."
        )


if __name__ == "__main__":
    main()
