#!/usr/bin/env python
"""Quickstart: search a protein database with cuBLASTP.

Builds a small synthetic database with planted homologs of the query,
runs a cuBLASTP search, and prints the alignments BLAST-style — then
verifies (as the paper promises) that the sequential FSA-BLAST reference
returns exactly the same thing.

Run:  python examples/quickstart.py
"""

from repro import CuBlastp, FsaBlast, WorkloadSpec, generate_database, generate_query
from repro.engine import compile_query


def main() -> None:
    # A 60-sequence database in which ~30 % of subjects share mutated
    # copies of a small domain library with our query.
    spec = WorkloadSpec(
        name="quickstart",
        num_sequences=60,
        mean_length=200,
        homolog_fraction=0.3,
        seed=2014,
        emulated_residues=100_000_000,  # score statistics at real-db scale
    )
    db = generate_database(spec)
    query = generate_query(250, spec)

    print(f"database: {db.stats()}")
    print(f"query:    {len(query)} residues\n")

    # Compile the query once (encode, SEG, neighbourhood, PSSM): any
    # engine can run the compiled form — here cuBLASTP, and the CPU
    # reference below for the identity check, with zero rebuild.
    compiled = compile_query(query)
    searcher = CuBlastp()
    result, report = searcher.run_with_report(compiled, db)

    print(f"phase counts: {result.summary()}")
    print(
        f"modelled GPU kernel time: {report.gpu.critical_ms:.3f} ms, "
        f"end-to-end {report.overall_ms:.3f} ms "
        f"({report.overlap_saved_ms:.3f} ms hidden by the CPU/GPU pipeline)\n"
    )

    for a in result.alignments[:5]:
        print(
            f">{a.subject_identifier}  score={a.score}  "
            f"bits={a.bit_score:.1f}  E={a.evalue:.2e}  "
            f"identities={a.identities}/{a.length}"
        )
        # BLAST-style three-line alignment rendering.
        width = 60
        for start in range(0, a.length, width):
            q_line = a.aligned_query[start : start + width]
            m_line = a.midline[start : start + width]
            s_line = a.aligned_subject[start : start + width]
            print(f"  Query  {q_line}")
            print(f"         {m_line}")
            print(f"  Sbjct  {s_line}")
        print()

    # The paper's closing claim, verified live: identical output to the
    # sequential CPU reference.
    reference = FsaBlast().run(compiled, db)
    assert [(a.seq_id, a.score) for a in result.alignments] == [
        (a.seq_id, a.score) for a in reference.alignments
    ]
    print("output identical to FSA-BLAST: OK")


if __name__ == "__main__":
    main()
