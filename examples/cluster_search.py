#!/usr/bin/env python
"""GPU-cluster search: the paper's future work, running.

The paper closes by planning a GPU-cluster extension and predicting its
bottleneck: "the result sorting, merging, and ranking from multiple nodes
could become a time-consuming step". This example searches a database
across 1-8 simulated GPU nodes, shows the merged output staying identical,
and prints the scaling curve with the merge share doing exactly what the
authors feared.

Run:  python examples/cluster_search.py
"""

from repro import SearchParams, generate_database, generate_query
from repro.cluster import MultiGpuBlastp
from repro.io.workloads import WorkloadSpec


def main() -> None:
    spec = WorkloadSpec(
        name="cluster_demo",
        num_sequences=300,
        mean_length=250,
        homolog_fraction=0.04,
        seed=11,
        emulated_residues=10**9,
    )
    db = generate_database(spec)
    query = generate_query(350, spec)
    params = SearchParams(**spec.search_params_kwargs)

    print(f"database: {db.stats()}\n")
    print(f"{'nodes':>5} {'compute':>9} {'gather':>8} {'merge':>8} "
          f"{'overall':>9} {'speedup':>8} {'merge+gather':>13}")

    baseline = None
    reference_hits = None
    for nodes in (1, 2, 4, 8):
        result, rep = MultiGpuBlastp(query, nodes, params).search_with_report(db)
        hits = [(a.seq_id, a.score) for a in result.alignments]
        if reference_hits is None:
            reference_hits = hits
            baseline = rep.overall_ms
        assert hits == reference_hits, "cluster output must not depend on nodes"
        print(
            f"{nodes:>5} {rep.compute_ms:>9.4f} {rep.gather_ms:>8.4f} "
            f"{rep.merge_ms:>8.4f} {rep.overall_ms:>9.4f} "
            f"{baseline / rep.overall_ms:>7.2f}x {rep.merge_share:>12.0%}"
        )

    print(
        "\noutput identical at every node count. Two effects cap the scaling:\n"
        "  1. the serial gather+merge at the head node grows with node count\n"
        "     — the bottleneck §6 predicted; and\n"
        "  2. per-node fixed costs (query-structure broadcast, host setup)\n"
        "     dominate once partitions shrink below them — at this demo's\n"
        "     miniature scale that happens almost immediately, which is why\n"
        "     clusters only pay off for the multi-GB databases mpiBLAST\n"
        "     targets (partitioning is round-robin for the same reason:\n"
        "     contiguous ranges would pile all homolog CPU work on one node)."
    )


if __name__ == "__main__":
    main()
