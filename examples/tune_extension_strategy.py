#!/usr/bin/env python
"""Tune cuBLASTP's run-time knobs for your own workload.

The paper exposes three configuration choices and picks them empirically
(its Figs. 14-16). This example shows the same methodology as a user
would apply it: run your query/database combination under each setting,
read the simulated profiles, and pick the winner — while the outputs stay
bit-identical across all of them (so tuning can never change results).

Run:  python examples/tune_extension_strategy.py
"""

from repro import CuBlastp, CuBlastpConfig, ExtensionMode, SearchParams
from repro.io import generate_database, generate_query
from repro.io.workloads import WorkloadSpec


def main() -> None:
    spec = WorkloadSpec(
        name="tuning",
        num_sequences=120,
        mean_length=300,
        homolog_fraction=0.05,
        seed=99,
        emulated_residues=10**8,
    )
    db = generate_database(spec)
    query = generate_query(400, spec)
    params = SearchParams(**spec.search_params_kwargs)

    baseline_alignments = None

    print("1) ungapped-extension strategy (paper Fig. 16):")
    best_mode, best_ms = None, float("inf")
    for mode in ExtensionMode:
        cfg = CuBlastpConfig(extension_mode=mode)
        result, report = CuBlastp(query, params, cfg).search_with_report(db)
        prof = report.gpu.profiles["ungapped_extension"]
        print(
            f"   {mode.value:<9} {prof.elapsed_ms():7.4f} ms  "
            f"divergence={prof.divergence_overhead:4.0%}  "
            f"gld={prof.global_load_efficiency:4.0%}"
        )
        keys = [(a.seq_id, a.score) for a in result.alignments]
        if baseline_alignments is None:
            baseline_alignments = keys
        assert keys == baseline_alignments, "tuning changed results!"
        if prof.elapsed_ms() < best_ms:
            best_mode, best_ms = mode, prof.elapsed_ms()
    print(f"   -> winner: {best_mode.value}")

    print("\n2) bins per warp (paper Fig. 14):")
    best_bins, best_total = None, float("inf")
    for bins in (32, 64, 128, 256):
        cfg = CuBlastpConfig(num_bins=bins, extension_mode=best_mode)
        result, report = CuBlastp(query, params, cfg).search_with_report(db)
        total = report.gpu.critical_ms
        occ = report.gpu.profiles["hit_detection"].occupancy
        print(f"   {bins:>4} bins: total kernels {total:7.4f} ms  (hit-det occ {occ:4.0%})")
        assert [(a.seq_id, a.score) for a in result.alignments] == baseline_alignments
        if total < best_total:
            best_bins, best_total = bins, total
    print(f"   -> winner: {best_bins} bins")

    print("\n3) scoring-matrix placement (paper Fig. 15):")
    for mode in ("auto", "pssm", "blosum"):
        cfg = CuBlastpConfig(matrix_mode=mode, extension_mode=best_mode, num_bins=best_bins)
        result, report = CuBlastp(query, params, cfg).search_with_report(db)
        prof = report.gpu.profiles["ungapped_extension"]
        print(
            f"   {mode:<7} extension {prof.elapsed_ms():7.4f} ms "
            f"(occ {prof.occupancy:4.0%})"
        )
        assert [(a.seq_id, a.score) for a in result.alignments] == baseline_alignments

    print(
        f"\nchosen configuration: extension={best_mode.value}, "
        f"bins={best_bins}, matrix=auto — outputs identical throughout."
    )


if __name__ == "__main__":
    main()
