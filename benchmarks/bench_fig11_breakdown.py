"""Fig. 11: time breakdown for Query517 on the swissprot-like database.

Paper series: FSA-BLAST, cuBLASTP with 1 CPU thread, cuBLASTP with 4 CPU
threads; stacked bars of hit-detection+ungapped, gapped extension,
alignment-with-traceback, and other. The paper's claims:

* the critical phases take ~80 % of FSA-BLAST;
* after GPU acceleration their share collapses and gapped extension +
  traceback dominate (52 %/32 %/13 % at 1 CPU thread);
* four CPU threads shrink those, giving > 4x overall vs FSA-BLAST.
"""

from common import print_table


def _cublastp_row(lab, threads: int):
    _, rep = lab.cublastp("swissprot_rich", "query517", cpu_threads=threads)
    crit = (
        rep.breakdown["hit_detection"]
        + rep.breakdown["hit_sorting"]
        + rep.breakdown["hit_filtering"]
        + rep.breakdown["ungapped_extension"]
        + rep.breakdown["data_transfer"]
    )
    return {
        "critical": crit,
        "gapped": rep.breakdown["gapped_extension"],
        "traceback": rep.breakdown["final_alignment"],
        "other": rep.breakdown["other"],
        "total": rep.serial_ms,
    }


def compute_breakdowns(lab):
    _, fsa_t, _ = lab.fsa("swissprot_rich", "query517")
    rows = {
        "FSA-BLAST": {
            "critical": fsa_t.critical_ms,
            "gapped": fsa_t.gapped_ms,
            "traceback": fsa_t.traceback_ms,
            "other": fsa_t.other_ms,
            "total": fsa_t.overall_ms,
        },
        "cuBLASTP w/1CPU": _cublastp_row(lab, 1),
        "cuBLASTP w/4CPU": _cublastp_row(lab, 4),
    }
    return rows


def test_fig11_breakdown(benchmark, lab):
    rows = benchmark.pedantic(compute_breakdowns, args=(lab,), rounds=1, iterations=1)

    table = []
    for name, r in rows.items():
        table.append(
            [
                name,
                r["critical"],
                r["gapped"],
                r["traceback"],
                r["other"],
                r["total"],
                f"{100 * r['critical'] / r['total']:.0f}%",
            ]
        )
    print_table(
        "Fig. 11 — Time breakdown, Query517 on swissprot_rich (modelled ms)",
        ["implementation", "hit+ungapped", "gapped", "traceback", "other", "total", "crit%"],
        table,
    )

    fsa, one, four = rows["FSA-BLAST"], rows["cuBLASTP w/1CPU"], rows["cuBLASTP w/4CPU"]
    # Critical phases dominate the sequential baseline...
    assert fsa["critical"] / fsa["total"] > 0.45
    # ...but not the accelerated one, where gapped+traceback take over.
    assert one["critical"] / one["total"] < fsa["critical"] / fsa["total"]
    assert (one["gapped"] + one["traceback"]) / one["total"] > 0.3
    # Multithreading the CPU phases shrinks them (Fig. 11's last bar).
    assert four["gapped"] <= one["gapped"]
    assert four["traceback"] <= one["traceback"]
    # Overall improvement over FSA-BLAST is "more than four-fold" in the
    # paper; require clearly > 2.5x at sandbox scale.
    assert fsa["total"] / four["total"] > 2.5

    benchmark.extra_info["rows"] = {
        k: {m: round(v, 4) for m, v in r.items()} for k, r in rows.items()
    }
