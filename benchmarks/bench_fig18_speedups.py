"""Fig. 18: cuBLASTP speedups over the four baselines (all eight panels).

Paper panels, each over three queries and two databases:

  (a,b) vs sequential FSA-BLAST      — critical up to 7.9x, overall 3.6-6x
  (c,d) vs NCBI-BLAST with 4 threads — critical up to 3.1x, overall 2.1-3.4x
  (e,f) vs CUDA-BLASTP               — critical up to 2.9x, overall 2.8x
  (g,h) vs GPU-BLASTP                — critical up to 1.6x, overall 1.9x

"Critical" = hit detection + ungapped extension (the GPU kernels, plus the
binning/sorting/filtering they require); "overall" adds gapped extension,
traceback, transfers and host residue. The assertions pin the orderings —
who wins, everywhere — and sane magnitude bands; absolute factors are
recorded into the benchmark's extra_info and EXPERIMENTS.md.
"""

import pytest

from common import DATABASES, QUERIES, print_table


def compute_speedups(lab, db_name):
    out = {}
    for q in QUERIES:
        _, fsa_t, _ = lab.fsa(db_name, q)
        _, ncbi_t, _ = lab.ncbi(db_name, q)
        _, cu = lab.cublastp(db_name, q)
        _, cuda = lab.coarse("cuda", db_name, q)
        _, gpu = lab.coarse("gpu", db_name, q)
        cu_crit = cu.gpu.critical_ms
        cu_all = cu.overall_ms
        out[q] = {
            "fsa": (fsa_t.critical_ms / cu_crit, fsa_t.overall_ms / cu_all),
            "ncbi": (ncbi_t.critical_ms / cu_crit, ncbi_t.overall_ms / cu_all),
            "cuda": (cuda.critical_ms / cu_crit, cuda.overall_ms / cu_all),
            "gpu": (gpu.critical_ms / cu_crit, gpu.overall_ms / cu_all),
        }
    return out


@pytest.mark.parametrize("db_name", DATABASES)
def test_fig18_speedups(benchmark, lab, db_name):
    res = benchmark.pedantic(compute_speedups, args=(lab, db_name), rounds=1, iterations=1)

    rows = []
    for q in QUERIES:
        r = res[q]
        rows.append(
            [q] + [f"{r[b][0]:.1f}/{r[b][1]:.1f}" for b in ("fsa", "ncbi", "cuda", "gpu")]
        )
    print_table(
        f"Fig. 18 — cuBLASTP speedups (critical/overall) on {db_name}",
        ["query", "vs FSA", "vs NCBIx4", "vs CUDA-BLASTP", "vs GPU-BLASTP"],
        rows,
    )

    for q in QUERIES:
        r = res[q]
        # cuBLASTP wins every comparison, both metrics (the figure's shape).
        for baseline in ("fsa", "ncbi", "cuda", "gpu"):
            crit, overall = r[baseline]
            assert crit > 1.0, (q, baseline, "critical")
            assert overall > 1.0, (q, baseline, "overall")
        # Ordering between baselines on the critical phases: the sequential
        # CPU is slowest, then the coarse GPU codes, with GPU-BLASTP ahead
        # of CUDA-BLASTP (its work queue + buffering + leaner kernel).
        assert r["fsa"][0] > r["cuda"][0] > r["gpu"][0]
        # Magnitude bands (generous: shapes, not point estimates).
        assert 3 < r["fsa"][0] < 30
        assert 1.2 < r["cuda"][0] < 8
        assert 1.1 < r["gpu"][0] < 5
        assert 1.5 < r["fsa"][1] < 12

    benchmark.extra_info["speedups"] = {
        q: {b: [round(v, 2) for v in pair] for b, pair in r.items()}
        for q, r in res.items()
    }
