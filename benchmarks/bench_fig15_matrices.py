"""Fig. 15: PSS matrix vs BLOSUM62 placement, three query lengths.

Paper series: ungapped-extension kernel time with the PSSM vs with the
BLOSUM62 matrix in shared memory, for query127/517/1054 on swissprot.
Claim: the PSSM wins for the short query (one load per score, small
footprint), BLOSUM62 wins for the medium and long queries (-24 %, +50 %,
+237 % improvement in the paper) because a resident PSSM starves occupancy
— and past 768 residues it cannot live in shared memory at all.
"""

from common import QUERIES, print_table


def compute_matrix_sweep(lab):
    out = {}
    for q in QUERIES:
        row = {}
        for mode in ("pssm", "blosum"):
            _, rep = lab.cublastp("swissprot_mini", q, matrix_mode=mode)
            prof = rep.gpu.profiles["ungapped_extension"]
            row[mode] = {
                "ms": prof.elapsed_ms(),
                "occupancy": prof.occupancy,
            }
        out[q] = row
    return out


def test_fig15_matrix_placement(benchmark, lab):
    sweep = benchmark.pedantic(compute_matrix_sweep, args=(lab,), rounds=1, iterations=1)

    rows = []
    for q, row in sweep.items():
        gain = row["pssm"]["ms"] / row["blosum"]["ms"] - 1.0
        rows.append(
            [
                q,
                row["pssm"]["ms"],
                row["blosum"]["ms"],
                f"{row['pssm']['occupancy']:.0%}",
                f"{row['blosum']['occupancy']:.0%}",
                f"{100 * gain:+.0f}%",
            ]
        )
    print_table(
        "Fig. 15 — Extension kernel: PSSM vs BLOSUM62 in shared memory (modelled ms)",
        ["query", "PSSM", "BLOSUM62", "occ(PSSM)", "occ(BLOSUM)", "BLOSUM gain"],
        rows,
    )

    # Short query: PSSM competitive. The paper measures PSSM 24 % ahead at
    # query127; at sandbox scale its per-block shared-memory staging is not
    # fully amortised, so we only require rough parity here (the known
    # deviation is documented in EXPERIMENTS.md).
    assert sweep["query127"]["pssm"]["ms"] <= sweep["query127"]["blosum"]["ms"] * 1.35
    # Medium query: BLOSUM62 wins (occupancy dominates).
    assert sweep["query517"]["blosum"]["ms"] < sweep["query517"]["pssm"]["ms"]
    # Long query: PSSM cannot live in shared memory; BLOSUM62 wins big.
    assert sweep["query1054"]["blosum"]["ms"] < sweep["query1054"]["pssm"]["ms"]
    # BLOSUM62's advantage is decisively larger for both longer queries
    # than for the short one (the paper's -24/+50/+237 progression; our
    # forced-PSSM fallback for query1054 rides the read-only cache, so the
    # 517-vs-1054 ordering differs — see EXPERIMENTS.md).
    gains = [
        sweep[q]["pssm"]["ms"] / sweep[q]["blosum"]["ms"] for q in QUERIES
    ]
    assert gains[0] < gains[1]
    assert gains[0] < gains[2]

    benchmark.extra_info["sweep"] = {
        q: {m: round(v["ms"], 5) for m, v in row.items()} for q, row in sweep.items()
    }
