"""Benchmark fixtures."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from common import get_lab  # noqa: E402


@pytest.fixture(scope="session")
def lab():
    return get_lab()
