"""Storage-layer micro-benchmark and zero-copy smoke check (CI-gated).

Builds a 10k-sequence synthetic database, exercises the hot storage
paths — ``blocks()``, contiguous and interleaved partitioning, binary
save + mmap reload — and *asserts* the zero-copy guarantees (via
``np.shares_memory``) so a regression that silently reintroduces residue
copies fails CI rather than just getting slower.

Run directly: ``PYTHONPATH=src python benchmarks/bench_storage_smoke.py``.
"""

from __future__ import annotations

import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.cluster.partition import partition_database
from repro.io import DatabaseView, SequenceDatabase

NUM_SEQUENCES = 10_000
MEAN_LENGTH = 250
NUM_BLOCKS = 16
NUM_NODES = 8


def build_synthetic(num_sequences: int, mean_length: int, seed: int = 0) -> SequenceDatabase:
    """Directly assemble a packed database (no workload machinery)."""
    rng = np.random.default_rng(seed)
    lengths = rng.integers(mean_length // 2, mean_length * 2, size=num_sequences)
    offsets = np.zeros(num_sequences + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    codes = rng.integers(0, 20, size=int(offsets[-1]), dtype=np.uint8)
    return SequenceDatabase(codes, offsets)


def timed(label: str, fn):
    t0 = time.perf_counter()
    out = fn()
    ms = (time.perf_counter() - t0) * 1e3
    print(f"  {label:<38} {ms:8.2f} ms")
    return out


def main() -> int:
    print(f"storage smoke: {NUM_SEQUENCES} sequences, mean length {MEAN_LENGTH}")
    db = timed("build synthetic database", lambda: build_synthetic(NUM_SEQUENCES, MEAN_LENGTH))

    blocks = timed(f"blocks({NUM_BLOCKS})", lambda: db.blocks(NUM_BLOCKS))
    assert all(isinstance(b, DatabaseView) for b in blocks), "blocks must be views"
    assert all(
        np.shares_memory(b.codes, db.codes) for b in blocks
    ), "blocks() must not allocate new codes buffers"
    assert sum(int(b.codes.size) for b in blocks) == int(db.codes.size)

    contiguous = timed(
        f"partition_database(contiguous, {NUM_NODES})",
        lambda: partition_database(db, NUM_NODES, interleaved=False),
    )
    assert all(
        np.shares_memory(p.db.codes, db.codes) for p in contiguous
    ), "contiguous partitions must share the parent's codes buffer"

    interleaved = timed(
        f"partition_database(interleaved, {NUM_NODES})",
        lambda: partition_database(db, NUM_NODES, interleaved=True),
    )
    assert sum(len(p.db) for p in interleaved) == len(db)
    # Spot-check the vectorised gather against direct parent reads.
    for p in interleaved[:2]:
        for local in (0, len(p.db) // 2, len(p.db) - 1):
            assert np.array_equal(
                p.db.sequence(local), db.sequence(p.to_global(local))
            ), "interleaved gather corrupted a sequence"

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "smoke.rpdb"
        timed("binary save", lambda: db.save(path))
        reloaded = timed("mmap reload", lambda: SequenceDatabase.load(path))
        assert not reloaded.codes.flags.writeable, "mmap reload must be read-only"
        assert np.array_equal(reloaded.offsets, db.offsets)
        v = reloaded.view(0, len(reloaded) // 2)
        assert np.shares_memory(v.codes, reloaded.codes), "views of mmap dbs must share"

    sub = timed(
        "vectorised subset (1k random)",
        lambda: db.subset(np.random.default_rng(1).integers(0, len(db), 1000)),
    )
    assert len(sub) == 1000
    print("storage smoke: all zero-copy assertions held")
    return 0


if __name__ == "__main__":
    sys.exit(main())
