"""Shared benchmark harness: workloads, cached runs, table printing.

Every figure bench draws its configurations from one session-scoped
:class:`Lab`, which memoises simulation runs — several figures share the
same underlying kernel executions (e.g. Fig. 18's cuBLASTP runs are
Fig. 19's profiling subjects), and simulated launches are expensive.

Scale: the databases default to half the standard sandbox size so the full
benchmark suite finishes in minutes; set ``REPRO_BENCH_SCALE=1.0`` for the
full sandbox workloads (the shapes are scale-stable; EXPERIMENTS.md records
both).
"""

from __future__ import annotations

import os
from functools import lru_cache

from repro.baselines import CudaBlastp, FsaBlast, GpuBlastp, NcbiBlast
from repro.core import SearchParams
from repro.cublastp import CuBlastp, CuBlastpConfig, ExtensionMode
from repro.engine import QueryCache, compile_query
from repro.io import (
    DatabaseStore,
    generate_database,
    standard_queries,
    standard_workloads,
)

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))

QUERIES = ("query127", "query517", "query1054")
DATABASES = ("swissprot_mini", "env_nr_mini")


class Lab:
    """Memoised implementations-by-configuration runner."""

    def __init__(self, scale: float = BENCH_SCALE) -> None:
        from dataclasses import replace

        self.scale = scale
        self.specs = standard_workloads(scale)
        # Homolog-enriched variant for the CPU-phase figures (Fig. 11/13):
        # phase 3/4 need enough gapped extensions to expose thread scaling,
        # which the homolog-sparse standard workloads deliberately starve.
        self.specs["swissprot_rich"] = replace(
            self.specs["swissprot_mini"], name="swissprot_rich", homolog_fraction=0.08
        )
        # Databases stay resident in a store for the whole suite: one
        # generation per workload, shared (read-only) by every engine.
        self.store = DatabaseStore(capacity=len(self.specs) + 2)
        self._queries = {}
        # One compile per (db, query): every engine and configuration in
        # the suite binds the same CompiledQuery (engine-layer sharing).
        self._compile_cache = QueryCache(capacity=64)

    def db(self, name: str):
        return self.store.get(name, lambda: generate_database(self.specs[name]))

    def query(self, db_name: str, q_name: str) -> str:
        key = (db_name, q_name)
        if key not in self._queries:
            self._queries[key] = standard_queries(self.specs[db_name])[q_name]
        return self._queries[key]

    def params(self, db_name: str) -> SearchParams:
        return SearchParams(**self.specs[db_name].search_params_kwargs)

    def compiled(self, db_name: str, q_name: str):
        """The (db, query) pair's CompiledQuery (one build, LRU-cached)."""
        return compile_query(
            self.query(db_name, q_name), self.params(db_name), cache=self._compile_cache
        )

    # -- cached runs ---------------------------------------------------------

    @lru_cache(maxsize=None)
    def fsa(self, db_name: str, q_name: str):
        """(result, timing, counts) of FSA-BLAST."""
        return FsaBlast(self.compiled(db_name, q_name)).search_with_timing(
            self.db(db_name)
        )

    @lru_cache(maxsize=None)
    def ncbi(self, db_name: str, q_name: str, threads: int = 4):
        return NcbiBlast(
            self.compiled(db_name, q_name), threads=threads
        ).search_with_timing(self.db(db_name))

    @lru_cache(maxsize=None)
    def cublastp(self, db_name: str, q_name: str, **config_kwargs):
        """(result, report) of cuBLASTP under a given configuration."""
        cfg_kwargs = dict(config_kwargs)
        if "extension_mode" in cfg_kwargs:
            cfg_kwargs["extension_mode"] = ExtensionMode(cfg_kwargs["extension_mode"])
        cfg = CuBlastpConfig(**cfg_kwargs)
        cb = CuBlastp(self.compiled(db_name, q_name), None, cfg)
        return cb.search_with_report(self.db(db_name))

    @lru_cache(maxsize=None)
    def coarse(self, system: str, db_name: str, q_name: str):
        """(result, report) of a coarse baseline ('cuda' or 'gpu')."""
        cls = CudaBlastp if system == "cuda" else GpuBlastp
        return cls(self.compiled(db_name, q_name)).search_with_report(
            self.db(db_name)
        )


_LAB: Lab | None = None


def get_lab() -> Lab:
    """The process-wide lab (shared across bench modules)."""
    global _LAB
    if _LAB is None:
        _LAB = Lab()
    return _LAB


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    """Print one paper-style table."""
    widths = [
        max(len(str(h)), max((len(_fmt(r[i])) for r in rows), default=0))
        for i, h in enumerate(headers)
    ]
    print(f"\n=== {title} ===")
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for r in rows:
        print("  ".join(_fmt(v).ljust(w) for v, w in zip(r, widths)))


def _fmt(v) -> str:
    if isinstance(v, float):
        return f"{v:.3f}" if abs(v) < 100 else f"{v:.1f}"
    return str(v)
