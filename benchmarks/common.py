"""Shared benchmark harness: workloads, cached runs, table printing.

Every figure bench draws its configurations from one session-scoped
:class:`Lab`, which memoises simulation runs — several figures share the
same underlying kernel executions (e.g. Fig. 18's cuBLASTP runs are
Fig. 19's profiling subjects), and simulated launches are expensive.

Scale: the databases default to half the standard sandbox size so the full
benchmark suite finishes in minutes; set ``REPRO_BENCH_SCALE=1.0`` for the
full sandbox workloads (the shapes are scale-stable; EXPERIMENTS.md records
both).
"""

from __future__ import annotations

import atexit
import os
import tempfile
from functools import lru_cache
from pathlib import Path

from repro.baselines import CudaBlastp, FsaBlast, GpuBlastp, NcbiBlast
from repro.core import SearchParams
from repro.cublastp import CuBlastp, CuBlastpConfig, ExtensionMode
from repro.engine import QueryCache, compile_query
from repro.io import (
    DatabaseStore,
    generate_database,
    standard_queries,
    standard_workloads,
)
from repro.io.workloads import generate_query

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))

QUERIES = ("query127", "query517", "query1054")
DATABASES = ("swissprot_mini", "env_nr_mini")

#: The paper's query-length mix (Table 1 query set), cycled through by
#: :meth:`Lab.mixed_queries` so a batch exercises short, medium, and long
#: compilations against the same database.
MIXED_QUERY_LENGTHS = (127, 517, 1054)


class Lab:
    """Memoised implementations-by-configuration runner."""

    def __init__(self, scale: float = BENCH_SCALE) -> None:
        from dataclasses import replace

        self.scale = scale
        self.specs = standard_workloads(scale)
        # Homolog-enriched variant for the CPU-phase figures (Fig. 11/13):
        # phase 3/4 need enough gapped extensions to expose thread scaling,
        # which the homolog-sparse standard workloads deliberately starve.
        self.specs["swissprot_rich"] = replace(
            self.specs["swissprot_mini"], name="swissprot_rich", homolog_fraction=0.08
        )
        # Databases stay resident in a store for the whole suite: one
        # generation per workload, shared (read-only) by every engine.
        self.store = DatabaseStore(capacity=len(self.specs) + 2)
        self._queries = {}
        # Binary-format spills for process-backend benches (db_path()).
        self._db_paths: dict[str, Path] = {}
        self._db_dir: str | None = None
        # One compile per (db, query): every engine and configuration in
        # the suite binds the same CompiledQuery (engine-layer sharing).
        self._compile_cache = QueryCache(capacity=64)

    def db(self, name: str):
        return self.store.get(name, lambda: generate_database(self.specs[name]))

    def db_path(self, name: str) -> Path:
        """The workload saved in the binary format (one save per session).

        This is what the process-backend benchmarks hand to workers: the
        file is written once, every worker re-opens it with ``mmap``, and
        the temp directory is removed at interpreter exit.
        """
        if name not in self._db_paths:
            if self._db_dir is None:
                self._db_dir = tempfile.mkdtemp(prefix="repro-bench-db-")
                atexit.register(self._cleanup_db_dir)
            path = Path(self._db_dir) / f"{name}.rpdb"
            self.db(name).save(path)
            self._db_paths[name] = path
        return self._db_paths[name]

    def _cleanup_db_dir(self) -> None:
        import shutil

        if self._db_dir is not None:
            shutil.rmtree(self._db_dir, ignore_errors=True)
            self._db_dir = None

    def mixed_queries(
        self, db_name: str, count: int, seed: int = 0
    ) -> list[tuple[str, str]]:
        """A ``(query_id, sequence)`` batch cycling the paper's length mix.

        Deterministic in ``(db_name, count, seed)``; ids encode the length
        so per-length throughput can be read off the batch results.
        """
        spec = self.specs[db_name]
        lengths = MIXED_QUERY_LENGTHS
        return [
            (
                f"q{i:03d}-len{lengths[i % len(lengths)]}",
                generate_query(lengths[i % len(lengths)], spec, query_seed=seed + i),
            )
            for i in range(count)
        ]

    def query(self, db_name: str, q_name: str) -> str:
        key = (db_name, q_name)
        if key not in self._queries:
            self._queries[key] = standard_queries(self.specs[db_name])[q_name]
        return self._queries[key]

    def params(self, db_name: str) -> SearchParams:
        return SearchParams(**self.specs[db_name].search_params_kwargs)

    def compiled(self, db_name: str, q_name: str):
        """The (db, query) pair's CompiledQuery (one build, LRU-cached)."""
        return compile_query(
            self.query(db_name, q_name), self.params(db_name), cache=self._compile_cache
        )

    # -- cached runs ---------------------------------------------------------

    @lru_cache(maxsize=None)
    def fsa(self, db_name: str, q_name: str):
        """(result, timing, counts) of FSA-BLAST."""
        return FsaBlast(self.compiled(db_name, q_name)).search_with_timing(
            self.db(db_name)
        )

    @lru_cache(maxsize=None)
    def ncbi(self, db_name: str, q_name: str, threads: int = 4):
        return NcbiBlast(
            self.compiled(db_name, q_name), threads=threads
        ).search_with_timing(self.db(db_name))

    @lru_cache(maxsize=None)
    def cublastp(self, db_name: str, q_name: str, **config_kwargs):
        """(result, report) of cuBLASTP under a given configuration."""
        cfg_kwargs = dict(config_kwargs)
        if "extension_mode" in cfg_kwargs:
            cfg_kwargs["extension_mode"] = ExtensionMode(cfg_kwargs["extension_mode"])
        cfg = CuBlastpConfig(**cfg_kwargs)
        cb = CuBlastp(self.compiled(db_name, q_name), None, cfg)
        return cb.search_with_report(self.db(db_name))

    @lru_cache(maxsize=None)
    def coarse(self, system: str, db_name: str, q_name: str):
        """(result, report) of a coarse baseline ('cuda' or 'gpu')."""
        cls = CudaBlastp if system == "cuda" else GpuBlastp
        return cls(self.compiled(db_name, q_name)).search_with_report(
            self.db(db_name)
        )


_LAB: Lab | None = None


def get_lab() -> Lab:
    """The process-wide lab (shared across bench modules)."""
    global _LAB
    if _LAB is None:
        _LAB = Lab()
    return _LAB


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    """Print one paper-style table."""
    widths = [
        max(len(str(h)), max((len(_fmt(r[i])) for r in rows), default=0))
        for i, h in enumerate(headers)
    ]
    print(f"\n=== {title} ===")
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for r in rows:
        print("  ".join(_fmt(v).ljust(w) for v, w in zip(r, widths)))


def _fmt(v) -> str:
    if isinstance(v, float):
        return f"{v:.3f}" if abs(v) < 100 else f"{v:.1f}"
    return str(v)
