"""Fig. 13: strong scaling of gapped extension + traceback on the CPU.

Paper series: speedup of the multithreaded CPU phases at 1, 2, 4 threads
(roughly 1.0 / 1.8 / 2.8-3.3 — strong but sub-linear, capped by the
biggest DP boxes and thread overhead).
"""

from common import print_table

from repro.cublastp.cpu_phases import run_cpu_phases
from repro.core import BlastpPipeline


def compute_scaling(lab):
    db = lab.db("swissprot_rich")
    pipe = BlastpPipeline(lab.query("swissprot_rich", "query517"), lab.params("swissprot_rich"))
    cutoffs = pipe.cutoffs(db)
    hits = pipe.phase_hit_detection(db)
    exts, _ = pipe.phase_ungapped(hits, db, cutoffs)
    times = {}
    for threads in (1, 2, 4):
        r = run_cpu_phases(pipe, exts, db, cutoffs, threads)
        times[threads] = {"gapped": r.gapped_ms, "traceback": r.traceback_ms, "total": r.total_ms}
    return times


def test_fig13_cpu_scaling(benchmark, lab):
    times = benchmark.pedantic(compute_scaling, args=(lab,), rounds=1, iterations=1)

    base = times[1]["total"]
    rows = [
        [t, v["gapped"], v["traceback"], v["total"], base / v["total"]]
        for t, v in times.items()
    ]
    print_table(
        "Fig. 13 — Gapped extension + traceback strong scaling (swissprot_rich, query517)",
        ["threads", "gapped ms", "traceback ms", "total ms", "speedup"],
        rows,
    )

    s2 = base / times[2]["total"]
    s4 = base / times[4]["total"]
    # Strong scaling: monotone, meaningfully above 1, below ideal.
    assert 1.2 < s2 <= 2.05
    assert s2 < s4 <= 4.05
    assert s4 > 1.6

    benchmark.extra_info["speedups"] = {"2": round(s2, 3), "4": round(s4, 3)}
