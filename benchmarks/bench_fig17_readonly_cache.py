"""Fig. 17: hierarchical buffering — the read-only cache ablation.

Paper series: cuBLASTP kernel time with and without routing the DFA's
query-position lists through the Kepler 48-kB read-only cache, for the
three queries. Claim: the cache always helps (the DFA lists are reused
heavily across subject words).
"""

from common import QUERIES, print_table


def compute_cache_ablation(lab):
    out = {}
    for q in QUERIES:
        row = {}
        for cached in (True, False):
            _, rep = lab.cublastp("swissprot_mini", q, use_readonly_cache=cached)
            hit_prof = rep.gpu.profiles["hit_detection"]
            row[cached] = {
                "hit_ms": hit_prof.elapsed_ms(),
                "total_ms": rep.gpu.critical_ms,
                "hit_ratio": (
                    hit_prof.readonly_hits
                    / max(1, hit_prof.readonly_hits + hit_prof.readonly_misses)
                ),
            }
        out[q] = row
    return out


def test_fig17_readonly_cache(benchmark, lab):
    res = benchmark.pedantic(compute_cache_ablation, args=(lab,), rounds=1, iterations=1)

    rows = [
        [
            q,
            res[q][False]["hit_ms"],
            res[q][True]["hit_ms"],
            res[q][False]["total_ms"],
            res[q][True]["total_ms"],
            f"{res[q][True]['hit_ratio']:.0%}",
        ]
        for q in QUERIES
    ]
    print_table(
        "Fig. 17 — With vs without the read-only cache (modelled ms)",
        ["query", "hit w/o", "hit w/", "total w/o", "total w/", "cache hit%"],
        rows,
    )

    for q in QUERIES:
        # The cache always improves hit detection and the kernel total.
        assert res[q][True]["hit_ms"] < res[q][False]["hit_ms"]
        assert res[q][True]["total_ms"] < res[q][False]["total_ms"]
        # And it genuinely hits: the DFA position lists are reused.
        assert res[q][True]["hit_ratio"] > 0.3

    benchmark.extra_info["results"] = {
        q: {str(c): {k: round(float(v), 5) for k, v in d.items()} for c, d in row.items()}
        for q, row in res.items()
    }
