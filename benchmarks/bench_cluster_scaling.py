"""§6 extension: GPU-cluster scaling and the result-merge bottleneck.

Not a paper figure — the paper *predicts* this experiment as future work:
"the result sorting, merging, and ranking from multiple nodes could become
a time-consuming step, which in turn, would be the performance bottleneck
on GPU clusters". We build the cluster (``repro.cluster``) and measure
exactly that: compute span shrinks with nodes while the serial head-node
gather+merge grows into the profile.
"""

from common import print_table

from repro.cluster import MultiGpuBlastp

NODES = (1, 2, 4, 8)
DB, Q = "swissprot_mini", "query517"


def compute_scaling(lab):
    db = lab.db(DB)
    query = lab.query(DB, Q)
    params = lab.params(DB)
    single_alignments = None
    out = {}
    for n in NODES:
        res, rep = MultiGpuBlastp(query, n, params).search_with_report(db)
        keys = [(a.seq_id, a.score) for a in res.alignments]
        if single_alignments is None:
            single_alignments = keys
        assert keys == single_alignments, "cluster changed the output!"
        out[n] = {
            "compute": rep.compute_ms,
            "gather": rep.gather_ms,
            "merge": rep.merge_ms,
            "overall": rep.overall_ms,
            "merge_share": rep.merge_share,
        }
    return out


def test_cluster_scaling(benchmark, lab):
    res = benchmark.pedantic(compute_scaling, args=(lab,), rounds=1, iterations=1)

    base = res[1]["overall"]
    rows = [
        [n, v["compute"], v["gather"], v["merge"], v["overall"],
         base / v["overall"], f"{v['merge_share']:.0%}"]
        for n, v in res.items()
    ]
    print_table(
        "§6 extension — cluster scaling (swissprot_mini, query517, modelled ms)",
        ["nodes", "compute", "gather", "merge", "overall", "speedup", "merge+gather share"],
        rows,
    )

    # Compute span shrinks monotonically with nodes...
    computes = [res[n]["compute"] for n in NODES]
    assert all(a >= b for a, b in zip(computes, computes[1:]))
    # ...while the serial merge/gather share grows — the predicted
    # bottleneck — and caps the overall speedup well below linear.
    shares = [res[n]["merge_share"] for n in NODES]
    assert all(a < b for a, b in zip(shares, shares[1:]))
    assert res[NODES[-1]]["merge_share"] > 2 * res[1]["merge_share"]
    assert base / res[NODES[-1]]["overall"] < NODES[-1] * 0.8

    benchmark.extra_info["scaling"] = {
        str(n): {k: round(float(x), 5) for k, x in v.items()} for n, v in res.items()
    }
