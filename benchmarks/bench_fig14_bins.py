"""Fig. 14: kernel execution times vs the number of bins per warp.

Paper series, for query517 on swissprot: hit detection, hit sorting, hit
filtering and total kernel time at 32/64/128/256 bins per warp. Claims:

* sorting (and filtering) improve steadily with more bins (smaller
  segments sort faster);
* hit detection degrades past ~128 bins because the shared-memory ``top``
  arrays crowd out resident blocks (occupancy);
* the best total sits at an intermediate bin count (128 in the paper).

Also asserts §3.3's hit-survival claim: 5-11 % of hits pass filtering.
"""

from common import print_table

BIN_COUNTS = (32, 64, 128, 256)


def compute_sweep(lab):
    out = {}
    for bins in BIN_COUNTS:
        _, rep = lab.cublastp("swissprot_mini", "query517", num_bins=bins)
        g = rep.gpu
        out[bins] = {
            "hit_detection": g.kernel_ms("hit_detection"),
            "assembling": g.kernel_ms("hit_assembling"),
            "sorting": g.kernel_ms("hit_sorting"),
            "filtering": g.kernel_ms("hit_filtering"),
            "extension": g.kernel_ms("ungapped_extension"),
            "total": g.critical_ms,
            "occupancy": g.profiles["hit_detection"].occupancy,
            "survival": g.survival_ratio,
        }
    return out


def test_fig14_bin_sweep(benchmark, lab):
    sweep = benchmark.pedantic(compute_sweep, args=(lab,), rounds=1, iterations=1)

    rows = [
        [b, v["hit_detection"], v["assembling"], v["sorting"], v["filtering"],
         v["total"], f"{v['occupancy']:.0%}"]
        for b, v in sweep.items()
    ]
    print_table(
        "Fig. 14 — Kernel times vs bins/warp (swissprot_mini, query517, modelled ms)",
        ["bins", "hit detection", "assembling", "sorting", "filtering", "total", "hit occ"],
        rows,
    )

    # The sort proper improves with more (smaller) segments.
    sort_times = [sweep[b]["sorting"] for b in BIN_COUNTS]
    assert sort_times[0] > sort_times[-1]
    assert all(a >= b * 0.98 for a, b in zip(sort_times, sort_times[1:]))

    # Hit detection pays for big top arrays: occupancy is non-increasing
    # with bins, and 256 bins must be slower than the best configuration.
    occs = [sweep[b]["occupancy"] for b in BIN_COUNTS]
    assert all(a >= b for a, b in zip(occs, occs[1:]))
    hd = [sweep[b]["hit_detection"] for b in BIN_COUNTS]
    assert sweep[256]["hit_detection"] >= min(hd)
    assert occs[-1] < occs[0]

    # §3.3: filtering passes 5-11 % of hits to extension.
    for b in BIN_COUNTS:
        assert 0.03 <= sweep[b]["survival"] <= 0.13

    benchmark.extra_info["sweep"] = {
        str(b): {k: round(float(x), 5) for k, x in v.items()} for b, v in sweep.items()
    }
