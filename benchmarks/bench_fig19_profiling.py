"""Fig. 19: profiler comparison and the cuBLASTP execution breakdown.

Paper panels, for query517 on env_nr:

  (a) global load efficiency per kernel — cuBLASTP's four kernels reach
      67/46/25/81 %, the coarse codes only 5-12 %;
  (b) divergence overhead — cuBLASTP kernels far lower than the fused
      coarse kernels;
  (c) achieved occupancy — cuBLASTP higher;
  (d) cuBLASTP's end-to-end breakdown with the overlapped (shadowed)
      transfer + CPU stages, 'Other' near 18 %.
"""

from common import print_table

DB, Q = "env_nr_mini", "query517"
KERNELS = ("hit_detection", "hit_sorting", "hit_filtering", "ungapped_extension")


def compute_profiles(lab):
    _, cu = lab.cublastp(DB, Q)
    _, cuda = lab.coarse("cuda", DB, Q)
    _, gpu = lab.coarse("gpu", DB, Q)
    fine = {
        k: {
            "gld": cu.gpu.profiles[k].global_load_efficiency,
            "div": cu.gpu.profiles[k].divergence_overhead,
            "occ": cu.gpu.profiles[k].occupancy,
        }
        for k in KERNELS
    }
    coarse = {
        "CUDA-BLASTP": {
            "gld": cuda.kernel.global_load_efficiency,
            "div": cuda.kernel.divergence_overhead,
            "occ": cuda.kernel.occupancy,
        },
        "GPU-BLASTP": {
            "gld": gpu.kernel.global_load_efficiency,
            "div": gpu.kernel.divergence_overhead,
            "occ": gpu.kernel.occupancy,
        },
    }
    return fine, coarse, cu


def test_fig19_profiling(benchmark, lab):
    fine, coarse, cu = benchmark.pedantic(compute_profiles, args=(lab,), rounds=1, iterations=1)

    rows = [
        [k, f"{v['gld']:.0%}", f"{v['div']:.0%}", f"{v['occ']:.0%}"]
        for k, v in {**{f"cuBLASTP {k}": v for k, v in fine.items()}, **coarse}.items()
    ]
    print_table(
        f"Fig. 19(a-c) — Profiler metrics, {Q} on {DB}",
        ["kernel", "gld eff", "divergence", "occupancy"],
        rows,
    )

    bd = cu.breakdown
    total = cu.serial_ms
    print_table(
        "Fig. 19(d) — cuBLASTP execution breakdown",
        ["stage", "ms", "share", "overlapped"],
        [
            [k, v, f"{100 * v / total:.0f}%",
             "yes" if k in ("data_transfer", "gapped_extension", "final_alignment") else ""]
            for k, v in bd.items()
        ]
        + [["(pipelined total)", cu.overall_ms, f"saved {cu.overlap_saved_ms:.3f} ms", ""]],
    )

    # (a) every fine-grained kernel beats both coarse kernels on loads.
    for k, v in fine.items():
        for c in coarse.values():
            assert v["gld"] > c["gld"], k
    # Coarse load efficiency is single-digit-to-low-teens, like the paper.
    for c in coarse.values():
        assert c["gld"] < 0.15
    # Hit detection approaches the paper's 67 %.
    assert fine["hit_detection"]["gld"] > 0.4

    # (b) divergence: fine kernels below the fused coarse kernels.
    for k in ("hit_detection", "ungapped_extension"):
        for c in coarse.values():
            assert fine[k]["div"] < c["div"], k

    # (c) occupancy: cuBLASTP's worst kernel at least matches the coarse
    # kernels' best.
    assert min(v["occ"] for v in fine.values()) >= max(c["occ"] for c in coarse.values()) - 0.15

    # (d) the pipeline genuinely overlaps work, and 'Other' is a visible
    # but minor share (paper: ~18 %).
    assert cu.overlap_saved_ms >= 0
    assert 0.02 < bd["other"] / total < 0.45

    benchmark.extra_info["fine"] = {
        k: {m: round(float(x), 4) for m, x in v.items()} for k, v in fine.items()
    }
    benchmark.extra_info["coarse"] = {
        k: {m: round(float(x), 4) for m, x in v.items()} for k, v in coarse.items()
    }
