"""Ablation: window size of the window-based extension kernel.

The paper fixes ``winSize = 8`` (Fig. 8) without sweeping it. The trade is
visible in the model: small windows waste less work past the x-drop point
but coalesce worse and give each extension fewer cooperating lanes; large
windows do the reverse. The sweep shows 8 as a sane middle and — as
everywhere — outputs are identical across settings.
"""

from common import print_table

DB, Q = "swissprot_mini", "query517"


def sweep(lab):
    out = {}
    for wsize in (2, 4, 8, 16):
        result, rep = lab.cublastp(DB, Q, window_size=wsize)
        prof = rep.gpu.profiles["ungapped_extension"]
        out[wsize] = {
            "ms": prof.elapsed_ms(),
            "divergence": prof.divergence_overhead,
            "gld": prof.global_load_efficiency,
            "alignments": [(a.seq_id, a.score) for a in result.alignments],
        }
    return out


def test_ablation_window_size(benchmark, lab):
    res = benchmark.pedantic(sweep, args=(lab,), rounds=1, iterations=1)
    print_table(
        "Ablation — window size (window-based extension, query517)",
        ["winSize", "ms", "divergence", "gld eff"],
        [
            [w, v["ms"], f"{v['divergence']:.0%}", f"{v['gld']:.0%}"]
            for w, v in res.items()
        ],
    )
    # Output-invariance across the sweep.
    baseline = res[8]["alignments"]
    for w, v in res.items():
        assert v["alignments"] == baseline, w
    # Coalescing improves with window size (consecutive-load span grows).
    glds = [res[w]["gld"] for w in sorted(res)]
    assert glds[0] < glds[-1]
    # The paper's choice is within 25 % of the sweep's best.
    best = min(v["ms"] for v in res.values())
    assert res[8]["ms"] <= best * 1.25
