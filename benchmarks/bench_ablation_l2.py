"""Ablation: the optional L2 model, validating EXPERIMENTS.md's deviation #1.

The default timing model omits L2, which over-penalises the coarse
baselines' fully scattered loads and inflates cuBLASTP's measured advantage
to ~2x the paper's. Enabling the L2 model (K20c: 1.25 MB) should recover
much of the coarse kernels' performance while barely moving cuBLASTP's
already-coalesced kernels — shrinking the fine-vs-coarse ratio toward the
paper's 2.9x. This bench measures exactly that, turning the documented
deviation from a hand-wave into a quantified model choice.
"""

from common import print_table

from repro.baselines import CudaBlastp
from repro.cublastp import CuBlastp, CuBlastpConfig

DB, Q = "swissprot_mini", "query517"


def compute(lab):
    db = lab.db(DB)
    query = lab.query(DB, Q)
    params = lab.params(DB)
    out = {}
    for use_l2 in (False, True):
        _, cu = CuBlastp(
            query, params, CuBlastpConfig(use_l2=use_l2)
        ).search_with_report(db)

        coarse = CudaBlastp(query, params)
        coarse.use_l2 = use_l2
        _, cuda = coarse.search_with_report(db)
        out[use_l2] = {
            "cublastp": cu.gpu.critical_ms,
            "cuda": cuda.critical_ms,
            "ratio": cuda.critical_ms / cu.gpu.critical_ms,
        }
    return out


def test_ablation_l2(benchmark, lab):
    res = benchmark.pedantic(compute, args=(lab,), rounds=1, iterations=1)
    print_table(
        "Ablation — optional L2 model (critical phases, query517, modelled ms)",
        ["L2", "cuBLASTP", "CUDA-BLASTP", "coarse/fine ratio"],
        [
            ["off" if not k else "on", v["cublastp"], v["cuda"], v["ratio"]]
            for k, v in res.items()
        ],
    )
    # L2 helps the scatter-bound coarse kernel far more than the coalesced
    # fine kernels...
    coarse_gain = res[False]["cuda"] / res[True]["cuda"]
    fine_gain = res[False]["cublastp"] / res[True]["cublastp"]
    assert coarse_gain > fine_gain
    assert coarse_gain > 1.3
    # ...pulling the fine-vs-coarse ratio toward the paper's 2.9x.
    assert res[True]["ratio"] < res[False]["ratio"]
    paper = 2.9
    assert abs(res[True]["ratio"] - paper) < abs(res[False]["ratio"] - paper)

    benchmark.extra_info["ratios"] = {
        "l2_off": round(res[False]["ratio"], 2),
        "l2_on": round(res[True]["ratio"], 2),
    }
