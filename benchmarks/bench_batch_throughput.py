"""Tracked batch-throughput benchmark: backend x jobs x query-length mix.

The repo's first *performance trajectory*: every run writes a JSON record
(``BENCH_batch_throughput.json`` by default) with queries/sec, per-phase
wall breakdowns from the :class:`~repro.engine.events.EventLog`, and
speedup-vs-serial for each (backend, jobs) cell, so regressions in the
process-pool execution path show up as numbers, not vibes.

The workload is a saved binary database (one save, every run re-opens it
``mmap``-ed — both backends exercise the PR 2 storage path) and a
mixed-length query batch cycling the paper's 127/517/1054 query set.

Run directly::

    PYTHONPATH=src python benchmarks/bench_batch_throughput.py \
        --queries 64 --db-sequences 10000 --jobs 1,2,4

CI runs a small sweep with ``--assert-process-geq-thread``: on a
multi-core runner the process backend must at least match the thread
backend at the highest jobs value (the GIL-bound hot phases make threads
plateau near serial; warm processes actually scale).

The JSON is honest about its host: ``host.cpu_count`` is recorded, each
cell records both the *requested* and the *effective* (clamped) jobs
value, and a single-core box will legitimately show speedup ~1 for every
cell.

``--modes per-query,db-sweep`` additionally sweeps the executor's
batch-first mode (one blocked database pass through a merged multi-query
index); ``--assert-sweep-geq-serial`` is the CI gate that the db-sweep
trajectory stays at or above the per-query serial baseline — the
amortised hit detection must never cost throughput.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from common import MIXED_QUERY_LENGTHS, print_table  # noqa: E402

from repro.core import SearchParams  # noqa: E402
from repro.engine import BatchExecutor, EventLog, make_engine  # noqa: E402
from repro.io import generate_database, generate_query  # noqa: E402
from repro.io.workloads import WorkloadSpec  # noqa: E402

#: Schema version of the JSON record (bump on incompatible change).
#: v2: cells carry ``mode`` / ``requested_jobs`` / ``jobs_clamped``; the
#: run list may mix per-query and db-sweep trajectories.
BENCH_SCHEMA_VERSION = 2


def build_workload(args) -> tuple[Path, list[tuple[str, str]], SearchParams, dict]:
    """Generate the database, save it binary, and build the query mix."""
    spec = WorkloadSpec(
        name="throughput",
        num_sequences=args.db_sequences,
        mean_length=args.mean_length,
        homolog_fraction=0.05,
        seed=args.seed,
        emulated_residues=110_000_000,
    )
    db = generate_database(spec)
    fd, name = tempfile.mkstemp(prefix="repro-bench-throughput-", suffix=".rpdb")
    os.close(fd)
    db.save(name)
    lengths = MIXED_QUERY_LENGTHS
    queries = [
        (
            f"q{i:03d}-len{lengths[i % len(lengths)]}",
            generate_query(lengths[i % len(lengths)], spec, query_seed=args.seed + i),
        )
        for i in range(args.queries)
    ]
    params = SearchParams(**spec.search_params_kwargs)
    workload = {
        "db_sequences": len(db),
        "db_residues": int(db.codes.size),
        "num_queries": len(queries),
        "query_lengths": list(lengths),
        "seed": args.seed,
        "engine": args.engine,
    }
    return Path(name), queries, params, workload


def run_cell(
    engine_name: str,
    params: SearchParams,
    backend: str,
    jobs: int,
    queries: list[tuple[str, str]],
    db_path: Path,
    mode: str = "per-query",
) -> dict:
    """One (backend, jobs, mode) cell: fresh engine and event log, one batch."""
    events = EventLog()
    engine = make_engine(engine_name, params, events=events)
    executor = BatchExecutor(
        engine,
        jobs=jobs,
        backend=backend,
        mode=mode,
        collect_reports=False,
        events=events,
    )
    t0 = time.perf_counter()
    batch = executor.run(queries, db_path)
    wall_s = time.perf_counter() - t0
    errors = [(qid, str(e)) for qid, e in batch.errors]
    if errors:
        raise RuntimeError(
            f"{backend}/{mode}/jobs={jobs} had query failures: {errors[:3]}"
        )
    phase_wall = {k: round(v, 3) for k, v in sorted(events.wall_breakdown().items())}
    return {
        "backend": backend,
        "mode": mode,
        # The executor clamps process-backend jobs to the host's cores;
        # record both sides so a clamped run can't masquerade as scaling.
        "jobs": executor.jobs,
        "requested_jobs": executor.requested_jobs,
        "jobs_clamped": executor.jobs_clamped,
        "wall_s": round(wall_s, 3),
        "qps": round(len(queries) / wall_s, 3),
        "phase_wall_ms": phase_wall,
    }


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    ap.add_argument("--engine", default="reference",
                    help="engine under test (default: reference — the "
                    "pure-Python hot loops the process backend exists for)")
    ap.add_argument("--queries", type=int, default=64)
    ap.add_argument("--db-sequences", type=int, default=10_000)
    ap.add_argument("--mean-length", type=int, default=250)
    ap.add_argument("--seed", type=int, default=20140519)
    ap.add_argument("--jobs", default="1,2,4",
                    help="comma-separated jobs values to sweep")
    ap.add_argument("--backends", default="thread,process")
    ap.add_argument("--modes", default="per-query",
                    help="comma-separated executor modes to sweep "
                    "(per-query, db-sweep)")
    ap.add_argument("--out", default=str(Path(__file__).parent.parent
                                         / "BENCH_batch_throughput.json"))
    ap.add_argument("--assert-process-geq-thread", action="store_true",
                    help="fail unless process qps >= thread qps at the "
                    "highest swept jobs value (CI gate; needs >1 core)")
    ap.add_argument("--assert-sweep-geq-serial", action="store_true",
                    help="fail unless the best db-sweep cell's qps >= the "
                    "per-query serial baseline (CI gate for the batch-"
                    "first inversion)")
    ap.add_argument("--assert-phase", metavar="PHASE", action="append",
                    help="with --max-ms: fail if the serial baseline's "
                    "wall for this phase exceeds the bound (CI gate "
                    "pinning a phase-level speedup, e.g. the columnar "
                    "ungapped-extension path); repeatable — the n-th "
                    "--assert-phase pairs with the n-th --max-ms")
    ap.add_argument("--max-ms", type=float, action="append",
                    help="phase wall bound in ms for --assert-phase "
                    "(repeatable, paired positionally)")
    args = ap.parse_args(argv)
    if len(args.assert_phase or []) != len(args.max_ms or []):
        ap.error("--assert-phase and --max-ms must be given together, "
                 "one bound per phase")

    jobs_list = [int(j) for j in args.jobs.split(",") if j.strip()]
    backends = [b.strip() for b in args.backends.split(",") if b.strip()]
    modes = [m.strip() for m in args.modes.split(",") if m.strip()]
    for m in modes:
        if m not in BatchExecutor.MODES:
            ap.error(f"unknown mode {m!r} (choose from {', '.join(BatchExecutor.MODES)})")
    print(f"batch throughput: {args.queries} queries (lengths "
          f"{'/'.join(map(str, MIXED_QUERY_LENGTHS))}), "
          f"{args.db_sequences} sequences, engine={args.engine}, "
          f"cpu_count={os.cpu_count()}")

    db_path, queries, params, workload = build_workload(args)
    try:
        serial = run_cell(args.engine, params, "thread", 1, queries, db_path)
        print(f"  serial baseline: {serial['wall_s']:.2f}s "
              f"({serial['qps']:.2f} q/s)")
        runs = []
        for mode in modes:
            for backend in backends:
                for jobs in jobs_list:
                    cell = run_cell(
                        args.engine, params, backend, jobs, queries, db_path, mode
                    )
                    cell["speedup_vs_serial"] = round(
                        serial["wall_s"] / cell["wall_s"], 3
                    )
                    runs.append(cell)
                    clamp = (
                        f" (requested {cell['requested_jobs']}, clamped)"
                        if cell["jobs_clamped"] else ""
                    )
                    print(f"  {backend:<8} {mode:<9} jobs={cell['jobs']}{clamp}: "
                          f"{cell['wall_s']:.2f}s ({cell['qps']:.2f} q/s, "
                          f"{cell['speedup_vs_serial']:.2f}x)")
    finally:
        os.unlink(db_path)

    record = {
        "bench": "batch_throughput",
        "schema_version": BENCH_SCHEMA_VERSION,
        "host": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "workload": workload,
        "serial": serial,
        "runs": runs,
    }
    out = Path(args.out)
    out.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {out}")

    print_table(
        "batch throughput",
        ["backend", "mode", "jobs", "wall s", "q/s", "speedup", "top phase"],
        [
            [
                r["backend"], r.get("mode", "per-query"), r["jobs"],
                r["wall_s"], r["qps"], r["speedup_vs_serial"],
                max(r["phase_wall_ms"], key=r["phase_wall_ms"].get)
                if r["phase_wall_ms"] else "-",
            ]
            for r in [dict(serial, speedup_vs_serial=1.0)] + runs
        ],
    )

    if args.assert_process_geq_thread:
        # Requested jobs: clamping may collapse several requested values
        # onto one effective value, so the gate keys on what was asked.
        top = max(jobs_list)
        by = {
            (r["backend"], r["requested_jobs"]): r
            for r in runs
            if r.get("mode", "per-query") == "per-query"
        }
        thread = by.get(("thread", top))
        proc = by.get(("process", top))
        if thread is None or proc is None:
            print(f"error: need both backends at jobs={top} for the assertion",
                  file=sys.stderr)
            return 2
        if proc["qps"] < thread["qps"]:
            print(f"FAIL: process qps {proc['qps']} < thread qps "
                  f"{thread['qps']} at jobs={top}", file=sys.stderr)
            return 1
        print(f"OK: process qps {proc['qps']} >= thread qps {thread['qps']} "
              f"at jobs={top}")

    if args.assert_sweep_geq_serial:
        sweeps = [r for r in runs if r.get("mode") == "db-sweep"]
        if not sweeps:
            print("error: --assert-sweep-geq-serial needs a db-sweep cell "
                  "(add db-sweep to --modes)", file=sys.stderr)
            return 2
        best = max(sweeps, key=lambda r: r["qps"])
        if best["qps"] < serial["qps"]:
            print(f"FAIL: best db-sweep qps {best['qps']} "
                  f"({best['backend']}/jobs={best['jobs']}) < per-query "
                  f"serial qps {serial['qps']}", file=sys.stderr)
            return 1
        print(f"OK: db-sweep qps {best['qps']} >= per-query serial qps "
              f"{serial['qps']}")

    for phase, max_ms in zip(args.assert_phase or [], args.max_ms or []):
        # Gate on the serial cell: it has no job-count noise, so a phase
        # regression can't hide behind parallel speedup elsewhere.
        phase_ms = serial["phase_wall_ms"].get(phase)
        if phase_ms is None:
            print(f"error: phase {phase!r} not in the serial "
                  f"breakdown (have: "
                  f"{', '.join(serial['phase_wall_ms']) or 'none'})",
                  file=sys.stderr)
            return 2
        if phase_ms > max_ms:
            print(f"FAIL: serial {phase} wall {phase_ms:.0f}ms "
                  f"> bound {max_ms:.0f}ms", file=sys.stderr)
            return 1
        print(f"OK: serial {phase} wall {phase_ms:.0f}ms "
              f"<= bound {max_ms:.0f}ms")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
