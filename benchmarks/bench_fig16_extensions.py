"""Fig. 16: the three fine-grained extension strategies.

Paper series: (a) ungapped-extension kernel time and (b) divergence
overhead for diagonal-, hit-, and window-based extension across the three
queries. Claims: window-based is fastest (12-24 % over diagonal-based,
27-38 % over hit-based) and has by far the lowest divergence overhead.
"""

from common import QUERIES, print_table

MODES = ("diagonal", "hit", "window")


def compute_strategies(lab):
    out = {}
    for q in QUERIES:
        row = {}
        for mode in MODES:
            _, rep = lab.cublastp("swissprot_mini", q, extension_mode=mode)
            prof = rep.gpu.profiles["ungapped_extension"]
            row[mode] = {
                "ms": prof.elapsed_ms(),
                "divergence": prof.divergence_overhead,
                "gld": prof.global_load_efficiency,
            }
        out[q] = row
    return out


def test_fig16_extension_strategies(benchmark, lab):
    res = benchmark.pedantic(compute_strategies, args=(lab,), rounds=1, iterations=1)

    rows_a = [[q] + [res[q][m]["ms"] for m in MODES] for q in QUERIES]
    print_table(
        "Fig. 16(a) — Extension kernel time (modelled ms)",
        ["query", *MODES],
        rows_a,
    )
    rows_b = [[q] + [f"{res[q][m]['divergence']:.0%}" for m in MODES] for q in QUERIES]
    print_table(
        "Fig. 16(b) — Divergence overhead",
        ["query", *MODES],
        rows_b,
    )

    for q in QUERIES:
        # Window-based wins on time against both alternatives...
        assert res[q]["window"]["ms"] < res[q]["diagonal"]["ms"]
        assert res[q]["window"]["ms"] < res[q]["hit"]["ms"]
        # ...and on divergence overhead, decisively.
        assert res[q]["window"]["divergence"] < res[q]["hit"]["divergence"]
        assert res[q]["window"]["divergence"] < res[q]["diagonal"]["divergence"]
        # Window-based also coalesces its subject loads far better.
        assert res[q]["window"]["gld"] > res[q]["hit"]["gld"]

    benchmark.extra_info["results"] = {
        q: {m: {k: round(float(v), 5) for k, v in d.items()} for m, d in row.items()}
        for q, row in res.items()
    }
