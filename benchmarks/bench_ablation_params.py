"""Ablations: the heuristic knobs BLASTP's design balances.

Not paper figures — these quantify the design choices DESIGN.md §5 pins,
on the same workloads:

* **two-hit window A** (paper uses 40): widening admits more seeds (more
  phase-2 work) for little sensitivity gain; narrowing starts losing
  alignments.
* **ungapped x-drop** (7 bits): smaller drops terminate walks earlier
  (fewer extension cells) but truncate segments below the gapped trigger,
  costing sensitivity.
"""

import dataclasses

from common import print_table

from repro.baselines import FsaBlast

DB, Q = "swissprot_rich", "query517"


def sweep_two_hit_window(lab):
    out = {}
    for window in (10, 20, 40, 80):
        params = dataclasses.replace(lab.params(DB), two_hit_window=window)
        result, _, counts = FsaBlast(lab.query(DB, Q), params).search_with_timing(lab.db(DB))
        out[window] = {
            "seeds": counts.num_seeds,
            "extensions": counts.num_ungapped_extensions,
            "reported": result.num_reported,
            "best": result.best().score if result.best() else 0,
        }
    return out


def sweep_x_drop(lab):
    out = {}
    for bits in (3.0, 5.0, 7.0, 11.0):
        params = dataclasses.replace(lab.params(DB), x_drop_ungapped_bits=bits)
        result, _, counts = FsaBlast(lab.query(DB, Q), params).search_with_timing(lab.db(DB))
        out[bits] = {
            "extensions": counts.num_ungapped_extensions,
            "triggers": counts.num_gapped_triggers,
            "reported": result.num_reported,
        }
    return out


def test_ablation_two_hit_window(benchmark, lab):
    res = benchmark.pedantic(sweep_two_hit_window, args=(lab,), rounds=1, iterations=1)
    print_table(
        "Ablation — two-hit window A (query517, swissprot_rich)",
        ["window", "seeds", "extensions", "reported", "best score"],
        [[w, v["seeds"], v["extensions"], v["reported"], v["best"]] for w, v in res.items()],
    )
    # Seed volume (phase-2 work) grows monotonically with the window...
    seeds = [res[w]["seeds"] for w in sorted(res)]
    assert seeds == sorted(seeds)
    # ...while sensitivity saturates: the default window already reports
    # everything the widest one does.
    assert res[40]["reported"] == res[80]["reported"]
    assert res[40]["best"] == res[80]["best"]


def test_ablation_ungapped_xdrop(benchmark, lab):
    res = benchmark.pedantic(sweep_x_drop, args=(lab,), rounds=1, iterations=1)
    print_table(
        "Ablation — ungapped x-drop (bits)",
        ["x-drop bits", "extensions", "gapped triggers", "reported"],
        [[b, v["extensions"], v["triggers"], v["reported"]] for b, v in res.items()],
    )
    # Tighter drops cannot create triggers; looser ones cannot lose them.
    triggers = [res[b]["triggers"] for b in sorted(res)]
    assert triggers == sorted(triggers)
    # The default (7 bits) keeps full sensitivity relative to 11 bits.
    assert res[7.0]["reported"] >= res[11.0]["reported"]
