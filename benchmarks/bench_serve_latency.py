"""Tracked serving-latency benchmark: open-loop load vs the HTTP service.

The serving counterpart of ``bench_batch_throughput.py``: every run
writes a JSON record (``BENCH_serve_latency.json`` by default) with
p50/p95/p99 request latency, error rate, cache hit rate, and coalescing
batch size at each offered qps level, so the serving trajectory —
coalescer → executor → cache — is tracked the same way batch throughput
is.

The generator is *open-loop*: requests fire on a fixed schedule derived
from the offered rate, regardless of how fast earlier requests complete,
and latency is measured from the request's *scheduled* arrival. A
server that falls behind therefore shows the queueing delay honestly
(no coordinated omission), and an overloaded server surfaces as 429s in
the error/status counts rather than as a silently slower schedule.

Each qps level gets a fresh server (in-process :class:`ServeHandle` on an
ephemeral port, real sockets) so levels don't share cache warmth; within
a level, requests cycle a fixed pool of distinct queries, so the steady
state mixes cold misses and cache hits like repeated production traffic.

Run directly::

    PYTHONPATH=src python benchmarks/bench_serve_latency.py \
        --qps 2,8 --duration 3 --distinct 6

CI drives a fixed low qps with ``--assert-zero-errors`` and a generous
``--assert-max-p95-ms`` bound — the gate is "the service is up, coalesces,
and answers correctly under sustained load", not a hardware race.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from common import print_table  # noqa: E402

from repro.core import SearchParams  # noqa: E402
from repro.engine import make_engine  # noqa: E402
from repro.io import generate_database, generate_query  # noqa: E402
from repro.io.workloads import WorkloadSpec  # noqa: E402
from repro.serve import SearchService, ServeHandle  # noqa: E402

#: Schema version of the JSON record (bump on incompatible change).
BENCH_SCHEMA_VERSION = 1


def percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an ascending-sorted list."""
    if not sorted_values:
        return 0.0
    rank = max(1, int(round(q / 100.0 * len(sorted_values) + 0.5)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


def build_workload(args) -> tuple[Path, list[str], SearchParams, dict]:
    """Generate the database, save it binary, and build the query pool."""
    spec = WorkloadSpec(
        name="serve",
        num_sequences=args.db_sequences,
        mean_length=args.mean_length,
        homolog_fraction=0.05,
        seed=args.seed,
        emulated_residues=110_000_000,
    )
    db = generate_database(spec)
    fd, name = tempfile.mkstemp(prefix="repro-bench-serve-", suffix=".rpdb")
    os.close(fd)
    db.save(name)
    pool = [
        generate_query(80 + 20 * (i % 4), spec, query_seed=args.seed + i)
        for i in range(args.distinct)
    ]
    params = SearchParams(**spec.search_params_kwargs)
    workload = {
        "db_sequences": len(db),
        "db_residues": int(db.codes.size),
        "distinct_queries": args.distinct,
        "seed": args.seed,
        "engine": args.engine,
    }
    return Path(name), pool, params, workload


def _one_request(base: str, query_id: str, sequence: str, timeout: float) -> dict:
    body = json.dumps({"query_id": query_id, "sequence": sequence}).encode()
    req = urllib.request.Request(base + "/search", data=body, method="POST")
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            resp.read()
            return {"status": resp.status, "cache": resp.headers.get("X-Cache", "-")}
    except urllib.error.HTTPError as exc:
        exc.read()
        return {"status": exc.code, "cache": "-"}
    except Exception as exc:  # connection-level failure: worst kind of error
        return {"status": 0, "cache": "-", "detail": str(exc)}


def run_level(
    args, db_path: Path, pool: list[str], params: SearchParams, qps: float
) -> dict:
    """One offered-qps level against a fresh server: open-loop schedule."""
    engine = make_engine(args.engine, params)
    service = SearchService(
        db_path,
        engine=engine,
        backend=args.backend,
        jobs=args.jobs,
        mode=args.mode,
        window_ms=args.window_ms,
        max_batch=args.max_batch,
        max_pending=args.max_pending,
        cache_capacity=args.cache_capacity,
    )
    num_requests = max(1, int(qps * args.duration))
    interval = 1.0 / qps
    samples: list[dict] = [{} for _ in range(num_requests)]
    lock = threading.Lock()

    with ServeHandle(service) as handle:
        base = f"http://127.0.0.1:{handle.port}"

        def fire(i: int, scheduled: float) -> None:
            out = _one_request(
                base, f"load-{i:05d}", pool[i % len(pool)], args.timeout
            )
            out["latency_ms"] = (time.perf_counter() - scheduled) * 1e3
            with lock:
                samples[i] = out

        t0 = time.perf_counter()
        with ThreadPoolExecutor(max_workers=args.connections) as senders:
            for i in range(num_requests):
                scheduled = t0 + i * interval
                delay = scheduled - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
                senders.submit(fire, i, scheduled)
        wall_s = time.perf_counter() - t0
        stats = service.stats_dict()

    latencies = sorted(s["latency_ms"] for s in samples if s)
    status_counts: dict[str, int] = {}
    for s in samples:
        key = str(s.get("status", "lost"))
        status_counts[key] = status_counts.get(key, 0) + 1
    ok = status_counts.get("200", 0)
    errors = num_requests - ok
    hits = sum(1 for s in samples if s.get("cache") == "HIT")
    return {
        "offered_qps": qps,
        "duration_s": args.duration,
        "requests": num_requests,
        "completed": ok,
        "errors": errors,
        "error_rate": round(errors / num_requests, 4),
        "status_counts": dict(sorted(status_counts.items())),
        "achieved_qps": round(num_requests / wall_s, 3),
        "cache_hit_rate": round(hits / num_requests, 4),
        "mean_batch_size": stats["coalescer"]["mean_batch_size"],
        "latency_ms": {
            "p50": round(percentile(latencies, 50), 2),
            "p95": round(percentile(latencies, 95), 2),
            "p99": round(percentile(latencies, 99), 2),
            "mean": round(sum(latencies) / len(latencies), 2) if latencies else 0.0,
            "max": round(latencies[-1], 2) if latencies else 0.0,
        },
    }


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    ap.add_argument("--engine", default="cublastp")
    ap.add_argument("--db-sequences", type=int, default=200)
    ap.add_argument("--mean-length", type=int, default=120)
    ap.add_argument("--seed", type=int, default=20140519)
    ap.add_argument("--distinct", type=int, default=6,
                    help="distinct queries cycled by the generator "
                    "(smaller => higher steady-state cache hit rate)")
    ap.add_argument("--qps", default="2,6",
                    help="comma-separated offered-qps levels")
    ap.add_argument("--duration", type=float, default=3.0,
                    help="seconds of offered load per level")
    ap.add_argument("--timeout", type=float, default=30.0,
                    help="per-request client timeout (s)")
    ap.add_argument("--connections", type=int, default=16,
                    help="max concurrent client connections")
    ap.add_argument("--backend", default="thread",
                    choices=("thread", "process"))
    ap.add_argument("--jobs", type=int, default=1)
    ap.add_argument("--mode", default="db-sweep",
                    choices=("per-query", "db-sweep"))
    ap.add_argument("--window-ms", type=float, default=20.0)
    ap.add_argument("--max-batch", type=int, default=16)
    ap.add_argument("--max-pending", type=int, default=256)
    ap.add_argument("--cache-capacity", type=int, default=1024)
    ap.add_argument("--out", default=str(Path(__file__).parent.parent
                                         / "BENCH_serve_latency.json"))
    ap.add_argument("--assert-zero-errors", action="store_true",
                    help="fail if any level had a non-200 response (CI gate)")
    ap.add_argument("--assert-max-p95-ms", type=float, metavar="MS",
                    help="fail if any level's p95 latency exceeds MS (CI gate)")
    args = ap.parse_args(argv)

    qps_levels = [float(q) for q in args.qps.split(",") if q.strip()]
    print(f"serve latency: {args.db_sequences} sequences, engine={args.engine}, "
          f"backend={args.backend}, mode={args.mode}, "
          f"window={args.window_ms}ms, cpu_count={os.cpu_count()}")

    db_path, pool, params, workload = build_workload(args)
    runs = []
    try:
        for qps in qps_levels:
            level = run_level(args, db_path, pool, params, qps)
            runs.append(level)
            lat = level["latency_ms"]
            print(f"  qps={qps:g}: {level['requests']} requests, "
                  f"errors={level['errors']}, hit_rate={level['cache_hit_rate']}, "
                  f"batch={level['mean_batch_size']}, "
                  f"p50={lat['p50']}ms p95={lat['p95']}ms p99={lat['p99']}ms")
    finally:
        os.unlink(db_path)

    record = {
        "bench": "serve_latency",
        "schema_version": BENCH_SCHEMA_VERSION,
        "host": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "workload": workload,
        "server": {
            "backend": args.backend,
            "jobs": args.jobs,
            "mode": args.mode,
            "window_ms": args.window_ms,
            "max_batch": args.max_batch,
            "max_pending": args.max_pending,
            "cache_capacity": args.cache_capacity,
        },
        "runs": runs,
    }
    out = Path(args.out)
    out.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {out}")

    print_table(
        "serve latency",
        ["qps", "requests", "errors", "hit rate", "batch", "p50 ms", "p95 ms", "p99 ms"],
        [
            [
                r["offered_qps"], r["requests"], r["errors"], r["cache_hit_rate"],
                r["mean_batch_size"], r["latency_ms"]["p50"],
                r["latency_ms"]["p95"], r["latency_ms"]["p99"],
            ]
            for r in runs
        ],
    )

    if args.assert_zero_errors:
        bad = [(r["offered_qps"], r["status_counts"]) for r in runs if r["errors"]]
        if bad:
            print(f"FAIL: non-200 responses under offered load: {bad}",
                  file=sys.stderr)
            return 1
        print("OK: zero errors at every offered-qps level")

    if args.assert_max_p95_ms is not None:
        worst = max(runs, key=lambda r: r["latency_ms"]["p95"])
        if worst["latency_ms"]["p95"] > args.assert_max_p95_ms:
            print(f"FAIL: p95 {worst['latency_ms']['p95']}ms at "
                  f"qps={worst['offered_qps']} exceeds bound "
                  f"{args.assert_max_p95_ms}ms", file=sys.stderr)
            return 1
        print(f"OK: worst p95 {worst['latency_ms']['p95']}ms <= "
              f"{args.assert_max_p95_ms}ms")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
