"""Shim for environments without the `wheel` package (offline sandboxes).

`pip install -e .` needs setuptools' bdist_wheel, which on setuptools<70
lives in the separately-installed `wheel` package. `python setup.py develop`
performs the same editable install without it. All real metadata lives in
pyproject.toml.
"""
from setuptools import setup

setup()
