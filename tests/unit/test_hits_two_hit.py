"""Unit tests for hit containers, diagonals, and two-hit seed selection."""

import numpy as np
import pytest

from repro.core import HitArray, diagonal_of
from repro.core.two_hit import seed_mask, select_seeds_and_extend
from repro.io import SequenceDatabase


def make_hits(tuples, qlen):
    seq, qp, sp = (np.array(x, dtype=np.int64) for x in zip(*tuples)) if tuples else (
        np.zeros(0, dtype=np.int64),
    ) * 3
    return HitArray(seq_id=seq, query_pos=qp, subject_pos=sp, query_length=qlen)


class TestHitArray:
    def test_diagonal_definition(self):
        # Algorithm 1 line 6: diagonal = sub_pos - query_pos + query_length
        d = diagonal_of(np.array([3]), np.array([10]), 20)
        assert d.tolist() == [27]

    def test_diagonal_nonnegative_for_valid_hits(self):
        # query_pos <= query_length, so diagonals never go negative.
        d = diagonal_of(np.array([20]), np.array([0]), 20)
        assert d.tolist() == [0]

    def test_sorted_diagonal_major(self):
        hits = make_hits([(0, 5, 3), (0, 1, 3), (0, 2, 8), (1, 0, 0)], 10)
        s = hits.sorted_diagonal_major()
        keys = list(zip(s.seq_id.tolist(), s.diagonal.tolist(), s.subject_pos.tolist()))
        assert keys == sorted(keys)

    def test_misaligned_arrays_rejected(self):
        with pytest.raises(ValueError):
            HitArray(
                seq_id=np.zeros(2, dtype=np.int64),
                query_pos=np.zeros(3, dtype=np.int64),
                subject_pos=np.zeros(2, dtype=np.int64),
                query_length=5,
            )

    def test_as_tuples(self):
        hits = make_hits([(0, 1, 2), (1, 3, 4)], 10)
        assert hits.as_tuples() == [(0, 1, 2), (1, 3, 4)]


class TestSeedMask:
    """The pinned two-hit rule: a hit seeds iff some earlier hit on its
    diagonal lies within subject distance [W, window]."""

    W = 3
    WINDOW = 40

    def mask(self, tuples, qlen=50):
        return seed_mask(make_hits(tuples, qlen), self.WINDOW, self.W).tolist()

    def test_single_hit_never_seeds(self):
        assert self.mask([(0, 5, 10)]) == [False]

    def test_pair_within_window(self):
        assert self.mask([(0, 5, 10), (0, 15, 20)]) == [False, True]

    def test_pair_beyond_window(self):
        assert self.mask([(0, 0, 0), (0, 41, 41)], qlen=50) == [False, False]

    def test_pair_at_exact_window(self):
        assert self.mask([(0, 0, 0), (0, 40, 40)], qlen=50) == [False, True]

    def test_overlapping_words_do_not_seed(self):
        # distance 1 and 2 < W: one similarity region, not two matches.
        assert self.mask([(0, 0, 0), (0, 1, 1), (0, 2, 2)]) == [False, False, False]

    def test_run_seeds_at_distance_w(self):
        # 4th overlapping hit is W from the run start.
        tuples = [(0, i, i) for i in range(5)]
        assert self.mask(tuples) == [False, False, False, True, True]

    def test_predecessor_skips_overlapping_neighbors(self):
        # Neighbours at distance 1 and 2 don't seed, but the hit at
        # distance 22 (within window) does.
        tuples = [(0, 0, 0), (0, 20, 20), (0, 21, 21), (0, 22, 22)]
        assert self.mask(tuples) == [False, True, True, True]

    def test_different_diagonals_independent(self):
        tuples = [(0, 0, 0), (0, 1, 10)]  # diagonals 0 and 9
        assert self.mask(tuples) == [False, False]

    def test_different_sequences_independent(self):
        tuples = [(0, 0, 0), (1, 0, 10)]
        assert self.mask(tuples) == [False, False]

    def test_mask_alignment_with_unsorted_input(self):
        # Hits given out of order: mask must align with the input order.
        tuples = [(0, 15, 20), (0, 5, 10)]  # second is the earlier hit
        assert self.mask(tuples) == [True, False]

    def test_empty(self):
        assert self.mask([]) == []

    def test_brute_force_equivalence_random(self):
        rng = np.random.default_rng(5)
        n = 400
        tuples = [
            (int(rng.integers(0, 3)), int(q), int(rng.integers(0, 120)))
            for q in rng.integers(0, 40, n)
        ]
        # de-duplicate (seq, qpos, spos) triples
        tuples = sorted(set(tuples))
        got = self.mask(tuples, qlen=40)
        expect = []
        for s, q, p in tuples:
            d = p - q
            expect.append(
                any(
                    s2 == s and p2 - q2 == d and self.W <= p - p2 <= self.WINDOW
                    for (s2, q2, p2) in tuples
                )
            )
        assert got == expect


class TestSelectSeedsAndExtend:
    def test_coverage_skips_covered_seeds(self, tiny_pipeline, tiny_db, tiny_cutoffs):
        hits = tiny_pipeline.phase_hit_detection(tiny_db)
        exts, num_seeds = tiny_pipeline.phase_ungapped(hits, tiny_db, tiny_cutoffs)
        assert 0 < len(exts) <= num_seeds
        # No two extensions on the same diagonal may overlap their seeds:
        by_diag = {}
        for e in exts:
            by_diag.setdefault((e.seq_id, e.diagonal_offset), []).append(e)
        for group in by_diag.values():
            group.sort(key=lambda e: e.subject_start)
            # extensions are recorded in seed order; a later extension's
            # seed lay beyond the previous extension's subject end

    def test_extensions_contain_seed_word(self, tiny_pipeline, tiny_db, tiny_cutoffs):
        hits = tiny_pipeline.phase_hit_detection(tiny_db)
        exts, _ = tiny_pipeline.phase_ungapped(hits, tiny_db, tiny_cutoffs)
        for e in exts:
            assert e.length >= tiny_pipeline.params.word_length

    def test_no_hits_no_extensions(self, tiny_pipeline, tiny_cutoffs):
        db = SequenceDatabase.from_strings(["PPPP"])  # poly-proline: no hits vs query
        hits = tiny_pipeline.phase_hit_detection(db)
        exts, seeds = select_seeds_and_extend(
            hits.hits, db, tiny_pipeline.pssm, 3, 40, tiny_cutoffs.x_drop_ungapped
        )
        assert seeds == 0 and len(exts) == 0
