"""Unit tests for the BLOSUM-from-blocks constructor."""

import numpy as np
import pytest

from repro.alphabet import ALPHABET, background_frequencies, decode, encode
from repro.matrices import BLOSUM62, ungapped_params
from repro.matrices.henikoff import blosum_from_blocks, cluster_sequences, count_block_pairs


class TestClustering:
    def test_identical_sequences_cluster(self):
        rows = np.stack([encode("MKTAY")] * 3)
        assert len(set(cluster_sequences(rows, 0.62))) == 1

    def test_distinct_sequences_separate(self):
        rows = np.stack([encode("MKTAY"), encode("WCRHG")])
        assert len(set(cluster_sequences(rows, 0.62))) == 2

    def test_threshold_boundary(self):
        # 3/5 = 60 % identity: below 0.62, above 0.5.
        rows = np.stack([encode("MKTAY"), encode("MKTWC")])
        assert len(set(cluster_sequences(rows, 0.62))) == 2
        assert len(set(cluster_sequences(rows, 0.5))) == 1

    def test_single_linkage_transitivity(self):
        # a~b and b~c at 60 %, a!~c: single linkage joins all three.
        a, b, c = "MKTAY", "MKTWC", "MHGWC"
        rows = np.stack([encode(a), encode(b), encode(c)])
        assert len(set(cluster_sequences(rows, 0.6))) == 1


class TestPairCounts:
    def test_simple_two_sequences(self):
        rows = np.stack([encode("AA"), encode("AR")])
        clusters = np.array([0, 1])
        counts = count_block_pairs(rows, clusters)
        A, R = ALPHABET.index("A"), ALPHABET.index("R")
        assert counts[A, A] == pytest.approx(2.0)  # column 0: A-A both ways
        assert counts[A, R] == pytest.approx(1.0)
        assert counts[R, A] == pytest.approx(1.0)

    def test_within_cluster_pairs_skipped(self):
        rows = np.stack([encode("AA"), encode("AA")])
        counts = count_block_pairs(rows, np.array([0, 0]))
        assert counts.sum() == 0

    def test_cluster_weighting(self):
        # Two near-identical sequences vs one distinct: the pair's weight
        # halves per duplicated member.
        rows = np.stack([encode("AAAAA"), encode("AAAAA"), encode("RRRRR")])
        counts = count_block_pairs(rows, np.array([0, 0, 1]))
        A, R = ALPHABET.index("A"), ALPHABET.index("R")
        # 2 cross pairs x 5 columns x weight (1/2 * 1) = 5, both directions.
        assert counts[A, R] == pytest.approx(5.0)


class TestDerivedMatrix:
    @pytest.fixture(scope="class")
    def synthetic_blocks(self):
        """Blocks sampled through BLOSUM62's own pair distribution.

        Column pairs (a, b) are drawn with probability proportional to
        p_a p_b 2^(s_ab / 2) — the implied target frequencies — so the
        derived matrix should recover BLOSUM62's structure.
        """
        rng = np.random.default_rng(8)
        p = background_frequencies()[:20]
        p = p / p.sum()
        s = BLOSUM62.scores[:20, :20].astype(np.float64)
        joint = np.outer(p, p) * np.exp2(s / 2.0)
        joint /= joint.sum()
        flat = joint.reshape(-1)
        blocks = []
        for _ in range(60):
            width = int(rng.integers(20, 40))
            pairs = rng.choice(400, size=width, p=flat)
            row_a = (pairs // 20).astype(np.uint8)
            row_b = (pairs % 20).astype(np.uint8)
            blocks.append([decode(row_a), decode(row_b)])
        return blocks

    def test_recovers_blosum62_structure(self, synthetic_blocks):
        derived = blosum_from_blocks(synthetic_blocks, 0.62, name="test")
        a = derived.scores[:20, :20].astype(np.float64).reshape(-1)
        b = BLOSUM62.scores[:20, :20].astype(np.float64).reshape(-1)
        r = np.corrcoef(a, b)[0, 1]
        assert r > 0.75

    def test_symmetric_and_valid(self, synthetic_blocks):
        derived = blosum_from_blocks(synthetic_blocks)
        assert np.array_equal(derived.scores, derived.scores.T)
        # A valid scoring system: positive lambda exists.
        params = ungapped_params(derived)
        assert params.lam > 0

    def test_common_self_pairs_positive(self, synthetic_blocks):
        derived = blosum_from_blocks(synthetic_blocks)
        for res in "LAGS":
            i = ALPHABET.index(res)
            assert derived.score(i, i) > 0

    def test_no_between_cluster_pairs_raises(self):
        with pytest.raises(ValueError, match="between-cluster"):
            blosum_from_blocks([["MKTAY", "MKTAY"]])

    def test_ragged_block_rejected(self):
        with pytest.raises(ValueError, match="equal length"):
            blosum_from_blocks([["MKTAY", "MKT"]])

    def test_nonstandard_residue_rejected(self):
        with pytest.raises(ValueError, match="standard residues"):
            blosum_from_blocks([["MKXAY", "WCRHG"]])

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            blosum_from_blocks([["MK", "WC"]], identity_threshold=0.0)

    def test_search_with_derived_matrix(self, synthetic_blocks, tiny_db, tiny_spec):
        """The derived matrix drives a full search end to end."""
        import dataclasses

        from repro.core import BlastpPipeline, SearchParams
        from repro.io import generate_query

        derived = blosum_from_blocks(synthetic_blocks)
        params = SearchParams(
            matrix=derived, effective_db_residues=10**8
        )
        pipe = BlastpPipeline(generate_query(160, tiny_spec), params)
        result = pipe.search(tiny_db)
        assert result.num_hits > 0
        assert result.num_reported >= 1  # planted homologs still found
