"""Tests for ungapped-only mode, length adjustment, word sizes, persistence,
and the statistical validity of reported E-values."""

import dataclasses
import math

import numpy as np
import pytest

from repro.baselines import FsaBlast
from repro.core import BlastpPipeline, SearchParams
from repro.cublastp import CuBlastp
from repro.errors import ConfigError
from repro.io import SequenceDatabase, generate_database
from repro.io.workloads import WorkloadSpec
from repro.matrices import BLOSUM62, ungapped_params
from repro.matrices.karlin import effective_search_space, length_adjustment


class TestUngappedOnly:
    def test_reports_hsp_without_gaps(self, tiny_query, tiny_db, tiny_params):
        params = dataclasses.replace(tiny_params, ungapped_only=True)
        result = BlastpPipeline(tiny_query, params).search(tiny_db)
        assert result.num_reported >= 1
        for a in result.alignments:
            assert a.gaps == 0
            assert "-" not in a.aligned_query
            assert a.length == a.query_end - a.query_start + 1

    def test_uses_ungapped_statistics(self, tiny_query, tiny_db, tiny_params):
        params = dataclasses.replace(tiny_params, ungapped_only=True)
        pipe = BlastpPipeline(tiny_query, params)
        result = pipe.search(tiny_db)
        cut = pipe.cutoffs(tiny_db)
        best = result.best()
        assert best.evalue == pytest.approx(
            cut.ungapped.evalue(best.score, pipe.query_length, cut.effective_db_residues)
        )

    def test_scores_bounded_by_gapped_mode(self, tiny_query, tiny_db, tiny_params):
        gapped = BlastpPipeline(tiny_query, tiny_params).search(tiny_db)
        ung = BlastpPipeline(
            tiny_query, dataclasses.replace(tiny_params, ungapped_only=True)
        ).search(tiny_db)
        if gapped.best() and ung.best():
            assert ung.best().score <= gapped.best().score

    def test_cublastp_matches_reference_in_ungapped_mode(
        self, small_query, small_params, small_db
    ):
        params = dataclasses.replace(small_params, ungapped_only=True)
        ref = FsaBlast(small_query, params).search(small_db)
        gpu = CuBlastp(small_query, params).search(small_db)
        assert [(a.seq_id, a.score, a.query_start) for a in gpu.alignments] == [
            (a.seq_id, a.score, a.query_start) for a in ref.alignments
        ]


class TestWordSizes:
    @pytest.mark.parametrize("w", [2, 4])
    def test_reference_supports_other_word_sizes(self, w, tiny_db, tiny_query):
        threshold = {2: 9, 4: 13}[w]
        params = SearchParams(
            word_length=w, threshold=threshold, effective_db_residues=10**8
        )
        pipe = BlastpPipeline(tiny_query, params)
        result = pipe.search(tiny_db)
        assert result.num_hits > 0
        assert result.num_reported >= 1  # planted homologs still found

    def test_gpu_path_requires_w3(self, tiny_query):
        params = SearchParams(word_length=4, threshold=13)
        with pytest.raises(ConfigError, match="W=3"):
            CuBlastp(tiny_query, params)

    def test_smaller_word_more_hits(self, tiny_db, tiny_query):
        h3 = BlastpPipeline(tiny_query, SearchParams()).search(tiny_db).num_hits
        h4 = (
            BlastpPipeline(tiny_query, SearchParams(word_length=4, threshold=13))
            .search(tiny_db)
            .num_hits
        )
        assert h4 < h3


class TestLengthAdjustment:
    def test_positive_for_real_search_spaces(self):
        p = ungapped_params(BLOSUM62)
        ell = length_adjustment(p, 517, 10**8, 300_000)
        assert 20 < ell < 120

    def test_grows_with_search_space(self):
        p = ungapped_params(BLOSUM62)
        small = length_adjustment(p, 517, 10**6, 3_000)
        big = length_adjustment(p, 517, 10**9, 3_000_000)
        assert big > small

    def test_effective_space_below_raw(self):
        p = ungapped_params(BLOSUM62)
        eff = effective_search_space(p, 517, 10**8, 300_000)
        assert eff < 517 * 10**8
        assert eff > 0

    def test_clamped_for_tiny_query(self):
        p = ungapped_params(BLOSUM62)
        ell = length_adjustment(p, 25, 10**8, 300_000)
        assert 0 <= ell <= 24

    def test_invalid_inputs(self):
        p = ungapped_params(BLOSUM62)
        with pytest.raises(ValueError):
            length_adjustment(p, 0, 100, 10)


class TestPersistence:
    def test_save_load_roundtrip(self, tiny_db, tmp_path):
        path = tmp_path / "db.npz"
        tiny_db.save(path)
        back = SequenceDatabase.load(path)
        assert np.array_equal(back.codes, tiny_db.codes)
        assert np.array_equal(back.offsets, tiny_db.offsets)
        assert back.identifiers == tiny_db.identifiers

    def test_loaded_db_searchable(self, tiny_db, tiny_query, tiny_params, tmp_path):
        path = tmp_path / "db.npz"
        tiny_db.save(path)
        back = SequenceDatabase.load(path)
        a = BlastpPipeline(tiny_query, tiny_params).search(tiny_db)
        b = BlastpPipeline(tiny_query, tiny_params).search(back)
        assert [(x.seq_id, x.score) for x in a.alignments] == [
            (x.seq_id, x.score) for x in b.alignments
        ]


class TestEvalueCalibration:
    """Statistical validation: chance HSP counts track Karlin-Altschul.

    On a homolog-free database, the expected number of ungapped HSPs
    scoring >= S is K*m*n*exp(-lambda*S). Seeded two-hit extension is a
    biased sampler of HSPs, so we only demand the right order of
    magnitude and the right exponential decay *rate* — which is what makes
    reported E-values meaningful.
    """

    @pytest.fixture(scope="class")
    def chance_scores(self):
        spec = WorkloadSpec(
            name="rand", num_sequences=400, mean_length=220,
            homolog_fraction=0.0, seed=21,
        )
        db = generate_database(spec)
        from repro.io import generate_query

        pipe = BlastpPipeline(generate_query(300, spec), SearchParams())
        cut = pipe.cutoffs(db)
        hits = pipe.phase_hit_detection(db)
        exts, _ = pipe.phase_ungapped(hits, db, cut)
        return pipe, db, np.array([e.score for e in exts])

    def test_decay_rate_matches_lambda(self, chance_scores):
        pipe, db, scores = chance_scores
        p = ungapped_params(BLOSUM62)
        # Regress log-counts of the exceedance curve over the *tail*
        # (s >= 24): below that, the fixed word-score floor of two-hit
        # seeds distorts the distribution; in the tail the Gumbel decay
        # emerges cleanly.
        s_lo, s_hi = 24, 38
        svals = np.arange(s_lo, s_hi + 1)
        counts = np.array([(scores >= s).sum() for s in svals], dtype=float)
        assert counts[0] > 100, "need enough chance HSPs to regress"
        valid = counts > 3
        slope = np.polyfit(svals[valid], np.log(counts[valid]), 1)[0]
        # Observed decay within 25 % of -lambda.
        assert slope == pytest.approx(-p.lam, rel=0.25)

    def test_exceedance_magnitude(self, chance_scores):
        pipe, db, scores = chance_scores
        p = ungapped_params(BLOSUM62)
        m, n = pipe.query_length, int(db.codes.size)
        s = 30
        expected = p.K * m * n * math.exp(-p.lam * s)
        observed = int((scores >= s).sum())
        # Order of magnitude: two-hit seeding under-samples maximal HSPs,
        # so observed sits below the Karlin prediction but within ~8x.
        assert expected / 8 < max(observed, 0.5) <= expected * 2
