"""Unit tests for FASTA parsing and writing."""

import pytest

from repro.errors import FastaFormatError
from repro.io import FastaRecord, read_fasta, read_fasta_file, write_fasta


def parse(text: str, **kw):
    return list(read_fasta(text.splitlines(), **kw))


class TestReadFasta:
    def test_single_record(self):
        recs = parse(">id1 some description\nMKTAY\nIAKQR\n")
        assert recs == [FastaRecord("id1", "some description", "MKTAYIAKQR")]

    def test_multiple_records(self):
        recs = parse(">a\nMK\n>b\nAR\n>c\nND\n")
        assert [r.identifier for r in recs] == ["a", "b", "c"]
        assert [r.sequence for r in recs] == ["MK", "AR", "ND"]

    def test_no_description(self):
        (rec,) = parse(">seq\nMKT\n")
        assert rec.identifier == "seq"
        assert rec.description == ""

    def test_blank_lines_ignored(self):
        (rec,) = parse(">a\n\nMK\n\nTA\n")
        assert rec.sequence == "MKTA"

    def test_comment_lines_ignored(self):
        (rec,) = parse("; legacy comment\n>a\nMK\n")
        assert rec.sequence == "MK"

    def test_crlf_endings(self):
        (rec,) = parse(">a\r\nMKT\r\n")
        assert rec.sequence == "MKT"

    def test_len_matches_sequence(self):
        (rec,) = parse(">a\nMKTAY\n")
        assert len(rec) == 5

    def test_empty_sequence_rejected(self):
        with pytest.raises(FastaFormatError, match="empty sequence"):
            parse(">a\n>b\nMK\n")

    def test_empty_header_rejected(self):
        with pytest.raises(FastaFormatError, match="empty FASTA header"):
            parse(">\nMK\n")

    def test_data_before_header_rejected(self):
        with pytest.raises(FastaFormatError, match="before any header"):
            parse("MKT\n>a\nMK\n")

    def test_invalid_residues_rejected(self):
        with pytest.raises(FastaFormatError, match="invalid residues"):
            parse(">a\nMK9T\n")

    def test_validation_can_be_disabled(self):
        (rec,) = parse(">a\nMK9T\n", validate=False)
        assert rec.sequence == "MK9T"


class TestRoundtrip:
    def test_write_then_read(self, tmp_path):
        records = [
            FastaRecord("s1", "first", "MKTAYIAKQRQISFVKSHFSRQ" * 5),
            FastaRecord("s2", "", "ARNDCQEGH"),
        ]
        path = tmp_path / "out.fasta"
        write_fasta(records, path, width=30)
        back = read_fasta_file(path)
        assert back == records

    def test_line_wrapping(self, tmp_path):
        path = tmp_path / "w.fasta"
        write_fasta([FastaRecord("x", "", "A" * 75)], path, width=30)
        lines = path.read_text().splitlines()
        assert lines[0] == ">x"
        assert [len(l) for l in lines[1:]] == [30, 30, 15]

    def test_invalid_width_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_fasta([], tmp_path / "z.fasta", width=0)
