"""Unit tests for the Smith-Waterman oracle."""

import numpy as np
import pytest

from repro.alphabet import encode
from repro.baselines import smith_waterman_align, smith_waterman_score, sw_search_scores
from repro.io import SequenceDatabase
from repro.matrices import BLOSUM62, build_pssm, match_mismatch_matrix


def brute_force_sw(q, s, matrix, go, ge):
    """Cubic-time affine local alignment (independent reference)."""
    n, m = len(q), len(s)
    NEG = -(10**9)
    H = np.zeros((n + 1, m + 1), dtype=np.int64)
    E = np.full((n + 1, m + 1), NEG, dtype=np.int64)
    F = np.full((n + 1, m + 1), NEG, dtype=np.int64)
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            E[i][j] = max(H[i - 1][j] - go, E[i - 1][j] - ge)
            F[i][j] = max(H[i][j - 1] - go, F[i][j - 1] - ge)
            H[i][j] = max(
                0,
                H[i - 1][j - 1] + matrix.score(q[i - 1], s[j - 1]),
                E[i][j],
                F[i][j],
            )
    return int(H.max())


@pytest.fixture(scope="module")
def mm():
    return match_mismatch_matrix(5, -4)


class TestScore:
    def test_identical(self, mm):
        q = encode("MKTAYIAK")
        assert smith_waterman_score(build_pssm(q, mm), q, 5, 1) == 40

    def test_no_similarity(self, mm):
        q = encode("MMMM")
        s = encode("WWWW")
        assert smith_waterman_score(build_pssm(q, mm), s, 5, 1) == 0

    def test_local_trims(self, mm):
        q = encode("CCCCMKTAYCCCC")
        s = encode("WWWWMKTAYWWWW")
        assert smith_waterman_score(build_pssm(q, mm), s, 5, 1) == 25

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_bruteforce(self, seed, mm):
        rng = np.random.default_rng(seed)
        letters = list("ARNDCQEGHILKMFPSTWYV")
        q = encode("".join(rng.choice(letters, int(rng.integers(5, 25)))))
        s = encode("".join(rng.choice(letters, int(rng.integers(5, 25)))))
        got = smith_waterman_score(build_pssm(q, BLOSUM62), s, 11, 1)
        assert got == brute_force_sw(q, s, BLOSUM62, 11, 1)

    def test_empty_subject(self, mm):
        q = encode("MKT")
        assert smith_waterman_score(build_pssm(q, mm), np.zeros(0, np.uint8), 5, 1) == 0


class TestAlign:
    def test_alignment_score_matches_score_only(self, mm):
        q = encode("MKTAYIAKWQRN")
        s = encode("MKTAWIAKQRN")
        tb = smith_waterman_align(q, s, BLOSUM62)
        assert tb.score == smith_waterman_score(build_pssm(q, BLOSUM62), s, 11, 1)

    def test_none_when_no_alignment(self, mm):
        assert smith_waterman_align(encode("MMM"), encode("WWW"), mm, 5, 1) is None


class TestSearch:
    def test_per_sequence_scores(self, mm):
        db = SequenceDatabase.from_strings(["MKTAY", "WWWWW", "MKT"])
        scores = sw_search_scores(encode("MKTAY"), db, mm, 5, 1)
        assert scores.tolist() == [25, 0, 15]

    def test_blast_never_beats_sw(self, tiny_pipeline, tiny_db):
        """BLAST approximates SW from below: every reported alignment
        score is bounded by the optimal local score for that pair."""
        result = tiny_pipeline.search(tiny_db)
        assert result.alignments
        sw = sw_search_scores(
            tiny_pipeline.query_codes, tiny_db, tiny_pipeline.params.matrix
        )
        for a in result.alignments:
            assert a.score <= sw[a.seq_id]

    def test_blast_finds_near_optimal_for_homologs(self, tiny_pipeline, tiny_db):
        """For planted homologs, the heuristic should land within a few
        percent of the optimum (the paper: 'only a slight loss in
        accuracy')."""
        result = tiny_pipeline.search(tiny_db)
        sw = sw_search_scores(
            tiny_pipeline.query_codes, tiny_db, tiny_pipeline.params.matrix
        )
        best = result.best()
        assert best.score >= 0.9 * sw[best.seq_id]
