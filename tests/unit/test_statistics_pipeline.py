"""Unit tests for search parameters, cutoffs, and the reference pipeline."""

import pytest

from repro.core import BlastpPipeline, SearchParams, resolve_cutoffs
from repro.core.statistics import bits_to_raw, raw_drop_from_bits
from repro.errors import ConfigError
from repro.io import SequenceDatabase
from repro.matrices import BLOSUM62, ungapped_params


class TestSearchParams:
    def test_defaults_are_blastp_standards(self):
        p = SearchParams()
        assert (p.word_length, p.threshold, p.two_hit_window) == (3, 11, 40)
        assert (p.gap_open, p.gap_extend) == (11, 1)
        # The configured cutoff round-trips exactly; not a computed statistic.
        assert p.evalue == 10.0  # reprolint: disable=no-float-equality-on-scores

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"word_length": 1},
            {"two_hit_window": 2},
            {"evalue": 0},
            {"gap_extend": 0},
            {"gap_open": -1},
        ],
    )
    def test_invalid_params_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            SearchParams(**kwargs)


class TestCutoffs:
    def test_raw_cutoffs_for_defaults(self):
        c = resolve_cutoffs(SearchParams(), 517, 10**6)
        ug = ungapped_params(BLOSUM62)
        assert c.x_drop_ungapped == raw_drop_from_bits(7.0, ug)
        assert c.gap_trigger == bits_to_raw(22.0, ug)
        assert 10 <= c.x_drop_ungapped <= 20
        assert 38 <= c.gap_trigger <= 45
        assert c.x_drop_gapped == pytest.approx(15 * 0.6931 / 0.267, abs=1)

    def test_report_cutoff_grows_with_db(self):
        small = resolve_cutoffs(SearchParams(), 517, 10**5)
        big = resolve_cutoffs(SearchParams(), 517, 10**9)
        assert big.report_cutoff > small.report_cutoff

    def test_effective_db_residues_override(self):
        params = SearchParams(effective_db_residues=10**8)
        c = resolve_cutoffs(params, 517, 1000)
        ref = resolve_cutoffs(SearchParams(), 517, 10**8)
        assert c.report_cutoff == ref.report_cutoff
        assert c.effective_db_residues == 10**8

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ConfigError):
            resolve_cutoffs(SearchParams(), 0, 100)


class TestPipeline:
    def test_query_too_short_rejected(self):
        with pytest.raises(ValueError):
            BlastpPipeline("MK")

    def test_search_counts_consistent(self, tiny_pipeline, tiny_db):
        result, counts = tiny_pipeline.search_with_counts(tiny_db)
        assert counts.num_seeds <= counts.num_hits
        assert counts.num_ungapped_extensions <= counts.num_seeds
        assert counts.num_gapped_extensions <= counts.num_gapped_triggers
        assert counts.num_reported <= counts.num_gapped_extensions
        assert result.num_hits == counts.num_hits

    def test_seed_fraction_in_paper_band(self, small_pipeline, small_db):
        """§3.3: 5-11 % of hits survive to ungapped extension."""
        _, counts = small_pipeline.search_with_counts(small_db)
        ratio = counts.num_seeds / counts.num_hits
        assert 0.03 <= ratio <= 0.13

    def test_alignments_sorted_by_score(self, tiny_pipeline, tiny_db):
        result = tiny_pipeline.search(tiny_db)
        scores = [a.score for a in result.alignments]
        assert scores == sorted(scores, reverse=True)

    def test_finds_planted_homologs(self, tiny_pipeline, tiny_db):
        result = tiny_pipeline.search(tiny_db)
        assert result.num_reported >= 1
        best = result.best()
        assert best.evalue < 1e-3
        assert best.identities / best.length > 0.3

    def test_deterministic(self, tiny_query, tiny_params, tiny_db):
        r1 = BlastpPipeline(tiny_query, tiny_params).search(tiny_db)
        r2 = BlastpPipeline(tiny_query, tiny_params).search(tiny_db)
        assert [(a.seq_id, a.score) for a in r1.alignments] == [
            (a.seq_id, a.score) for a in r2.alignments
        ]

    def test_max_alignments_cap(self, tiny_query, tiny_db, tiny_params):
        import dataclasses

        capped = dataclasses.replace(tiny_params, max_alignments=1)
        result = BlastpPipeline(tiny_query, capped).search(tiny_db)
        assert len(result.alignments) <= 1

    def test_alignment_coordinates_within_sequences(self, tiny_pipeline, tiny_db):
        result = tiny_pipeline.search(tiny_db)
        for a in result.alignments:
            assert 0 <= a.query_start <= a.query_end < tiny_pipeline.query_length
            slen = int(tiny_db.lengths[a.seq_id])
            assert 0 <= a.subject_start <= a.subject_end < slen

    def test_summary_strings(self, tiny_pipeline, tiny_db):
        result = tiny_pipeline.search(tiny_db)
        assert "hits=" in result.summary()

    def test_search_on_single_sequence_db(self, tiny_pipeline):
        db = SequenceDatabase.from_strings(["MKTAYIAKQRQISFVKSHFSRQ"])
        result = tiny_pipeline.search(db)  # should simply not crash
        assert result.db_sequences == 1
