"""Unit tests for the request coalescer (the serving layer's batcher)."""

import random
import threading

import pytest

from repro.serve import Coalescer

pytestmark = pytest.mark.serve


class TestCoalescer:
    def test_size_close_at_max_batch(self):
        c = Coalescer(max_batch=3)
        assert c.add("a") is None
        assert c.add("b") is None
        assert c.add("c") == ["a", "b", "c"]
        assert len(c) == 0
        assert c.stats.size_closes == 1
        assert c.stats.window_closes == 0

    def test_flush_closes_partial_batch(self):
        c = Coalescer(max_batch=10)
        c.add(1)
        c.add(2)
        assert c.flush() == [1, 2]
        assert c.stats.window_closes == 1

    def test_flush_empty_emits_nothing(self):
        c = Coalescer(max_batch=4)
        assert c.flush() is None
        assert c.stats.batches == 0

    def test_arrival_order_preserved(self):
        c = Coalescer(max_batch=100)
        for i in range(17):
            c.add(i)
        assert c.flush() == list(range(17))

    def test_max_batch_validated(self):
        with pytest.raises(ValueError):
            Coalescer(max_batch=0)

    def test_stats_mean_batch_size_counts_emitted_only(self):
        c = Coalescer(max_batch=2)
        c.add("a")
        c.add("b")  # size close: batch of 2
        c.add("c")  # pending, never emitted
        assert c.stats.arrivals == 3
        assert c.stats.emitted == 2
        assert c.stats.mean_batch_size == 2.0

    def test_seed_pinned_short_window_schedule(self):
        """Seed-pinned arrival/flush schedule: exactly-once, in order.

        A deterministic pseudo-random interleaving of arrivals and
        window expiries (flushes) — the tier-1 stand-in for the
        Hypothesis interleaving property, pinned so it never flakes.
        """
        rng = random.Random(20140519)
        c = Coalescer(max_batch=4)
        emitted, arrivals = [], []
        for step in range(200):
            if rng.random() < 0.7:
                item = f"req-{step}"
                arrivals.append(item)
                batch = c.add(item)
            else:
                batch = c.flush()
            if batch is not None:
                assert 1 <= len(batch) <= 4
                emitted.extend(batch)
        final = c.flush()
        if final is not None:
            emitted.extend(final)
        assert emitted == arrivals  # every arrival exactly once, in order
        assert c.stats.emitted == c.stats.arrivals == len(arrivals)
        # The schedule is pinned, so the batching outcome is too.
        assert c.stats.batches == c.stats.size_closes + c.stats.window_closes

    def test_concurrent_adds_exactly_once(self):
        """Racing arrival threads: no item lost, none duplicated."""
        c = Coalescer(max_batch=7)
        emitted = []
        lock = threading.Lock()

        def producer(tag):
            for i in range(50):
                batch = c.add((tag, i))
                if batch is not None:
                    with lock:
                        emitted.extend(batch)

        threads = [threading.Thread(target=producer, args=(t,)) for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        final = c.flush()
        if final is not None:
            emitted.extend(final)
        assert len(emitted) == 200
        assert len(set(emitted)) == 200
        # Per-producer arrival order survives any interleaving.
        for tag in range(4):
            mine = [i for (t, i) in emitted if t == tag]
            assert mine == sorted(mine)
