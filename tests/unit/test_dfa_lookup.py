"""Unit tests: DFA vs flat lookup table equivalence and DFA structure."""

import numpy as np
import pytest

from repro.alphabet import ALPHABET_SIZE, encode
from repro.io import generate_query
from repro.io.workloads import WorkloadSpec
from repro.matrices import BLOSUM62
from repro.seeding import QueryDFA, WordLookupTable, build_neighborhood


@pytest.fixture(scope="module")
def nbr():
    return build_neighborhood(encode("MKWTAYCIAKWQRNDHE"), BLOSUM62)


@pytest.fixture(scope="module")
def dfa(nbr):
    return QueryDFA(nbr)


@pytest.fixture(scope="module")
def lut(nbr):
    return WordLookupTable(nbr)


class TestDfaStructure:
    def test_num_states(self, dfa):
        assert dfa.num_states == ALPHABET_SIZE**2

    def test_transition_drops_oldest_letter(self, dfa):
        # state "AB" + letter C -> state "BC"
        a, b, c = 0, 1, 2
        state_ab = a * ALPHABET_SIZE + b
        assert dfa.next_state[state_ab, c] == b * ALPHABET_SIZE + c

    def test_emitted_word_is_state_plus_letter(self, dfa):
        state = 5 * ALPHABET_SIZE + 7
        assert dfa.word_of[state, 3] == state * ALPHABET_SIZE + 3

    def test_initial_state(self, dfa):
        codes = encode("ARN")
        assert dfa.initial_state(codes) == 0 * ALPHABET_SIZE + 1

    def test_state_table_small_enough_for_shared_memory(self, dfa):
        assert dfa.state_table_nbytes < 48 * 1024 * 8  # full tables
        # The per-state record form used on the device is tiny:
        assert dfa.num_states * 8 < 8 * 1024

    def test_position_lists_nbytes(self, dfa, nbr):
        assert dfa.position_lists_nbytes == nbr.offsets.nbytes + nbr.positions.nbytes


class TestScanEquivalence:
    def test_fig2_example(self):
        """The paper's Fig. 2(a) walkthrough: query BABBC, subject CBABB.

        With an exact-match scoring scheme, word BAB matches query position
        0 and ABB matches position 1 — the hits the figure derives.
        """
        from repro.matrices import match_mismatch_matrix

        q = encode("BABBC")
        nbr = build_neighborhood(q, match_mismatch_matrix(5, -4), threshold=15)
        dfa = QueryDFA(nbr)
        qp, sp = dfa.scan(encode("CBABB"))
        assert list(zip(qp.tolist(), sp.tolist())) == [(0, 1), (1, 2)]

    @pytest.mark.parametrize("subject_seed", [0, 1, 2, 3])
    def test_dfa_equals_lookup_on_random_subjects(self, dfa, lut, subject_seed):
        spec = WorkloadSpec(name="t", num_sequences=1, mean_length=100, seed=subject_seed)
        subj = encode(generate_query(120, spec, query_seed=subject_seed))
        qp1, sp1 = dfa.scan(subj)
        qp2, sp2 = lut.scan(subj)
        assert np.array_equal(qp1, qp2)
        assert np.array_equal(sp1, sp2)

    def test_scan_short_subject(self, dfa, lut):
        subj = encode("MK")
        assert dfa.scan(subj)[0].size == 0
        assert lut.scan(subj)[0].size == 0

    def test_scan_column_major_order(self, lut):
        subj = encode("MKWTAYMKWTAY")
        qp, sp = lut.scan(subj)
        # subject positions non-decreasing = column-major emission order
        assert np.all(np.diff(sp) >= 0)

    def test_positions_for_word_passthrough(self, dfa, lut, nbr):
        for w in (0, 100, 5000):
            assert np.array_equal(
                dfa.positions_for_word(w) if hasattr(dfa, "positions_for_word")
                else nbr.positions_for_word(w),
                lut.positions_for_word(w),
            )
