"""Unit tests for the protein alphabet."""

import numpy as np
import pytest

from repro.alphabet import (
    ALPHABET,
    ALPHABET_SIZE,
    ROBINSON_FREQUENCIES,
    UNKNOWN_CODE,
    background_frequencies,
    decode,
    encode,
    is_valid_sequence,
)


class TestEncodeDecode:
    def test_roundtrip_full_alphabet(self):
        assert decode(encode(ALPHABET)) == ALPHABET

    def test_codes_are_indices(self):
        codes = encode(ALPHABET)
        assert np.array_equal(codes, np.arange(ALPHABET_SIZE, dtype=np.uint8))

    def test_lowercase_accepted(self):
        assert decode(encode("mktay")) == "MKTAY"

    def test_bytes_input(self):
        assert np.array_equal(encode(b"ARN"), np.array([0, 1, 2], dtype=np.uint8))

    def test_rare_residues_fold_to_x(self):
        codes = encode("UOJ")
        assert np.all(codes == UNKNOWN_CODE)

    def test_unknown_characters_fold_to_x(self):
        assert np.all(encode("1?#") == UNKNOWN_CODE)

    def test_empty_sequence(self):
        assert encode("").size == 0
        assert decode(np.zeros(0, dtype=np.uint8)) == ""

    def test_decode_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            decode(np.array([ALPHABET_SIZE], dtype=np.uint8))

    def test_encode_returns_uint8(self):
        assert encode("ARND").dtype == np.uint8


class TestValidation:
    def test_standard_sequence_valid(self):
        assert is_valid_sequence("MKTAYIAKQRQISFVKSHFSRQLEERLGLIEVQ")

    def test_rare_residues_valid(self):
        assert is_valid_sequence("MKUOJ")

    def test_digits_invalid(self):
        assert not is_valid_sequence("MKT1")

    def test_gap_char_invalid(self):
        assert not is_valid_sequence("MK-T")


class TestBackground:
    def test_sums_to_one(self):
        assert background_frequencies().sum() == pytest.approx(1.0)

    def test_ambiguity_codes_zero(self):
        freqs = background_frequencies()
        for c in "BZX*":
            assert freqs[ALPHABET.index(c)] == 0.0

    def test_leucine_most_frequent(self):
        freqs = background_frequencies()
        assert ALPHABET[int(np.argmax(freqs))] == "L"

    def test_matches_robinson_table(self):
        freqs = background_frequencies()
        total = sum(ROBINSON_FREQUENCIES.values())
        for res, p in ROBINSON_FREQUENCIES.items():
            assert freqs[ALPHABET.index(res)] == pytest.approx(p / total)
